#include "markov/ctmc.hpp"

#include <cmath>
#include <tuple>

#include "sparse/coo.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::markov {

namespace {
constexpr double kGeneratorTol = 1e-9;
}

Ctmc::Ctmc(sparse::CsrMatrix q_transposed) : qt_(std::move(q_transposed)) {
  STOCDR_REQUIRE(qt_.rows() == qt_.cols(), "Ctmc requires a square generator");
  // Row sums of Q are column sums of the stored Q^T.
  const auto sums = qt_.col_sums();
  for (const double s : sums) {
    if (std::abs(s) > kGeneratorTol) {
      throw PreconditionError(
          "Ctmc: generator row sums must be zero (defect " +
          std::to_string(s) + ")");
    }
  }
  qt_.for_each([&](std::size_t dst, std::size_t src, double v) {
    if (dst != src) {
      STOCDR_REQUIRE(v >= 0.0,
                     "Ctmc: off-diagonal generator entries must be >= 0");
    } else {
      STOCDR_REQUIRE(v <= kGeneratorTol,
                     "Ctmc: diagonal generator entries must be <= 0");
      max_exit_rate_ = std::max(max_exit_rate_, -v);
    }
  });
  STOCDR_REQUIRE(max_exit_rate_ > 0.0,
                 "Ctmc: generator is identically zero");
}

Ctmc Ctmc::from_rates(
    std::size_t num_states,
    const std::vector<std::tuple<std::size_t, std::size_t, double>>& rates) {
  sparse::CooBuilder builder(num_states, num_states);
  std::vector<double> exit(num_states, 0.0);
  for (const auto& [src, dst, rate] : rates) {
    STOCDR_REQUIRE(src < num_states && dst < num_states,
                   "Ctmc::from_rates: state out of range");
    STOCDR_REQUIRE(src != dst, "Ctmc::from_rates: no self-rates");
    STOCDR_REQUIRE(rate > 0.0, "Ctmc::from_rates: rates must be positive");
    builder.add(dst, src, rate);  // transposed
    exit[src] += rate;
  }
  for (std::size_t i = 0; i < num_states; ++i) {
    if (exit[i] > 0.0) builder.add(i, i, -exit[i]);
  }
  return Ctmc(builder.to_csr());
}

MarkovChain Ctmc::uniformize(double lambda) const {
  if (lambda == 0.0) lambda = 1.02 * max_exit_rate_;
  STOCDR_REQUIRE(lambda >= max_exit_rate_,
                 "Ctmc::uniformize: lambda must be >= the max exit rate");
  const std::size_t n = num_states();
  sparse::CooBuilder builder(n, n);
  builder.reserve(qt_.nnz() + n);
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, 1.0);
  qt_.for_each([&](std::size_t dst, std::size_t src, double v) {
    builder.add(dst, src, v / lambda);
  });
  return MarkovChain(builder.to_csr());
}

std::vector<double> Ctmc::transient(std::span<const double> initial, double t,
                                    double tolerance) const {
  const std::size_t n = num_states();
  STOCDR_REQUIRE(initial.size() == n, "Ctmc::transient: initial size");
  STOCDR_REQUIRE(t >= 0.0, "Ctmc::transient: time must be >= 0");
  STOCDR_REQUIRE(tolerance > 0.0 && tolerance < 1.0,
                 "Ctmc::transient: bad tolerance");
  std::vector<double> x(initial.begin(), initial.end());
  if (t == 0.0) return x;

  const double lambda = 1.02 * max_exit_rate_;
  const MarkovChain p = uniformize(lambda);
  const double a = lambda * t;

  // Poisson weights computed iteratively; for large a, start from the
  // log-domain to avoid underflow of the k=0 term.
  std::vector<double> result(n, 0.0);
  std::vector<double> next(n);
  double log_weight = -a;  // ln Pois(0; a)
  double accumulated = 0.0;
  // Cap the series generously: mean a, std sqrt(a).
  const auto max_terms = static_cast<std::size_t>(a + 12.0 * std::sqrt(a) +
                                                  64.0);
  for (std::size_t k = 0; k <= max_terms; ++k) {
    const double weight = std::exp(log_weight);
    if (weight > 0.0) {
      for (std::size_t i = 0; i < n; ++i) result[i] += weight * x[i];
      accumulated += weight;
      if (1.0 - accumulated < tolerance && k > a) break;
    }
    p.step(x, next);
    x.swap(next);
    log_weight += std::log(a) - std::log(static_cast<double>(k) + 1.0);
  }
  // Renormalize the truncated series (it sums to `accumulated` <= 1).
  if (accumulated > 0.0) {
    for (double& v : result) v /= accumulated;
  }
  return result;
}

}  // namespace stocdr::markov
