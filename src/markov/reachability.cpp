#include "markov/reachability.hpp"

#include <algorithm>

#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::markov {

std::vector<bool> reachable_from(const MarkovChain& chain,
                                 const std::vector<std::size_t>& seeds) {
  const std::size_t n = chain.num_states();
  // Forward reachability on P means following columns of the stored P^T;
  // build the forward adjacency once (it is P itself, pattern only).
  const sparse::CsrMatrix p = chain.to_row_stochastic();
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> stack;
  for (const std::size_t s : seeds) {
    STOCDR_REQUIRE(s < n, "reachable_from: seed out of range");
    if (!seen[s]) {
      seen[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (const std::uint32_t v : p.row_cols(u)) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return seen;
}

namespace {

/// Iterative Tarjan SCC over a CSR adjacency (values ignored).
class TarjanScc {
 public:
  explicit TarjanScc(const sparse::CsrMatrix& adj)
      : adj_(adj),
        n_(adj.rows()),
        index_(n_, kUnvisited),
        lowlink_(n_, 0),
        on_stack_(n_, false),
        component_(n_, 0) {}

  std::vector<std::uint32_t> run(std::size_t& num_components) {
    for (std::size_t v = 0; v < n_; ++v) {
      if (index_[v] == kUnvisited) strong_connect(v);
    }
    num_components = components_;
    return component_;
  }

 private:
  static constexpr std::uint32_t kUnvisited = 0xffffffffu;

  struct Frame {
    std::size_t v;
    std::size_t edge;  // next out-edge offset within the row
  };

  void strong_connect(std::size_t root) {
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    start(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto cols = adj_.row_cols(f.v);
      if (f.edge < cols.size()) {
        const std::size_t w = cols[f.edge++];
        if (index_[w] == kUnvisited) {
          start(w);
          frames.push_back({w, 0});
        } else if (on_stack_[w]) {
          lowlink_[f.v] = std::min(lowlink_[f.v], index_[w]);
        }
      } else {
        if (lowlink_[f.v] == index_[f.v]) {
          // f.v is the root of a component: pop the stack down to it.
          for (;;) {
            const std::size_t w = stack_.back();
            stack_.pop_back();
            on_stack_[w] = false;
            component_[w] = static_cast<std::uint32_t>(components_);
            if (w == f.v) break;
          }
          ++components_;
        }
        const std::size_t child = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink_[frames.back().v] =
              std::min(lowlink_[frames.back().v], lowlink_[child]);
        }
      }
    }
  }

  void start(std::size_t v) {
    index_[v] = lowlink_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_[v] = true;
  }

  const sparse::CsrMatrix& adj_;
  std::size_t n_;
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<std::uint32_t> component_;
  std::vector<std::size_t> stack_;
  std::uint32_t next_index_ = 0;
  std::size_t components_ = 0;
};

}  // namespace

std::vector<std::uint32_t> strongly_connected_components(
    const MarkovChain& chain, std::size_t& num_components) {
  const sparse::CsrMatrix p = chain.to_row_stochastic();
  return TarjanScc(p).run(num_components);
}

bool is_irreducible(const MarkovChain& chain) {
  std::size_t count = 0;
  (void)strongly_connected_components(chain, count);
  return count == 1;
}

RestrictedChain restrict_chain(const MarkovChain& chain,
                               const std::vector<bool>& keep) {
  const std::size_t n = chain.num_states();
  STOCDR_REQUIRE(keep.size() == n, "restrict_chain: mask size mismatch");
  RestrictedChain out;
  out.to_child.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) {
      out.to_child[i] = static_cast<std::int64_t>(out.to_parent.size());
      out.to_parent.push_back(i);
    }
  }
  const std::size_t m = out.to_parent.size();
  sparse::CooBuilder builder(m, m);
  chain.pt().for_each([&](std::size_t dst, std::size_t src, double v) {
    const std::int64_t cd = out.to_child[dst];
    const std::int64_t cs = out.to_child[src];
    if (cd >= 0 && cs >= 0) {
      builder.add(static_cast<std::size_t>(cd), static_cast<std::size_t>(cs),
                  v);
    }
  });
  out.qt = builder.to_csr();
  return out;
}

}  // namespace stocdr::markov
