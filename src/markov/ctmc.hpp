// Continuous-time Markov chains: generator matrices and uniformization.
//
// The paper's CDR model is synchronous (one step per bit), but the
// surrounding Markov machinery is general, and mixed-signal duty often
// brings continuous-time components (charge-pump PLL states, burst arrival
// processes).  This header completes the substrate: CTMC generators with
// validation, the uniformized DTMC (which reduces every CTMC question to
// the discrete solvers in this library), stationary distributions, and
// transient solutions via the Poisson-weighted uniformization series —
// the standard numerically robust method (no matrix exponentials, no
// negative intermediate values).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "markov/chain.hpp"
#include "sparse/csr.hpp"

namespace stocdr::markov {

/// A continuous-time Markov chain given by its generator Q (row sums zero,
/// off-diagonal nonnegative).  Stored transposed like MarkovChain.
class Ctmc {
 public:
  /// Constructs from Q^T (rows are destination states).  Validates the
  /// generator: off-diagonal entries >= 0 and row sums of Q within 1e-9
  /// of 0.
  explicit Ctmc(sparse::CsrMatrix q_transposed);

  /// Builds from rate triplets: rate(src -> dst) > 0 for src != dst; the
  /// diagonal is derived.
  [[nodiscard]] static Ctmc from_rates(
      std::size_t num_states,
      const std::vector<std::tuple<std::size_t, std::size_t, double>>& rates);

  [[nodiscard]] std::size_t num_states() const { return qt_.rows(); }
  [[nodiscard]] const sparse::CsrMatrix& qt() const { return qt_; }

  /// The largest total exit rate max_i |q_ii| (the uniformization rate).
  [[nodiscard]] double max_exit_rate() const { return max_exit_rate_; }

  /// The uniformized DTMC P = I + Q / lambda for lambda >= max exit rate
  /// (default: 1.02 * max_exit_rate so every state keeps a self-loop,
  /// making the chain aperiodic).  The CTMC and P share their stationary
  /// distribution.
  [[nodiscard]] MarkovChain uniformize(double lambda = 0.0) const;

  /// Transient distribution at time t from `initial`, via the
  /// uniformization series  pi(t) = sum_k Pois(k; lambda t) x P^k,
  /// truncated when the remaining Poisson mass is below `tolerance`.
  [[nodiscard]] std::vector<double> transient(std::span<const double> initial,
                                              double t,
                                              double tolerance = 1e-12) const;

 private:
  sparse::CsrMatrix qt_;
  double max_exit_rate_ = 0.0;
};

}  // namespace stocdr::markov
