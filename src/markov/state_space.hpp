// Composite (mixed-radix) state spaces.
//
// The global state of a network of FSMs is a tuple of component states; the
// paper's CDR model has the composite state (data source, phase detector
// memory, counter, phase error).  StateSpace encodes/decodes such tuples to
// and from flat indices, names each dimension, and supports marginalization
// bookkeeping.  The flat index convention is "last dimension fastest", i.e.
// lexicographic with dimension 0 most significant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace stocdr::markov {

/// One coordinate of a composite state space.
struct Dimension {
  std::string name;   ///< human-readable name, e.g. "counter"
  std::size_t size;   ///< number of values this coordinate can take
};

/// A mixed-radix product space over named dimensions.
class StateSpace {
 public:
  /// Constructs from dimensions; every size must be >= 1 and the product
  /// must fit in 64 bits.
  explicit StateSpace(std::vector<Dimension> dims);

  /// Number of dimensions.
  [[nodiscard]] std::size_t rank() const { return dims_.size(); }

  /// Total number of composite states (product of dimension sizes).
  [[nodiscard]] std::uint64_t size() const { return total_; }

  /// The dimensions, in order.
  [[nodiscard]] const std::vector<Dimension>& dimensions() const {
    return dims_;
  }

  /// Index of the dimension with the given name; throws if absent.
  [[nodiscard]] std::size_t dimension_index(const std::string& name) const;

  /// Encodes a coordinate tuple into a flat index.
  [[nodiscard]] std::uint64_t encode(
      const std::vector<std::uint32_t>& coords) const;

  /// Decodes a flat index into a coordinate tuple.
  [[nodiscard]] std::vector<std::uint32_t> decode(std::uint64_t index) const;

  /// Extracts a single coordinate from a flat index without full decoding.
  [[nodiscard]] std::uint32_t coordinate(std::uint64_t index,
                                         std::size_t dim) const;

  /// Renders a flat index as "name0=v0 name1=v1 ..." for diagnostics.
  [[nodiscard]] std::string describe(std::uint64_t index) const;

 private:
  std::vector<Dimension> dims_;
  std::vector<std::uint64_t> stride_;  ///< stride of each dimension
  std::uint64_t total_ = 1;
};

}  // namespace stocdr::markov
