#include "markov/chain.hpp"

#include <cmath>

#include "support/error.hpp"

namespace stocdr::markov {

namespace {
constexpr double kStochasticTol = 1e-10;
}

MarkovChain::MarkovChain(sparse::CsrMatrix p_transposed, Validation validation)
    : pt_(std::move(p_transposed)) {
  STOCDR_REQUIRE(pt_.rows() == pt_.cols(),
                 "MarkovChain requires a square matrix");
  if (validation == Validation::kStrict) {
    for (const double v : pt_.values()) {
      if (!(v >= 0.0) || v > 1.0 + kStochasticTol) {
        throw PreconditionError(
            "MarkovChain: transition probabilities must lie in [0, 1]");
      }
    }
    const double defect = stochasticity_defect();
    if (defect > kStochasticTol) {
      throw PreconditionError(
          "MarkovChain: outgoing probabilities do not sum to 1 (defect " +
          std::to_string(defect) + ")");
    }
  }
}

MarkovChain MarkovChain::from_row_stochastic(const sparse::CsrMatrix& p,
                                             Validation validation) {
  return MarkovChain(p.transpose(), validation);
}

std::vector<double> MarkovChain::uniform_distribution() const {
  const std::size_t n = num_states();
  STOCDR_REQUIRE(n > 0, "MarkovChain::uniform_distribution on empty chain");
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

double MarkovChain::stochasticity_defect() const {
  // Column sums of P^T are the per-source outgoing probability masses.
  const auto sums = pt_.col_sums();
  double defect = 0.0;
  for (const double s : sums) defect = std::max(defect, std::abs(s - 1.0));
  return defect;
}

}  // namespace stocdr::markov
