// Structural classification of Markov chains: recurrent/transient classes,
// periodicity, and the small-chain fundamental-matrix toolbox.
//
// The compositional builder restricts to the *reachable* state set (as the
// paper prescribes), but reachable states can still be transient — e.g. the
// lock-in trajectory of a CDR started far off phase.  Stationary analysis
// concerns the recurrent class; these routines identify and extract it, and
// provide the classical closed-form quantities (fundamental matrix, mean
// first passage matrix, Kemeny constant) used as oracles for the iterative
// machinery on small chains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "markov/chain.hpp"
#include "markov/reachability.hpp"
#include "sparse/dense.hpp"

namespace stocdr::markov {

/// Per-state classification result.
struct ChainStructure {
  /// SCC id of each state (opaque labels).
  std::vector<std::uint32_t> component;
  /// Number of SCCs.
  std::size_t num_components = 0;
  /// True for states inside a closed (recurrent) SCC.
  std::vector<bool> recurrent;
  /// Number of closed SCCs.
  std::size_t num_recurrent_classes = 0;
};

/// Classifies every state as recurrent (member of a closed communicating
/// class) or transient.
[[nodiscard]] ChainStructure classify(const MarkovChain& chain);

/// True if the chain has a single closed class covering every state
/// (irreducible) — equivalent to reachability.hpp's is_irreducible but
/// computed from the classification.
[[nodiscard]] bool is_ergodic_candidate(const ChainStructure& structure);

/// Restricts the chain to its unique recurrent class; throws
/// PreconditionError if there are several (the model is then ambiguous and
/// the caller must choose).  The result's transitions are exactly the
/// original ones (a closed class leaks nothing), so the restricted chain is
/// properly stochastic.
[[nodiscard]] RestrictedChain restrict_to_recurrent(const MarkovChain& chain);

/// Period of an irreducible chain: gcd of all cycle lengths.  1 = aperiodic
/// (required for plain power iteration to converge).
[[nodiscard]] std::size_t period(const MarkovChain& chain);

// --- small-chain closed forms (dense; oracles for tests and tiny models) --

/// Fundamental matrix Z = (I - P + 1 eta^T)^{-1} of an irreducible chain
/// (Kemeny-Snell).  O(n^3); small chains only.
[[nodiscard]] sparse::DenseMatrix fundamental_matrix(
    const MarkovChain& chain, std::span<const double> eta);

/// Mean first passage times m_ij = E_i[T_j] for all pairs, from the
/// fundamental matrix: m_ij = (z_jj - z_ij) / eta_j (m_ii = 0).
[[nodiscard]] sparse::DenseMatrix mean_first_passage_matrix(
    const MarkovChain& chain, std::span<const double> eta);

/// Kemeny constant K = sum_j eta_j m_ij (independent of i): the expected
/// steps to reach a stationarily-chosen target — a single-number mixing
/// summary.
[[nodiscard]] double kemeny_constant(const MarkovChain& chain,
                                     std::span<const double> eta);

}  // namespace stocdr::markov
