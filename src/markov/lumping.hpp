// State lumping (aggregation) for Markov chains.
//
// Section 3 of the paper builds its multigrid solver on lumpability: a
// partition of the state set induces a coarse process; if the chain is
// *exactly* (ordinarily) lumpable the coarse process is Markov for every
// initial distribution, and in general the aggregation weighted by the
// current iterate (weak-lumpability construction) yields the coarse operator
// used by aggregation/disaggregation and multi-level methods.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace stocdr::markov {

/// A partition of {0, ..., n-1} into groups {0, ..., num_groups-1}.
class Partition {
 public:
  /// Builds from a group-of-state map; group ids must be a gap-free range
  /// starting at 0.
  explicit Partition(std::vector<std::uint32_t> group_of);

  /// The identity partition (every state its own group).
  [[nodiscard]] static Partition identity(std::size_t n);

  /// Groups states by pairs: {0,1}, {2,3}, ...; a trailing odd state forms
  /// its own group.  This is the generic building block behind the paper's
  /// phase-pair coarsening.
  [[nodiscard]] static Partition pairs(std::size_t n);

  [[nodiscard]] std::size_t num_states() const { return group_of_.size(); }
  [[nodiscard]] std::size_t num_groups() const { return num_groups_; }

  /// Group of state i.
  [[nodiscard]] std::uint32_t group(std::size_t i) const {
    return group_of_[i];
  }

  [[nodiscard]] std::span<const std::uint32_t> group_of() const {
    return group_of_;
  }

  /// Number of states in each group.
  [[nodiscard]] std::vector<std::size_t> group_sizes() const;

  /// Composes with a coarser partition of the groups: state i lands in
  /// coarser.group(this->group(i)).
  [[nodiscard]] Partition compose(const Partition& coarser) const;

 private:
  std::vector<std::uint32_t> group_of_;
  std::size_t num_groups_ = 0;
};

/// Tests ordinary (exact) lumpability: the chain is exactly lumpable w.r.t.
/// the partition iff for every group J, the probability of jumping into J is
/// identical for all states within any one group I (up to `tol`).
/// `pt` is the transposed TPM (library orientation).
[[nodiscard]] bool is_exactly_lumpable(const sparse::CsrMatrix& pt,
                                       const Partition& partition,
                                       double tol = 1e-12);

/// Exactly lumps a chain known to be lumpable; the coarse transition
/// probability from I to J is the (common) probability any state of I jumps
/// into J.  Returns the coarse P^T.  If the chain is not exactly lumpable
/// the result is the row-arbitrary representative; use aggregate_transposed
/// for the weighted (always well-defined) construction instead.
[[nodiscard]] sparse::CsrMatrix lump_exact(const sparse::CsrMatrix& pt,
                                           const Partition& partition);

/// Weighted aggregation: given nonnegative weights w (typically the current
/// iterate of the stationary vector), the coarse chain has
///
///   P_c(I, J) = sum_{i in I} (w_i / W_I) * sum_{j in J} P(i, j),
///
/// with W_I = sum_{i in I} w_i (uniform weights are used for empty groups).
/// Input and output are in transposed orientation.  The coarse matrix is
/// row-stochastic whenever P is.
[[nodiscard]] sparse::CsrMatrix aggregate_transposed(
    const sparse::CsrMatrix& pt, const Partition& partition,
    std::span<const double> weights);

/// Precomputed aggregation.  The sparsity pattern of aggregate_transposed
/// is weight-independent (it is the quotient graph), so the mapping from
/// fine entries to coarse value slots can be computed once; re-aggregating
/// with fresh weights is then a single O(nnz) accumulation pass with no
/// sorting.  This is what makes multigrid cycles cheap: the paper's solver
/// rebuilds the lumped chains every cycle with the current iterate as
/// weights, but only their *values* change.
class AggregationPlan {
 public:
  /// Builds the plan (and the quotient pattern) for the given fine matrix
  /// and partition.  The fine matrix's pattern must not change afterwards.
  AggregationPlan(const sparse::CsrMatrix& pt, const Partition& partition);

  /// Equivalent to aggregate_transposed(pt, partition, weights) for any
  /// matrix with the plan's pattern (entries may carry different values).
  /// Zero-valued coarse entries are kept explicitly (pattern stability).
  [[nodiscard]] sparse::CsrMatrix aggregate(
      const sparse::CsrMatrix& pt, std::span<const double> weights) const;

  [[nodiscard]] const Partition& partition() const { return partition_; }
  [[nodiscard]] std::size_t coarse_nnz() const { return coarse_cols_.size(); }

  /// Heap bytes held by the plan arrays (slot map + coarse pattern + the
  /// retained partition).  Reported as a mem.component.* footprint by the
  /// multilevel solver.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return partition_.num_states() * sizeof(std::uint32_t) +
           slot_.capacity() * sizeof(std::uint32_t) +
           coarse_ptr_.capacity() * sizeof(std::uint32_t) +
           coarse_cols_.capacity() * sizeof(std::uint32_t);
  }

 private:
  Partition partition_;
  std::size_t fine_nnz_;
  std::vector<std::uint32_t> slot_;        ///< fine entry -> coarse slot
  std::vector<std::uint32_t> coarse_ptr_;  ///< coarse CSR structure
  std::vector<std::uint32_t> coarse_cols_;
};

/// Restriction of a distribution-like vector: X_I = sum_{i in I} x_i.
[[nodiscard]] std::vector<double> restrict_sum(const Partition& partition,
                                               std::span<const double> x);

/// Disaggregation (prolongation) step: scales x within each group so the
/// group totals match `coarse`:  x_i <- coarse_I * x_i / X_I.  Groups whose
/// current mass X_I is zero receive the coarse mass spread uniformly.
void disaggregate(const Partition& partition, std::span<const double> coarse,
                  std::span<double> x);

}  // namespace stocdr::markov
