#include "markov/classify.hpp"

#include <numeric>

#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::markov {

ChainStructure classify(const MarkovChain& chain) {
  ChainStructure structure;
  structure.component =
      strongly_connected_components(chain, structure.num_components);
  const std::size_t n = chain.num_states();

  // A class is closed iff no member has an edge leaving the class.
  std::vector<bool> closed(structure.num_components, true);
  chain.pt().for_each([&](std::size_t dst, std::size_t src, double) {
    if (structure.component[src] != structure.component[dst]) {
      closed[structure.component[src]] = false;
    }
  });
  structure.recurrent.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    structure.recurrent[i] = closed[structure.component[i]];
  }
  structure.num_recurrent_classes = 0;
  for (const bool c : closed) {
    if (c) ++structure.num_recurrent_classes;
  }
  return structure;
}

bool is_ergodic_candidate(const ChainStructure& structure) {
  return structure.num_components == 1;
}

RestrictedChain restrict_to_recurrent(const MarkovChain& chain) {
  const ChainStructure structure = classify(chain);
  STOCDR_REQUIRE(structure.num_recurrent_classes == 1,
                 "restrict_to_recurrent: the chain has " +
                     std::to_string(structure.num_recurrent_classes) +
                     " recurrent classes; select one explicitly");
  return restrict_chain(chain, structure.recurrent);
}

std::size_t period(const MarkovChain& chain) {
  STOCDR_REQUIRE(is_irreducible(chain), "period: chain must be irreducible");
  const std::size_t n = chain.num_states();
  // BFS levels from state 0; the period is the gcd of (level(u) + 1 -
  // level(v)) over all edges u -> v.
  const sparse::CsrMatrix p = chain.to_row_stochastic();
  std::vector<std::int64_t> level(n, -1);
  std::vector<std::size_t> queue{0};
  level[0] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t u = queue[head];
    for (const std::uint32_t v : p.row_cols(u)) {
      if (level[v] < 0) {
        level[v] = level[u] + 1;
        queue.push_back(v);
      }
    }
  }
  std::size_t g = 0;
  for (std::size_t u = 0; u < n; ++u) {
    for (const std::uint32_t v : p.row_cols(u)) {
      const auto diff = static_cast<std::size_t>(
          std::llabs(level[u] + 1 - level[v]));
      if (diff != 0) g = gcd_size(g, diff);
    }
  }
  return g == 0 ? 1 : g;
}

sparse::DenseMatrix fundamental_matrix(const MarkovChain& chain,
                                       std::span<const double> eta) {
  const std::size_t n = chain.num_states();
  STOCDR_REQUIRE(eta.size() == n, "fundamental_matrix: eta size mismatch");
  STOCDR_REQUIRE(n <= 2000,
                 "fundamental_matrix: dense O(n^3) helper, n must be small");
  // A = I - P + 1 eta^T, then Z = A^{-1}.
  sparse::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = eta[j];
    a.at(i, i) += 1.0;
  }
  chain.pt().for_each([&a](std::size_t dst, std::size_t src, double v) {
    a.at(src, dst) -= v;
  });
  const sparse::LuFactorization lu(a);
  sparse::DenseMatrix z(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const auto column = lu.solve(e);
    for (std::size_t i = 0; i < n; ++i) z.at(i, j) = column[i];
    e[j] = 0.0;
  }
  return z;
}

sparse::DenseMatrix mean_first_passage_matrix(const MarkovChain& chain,
                                              std::span<const double> eta) {
  const sparse::DenseMatrix z = fundamental_matrix(chain, eta);
  const std::size_t n = chain.num_states();
  sparse::DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      STOCDR_REQUIRE(eta[j] > 0.0,
                     "mean_first_passage_matrix: eta must be positive");
      m.at(i, j) = (z.at(j, j) - z.at(i, j)) / eta[j];
    }
  }
  return m;
}

double kemeny_constant(const MarkovChain& chain, std::span<const double> eta) {
  // K = trace(Z) - 1 (Kemeny-Snell, with the fundamental matrix above).
  const sparse::DenseMatrix z = fundamental_matrix(chain, eta);
  double trace = 0.0;
  for (std::size_t i = 0; i < chain.num_states(); ++i) trace += z.at(i, i);
  return trace - 1.0;
}

}  // namespace stocdr::markov
