#include "markov/state_space.hpp"

#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace stocdr::markov {

StateSpace::StateSpace(std::vector<Dimension> dims) : dims_(std::move(dims)) {
  STOCDR_REQUIRE(!dims_.empty(), "StateSpace requires at least one dimension");
  stride_.assign(dims_.size(), 1);
  total_ = 1;
  // Last dimension fastest: compute strides right-to-left.
  for (std::size_t d = dims_.size(); d-- > 0;) {
    STOCDR_REQUIRE(dims_[d].size >= 1,
                   "StateSpace dimension sizes must be positive");
    stride_[d] = total_;
    STOCDR_REQUIRE(
        total_ <= std::numeric_limits<std::uint64_t>::max() / dims_[d].size,
        "StateSpace size overflows 64 bits");
    total_ *= dims_[d].size;
  }
}

std::size_t StateSpace::dimension_index(const std::string& name) const {
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (dims_[d].name == name) return d;
  }
  throw PreconditionError("StateSpace: no dimension named '" + name + "'");
}

std::uint64_t StateSpace::encode(
    const std::vector<std::uint32_t>& coords) const {
  STOCDR_REQUIRE(coords.size() == dims_.size(),
                 "StateSpace::encode rank mismatch");
  std::uint64_t index = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    STOCDR_REQUIRE(coords[d] < dims_[d].size,
                   "StateSpace::encode coordinate out of range");
    index += stride_[d] * coords[d];
  }
  return index;
}

std::vector<std::uint32_t> StateSpace::decode(std::uint64_t index) const {
  STOCDR_REQUIRE(index < total_, "StateSpace::decode index out of range");
  std::vector<std::uint32_t> coords(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    coords[d] = static_cast<std::uint32_t>(index / stride_[d]);
    index %= stride_[d];
  }
  return coords;
}

std::uint32_t StateSpace::coordinate(std::uint64_t index,
                                     std::size_t dim) const {
  STOCDR_REQUIRE(index < total_ && dim < dims_.size(),
                 "StateSpace::coordinate out of range");
  return static_cast<std::uint32_t>((index / stride_[dim]) % dims_[dim].size);
}

std::string StateSpace::describe(std::uint64_t index) const {
  const auto coords = decode(index);
  std::ostringstream os;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (d != 0) os << ' ';
    os << dims_[d].name << '=' << coords[d];
  }
  return os.str();
}

}  // namespace stocdr::markov
