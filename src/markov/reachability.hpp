// Graph analyses on Markov chains: reachability and strongly connected
// components.
//
// Stationary analysis assumes an irreducible chain (the paper restricts the
// TPM to "the reachable state space of the MC").  These routines let the
// library verify irreducibility, restrict a chain to its recurrent class,
// and power the compositional model builder's reachable-set computation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "markov/chain.hpp"

namespace stocdr::markov {

/// States forward-reachable (in >= 0 steps) from the given seed set under
/// positive-probability transitions.  Returns a boolean mask.
[[nodiscard]] std::vector<bool> reachable_from(
    const MarkovChain& chain, const std::vector<std::size_t>& seeds);

/// Tarjan's strongly-connected-components decomposition of the transition
/// graph.  Returns the component id of every state; ids are assigned in
/// reverse topological order (a component only reaches components with
/// smaller or equal... strictly smaller ids are *not* guaranteed; treat ids
/// as opaque labels).  `num_components` receives the component count.
[[nodiscard]] std::vector<std::uint32_t> strongly_connected_components(
    const MarkovChain& chain, std::size_t& num_components);

/// True if the chain is irreducible (single strongly connected component).
[[nodiscard]] bool is_irreducible(const MarkovChain& chain);

/// Result of restricting a chain to a subset of its states.
struct RestrictedChain {
  sparse::CsrMatrix qt;                ///< Q^T: transposed sub-stochastic TPM
  std::vector<std::size_t> to_parent;  ///< restricted index -> parent index
  std::vector<std::int64_t> to_child;  ///< parent index -> restricted (-1 out)
};

/// Restricts the chain to the states with keep[i] == true, dropping all
/// transitions that enter or leave the kept set.  The result is generally
/// sub-stochastic: the mass of dropped transitions is the "leak" used by
/// first-passage analysis.
[[nodiscard]] RestrictedChain restrict_chain(const MarkovChain& chain,
                                             const std::vector<bool>& keep);

}  // namespace stocdr::markov
