// Discrete-time Markov chain over a finite state set.
//
// The chain is stored as the *transposed* transition probability matrix
// P^T in CSR (rows indexed by destination state); see DESIGN.md section 2
// for why one orientation serves both the stationary iteration x <- P^T x
// and the first-passage iteration t <- 1 + Q t.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace stocdr::markov {

/// Validation applied when constructing a MarkovChain.
enum class Validation {
  kStrict,   ///< require row-stochasticity to 1e-10 and nonnegative entries
  kNone,     ///< trust the caller (used for sub-stochastic restricted chains)
};

/// A finite discrete-time Markov chain.
class MarkovChain {
 public:
  /// Constructs from P^T (rows are destination states).
  /// With Validation::kStrict, verifies every entry is in [0, 1+eps] and the
  /// outgoing probability of every state sums to 1 within 1e-10.
  explicit MarkovChain(sparse::CsrMatrix p_transposed,
                       Validation validation = Validation::kStrict);

  /// Constructs from P in the conventional row-stochastic orientation
  /// (rows are source states).  Transposes internally.
  [[nodiscard]] static MarkovChain from_row_stochastic(
      const sparse::CsrMatrix& p, Validation validation = Validation::kStrict);

  /// Number of states.
  [[nodiscard]] std::size_t num_states() const { return pt_.rows(); }

  /// Number of stored transitions.
  [[nodiscard]] std::size_t num_transitions() const { return pt_.nnz(); }

  /// The stored P^T matrix.
  [[nodiscard]] const sparse::CsrMatrix& pt() const { return pt_; }

  /// Materializes P (rows are source states).  Fresh storage; O(nnz).
  [[nodiscard]] sparse::CsrMatrix to_row_stochastic() const {
    return pt_.transpose();
  }

  /// One distribution step: y = P^T x.
  void step(std::span<const double> x, std::span<double> y) const {
    pt_.multiply(x, y);
  }

  /// One backward step: y = P x (used by expectation recursions).
  void step_backward(std::span<const double> x, std::span<double> y) const {
    pt_.multiply_transpose(x, y);
  }

  /// Transition probability p(src -> dst).
  [[nodiscard]] double probability(std::size_t src, std::size_t dst) const {
    return pt_.at(dst, src);
  }

  /// Uniform distribution over all states.
  [[nodiscard]] std::vector<double> uniform_distribution() const;

  /// Maximum deviation of any state's outgoing probability mass from 1.
  [[nodiscard]] double stochasticity_defect() const;

  /// Heap bytes held by the stored P^T arrays (see
  /// CsrMatrix::footprint_bytes).
  [[nodiscard]] std::size_t footprint_bytes() const {
    return pt_.footprint_bytes();
  }

 private:
  sparse::CsrMatrix pt_;
};

}  // namespace stocdr::markov
