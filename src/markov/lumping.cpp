#include "markov/lumping.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "obs/health/health.hpp"
#include "obs/prof/roofline.hpp"
#include "parallel/pool.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::markov {

Partition::Partition(std::vector<std::uint32_t> group_of)
    : group_of_(std::move(group_of)) {
  STOCDR_REQUIRE(!group_of_.empty(), "Partition must cover at least one state");
  std::uint32_t max_group = 0;
  for (const std::uint32_t g : group_of_) max_group = std::max(max_group, g);
  num_groups_ = static_cast<std::size_t>(max_group) + 1;
  // Verify the group ids are gap-free.
  std::vector<bool> present(num_groups_, false);
  for (const std::uint32_t g : group_of_) present[g] = true;
  for (std::size_t g = 0; g < num_groups_; ++g) {
    STOCDR_REQUIRE(present[g], "Partition group ids must be gap-free");
  }
}

Partition Partition::identity(std::size_t n) {
  std::vector<std::uint32_t> g(n);
  for (std::size_t i = 0; i < n; ++i) g[i] = static_cast<std::uint32_t>(i);
  return Partition(std::move(g));
}

Partition Partition::pairs(std::size_t n) {
  STOCDR_REQUIRE(n >= 1, "Partition::pairs requires n >= 1");
  std::vector<std::uint32_t> g(n);
  for (std::size_t i = 0; i < n; ++i) g[i] = static_cast<std::uint32_t>(i / 2);
  return Partition(std::move(g));
}

std::vector<std::size_t> Partition::group_sizes() const {
  std::vector<std::size_t> sizes(num_groups_, 0);
  for (const std::uint32_t g : group_of_) sizes[g]++;
  return sizes;
}

Partition Partition::compose(const Partition& coarser) const {
  STOCDR_REQUIRE(coarser.num_states() == num_groups_,
                 "Partition::compose: coarser partition must cover the groups");
  std::vector<std::uint32_t> g(group_of_.size());
  for (std::size_t i = 0; i < group_of_.size(); ++i) {
    g[i] = coarser.group(group_of_[i]);
  }
  return Partition(std::move(g));
}

bool is_exactly_lumpable(const sparse::CsrMatrix& pt,
                         const Partition& partition, double tol) {
  const std::size_t n = pt.rows();
  STOCDR_REQUIRE(partition.num_states() == n,
                 "is_exactly_lumpable: partition size mismatch");
  // Compute, for each source state, its aggregated outgoing distribution
  // over groups; all states of one group must agree.  We need rows of P,
  // i.e. columns of pt, so accumulate per (source, dest-group).
  std::vector<std::unordered_map<std::uint32_t, double>> agg(n);
  pt.for_each([&](std::size_t dst, std::size_t src, double v) {
    agg[src][partition.group(dst)] += v;
  });
  // Representative per group: the first state encountered.
  std::vector<std::int64_t> rep(partition.num_groups(), -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t g = partition.group(i);
    if (rep[g] < 0) {
      rep[g] = static_cast<std::int64_t>(i);
      continue;
    }
    const auto& a = agg[static_cast<std::size_t>(rep[g])];
    const auto& b = agg[i];
    // Symmetric comparison over the union of keys.
    for (const auto& [gj, pa] : a) {
      const auto it = b.find(gj);
      const double pb = (it == b.end()) ? 0.0 : it->second;
      if (std::abs(pa - pb) > tol) return false;
    }
    for (const auto& [gj, pb] : b) {
      if (a.find(gj) == a.end() && std::abs(pb) > tol) return false;
    }
  }
  return true;
}

sparse::CsrMatrix lump_exact(const sparse::CsrMatrix& pt,
                             const Partition& partition) {
  const std::size_t n = pt.rows();
  STOCDR_REQUIRE(partition.num_states() == n,
                 "lump_exact: partition size mismatch");
  const std::size_t m = partition.num_groups();
  // Use the first state of each group as the representative row of P.
  std::vector<std::int64_t> rep(m, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t g = partition.group(i);
    if (rep[g] < 0) rep[g] = static_cast<std::int64_t>(i);
  }
  sparse::CooBuilder builder(m, m);
  pt.for_each([&](std::size_t dst, std::size_t src, double v) {
    const std::uint32_t gs = partition.group(src);
    if (rep[gs] == static_cast<std::int64_t>(src)) {
      builder.add(partition.group(dst), gs, v);
    }
  });
  return builder.to_csr();
}

sparse::CsrMatrix aggregate_transposed(const sparse::CsrMatrix& pt,
                                       const Partition& partition,
                                       std::span<const double> weights) {
  const std::size_t n = pt.rows();
  STOCDR_REQUIRE(partition.num_states() == n,
                 "aggregate_transposed: partition size mismatch");
  STOCDR_REQUIRE(weights.size() == n,
                 "aggregate_transposed: weights size mismatch");
  const std::size_t m = partition.num_groups();

  // Normalized within-group weights: w_i / W_I (uniform for massless groups).
  std::vector<double> group_mass(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    STOCDR_REQUIRE(weights[i] >= 0.0,
                   "aggregate_transposed: weights must be nonnegative");
    group_mass[partition.group(i)] += weights[i];
  }
  const auto sizes = partition.group_sizes();
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t g = partition.group(i);
    scaled[i] = group_mass[g] > 0.0
                    ? weights[i] / group_mass[g]
                    : 1.0 / static_cast<double>(sizes[g]);
  }

  sparse::CooBuilder builder(m, m);
  builder.reserve(pt.nnz());
  pt.for_each([&](std::size_t dst, std::size_t src, double v) {
    builder.add(partition.group(dst), partition.group(src), v * scaled[src]);
  });
  return builder.to_csr();
}

AggregationPlan::AggregationPlan(const sparse::CsrMatrix& pt,
                                 const Partition& partition)
    : partition_(partition), fine_nnz_(pt.nnz()) {
  STOCDR_REQUIRE(partition.num_states() == pt.rows(),
                 "AggregationPlan: partition size mismatch");
  // Quotient pattern from the fine *structure* alone: every stored entry
  // contributes, including explicit zeros (tail probabilities underflow to
  // exact zero on stiff chains, and coarse matrices produced by a plan keep
  // such slots — the pattern must remain a superset across cycles).
  const std::size_t m = partition.num_groups();
  sparse::CooBuilder pattern_builder(m, m);
  pattern_builder.reserve(pt.nnz());
  pt.for_each([&](std::size_t dst, std::size_t src, double) {
    pattern_builder.add(partition_.group(dst), partition_.group(src), 1.0);
  });
  const sparse::CsrMatrix pattern = pattern_builder.to_csr();
  coarse_ptr_.assign(pattern.row_ptr().begin(), pattern.row_ptr().end());
  coarse_cols_.assign(pattern.col_idx().begin(), pattern.col_idx().end());

  // Slot of each fine entry: binary search its (coarse row, coarse col) in
  // the quotient pattern.
  slot_.resize(fine_nnz_);
  std::size_t k = 0;
  pt.for_each([&](std::size_t dst, std::size_t src, double) {
    const std::uint32_t gd = partition_.group(dst);
    const std::uint32_t gs = partition_.group(src);
    const auto begin = coarse_cols_.begin() + coarse_ptr_[gd];
    const auto end = coarse_cols_.begin() + coarse_ptr_[gd + 1];
    const auto it = std::lower_bound(begin, end, gs);
    STOCDR_ASSERT(it != end && *it == gs);
    slot_[k++] = static_cast<std::uint32_t>(it - coarse_cols_.begin());
  });
}

sparse::CsrMatrix AggregationPlan::aggregate(
    const sparse::CsrMatrix& pt, std::span<const double> weights) const {
  STOCDR_REQUIRE(pt.nnz() == fine_nnz_ &&
                     pt.rows() == partition_.num_states(),
                 "AggregationPlan::aggregate: matrix does not match the plan");
  STOCDR_REQUIRE(weights.size() == partition_.num_states(),
                 "AggregationPlan::aggregate: weights size mismatch");
  const std::size_t m = partition_.num_groups();

  std::vector<double> group_mass(m, 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    group_mass[partition_.group(i)] += weights[i];
  }
  const auto sizes = partition_.group_sizes();
  std::vector<double> scaled(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const std::uint32_t g = partition_.group(i);
    scaled[i] = group_mass[g] > 0.0
                    ? weights[i] / group_mass[g]
                    : 1.0 / static_cast<double>(sizes[g]);
  }

  // Accumulation pass over the fine entries, iterated directly off the CSR
  // arrays (the per-entry std::function dispatch of for_each would dominate
  // this hot loop).  Parallel lanes split the fine rows on nnz-balanced
  // boundaries and scatter into per-lane partial value arrays, merged in
  // ascending lane order; a single lane reproduces the serial accumulation
  // order exactly.
  const auto row_ptr = pt.row_ptr();
  const auto col_idx = pt.col_idx();
  const auto fine_values = pt.values();
  std::vector<double> values(coarse_cols_.size(), 0.0);
  const auto accumulate = [&](std::size_t row_begin, std::size_t row_end,
                              double* out) {
    for (std::size_t dst = row_begin; dst < row_end; ++dst) {
      for (std::size_t k = row_ptr[dst]; k < row_ptr[dst + 1]; ++k) {
        out[slot_[k]] += fine_values[k] * scaled[col_idx[k]];
      }
    }
  };
  const std::size_t lanes = par::lanes_for(fine_nnz_);
  if (lanes <= 1) {
    accumulate(0, pt.rows(), values.data());
  } else {
    const auto bounds = par::balanced_boundaries(row_ptr, lanes);
    std::vector<double> partials(lanes * values.size(), 0.0);
    par::run_lanes(lanes, [&](std::size_t lane) {
      accumulate(bounds[lane], bounds[lane + 1],
                 partials.data() + lane * values.size());
    });
    par::parallel_for(values.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        double acc = 0.0;
        for (std::size_t t = 0; t < lanes; ++t) {
          acc += partials[t * values.size() + s];
        }
        values[s] = acc;
      }
    });
  }
  sparse::CsrMatrix coarse(m, m, coarse_ptr_, coarse_cols_,
                           std::move(values));
  // Health shadow audit: the aggregated matrix of a stochastic chain must
  // itself be (column-, in this transposed orientation) stochastic; drift
  // beyond rounding means the weighted aggregation is losing probability.
  static std::atomic<std::uint64_t> drift_site{0};
  if (obs::health::should_sample(drift_site)) {
    double defect = 0.0;
    for (const double sum : coarse.col_sums()) {
      defect = std::max(defect, std::abs(sum - 1.0));
    }
    obs::health::record_stochasticity_drift(defect);
  }
  return coarse;
}

std::vector<double> restrict_sum(const Partition& partition,
                                 std::span<const double> x) {
  STOCDR_REQUIRE(x.size() == partition.num_states(),
                 "restrict_sum: vector size mismatch");
  const obs::prof::KernelScope roofline(
      "mg_restrict",
      obs::prof::aggregation_bytes(x.size(), partition.num_groups()),
      obs::prof::aggregation_flops(x.size()));
  std::vector<double> coarse(partition.num_groups(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    coarse[partition.group(i)] += x[i];
  }
  // Health shadow audit: restriction is a regrouped sum, so total mass is
  // conserved up to rounding — a larger defect means x carries non-finite
  // entries or the accumulation went wrong.
  static std::atomic<std::uint64_t> lump_site{0};
  if (obs::health::should_sample(lump_site)) {
    obs::health::audit_mass("lump", kahan_sum(x),
                            kahan_sum({coarse.data(), coarse.size()}));
  }
  return coarse;
}

void disaggregate(const Partition& partition, std::span<const double> coarse,
                  std::span<double> x) {
  STOCDR_REQUIRE(coarse.size() == partition.num_groups(),
                 "disaggregate: coarse size mismatch");
  STOCDR_REQUIRE(x.size() == partition.num_states(),
                 "disaggregate: fine size mismatch");
  const obs::prof::KernelScope roofline(
      "mg_disaggregate",
      obs::prof::aggregation_bytes(x.size(), coarse.size()),
      obs::prof::aggregation_flops(x.size()));
  const auto mass = restrict_sum(partition, {x.data(), x.size()});
  const auto sizes = partition.group_sizes();
  par::parallel_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t g = partition.group(i);
      if (mass[g] > 0.0) {
        x[i] *= coarse[g] / mass[g];
      } else {
        x[i] = coarse[g] / static_cast<double>(sizes[g]);
      }
    }
  });
  // Health shadow audit: prolongation redistributes each group's coarse
  // mass across its fine states, conserving the total; and a nonnegative
  // coarse vector must expand to a nonnegative fine vector.
  static std::atomic<std::uint64_t> expand_site{0};
  if (obs::health::should_sample(expand_site)) {
    obs::health::audit_mass("expand", kahan_sum(coarse),
                            kahan_sum({x.data(), x.size()}));
    obs::health::audit_nonnegativity("expand", {x.data(), x.size()});
  }
}

}  // namespace stocdr::markov
