#include "fsm/graphviz.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/text.hpp"

namespace stocdr::fsm {

std::string network_to_dot(const Network& network) {
  std::ostringstream os;
  os << "digraph fsm_network {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t c = 0; c < network.num_components(); ++c) {
    const Component& comp = network.component(c);
    os << "  c" << c << " [label=\"" << comp.name() << "\\n"
       << comp.num_states() << " states, "
       << (comp.is_moore() ? "Moore" : "Mealy") << "\"];\n";
  }
  // Wires: reconstructed through the public interface by probing every
  // consumer port is not possible; the Network exposes wiring to friends
  // only, so we render edges via the validate()-checked structure exposed
  // through wiring_for_dot().
  network.for_each_wire([&os](PortRef from, std::size_t consumer,
                              std::size_t port) {
    os << "  c" << from.component << " -> c" << consumer << " [label=\"out"
       << from.port << "->in" << port << "\"];\n";
  });
  os << "}\n";
  return os.str();
}

std::string chain_to_dot(const markov::MarkovChain& chain,
                         std::size_t max_states) {
  STOCDR_REQUIRE(chain.num_states() <= max_states,
                 "chain_to_dot: chain too large for a readable layout");
  std::ostringstream os;
  os << "digraph markov_chain {\n"
     << "  node [shape=circle, fontname=\"monospace\"];\n";
  for (std::size_t i = 0; i < chain.num_states(); ++i) {
    os << "  s" << i << ";\n";
  }
  chain.pt().for_each([&os](std::size_t dst, std::size_t src, double p) {
    os << "  s" << src << " -> s" << dst << " [label=\"" << fixed(p, 3)
       << "\"];\n";
  });
  os << "}\n";
  return os.str();
}

}  // namespace stocdr::fsm
