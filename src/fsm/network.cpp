#include "fsm/network.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::fsm {

ComposedChain::ComposedChain(markov::StateSpace space,
                             std::vector<std::uint64_t> states,
                             markov::MarkovChain chain)
    : space_(std::move(space)),
      full_index_of_(std::move(states)),
      chain_(std::move(chain)) {
  STOCDR_REQUIRE(full_index_of_.size() == chain_.num_states(),
                 "ComposedChain: state list does not match the chain");
  dense_index_of_.reserve(full_index_of_.size());
  for (std::size_t i = 0; i < full_index_of_.size(); ++i) {
    dense_index_of_.emplace(full_index_of_[i], i);
  }
}

std::optional<std::size_t> ComposedChain::dense_index(
    std::uint64_t full) const {
  const auto it = dense_index_of_.find(full);
  if (it == dense_index_of_.end()) return std::nullopt;
  return it->second;
}

std::size_t Network::add_component(std::unique_ptr<Component> component) {
  STOCDR_REQUIRE(component != nullptr, "add_component: null component");
  components_.push_back(std::move(component));
  wiring_.emplace_back(components_.back()->num_input_ports());
  return components_.size() - 1;
}

void Network::connect(PortRef output, std::size_t consumer,
                      std::size_t input_port) {
  STOCDR_REQUIRE(output.component < components_.size(),
                 "connect: producer component out of range");
  STOCDR_REQUIRE(output.port <
                     components_[output.component]->num_output_ports(),
                 "connect: producer port out of range");
  STOCDR_REQUIRE(consumer < components_.size(),
                 "connect: consumer component out of range");
  STOCDR_REQUIRE(input_port < wiring_[consumer].size(),
                 "connect: consumer port out of range");
  STOCDR_REQUIRE(!wiring_[consumer][input_port].has_value(),
                 "connect: input port already wired");
  wiring_[consumer][input_port] = output;
}

const Component& Network::component(std::size_t i) const {
  STOCDR_REQUIRE(i < components_.size(), "component index out of range");
  return *components_[i];
}

std::size_t Network::component_index(const std::string& name) const {
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i]->name() == name) return i;
  }
  throw PreconditionError("Network: no component named '" + name + "'");
}

void Network::validate() const { (void)make_schedule(); }

Network::Schedule Network::make_schedule() const {
  STOCDR_REQUIRE(!components_.empty(), "Network has no components");
  const std::size_t n = components_.size();

  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t p = 0; p < wiring_[c].size(); ++p) {
      if (!wiring_[c][p].has_value()) {
        throw PreconditionError("Network: input port " + std::to_string(p) +
                                " of component '" + components_[c]->name() +
                                "' is unwired");
      }
    }
  }

  // Combinational dependency: consumer must be evaluated after each of its
  // *Mealy* producers (Moore outputs are available before the cycle's
  // branch draws).  Kahn's algorithm; a leftover node means a cycle.
  std::vector<std::vector<std::size_t>> successors(n);
  std::vector<std::size_t> in_degree(n, 0);
  for (std::size_t c = 0; c < n; ++c) {
    for (const auto& src : wiring_[c]) {
      const std::size_t producer = src->component;
      if (!components_[producer]->is_moore() && producer != c) {
        successors[producer].push_back(c);
        in_degree[c]++;
      }
      if (producer == c && !components_[c]->is_moore()) {
        throw PreconditionError(
            "Network: combinational self-loop at component '" +
            components_[c]->name() + "' (make it Moore)");
      }
    }
  }
  Schedule schedule;
  std::deque<std::size_t> ready;
  for (std::size_t c = 0; c < n; ++c) {
    if (in_degree[c] == 0) ready.push_back(c);
  }
  while (!ready.empty()) {
    const std::size_t c = ready.front();
    ready.pop_front();
    schedule.order.push_back(c);
    for (const std::size_t succ : successors[c]) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  if (schedule.order.size() != n) {
    throw PreconditionError(
        "Network: combinational cycle through Mealy outputs; insert a Moore "
        "component to break the loop");
  }

  schedule.out_offset.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    schedule.out_offset[c] = schedule.total_outputs;
    schedule.total_outputs += components_[c]->num_output_ports();
  }
  return schedule;
}

void Network::for_each_wire(
    FunctionRef<void(PortRef, std::size_t, std::size_t)> f) const {
  for (std::size_t c = 0; c < wiring_.size(); ++c) {
    for (std::size_t p = 0; p < wiring_[c].size(); ++p) {
      if (wiring_[c][p].has_value()) f(*wiring_[c][p], c, p);
    }
  }
}

std::vector<std::uint32_t> Network::initial_states() const {
  std::vector<std::uint32_t> init(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    init[c] = components_[c]->initial_state();
    STOCDR_REQUIRE(init[c] < components_[c]->num_states(),
                   "initial state out of range for component '" +
                       components_[c]->name() + "'");
  }
  return init;
}

namespace {

/// Shared context for one composite-state expansion: walks the evaluation
/// order, multiplying branch probabilities and propagating output values.
class Expander {
 public:
  Expander(const std::vector<std::unique_ptr<Component>>& components,
           const std::vector<std::vector<std::optional<PortRef>>>& wiring,
           const std::vector<std::size_t>& order,
           const std::vector<std::size_t>& out_offset,
           std::size_t total_outputs)
      : components_(components),
        wiring_(wiring),
        order_(order),
        out_offset_(out_offset),
        out_values_(total_outputs, 0),
        next_states_(components.size(), 0),
        input_buffer_(32, 0) {}

  /// Enumerates all joint branches from the composite state `coords`,
  /// calling leaf(probability, next_coords) for each.
  void expand(
      std::span<const std::uint32_t> coords,
      FunctionRef<void(double, std::span<const std::uint32_t>)> leaf) {
    // Pre-compute all Moore outputs: they depend only on current states.
    for (std::size_t c = 0; c < components_.size(); ++c) {
      const Component& comp = *components_[c];
      if (comp.is_moore()) {
        comp.moore_outputs(coords[c],
                           std::span<std::uint32_t>(
                               out_values_.data() + out_offset_[c],
                               comp.num_output_ports()));
      }
    }
    recurse(0, 1.0, coords, leaf);
  }

 private:
  void recurse(std::size_t k, double probability,
               std::span<const std::uint32_t> coords,
               FunctionRef<void(double, std::span<const std::uint32_t>)> leaf) {
    if (k == order_.size()) {
      leaf(probability, next_states_);
      return;
    }
    const std::size_t c = order_[k];
    const Component& comp = *components_[c];

    // Gather this component's input port values from the wiring.
    const auto& wires = wiring_[c];
    if (input_buffer_.size() < wires.size()) {
      input_buffer_.resize(wires.size());
    }
    for (std::size_t p = 0; p < wires.size(); ++p) {
      const PortRef src = *wires[p];
      input_buffer_[p] = out_values_[out_offset_[src.component] + src.port];
    }
    const std::span<const std::uint32_t> inputs(input_buffer_.data(),
                                                wires.size());
    // Inputs must be copied out before recursing: deeper levels reuse the
    // shared buffer.
    std::uint32_t local_inputs[16];
    STOCDR_ASSERT(wires.size() <= 16);
    std::copy(inputs.begin(), inputs.end(), local_inputs);
    const std::span<const std::uint32_t> stable_inputs(local_inputs,
                                                       wires.size());

    const bool moore = comp.is_moore();
    const std::size_t off = out_offset_[c];
    auto sink = [&](double p, std::span<const std::uint32_t> outs,
                    std::uint32_t next) {
      if (!moore) {
        STOCDR_ASSERT(outs.size() == comp.num_output_ports());
        std::copy(outs.begin(), outs.end(), out_values_.begin() + off);
      }
      next_states_[c] = next;
      recurse(k + 1, probability * p, coords, leaf);
    };
    comp.enumerate(coords[c], stable_inputs, sink);
  }

  const std::vector<std::unique_ptr<Component>>& components_;
  const std::vector<std::vector<std::optional<PortRef>>>& wiring_;
  const std::vector<std::size_t>& order_;
  const std::vector<std::size_t>& out_offset_;
  std::vector<std::uint32_t> out_values_;
  std::vector<std::uint32_t> next_states_;
  std::vector<std::uint32_t> input_buffer_;
};

}  // namespace

ComposedChain Network::compose(const ComposeOptions& options) const {
  const Schedule schedule = make_schedule();

  std::vector<markov::Dimension> dims;
  dims.reserve(components_.size());
  for (const auto& comp : components_) {
    dims.push_back({comp->name(), comp->num_states()});
  }
  markov::StateSpace space(std::move(dims));

  // BFS over reachable composite states.
  std::unordered_map<std::uint64_t, std::uint32_t> dense_of;
  std::vector<std::uint64_t> full_of;
  std::vector<sparse::Triplet> triplets;
  std::deque<std::uint32_t> frontier;

  const auto intern = [&](std::uint64_t full) -> std::uint32_t {
    const auto [it, inserted] =
        dense_of.try_emplace(full, static_cast<std::uint32_t>(full_of.size()));
    if (inserted) {
      full_of.push_back(full);
      frontier.push_back(it->second);
      if (full_of.size() > options.max_states) {
        throw PreconditionError(
            "Network::compose: reachable state set exceeds max_states (" +
            std::to_string(options.max_states) + ")");
      }
    }
    return it->second;
  };

  intern(space.encode(initial_states()));
  Expander expander(components_, wiring_, schedule.order, schedule.out_offset,
                    schedule.total_outputs);

  while (!frontier.empty()) {
    const std::uint32_t src = frontier.front();
    frontier.pop_front();
    const auto coords = space.decode(full_of[src]);
    double total = 0.0;
    auto leaf = [&](double p, std::span<const std::uint32_t> next_coords) {
      total += p;
      if (p <= options.drop_tolerance) return;
      std::vector<std::uint32_t> next(next_coords.begin(), next_coords.end());
      const std::uint32_t dst = intern(space.encode(next));
      // Stored orientation is P^T: row = destination, col = source.
      triplets.push_back({dst, src, p});
    };
    expander.expand(coords, leaf);
    if (std::abs(total - 1.0) > options.probability_tolerance) {
      throw PreconditionError(
          "Network::compose: branch probabilities of state [" +
          space.describe(full_of[src]) + "] sum to " + std::to_string(total));
    }
  }

  const std::size_t n = full_of.size();
  sparse::CooBuilder builder(n, n);
  builder.reserve(triplets.size());
  for (const sparse::Triplet& t : triplets) {
    builder.add(t.row, t.col, t.value);
  }
  // Renormalization guard: drop_tolerance may have removed a tiny amount of
  // probability mass; fold it back proportionally per source state.
  sparse::CsrMatrix pt = builder.to_csr();
  if (options.drop_tolerance > 0.0) {
    std::vector<double> mass = pt.col_sums();
    std::vector<double> values(pt.values().begin(), pt.values().end());
    std::vector<std::uint32_t> cols(pt.col_idx().begin(), pt.col_idx().end());
    std::vector<std::uint32_t> ptr(pt.row_ptr().begin(), pt.row_ptr().end());
    for (std::size_t k = 0; k < values.size(); ++k) {
      values[k] /= mass[cols[k]];
    }
    pt = sparse::CsrMatrix(n, n, std::move(ptr), std::move(cols),
                           std::move(values));
  }

  markov::MarkovChain chain(std::move(pt));
  return ComposedChain(std::move(space), std::move(full_of),
                       std::move(chain));
}

NetworkSimulator::NetworkSimulator(const Network& network)
    : network_(network), schedule_(network.make_schedule()) {
  states_ = network.initial_states();
  out_values_.assign(schedule_.total_outputs, 0);
  next_states_.assign(network_.components_.size(), 0);
  std::size_t max_inputs = 0;
  for (const auto& wires : network_.wiring_) {
    max_inputs = std::max(max_inputs, wires.size());
  }
  inputs_.assign(max_inputs, 0);
}

void NetworkSimulator::reset() { states_ = network_.initial_states(); }

void NetworkSimulator::set_states(std::span<const std::uint32_t> states) {
  STOCDR_REQUIRE(states.size() == states_.size(),
                 "set_states: state vector size mismatch");
  for (std::size_t c = 0; c < states.size(); ++c) {
    STOCDR_REQUIRE(states[c] < network_.components_[c]->num_states(),
                   "set_states: coordinate out of range");
  }
  std::copy(states.begin(), states.end(), states_.begin());
}

std::uint32_t NetworkSimulator::output(std::size_t component,
                                       std::size_t port) const {
  STOCDR_REQUIRE(component < network_.components_.size(),
                 "NetworkSimulator::output component out of range");
  STOCDR_REQUIRE(port < network_.components_[component]->num_output_ports(),
                 "NetworkSimulator::output port out of range");
  return out_values_[schedule_.out_offset[component] + port];
}

void NetworkSimulator::step(Rng& rng) {
  const auto& components = network_.components_;
  for (std::size_t c = 0; c < components.size(); ++c) {
    const Component& comp = *components[c];
    if (comp.is_moore()) {
      comp.moore_outputs(
          states_[c],
          std::span<std::uint32_t>(out_values_.data() +
                                       schedule_.out_offset[c],
                                   comp.num_output_ports()));
    }
  }

  for (const std::size_t c : schedule_.order) {
    const Component& comp = *components[c];
    const auto& wires = network_.wiring_[c];
    for (std::size_t p = 0; p < wires.size(); ++p) {
      const PortRef src = *wires[p];
      inputs_[p] = out_values_[schedule_.out_offset[src.component] + src.port];
    }
    const std::span<const std::uint32_t> inputs(inputs_.data(), wires.size());

    // Inverse-CDF sampling over the enumerated branches.  Rounding can
    // leave u marginally above the final cumulative sum; the last branch
    // visited then wins (last_* track it).
    const double u = rng.uniform();
    double cum = 0.0;
    bool chosen = false;
    const std::size_t off = schedule_.out_offset[c];
    auto sink = [&](double p, std::span<const std::uint32_t> outs,
                    std::uint32_t next) {
      if (chosen) return;
      cum += p;
      if (!comp.is_moore() && !outs.empty()) {
        std::copy(outs.begin(), outs.end(), out_values_.begin() + off);
      }
      next_states_[c] = next;
      if (u < cum) chosen = true;
    };
    comp.enumerate(states_[c], inputs, sink);
  }
  std::copy(next_states_.begin(), next_states_.end(), states_.begin());
}

}  // namespace stocdr::fsm
