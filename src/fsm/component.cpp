#include "fsm/component.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::fsm {

void Component::moore_outputs(std::uint32_t /*state*/,
                              std::span<std::uint32_t> /*outputs*/) const {
  throw InternalError("moore_outputs called on a non-Moore component: " +
                      name());
}

void DeterministicComponent::outputs(std::uint32_t /*state*/,
                                     std::span<const std::uint32_t> /*inputs*/,
                                     std::span<std::uint32_t> out) const {
  STOCDR_REQUIRE(out.empty(),
                 "DeterministicComponent with output ports must override "
                 "outputs(): " +
                     name());
}

void DeterministicComponent::enumerate(std::uint32_t state,
                                       std::span<const std::uint32_t> inputs,
                                       BranchSink sink) const {
  // Moore components publish their outputs via moore_outputs(); the
  // per-branch outputs are ignored for them, so none are computed here.
  if (is_moore()) {
    sink(1.0, {}, next_state(state, inputs));
    return;
  }
  std::uint32_t out_buf[8];
  const std::size_t nout = num_output_ports();
  STOCDR_ASSERT(nout <= 8);
  std::span<std::uint32_t> out(out_buf, nout);
  outputs(state, inputs, out);
  sink(1.0, out, next_state(state, inputs));
}

IidSource::IidSource(std::string name, std::vector<double> pmf)
    : Component(std::move(name)), pmf_(std::move(pmf)) {
  STOCDR_REQUIRE(!pmf_.empty(), "IidSource requires a non-empty PMF");
  double sum = 0.0;
  for (const double p : pmf_) {
    STOCDR_REQUIRE(p >= 0.0, "IidSource PMF entries must be nonnegative");
    sum += p;
  }
  STOCDR_REQUIRE(std::abs(sum - 1.0) < 1e-9,
                 "IidSource PMF must sum to 1 (got " + std::to_string(sum) +
                     ")");
  for (double& p : pmf_) p /= sum;
}

void IidSource::enumerate(std::uint32_t /*state*/,
                          std::span<const std::uint32_t> /*inputs*/,
                          BranchSink sink) const {
  for (std::uint32_t v = 0; v < pmf_.size(); ++v) {
    if (pmf_[v] == 0.0) continue;
    const std::uint32_t out = v;
    sink(pmf_[v], std::span<const std::uint32_t>(&out, 1), 0);
  }
}

MarkovSource::MarkovSource(std::string name,
                           std::vector<std::vector<double>> rows,
                           std::uint32_t initial)
    : Component(std::move(name)), rows_(std::move(rows)), initial_(initial) {
  STOCDR_REQUIRE(!rows_.empty(), "MarkovSource requires at least one state");
  STOCDR_REQUIRE(initial_ < rows_.size(),
                 "MarkovSource initial state out of range");
  for (const auto& row : rows_) {
    STOCDR_REQUIRE(row.size() == rows_.size(),
                   "MarkovSource rows must be square");
    double sum = 0.0;
    for (const double p : row) {
      STOCDR_REQUIRE(p >= 0.0, "MarkovSource probabilities must be >= 0");
      sum += p;
    }
    STOCDR_REQUIRE(std::abs(sum - 1.0) < 1e-9,
                   "MarkovSource rows must sum to 1");
  }
}

void MarkovSource::moore_outputs(std::uint32_t state,
                                 std::span<std::uint32_t> outputs) const {
  STOCDR_ASSERT(outputs.size() == 1);
  outputs[0] = state;
}

void MarkovSource::enumerate(std::uint32_t state,
                             std::span<const std::uint32_t> /*inputs*/,
                             BranchSink sink) const {
  STOCDR_REQUIRE(state < rows_.size(), "MarkovSource state out of range");
  for (std::uint32_t j = 0; j < rows_.size(); ++j) {
    const double p = rows_[state][j];
    if (p == 0.0) continue;
    sink(p, {}, j);
  }
}

DelayLine::DelayLine(std::string name, std::size_t symbol_count,
                     std::size_t depth, std::uint32_t initial_symbol)
    : DeterministicComponent(std::move(name)),
      symbols_(symbol_count),
      depth_(depth) {
  STOCDR_REQUIRE(symbol_count >= 2, "DelayLine: need at least 2 symbols");
  STOCDR_REQUIRE(depth >= 1, "DelayLine: depth must be >= 1");
  STOCDR_REQUIRE(initial_symbol < symbol_count,
                 "DelayLine: initial symbol out of range");
  states_ = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    STOCDR_REQUIRE(states_ <= (1u << 24) / symbol_count,
                   "DelayLine: state space too large");
    states_ *= symbol_count;
  }
  // Initial state: the pipeline filled with initial_symbol.
  std::uint32_t init = 0;
  for (std::size_t d = 0; d < depth; ++d) {
    init = static_cast<std::uint32_t>(init * symbols_ + initial_symbol);
  }
  initial_ = init;
}

void DelayLine::moore_outputs(std::uint32_t state,
                              std::span<std::uint32_t> outputs) const {
  // The oldest symbol occupies the most significant digit.
  std::uint32_t value = state;
  for (std::size_t d = 1; d < depth_; ++d) value /= symbols_;
  outputs[0] = value % symbols_;
}

std::uint32_t DelayLine::next_state(
    std::uint32_t state, std::span<const std::uint32_t> inputs) const {
  STOCDR_REQUIRE(inputs[0] < symbols_, "DelayLine: input symbol out of range");
  // Shift in the new symbol at the least significant digit, dropping the
  // most significant one.
  std::uint64_t shifted = static_cast<std::uint64_t>(state) * symbols_ +
                          inputs[0];
  return static_cast<std::uint32_t>(shifted % states_);
}

}  // namespace stocdr::fsm
