// The FSM-with-stochastic-inputs component formalism.
//
// The paper models "the analyzed circuit ... as finite state machines with
// inputs described as functions on a Markov chain state-space" and notes the
// representation "can be generalized to networks of FSMs with stochastic
// inputs to describe various high-speed communication circuits".  This
// header is that formalism:
//
//   * A Component is a synchronous machine with a finite state set, input
//     ports, and output ports.  In each clock cycle it observes its input
//     port values and takes one of several *branches*, each with a
//     probability, an output-port assignment, and a next state.  A
//     deterministic machine is simply one branch with probability 1; a pure
//     noise source is a single-state machine whose branches carry the noise
//     PMF.
//
//   * Moore components additionally promise that their *outputs* depend only
//     on the current state (moore_outputs); their next state may still
//     depend on same-cycle inputs.  Moore outputs are what break the
//     combinational feedback loop of the CDR model (the phase-error state
//     feeds the phase detector, which feeds the counter, which feeds the
//     phase-error state).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/function_ref.hpp"

namespace stocdr::fsm {

/// Callback receiving one stochastic branch of a component:
/// (probability, output port values, next state).  The output span is only
/// valid during the call.
using BranchSink =
    FunctionRef<void(double, std::span<const std::uint32_t>, std::uint32_t)>;

/// A synchronous FSM component with probabilistic branches.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Number of states; state ids are 0 .. num_states()-1.
  [[nodiscard]] virtual std::size_t num_states() const = 0;

  /// State the machine starts in.
  [[nodiscard]] virtual std::uint32_t initial_state() const = 0;

  [[nodiscard]] virtual std::size_t num_input_ports() const = 0;
  [[nodiscard]] virtual std::size_t num_output_ports() const = 0;

  /// True if outputs are a function of the state alone (Moore machine).
  /// Moore components must implement moore_outputs(), and the outputs
  /// passed to BranchSink by enumerate() are ignored for them.
  [[nodiscard]] virtual bool is_moore() const { return false; }

  /// Moore output function; only called when is_moore() is true.
  /// Writes num_output_ports() values.
  virtual void moore_outputs(std::uint32_t state,
                             std::span<std::uint32_t> outputs) const;

  /// Enumerates every stochastic branch available from `state` under the
  /// given input port values.  Branch probabilities must be nonnegative and
  /// sum to 1 (the composer verifies the composite sum).  For Moore
  /// components the per-branch outputs are ignored; pass an empty span.
  virtual void enumerate(std::uint32_t state,
                         std::span<const std::uint32_t> inputs,
                         BranchSink sink) const = 0;

 private:
  std::string name_;
};

/// Convenience base for deterministic components: implement next_state() and
/// outputs(); enumerate() emits the single branch with probability 1.
class DeterministicComponent : public Component {
 public:
  using Component::Component;

  /// The (deterministic) transition function.
  [[nodiscard]] virtual std::uint32_t next_state(
      std::uint32_t state, std::span<const std::uint32_t> inputs) const = 0;

  /// The (deterministic, Mealy) output function.  Default writes nothing
  /// (for components with no output ports).
  virtual void outputs(std::uint32_t state,
                       std::span<const std::uint32_t> inputs,
                       std::span<std::uint32_t> out) const;

  void enumerate(std::uint32_t state, std::span<const std::uint32_t> inputs,
                 BranchSink sink) const final;
};

/// A single-state noise source emitting an i.i.d. symbol each cycle:
/// output value v with probability pmf[v].  This is how white
/// (uncorrelated-in-time) stochastic inputs such as the paper's n_w and n_r
/// enter a network.
class IidSource : public Component {
 public:
  /// pmf must be nonnegative and sum to 1 within 1e-9 (it is renormalized).
  IidSource(std::string name, std::vector<double> pmf);

  [[nodiscard]] std::size_t num_states() const override { return 1; }
  [[nodiscard]] std::uint32_t initial_state() const override { return 0; }
  [[nodiscard]] std::size_t num_input_ports() const override { return 0; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }

  void enumerate(std::uint32_t state, std::span<const std::uint32_t> inputs,
                 BranchSink sink) const override;

  [[nodiscard]] const std::vector<double>& pmf() const { return pmf_; }

 private:
  std::vector<double> pmf_;
};

/// A finite Markov chain wrapped as a component: its output is its current
/// state (Moore), and it moves to state j with probability row[state][j].
/// This is the "inputs described as functions on a Markov chain state-space"
/// building block in its most literal form.
class MarkovSource : public Component {
 public:
  /// rows[i] is the outgoing PMF of state i; all rows must have the same
  /// length as the number of states.
  MarkovSource(std::string name, std::vector<std::vector<double>> rows,
               std::uint32_t initial = 0);

  [[nodiscard]] std::size_t num_states() const override {
    return rows_.size();
  }
  [[nodiscard]] std::uint32_t initial_state() const override {
    return initial_;
  }
  [[nodiscard]] std::size_t num_input_ports() const override { return 0; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }
  [[nodiscard]] bool is_moore() const override { return true; }

  void moore_outputs(std::uint32_t state,
                     std::span<std::uint32_t> outputs) const override;

  void enumerate(std::uint32_t state, std::span<const std::uint32_t> inputs,
                 BranchSink sink) const override;

 private:
  std::vector<std::vector<double>> rows_;
  std::uint32_t initial_;
};

/// A shift register of `depth` D flip-flops over an alphabet of
/// `symbol_count` symbols: output = the input delayed by `depth` cycles
/// (the "Prev Data D" element of the paper's Figure 2, generalized).
/// Deterministic Mealy-free: the output depends only on the state.
class DelayLine final : public DeterministicComponent {
 public:
  DelayLine(std::string name, std::size_t symbol_count, std::size_t depth,
            std::uint32_t initial_symbol = 0);

  [[nodiscard]] std::size_t num_states() const override { return states_; }
  [[nodiscard]] std::uint32_t initial_state() const override {
    return initial_;
  }
  [[nodiscard]] std::size_t num_input_ports() const override { return 1; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }
  [[nodiscard]] bool is_moore() const override { return true; }

  void moore_outputs(std::uint32_t state,
                     std::span<std::uint32_t> outputs) const override;
  [[nodiscard]] std::uint32_t next_state(
      std::uint32_t state, std::span<const std::uint32_t> inputs) const override;

 private:
  std::size_t symbols_;
  std::size_t depth_;
  std::size_t states_;
  std::uint32_t initial_;
};

}  // namespace stocdr::fsm
