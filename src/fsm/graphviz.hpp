// Graphviz (dot) export of FSM networks and small Markov chains — the
// block-diagram view of a model (paper Figure 2) and the state graph of a
// chain, for documentation and debugging.
#pragma once

#include <cstddef>
#include <string>

#include "fsm/network.hpp"
#include "markov/chain.hpp"

namespace stocdr::fsm {

/// Renders the network's block diagram: one node per component (labelled
/// with its name, state count and Moore/Mealy kind), one edge per wire
/// (labelled "port i -> j").
[[nodiscard]] std::string network_to_dot(const Network& network);

/// Renders a Markov chain's transition graph with probabilities as edge
/// labels.  Refuses chains larger than `max_states` (dot layouts degrade
/// quickly); intended for component chains and toy examples.
[[nodiscard]] std::string chain_to_dot(const markov::MarkovChain& chain,
                                       std::size_t max_states = 64);

}  // namespace stocdr::fsm
