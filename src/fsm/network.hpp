// Networks of FSM components and their composition into a Markov chain.
//
// A Network wires component output ports to component input ports.  Its
// compose() method performs the paper's central modeling step: "It is shown
// that under these circumstances the entire system can be modeled by a
// larger Markov chain" whose state set is "the reachable state space of the
// MC, which is a subset of the Cartesian product" of the component state
// sets.  The transition probability matrix is assembled compositionally by
// enumerating, for every reachable composite state, the product of the
// component branch distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fsm/component.hpp"
#include "support/function_ref.hpp"
#include "markov/chain.hpp"
#include "markov/state_space.hpp"
#include "support/rng.hpp"

namespace stocdr::fsm {

/// Identifies an output port of a component in a network.
struct PortRef {
  std::size_t component;
  std::size_t port;
};

/// Options controlling composition.
struct ComposeOptions {
  /// Abort if the reachable state set exceeds this size.
  std::size_t max_states = 8'000'000;

  /// Tolerance on each composite state's total outgoing probability.
  double probability_tolerance = 1e-9;

  /// Entries with magnitude at or below this are dropped from the TPM.
  double drop_tolerance = 0.0;
};

/// The result of composing a network: the reachable-state Markov chain plus
/// the bookkeeping to map between dense chain states and component
/// coordinates.
class ComposedChain {
 public:
  ComposedChain(markov::StateSpace space, std::vector<std::uint64_t> states,
                markov::MarkovChain chain);

  /// The full Cartesian product space (one dimension per component).
  [[nodiscard]] const markov::StateSpace& space() const { return space_; }

  /// The chain over the reachable states only.
  [[nodiscard]] const markov::MarkovChain& chain() const { return chain_; }

  /// Number of reachable composite states.
  [[nodiscard]] std::size_t num_states() const {
    return full_index_of_.size();
  }

  /// Full-space index of a dense state.
  [[nodiscard]] std::uint64_t full_index(std::size_t dense) const {
    return full_index_of_[dense];
  }

  /// Dense index of a full-space index, if reachable.
  [[nodiscard]] std::optional<std::size_t> dense_index(
      std::uint64_t full) const;

  /// Coordinate (component state) of a dense state for component `dim`.
  [[nodiscard]] std::uint32_t coordinate(std::size_t dense,
                                         std::size_t dim) const {
    return space_.coordinate(full_index_of_[dense], dim);
  }

  /// All coordinates of a dense state.
  [[nodiscard]] std::vector<std::uint32_t> coordinates(
      std::size_t dense) const {
    return space_.decode(full_index_of_[dense]);
  }

  /// Human-readable description of a dense state.
  [[nodiscard]] std::string describe(std::size_t dense) const {
    return space_.describe(full_index_of_[dense]);
  }

 private:
  markov::StateSpace space_;
  std::vector<std::uint64_t> full_index_of_;
  std::unordered_map<std::uint64_t, std::size_t> dense_index_of_;
  markov::MarkovChain chain_;
};

/// A synchronous network of FSM components.
class Network {
 public:
  Network() = default;

  /// Adds a component; returns its index.  The network owns the component.
  std::size_t add_component(std::unique_ptr<Component> component);

  /// Wires `output` to input port `input_port` of component `consumer`.
  /// Every input port must be wired exactly once before composition.
  void connect(PortRef output, std::size_t consumer, std::size_t input_port);

  [[nodiscard]] std::size_t num_components() const {
    return components_.size();
  }
  [[nodiscard]] const Component& component(std::size_t i) const;

  /// Index of the component with the given name; throws if absent.
  [[nodiscard]] std::size_t component_index(const std::string& name) const;

  /// Verifies wiring completeness and the absence of combinational cycles
  /// (cycles through Mealy outputs); called automatically by compose() and
  /// simulate_step().  Throws PreconditionError on violations.
  void validate() const;

  /// Composite initial state, one coordinate per component.
  [[nodiscard]] std::vector<std::uint32_t> initial_states() const;

  /// Invokes f(producer_port, consumer, input_port) for every wired
  /// connection (unwired ports are skipped).
  void for_each_wire(
      FunctionRef<void(PortRef, std::size_t, std::size_t)> f) const;

  /// Builds the reachable-state Markov chain (see file comment).
  [[nodiscard]] ComposedChain compose(const ComposeOptions& options = {}) const;

 private:
  friend class NetworkSimulator;

  /// Topological evaluation order (Mealy-output dependencies only) and the
  /// flattened output-value layout.  Computed by validate().
  struct Schedule {
    std::vector<std::size_t> order;       ///< component evaluation order
    std::vector<std::size_t> out_offset;  ///< component -> first output slot
    std::size_t total_outputs = 0;
  };
  [[nodiscard]] Schedule make_schedule() const;

  std::vector<std::unique_ptr<Component>> components_;
  /// wiring_[c][p] = producer of input port p of component c.
  std::vector<std::vector<std::optional<PortRef>>> wiring_;
};

/// Step-by-step stochastic simulation of a network.
///
/// Samples one branch per component per clock cycle — by construction this
/// simulates exactly the process Network::compose() analyzes, which makes it
/// the cross-validation oracle for the analytic results (and the
/// "straightforward simulation" whose infeasibility at low BER the paper
/// argues).  The schedule and scratch buffers are cached, so step() does no
/// allocation.  The referenced Network must outlive the simulator and must
/// not be modified while it is in use.
class NetworkSimulator {
 public:
  explicit NetworkSimulator(const Network& network);

  /// Returns the composite state to each component's initial state.
  void reset();

  /// Advances one clock cycle using `rng` for every branch draw.
  void step(Rng& rng);

  /// Current component states (one coordinate per component).
  [[nodiscard]] std::span<const std::uint32_t> states() const {
    return states_;
  }

  /// Sets the composite state explicitly.
  void set_states(std::span<const std::uint32_t> states);

  /// Output-port value of the given component as of the last step()
  /// (Moore outputs reflect the *pre-step* state used during that cycle).
  [[nodiscard]] std::uint32_t output(std::size_t component,
                                     std::size_t port) const;

 private:
  const Network& network_;
  Network::Schedule schedule_;
  std::vector<std::uint32_t> states_;
  std::vector<std::uint32_t> out_values_;
  std::vector<std::uint32_t> next_states_;
  std::vector<std::uint32_t> inputs_;
};

}  // namespace stocdr::fsm
