#include "sim/confidence.hpp"

#include <cmath>

#include "support/error.hpp"

namespace stocdr::sim {

Proportion wilson_interval(std::uint64_t successes, std::uint64_t trials,
                           double z) {
  STOCDR_REQUIRE(trials > 0, "wilson_interval: trials must be positive");
  STOCDR_REQUIRE(successes <= trials,
                 "wilson_interval: successes exceed trials");
  STOCDR_REQUIRE(z > 0.0, "wilson_interval: z must be positive");
  Proportion p;
  p.successes = successes;
  p.trials = trials;
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  p.estimate = phat;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  p.lower = std::max(0.0, center - half);
  p.upper = std::min(1.0, center + half);
  return p;
}

double required_trials(double p, double rel_error) {
  STOCDR_REQUIRE(p > 0.0 && p < 1.0, "required_trials: p must be in (0, 1)");
  STOCDR_REQUIRE(rel_error > 0.0, "required_trials: rel_error must be > 0");
  // Var(phat) = p(1-p)/n; relative std error r = sqrt((1-p)/(p n)).
  return (1.0 - p) / (p * rel_error * rel_error);
}

}  // namespace stocdr::sim
