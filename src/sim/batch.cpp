#include "sim/batch.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace stocdr::sim {

BatchMeans batch_means(std::span<const double> samples,
                       std::size_t num_batches) {
  obs::Span span("sim.batch_means");
  if (span.active()) {
    span.attr("samples", samples.size());
    span.attr("batches", num_batches);
  }
  STOCDR_REQUIRE(num_batches >= 2, "batch_means: need at least 2 batches");
  STOCDR_REQUIRE(samples.size() >= num_batches,
                 "batch_means: fewer samples than batches");
  BatchMeans result;
  result.batch_size = samples.size() / num_batches;
  result.batches = num_batches;

  std::vector<double> means(num_batches, 0.0);
  for (std::size_t b = 0; b < num_batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < result.batch_size; ++i) {
      sum += samples[b * result.batch_size + i];
    }
    means[b] = sum / static_cast<double>(result.batch_size);
  }

  double grand = 0.0;
  for (const double m : means) grand += m;
  grand /= static_cast<double>(num_batches);
  result.mean = grand;

  double var = 0.0;
  for (const double m : means) var += (m - grand) * (m - grand);
  var /= static_cast<double>(num_batches - 1);
  result.std_error = std::sqrt(var / static_cast<double>(num_batches));

  // Lag-1 correlation of the batch means (diagnostic).
  if (var > 0.0) {
    double cov = 0.0;
    for (std::size_t b = 0; b + 1 < num_batches; ++b) {
      cov += (means[b] - grand) * (means[b + 1] - grand);
    }
    cov /= static_cast<double>(num_batches - 1);
    result.lag1_correlation = cov / var;
  }
  return result;
}

double effective_sample_size(std::size_t n, double tau) {
  STOCDR_REQUIRE(tau >= 1.0, "effective_sample_size: tau must be >= 1");
  return std::max(1.0, static_cast<double>(n) / tau);
}

}  // namespace stocdr::sim
