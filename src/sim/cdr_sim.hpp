// Direct Monte-Carlo simulation of the CDR loop — the baseline the paper's
// analysis replaces.
//
// The simulator advances exactly the stochastic process that
// CdrModel::build() compiles into a Markov chain (it drives the same
// fsm::Network), so at operating points where events are frequent enough to
// count, simulation and analysis must agree within confidence intervals —
// that is the cross-validation used throughout the test suite.  At the
// operating points that matter (BER ~ 1e-12) the simulator demonstrates the
// paper's point instead: it observes zero events in any feasible run.
#pragma once

#include <cstdint>
#include <vector>

#include "cdr/model.hpp"
#include "fsm/network.hpp"
#include "sim/confidence.hpp"
#include "support/rng.hpp"

namespace stocdr::sim {

/// Counters and histograms gathered over a simulation run.
struct CdrSimResult {
  std::uint64_t cycles = 0;       ///< measured cycles (after burn-in)
  std::uint64_t bit_errors = 0;   ///< |Phi + n_w| > 1/2 events
  std::uint64_t transitions = 0;  ///< data transitions observed
  std::uint64_t slips_up = 0;     ///< wraps across +1/2 UI
  std::uint64_t slips_down = 0;   ///< wraps across -1/2 UI

  /// Occupancy per phase-error grid cell, normalized to mass 1.
  std::vector<double> phase_occupancy;

  /// BER estimate with a Wilson 95% interval.
  [[nodiscard]] Proportion ber() const {
    return wilson_interval(bit_errors, cycles ? cycles : 1);
  }

  /// Slip-rate estimate (slips per cycle).
  [[nodiscard]] Proportion slip_rate() const {
    return wilson_interval(slips_up + slips_down, cycles ? cycles : 1);
  }
};

/// Monte-Carlo driver for a CdrModel.
class CdrSimulator {
 public:
  /// The model must outlive the simulator.
  CdrSimulator(const cdr::CdrModel& model, std::uint64_t seed);

  /// Runs `burn_in` unmeasured cycles followed by `cycles` measured ones.
  /// Can be called repeatedly; each call continues from the current state
  /// and returns statistics for its own measured window.
  [[nodiscard]] CdrSimResult run(std::uint64_t cycles,
                                 std::uint64_t burn_in = 0);

  /// Resets the network to its initial composite state.
  void reset();

 private:
  const cdr::CdrModel& model_;
  fsm::NetworkSimulator simulator_;
  Rng rng_;
};

}  // namespace stocdr::sim
