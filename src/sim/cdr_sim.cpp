#include "sim/cdr_sim.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::sim {

CdrSimulator::CdrSimulator(const cdr::CdrModel& model, std::uint64_t seed)
    : model_(model), simulator_(model.network()), rng_(seed) {}

void CdrSimulator::reset() { simulator_.reset(); }

CdrSimResult CdrSimulator::run(std::uint64_t cycles, std::uint64_t burn_in) {
  obs::Span span("sim.run");
  if (span.active()) {
    span.attr("cycles", cycles);
    span.attr("burn_in", burn_in);
  }
  static obs::Counter& cycle_counter =
      obs::MetricsRegistry::instance().counter("sim.cycles");
  cycle_counter.add(cycles + burn_in);
  const auto& cfg = model_.config();
  const cdr::PhaseGrid& grid = model_.grid();
  const std::size_t phase_comp = model_.phase_index();
  const std::size_t data_comp = model_.data_index();
  const auto half = static_cast<std::int64_t>(grid.size() / 2);
  const bool discretized =
      cfg.pd_noise_mode == cdr::PdNoiseMode::kDiscretized;

  for (std::uint64_t k = 0; k < burn_in; ++k) simulator_.step(rng_);

  CdrSimResult result;
  result.cycles = cycles;
  result.phase_occupancy.assign(grid.size(), 0.0);

  std::uint32_t prev_phase = simulator_.states()[phase_comp];
  const bool has_sj = model_.has_sj();
  const std::size_t sj_comp = has_sj ? model_.sj_index() : 0;
  for (std::uint64_t k = 0; k < cycles; ++k) {
    // Effective phase in effect during this bit (pre-update state),
    // including the sinusoidal-jitter offset when enabled.
    const std::uint32_t phase_idx = simulator_.states()[phase_comp];
    double phi = grid.value(phase_idx);
    if (has_sj) {
      phi += model_.sj_offsets_ui()[simulator_.states()[sj_comp]];
    }
    result.phase_occupancy[phase_idx] += 1.0;

    simulator_.step(rng_);

    // Bit-error check: |Phi + n_w| > 1/2 for this bit's n_w draw.  In the
    // discretized model the atom actually drawn by the network is reused;
    // in the exact model an independent draw is used — n_w is white, so the
    // marginal error probability is identical (see DESIGN.md).
    double nw;
    if (discretized) {
      const std::uint32_t atom =
          simulator_.output(model_.nw_source_index(), 0);
      nw = model_.nw_values()[atom];
    } else {
      nw = rng_.normal(0.0, cfg.sigma_nw);
    }
    if (std::abs(phi + nw) > 0.5) result.bit_errors++;
    if (simulator_.output(data_comp, 0) == 1) result.transitions++;

    // Slip detection: same index-distance rule as cdr::slip_stats.
    const std::uint32_t next_phase = simulator_.states()[phase_comp];
    const std::int64_t delta = static_cast<std::int64_t>(next_phase) -
                               static_cast<std::int64_t>(phase_idx);
    if (cfg.boundary == cdr::BoundaryMode::kWrap) {
      if (delta > half) result.slips_down++;
      if (delta < -half) result.slips_up++;
    }
    prev_phase = next_phase;
  }
  (void)prev_phase;

  if (cycles > 0) {
    for (double& v : result.phase_occupancy) {
      v /= static_cast<double>(cycles);
    }
  }
  return result;
}

}  // namespace stocdr::sim
