// Confidence intervals for Monte-Carlo event-rate estimates.
//
// The whole argument of the paper rests on how many trials a simulation
// needs before its BER estimate means anything; the Wilson score interval
// quantifies that (and unlike the normal approximation it behaves sanely
// when the observed count is zero — the typical outcome when simulating a
// 1e-12 BER for a feasible number of cycles).
#pragma once

#include <cstdint>

namespace stocdr::sim {

/// A binomial proportion estimate with a confidence interval.
struct Proportion {
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;
  double estimate = 0.0;  ///< successes / trials
  double lower = 0.0;     ///< Wilson lower bound
  double upper = 0.0;     ///< Wilson upper bound
};

/// Wilson score interval at the given z (1.96 ~ 95%, 2.576 ~ 99%).
[[nodiscard]] Proportion wilson_interval(std::uint64_t successes,
                                         std::uint64_t trials,
                                         double z = 1.96);

/// Number of trials needed before a Monte-Carlo estimate of an event of
/// probability p has relative standard error `rel_error` (the 1/(p r^2)
/// rule): the "extremely long sequence" the paper's introduction invokes.
[[nodiscard]] double required_trials(double p, double rel_error = 0.1);

}  // namespace stocdr::sim
