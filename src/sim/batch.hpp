// Batch-means analysis for correlated simulation output.
//
// The Wilson interval in confidence.hpp treats each bit as an independent
// trial, but CDR error events are correlated over the loop's memory
// (tens of bits — see analysis/eigen.hpp).  The method of batch means
// recovers honest error bars: split the run into contiguous batches much
// longer than the correlation time, treat batch averages as approximately
// independent, and report their spread.  The lag-1 batch correlation is
// returned as a diagnostic — if it is not small, the batches are too short.
#pragma once

#include <cstddef>
#include <span>

namespace stocdr::sim {

/// Result of a batch-means analysis.
struct BatchMeans {
  double mean = 0.0;        ///< grand mean of the samples
  double std_error = 0.0;   ///< standard error of the mean via batch spread
  std::size_t batches = 0;  ///< batches actually used
  std::size_t batch_size = 0;
  double lag1_correlation = 0.0;  ///< correlation of consecutive batch means

  [[nodiscard]] double lower(double z = 1.96) const {
    return mean - z * std_error;
  }
  [[nodiscard]] double upper(double z = 1.96) const {
    return mean + z * std_error;
  }
};

/// Computes batch means over `samples` using `num_batches` equal batches
/// (a partial trailing batch is dropped).  Requires at least 2 batches with
/// at least 1 sample each.
[[nodiscard]] BatchMeans batch_means(std::span<const double> samples,
                                     std::size_t num_batches = 32);

/// Effective sample size of a correlated sequence given its integrated
/// autocorrelation time tau: n / tau (bounded below by 1).
[[nodiscard]] double effective_sample_size(std::size_t n, double tau);

}  // namespace stocdr::sim
