#include "pdd/matrix.hpp"

#include <algorithm>
#include <utility>

#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::pdd {

namespace {

/// Interleaved bit index of (row, col): from the MSB down,
/// r_{k-1}, c_{k-1}, ..., r_0, c_0.
std::uint64_t interleave(std::uint64_t row, std::uint64_t col,
                         std::size_t k) {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < k; ++i) {
    key |= ((row >> i) & 1ull) << (2 * i + 1);
    key |= ((col >> i) & 1ull) << (2 * i);
  }
  return key;
}

/// Recursive sparse construction over a sorted (key, value) range.
NodeRef build_sorted(AddManager& manager,
                     std::span<const std::pair<std::uint64_t, double>> range,
                     std::size_t var, std::size_t num_vars) {
  if (range.empty()) return manager.zero();
  if (var == num_vars) {
    // All bits fixed: duplicates were merged by the caller.
    return manager.constant(range[0].second);
  }
  const std::uint64_t bit = 1ull << (num_vars - 1 - var);
  // The range is sorted and agrees on every bit above `bit`, so it is
  // partitioned by this bit: clear first, set second.
  const auto split = std::partition_point(
      range.begin(), range.end(),
      [bit](const std::pair<std::uint64_t, double>& entry) {
        return (entry.first & bit) == 0;
      });
  const auto mid = static_cast<std::size_t>(split - range.begin());
  const NodeRef low =
      build_sorted(manager, range.subspan(0, mid), var + 1, num_vars);
  const NodeRef high =
      build_sorted(manager, range.subspan(mid), var + 1, num_vars);
  return manager.make_node(var, low, high);
}

}  // namespace

AddMatrix::AddMatrix(AddManager& manager, std::size_t k, NodeRef root)
    : manager_(&manager), k_(k), root_(root) {
  STOCDR_REQUIRE(manager.num_vars() == 2 * k,
                 "AddMatrix: manager must have 2k variables");
}

AddMatrix AddMatrix::from_csr(AddManager& manager,
                              const sparse::CsrMatrix& matrix) {
  const std::size_t dim = std::max(matrix.rows(), matrix.cols());
  std::size_t k = 0;
  while ((1ull << k) < dim) ++k;
  k = std::max<std::size_t>(k, 1);
  STOCDR_REQUIRE(manager.num_vars() == 2 * k,
                 "AddMatrix::from_csr: manager has the wrong variable count "
                 "for this matrix (need 2*ceil(log2(dim)))");

  std::vector<std::pair<std::uint64_t, double>> entries;
  entries.reserve(matrix.nnz());
  matrix.for_each([&](std::size_t r, std::size_t c, double v) {
    entries.emplace_back(interleave(r, c, k), v);
  });
  std::sort(entries.begin(), entries.end());
  // Keys are unique by CSR construction; build directly.
  const NodeRef root = build_sorted(manager, entries, 0, 2 * k);
  return AddMatrix(manager, k, root);
}

double AddMatrix::at(std::size_t row, std::size_t col) const {
  STOCDR_REQUIRE(row < dimension() && col < dimension(),
                 "AddMatrix::at out of range");
  return manager_->evaluate(root_, interleave(row, col, k_));
}

NodeRef AddMatrix::vector_to_add(std::span<const double> x,
                                 bool on_columns) const {
  STOCDR_REQUIRE(x.size() == dimension(),
                 "AddMatrix: vector length must equal the dimension");
  // Recursive split over this dimension's bits, skipping the other
  // dimension's variables entirely (the function does not depend on them).
  const std::size_t num_vars = 2 * k_;
  // var v is a column bit iff v is odd.
  const auto is_ours = [on_columns](std::size_t var) {
    return on_columns ? (var % 2 == 1) : (var % 2 == 0);
  };
  struct Builder {
    AddManager& manager;
    std::size_t num_vars;
    const decltype(is_ours)& ours;

    NodeRef build(std::span<const double> range, std::size_t var) {
      if (var == num_vars) return manager.constant(range[0]);
      if (!ours(var)) return build(range, var + 1);
      const std::size_t half = range.size() / 2;
      const NodeRef low = build(range.subspan(0, half), var + 1);
      const NodeRef high = build(range.subspan(half), var + 1);
      return manager.make_node(var, low, high);
    }
  };
  Builder builder{*manager_, num_vars, is_ours};
  return builder.build(x, 0);
}

std::vector<double> AddMatrix::add_to_vector(NodeRef node,
                                             bool on_columns) const {
  std::vector<double> values(dimension());
  for (std::size_t i = 0; i < dimension(); ++i) {
    const std::uint64_t index =
        on_columns ? interleave(0, i, k_) : interleave(i, 0, k_);
    values[i] = manager_->evaluate(node, index);
  }
  return values;
}

std::vector<double> AddMatrix::multiply(std::span<const double> x) const {
  const NodeRef vec = vector_to_add(x, /*on_columns=*/true);
  const NodeRef product = manager_->times(root_, vec);
  std::vector<bool> sum_cols(2 * k_, false);
  for (std::size_t v = 1; v < 2 * k_; v += 2) sum_cols[v] = true;
  const NodeRef summed = manager_->sum_out(product, sum_cols);
  return add_to_vector(summed, /*on_columns=*/false);
}

std::vector<double> AddMatrix::multiply_transpose(
    std::span<const double> x) const {
  const NodeRef vec = vector_to_add(x, /*on_columns=*/false);
  const NodeRef product = manager_->times(root_, vec);
  std::vector<bool> sum_rows(2 * k_, false);
  for (std::size_t v = 0; v < 2 * k_; v += 2) sum_rows[v] = true;
  const NodeRef summed = manager_->sum_out(product, sum_rows);
  return add_to_vector(summed, /*on_columns=*/true);
}

sparse::CsrMatrix AddMatrix::to_csr(std::size_t rows, std::size_t cols) const {
  STOCDR_REQUIRE(rows <= dimension() && cols <= dimension(),
                 "AddMatrix::to_csr: trim exceeds the dimension");
  STOCDR_REQUIRE(k_ <= 12,
                 "AddMatrix::to_csr: dense read-back limited to k <= 12");
  sparse::CooBuilder builder(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = at(r, c);
      if (v != 0.0) builder.add(r, c, v);
    }
  }
  return builder.to_csr();
}

}  // namespace stocdr::pdd
