// Matrices as ADDs with interleaved row/column bit variables.
//
// A 2^k x 2^k matrix is a function of 2k boolean variables ordered
// r_{k-1}, c_{k-1}, r_{k-2}, c_{k-2}, ..., r_0, c_0 (most significant bits
// outermost, row bit before its column bit).  Interleaving is what makes
// block-structured matrices — like the compositional TPMs of this library —
// compress: equal blocks become shared subgraphs.  Matrix-vector products
// run entirely on the DAGs (pointwise product, then summing out the column
// variables), independent of the dense dimension.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pdd/manager.hpp"
#include "sparse/csr.hpp"

namespace stocdr::pdd {

/// A square matrix of dimension 2^k stored as an ADD in an AddManager with
/// 2k variables.
class AddMatrix {
 public:
  /// Wraps an existing root in `manager` (must have 2k variables).
  AddMatrix(AddManager& manager, std::size_t k, NodeRef root);

  /// Builds from a sparse matrix, zero-padding the dimension up to the next
  /// power of two.  The construction is recursive over sorted interleaved
  /// indices: O(nnz * k) node creations, never densifying.
  [[nodiscard]] static AddMatrix from_csr(AddManager& manager,
                                          const sparse::CsrMatrix& matrix);

  /// Number of row (= column) bits.
  [[nodiscard]] std::size_t k() const { return k_; }

  /// Dense dimension 2^k.
  [[nodiscard]] std::size_t dimension() const { return 1ull << k_; }

  [[nodiscard]] NodeRef root() const { return root_; }
  [[nodiscard]] AddManager& manager() const { return *manager_; }

  /// Entry (row, col).
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// y = A x on dense vectors of length dimension(): builds the vector ADD,
  /// multiplies pointwise, sums out the column variables, reads back.
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// y = A^T x (sums out the row variables instead).
  [[nodiscard]] std::vector<double> multiply_transpose(
      std::span<const double> x) const;

  /// Materializes as CSR, trimmed to `rows` x `cols`.
  [[nodiscard]] sparse::CsrMatrix to_csr(std::size_t rows,
                                         std::size_t cols) const;

  /// Nodes in this matrix's DAG.
  [[nodiscard]] std::size_t dag_size() const {
    return manager_->dag_size(root_);
  }

  /// Approximate bytes of DAG storage.
  [[nodiscard]] std::size_t storage_bytes() const {
    return dag_size() * AddManager::bytes_per_node();
  }

 private:
  /// Lifts a dense vector onto the row (transpose=false sums columns later)
  /// or column variables of the matrix universe.
  [[nodiscard]] NodeRef vector_to_add(std::span<const double> x,
                                      bool on_columns) const;

  /// Reads a vector ADD living on row (or column) variables back densely.
  [[nodiscard]] std::vector<double> add_to_vector(NodeRef node,
                                                  bool on_columns) const;

  AddManager* manager_;
  std::size_t k_;
  NodeRef root_;
};

}  // namespace stocdr::pdd
