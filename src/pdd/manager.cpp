#include "pdd/manager.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/error.hpp"

namespace stocdr::pdd {

AddManager::AddManager(std::size_t num_vars) : num_vars_(num_vars) {
  STOCDR_REQUIRE(num_vars >= 1 && num_vars <= 62,
                 "AddManager supports 1..62 variables");
  zero_ = constant(0.0);
}

NodeRef AddManager::constant(double value) {
  STOCDR_REQUIRE(std::isfinite(value), "AddManager: non-finite terminal");
  if (value == 0.0) value = 0.0;  // normalize -0.0
  const auto it = terminal_table_.find(value);
  if (it != terminal_table_.end()) return it->second;
  const auto ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back({kTerminalVar, 0, 0, value});
  terminal_table_.emplace(value, ref);
  return ref;
}

NodeRef AddManager::make_node(std::size_t var, NodeRef low, NodeRef high) {
  STOCDR_REQUIRE(var < num_vars_, "make_node: variable out of range");
  STOCDR_REQUIRE(low < nodes_.size() && high < nodes_.size(),
                 "make_node: dangling child");
  STOCDR_REQUIRE(
      (is_terminal(low) || node_var(low) > var) &&
          (is_terminal(high) || node_var(high) > var),
      "make_node: children must test later variables (ordering violation)");
  if (low == high) return low;  // reduction rule
  const UniqueKey key{static_cast<std::uint32_t>(var), low, high};
  const auto it = unique_table_.find(key);
  if (it != unique_table_.end()) return it->second;
  const auto ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back({static_cast<std::uint32_t>(var), low, high, 0.0});
  unique_table_.emplace(key, ref);
  return ref;
}

bool AddManager::is_terminal(NodeRef node) const {
  STOCDR_REQUIRE(node < nodes_.size(), "is_terminal: bad node");
  return nodes_[node].var == kTerminalVar;
}

double AddManager::terminal_value(NodeRef node) const {
  STOCDR_REQUIRE(is_terminal(node), "terminal_value: not a terminal");
  return nodes_[node].value;
}

std::size_t AddManager::node_var(NodeRef node) const {
  STOCDR_REQUIRE(!is_terminal(node), "node_var: terminal node");
  return nodes_[node].var;
}

NodeRef AddManager::node_low(NodeRef node) const {
  STOCDR_REQUIRE(!is_terminal(node), "node_low: terminal node");
  return nodes_[node].low;
}

NodeRef AddManager::node_high(NodeRef node) const {
  STOCDR_REQUIRE(!is_terminal(node), "node_high: terminal node");
  return nodes_[node].high;
}

double AddManager::apply_terminal(Op op, double a, double b) const {
  switch (op) {
    case Op::kPlus:
      return a + b;
    case Op::kTimes:
      return a * b;
    case Op::kMax:
      return std::max(a, b);
  }
  throw InternalError("apply_terminal: unknown op");
}

NodeRef AddManager::apply(Op op, NodeRef a, NodeRef b) {
  // Terminal base cases and algebraic short-circuits.
  if (is_terminal(a) && is_terminal(b)) {
    return constant(apply_terminal(op, terminal_value(a), terminal_value(b)));
  }
  if (op == Op::kTimes && (a == zero_ || b == zero_)) return zero_;
  if (op == Op::kPlus) {
    if (a == zero_) return b;
    if (b == zero_) return a;
  }
  // Commutative ops: canonicalize the operand order for the cache.
  if (a > b) std::swap(a, b);

  const ApplyKey key{static_cast<std::uint8_t>(op), a, b};
  const auto it = apply_cache_.find(key);
  if (it != apply_cache_.end()) return it->second;

  // Recurse on the top variable.
  const std::size_t va = is_terminal(a) ? num_vars_ : node_var(a);
  const std::size_t vb = is_terminal(b) ? num_vars_ : node_var(b);
  const std::size_t var = std::min(va, vb);
  const NodeRef a_low = va == var ? node_low(a) : a;
  const NodeRef a_high = va == var ? node_high(a) : a;
  const NodeRef b_low = vb == var ? node_low(b) : b;
  const NodeRef b_high = vb == var ? node_high(b) : b;
  const NodeRef low = apply(op, a_low, b_low);
  const NodeRef high = apply(op, a_high, b_high);
  const NodeRef result = make_node(var, low, high);
  apply_cache_.emplace(key, result);
  return result;
}

NodeRef AddManager::plus(NodeRef a, NodeRef b) { return apply(Op::kPlus, a, b); }
NodeRef AddManager::times(NodeRef a, NodeRef b) {
  return apply(Op::kTimes, a, b);
}
NodeRef AddManager::max(NodeRef a, NodeRef b) { return apply(Op::kMax, a, b); }

NodeRef AddManager::sum_out(NodeRef node, const std::vector<bool>& sum_var) {
  STOCDR_REQUIRE(sum_var.size() == num_vars_,
                 "sum_out: mask must cover every variable");
  std::unordered_map<std::uint64_t, NodeRef> cache;
  return sum_out_rec(node, 0, sum_var, cache);
}

NodeRef AddManager::sum_out_rec(
    NodeRef node, std::size_t var, const std::vector<bool>& sum_var,
    std::unordered_map<std::uint64_t, NodeRef>& cache) {
  // A terminal still carries an implicit 2^k factor for every summed
  // variable at or below `var` that it skips.
  if (var == num_vars_) return node;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(var) << 32) | node;
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  NodeRef result;
  const std::size_t node_level = is_terminal(node) ? num_vars_ : node_var(node);
  if (node_level == var) {
    const NodeRef low = sum_out_rec(node_low(node), var + 1, sum_var, cache);
    const NodeRef high = sum_out_rec(node_high(node), var + 1, sum_var, cache);
    result = sum_var[var] ? plus(low, high) : make_node(var, low, high);
  } else {
    // Variable `var` is skipped by this node: both branches are `node`.
    const NodeRef sub = sum_out_rec(node, var + 1, sum_var, cache);
    if (sum_var[var]) {
      result = plus(sub, sub);
    } else {
      result = sub;
    }
  }
  cache.emplace(key, result);
  return result;
}

double AddManager::evaluate(NodeRef node, std::uint64_t index) const {
  STOCDR_REQUIRE(index < (1ull << num_vars_), "evaluate: index out of range");
  NodeRef current = node;
  while (!is_terminal(current)) {
    const std::size_t var = node_var(current);
    const bool bit = (index >> (num_vars_ - 1 - var)) & 1ull;
    current = bit ? node_high(current) : node_low(current);
  }
  return terminal_value(current);
}

NodeRef AddManager::from_vector(std::span<const double> values) {
  STOCDR_REQUIRE(values.size() == (1ull << num_vars_),
                 "from_vector: need exactly 2^num_vars values");
  return from_vector_rec(values, 0);
}

NodeRef AddManager::from_vector_rec(std::span<const double> values,
                                    std::size_t var) {
  if (var == num_vars_) return constant(values[0]);
  const std::size_t half = values.size() / 2;
  const NodeRef low = from_vector_rec(values.subspan(0, half), var + 1);
  const NodeRef high = from_vector_rec(values.subspan(half), var + 1);
  return make_node(var, low, high);
}

std::vector<double> AddManager::to_vector(NodeRef node) const {
  const std::size_t n = 1ull << num_vars_;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = evaluate(node, i);
  return values;
}

std::size_t AddManager::dag_size(NodeRef node) const {
  STOCDR_REQUIRE(node < nodes_.size(), "dag_size: bad node");
  std::unordered_set<NodeRef> seen;
  std::vector<NodeRef> stack{node};
  while (!stack.empty()) {
    const NodeRef current = stack.back();
    stack.pop_back();
    if (!seen.insert(current).second) continue;
    if (!is_terminal(current)) {
      stack.push_back(node_low(current));
      stack.push_back(node_high(current));
    }
  }
  return seen.size();
}

}  // namespace stocdr::pdd
