// Algebraic decision diagrams (ADDs / MTBDDs) over ordered boolean
// variables — the paper's second future-work direction for scaling beyond
// explicit sparse storage (section 3, citing Bozga & Maler, "On the
// Representation of Probabilities over Structured Domains"): probability
// vectors and transition matrices represented as reduced DAGs that share
// isomorphic substructure.
//
// The manager owns all nodes (hash-consed, so equal functions are the same
// node and equality is pointer equality), provides the standard apply
// algebra (+, *, max) with memoization, abstraction (summing out
// variables), and conversions from/to dense vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace stocdr::pdd {

/// Handle to a node owned by an AddManager.
using NodeRef = std::uint32_t;

/// Manager of a single ADD universe with a fixed variable order 0..n-1
/// (variable 0 is tested first / outermost).
class AddManager {
 public:
  /// Creates a manager for functions over `num_vars` boolean variables.
  explicit AddManager(std::size_t num_vars);

  [[nodiscard]] std::size_t num_vars() const { return num_vars_; }

  /// The constant function v.
  [[nodiscard]] NodeRef constant(double value);

  /// The zero constant (cached).
  [[nodiscard]] NodeRef zero() const { return zero_; }

  /// Internal node: "if var then high else low", reduced (low == high
  /// collapses) and hash-consed.  `var` must be smaller than the variables
  /// tested inside low/high.
  [[nodiscard]] NodeRef make_node(std::size_t var, NodeRef low, NodeRef high);

  /// True if the node is a terminal (constant).
  [[nodiscard]] bool is_terminal(NodeRef node) const;

  /// Value of a terminal node.
  [[nodiscard]] double terminal_value(NodeRef node) const;

  /// Variable tested by an internal node.
  [[nodiscard]] std::size_t node_var(NodeRef node) const;
  [[nodiscard]] NodeRef node_low(NodeRef node) const;
  [[nodiscard]] NodeRef node_high(NodeRef node) const;

  // --- algebra ------------------------------------------------------------

  /// a + b, pointwise.
  [[nodiscard]] NodeRef plus(NodeRef a, NodeRef b);

  /// a * b, pointwise.
  [[nodiscard]] NodeRef times(NodeRef a, NodeRef b);

  /// max(a, b), pointwise.
  [[nodiscard]] NodeRef max(NodeRef a, NodeRef b);

  /// Sums out every variable with sum_var[v] == true:
  /// f'(rest) = sum over assignments of the summed variables.
  [[nodiscard]] NodeRef sum_out(NodeRef node, const std::vector<bool>& sum_var);

  // --- conversions ----------------------------------------------------------

  /// Evaluates the function at the assignment given by the bits of `index`
  /// (bit num_vars-1-v of index is variable v, i.e. variable 0 is the most
  /// significant bit).
  [[nodiscard]] double evaluate(NodeRef node, std::uint64_t index) const;

  /// Builds the ADD of a dense vector of length 2^num_vars indexed as in
  /// evaluate().
  [[nodiscard]] NodeRef from_vector(std::span<const double> values);

  /// Materializes the function densely (2^num_vars entries).
  [[nodiscard]] std::vector<double> to_vector(NodeRef node) const;

  // --- statistics -----------------------------------------------------------

  /// Total nodes ever created in this manager.
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  /// Nodes reachable from `node` (the size of that function's DAG).
  [[nodiscard]] std::size_t dag_size(NodeRef node) const;

  /// Discards the operation memo table (node storage is untouched).  Long
  /// sequences of apply operations — e.g. repeated matrix-vector products —
  /// should clear periodically to bound memory.
  void clear_apply_cache() { apply_cache_.clear(); }

  /// Approximate bytes per node (for storage comparisons).
  [[nodiscard]] static constexpr std::size_t bytes_per_node() {
    return sizeof(Node);
  }

 private:
  struct Node {
    std::uint32_t var;  ///< kTerminalVar for terminals
    NodeRef low;
    NodeRef high;
    double value;  ///< terminal value (unused for internal nodes)
  };
  static constexpr std::uint32_t kTerminalVar = 0xffffffffu;

  enum class Op : std::uint8_t { kPlus, kTimes, kMax };

  [[nodiscard]] NodeRef apply(Op op, NodeRef a, NodeRef b);
  [[nodiscard]] double apply_terminal(Op op, double a, double b) const;
  [[nodiscard]] NodeRef from_vector_rec(std::span<const double> values,
                                        std::size_t var);
  [[nodiscard]] NodeRef sum_out_rec(
      NodeRef node, std::size_t var, const std::vector<bool>& sum_var,
      std::unordered_map<std::uint64_t, NodeRef>& cache);

  std::size_t num_vars_;
  std::vector<Node> nodes_;
  NodeRef zero_ = 0;

  struct UniqueKey {
    std::uint32_t var;
    NodeRef low;
    NodeRef high;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey& k) const {
      std::uint64_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ull + k.low;
      h = h * 0x9e3779b97f4a7c15ull + k.high;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  struct ApplyKey {
    std::uint8_t op;
    NodeRef a;
    NodeRef b;
    bool operator==(const ApplyKey&) const = default;
  };
  struct ApplyKeyHash {
    std::size_t operator()(const ApplyKey& k) const {
      std::uint64_t h = k.op;
      h = h * 0x9e3779b97f4a7c15ull + k.a;
      h = h * 0x9e3779b97f4a7c15ull + k.b;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  std::unordered_map<double, NodeRef> terminal_table_;
  std::unordered_map<UniqueKey, NodeRef, UniqueKeyHash> unique_table_;
  std::unordered_map<ApplyKey, NodeRef, ApplyKeyHash> apply_cache_;
};

}  // namespace stocdr::pdd
