// Shared-memory parallelism with deterministic results.
//
// The paper's chains have 1e5-1e6 states, so every performance measure
// reduces to repeated O(nnz) passes (SpMV, smoothing sweeps, restrict /
// prolong, reductions).  This subsystem parallelizes those passes across a
// small persistent thread pool while keeping the numerics reproducible:
//
//   * static partitioning — every kernel splits its index space into
//     exactly `lanes` contiguous ranges that depend only on the problem
//     shape and the lane count, never on scheduling;
//   * ordered merges — scatter kernels accumulate into per-lane partials
//     that are combined in ascending lane order, so a run at a fixed
//     thread count is bitwise reproducible (and gather kernels, which
//     keep the serial per-row order, match the serial result exactly);
//   * serial fallback — with one effective thread (the default) every
//     kernel runs the exact pre-parallel code path, so `STOCDR_THREADS`
//     unset reproduces the historical results bit for bit.
//
// Thread-count selection is *ambient*: kernels consult the calling
// thread's context rather than taking a thread-count parameter.  The
// context defaults to the STOCDR_THREADS environment variable (unset ->
// serial) and is overridden for a scope with par::ThreadScope — that is
// how SolverOptions::threads reaches the kernels without widening every
// signature in between.  Pool workers run with a forced-serial context,
// so nested kernels inside a chunk never re-enter the pool.
//
// Cancellation is cooperative at two granularities: solvers keep honoring
// obs::ProgressAction between iterations, and the pool itself checks the
// context's cancel flag between chunks — a long parallel_for aborts with
// par::CancelledError without waiting for the sweep to finish.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/mem/mem.hpp"
#include "obs/prof/perf.hpp"
#include "support/error.hpp"
#include "support/function_ref.hpp"

namespace stocdr::par {

/// Thrown by run_lanes / parallel_for when the ambient cancel flag was set;
/// chunks not yet started are abandoned (output buffers are then partial).
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Parses a STOCDR_THREADS-style spec: unset/empty/invalid -> 1 (serial),
/// "0" or "auto" -> hardware concurrency, otherwise the value clamped to
/// [1, kMaxThreads].
[[nodiscard]] std::size_t parse_threads_spec(const char* spec);

/// Upper bound on configurable thread counts (far above any sane host).
inline constexpr std::size_t kMaxThreads = 256;

/// The process default thread count: STOCDR_THREADS parsed once, lazily.
[[nodiscard]] std::size_t default_threads();

/// The calling thread's effective thread count: 1 inside pool workers,
/// otherwise the innermost ThreadScope override, otherwise default_threads().
[[nodiscard]] std::size_t effective_threads();

/// Installs a thread-count override (and optionally a cooperative cancel
/// flag) for the current scope on the current thread.  `threads == 0`
/// keeps the surrounding value — that is how SolverOptions::threads = 0
/// means "inherit the environment".  Restores the previous context on
/// destruction; cheap enough for per-solve use.
class ThreadScope {
 public:
  explicit ThreadScope(std::size_t threads,
                       const std::atomic<bool>* cancel = nullptr);
  ~ThreadScope();

  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  std::size_t saved_threads_;
  const std::atomic<bool>* saved_cancel_;
};

/// Minimum per-call work (elements or nonzeros) below which kernels stay
/// serial regardless of the ambient thread count; tunable so tests can
/// force the parallel paths on tiny problems.
[[nodiscard]] std::size_t min_parallel_work();
void set_min_parallel_work(std::size_t work);
inline constexpr std::size_t kDefaultMinParallelWork = 16384;

/// Number of lanes a kernel with `work` cost units should use: 1 when the
/// ambient context is serial or the work is below min_parallel_work(),
/// otherwise at most effective_threads() and at most one lane per
/// min_parallel_work() unit so tiny tails never fan out.
[[nodiscard]] std::size_t lanes_for(std::size_t work);

/// Half-open index range.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Lane `lane` of an even split of [0, n) into `lanes` contiguous ranges
/// (sizes differ by at most one).
[[nodiscard]] Range even_range(std::size_t n, std::size_t lanes,
                               std::size_t lane);

/// Row boundaries of a weight-balanced split: `prefix` is a CSR-style
/// cumulative weight array (rows + 1 entries, e.g. row_ptr, so each row's
/// cost is its nnz) and the result has lanes + 1 non-decreasing entries
/// with boundaries[0] = 0 and boundaries[lanes] = rows, chosen so every
/// lane carries ~equal total weight.  Depends only on (prefix, lanes):
/// deterministic across runs.
[[nodiscard]] std::vector<std::size_t> balanced_boundaries(
    std::span<const std::uint32_t> prefix, std::size_t lanes);

/// Records the max/mean lane-weight ratio of a balanced split into the
/// "parallel.imbalance" histogram (1.0 = perfectly balanced).
void observe_imbalance(std::span<const std::uint32_t> prefix,
                       std::span<const std::size_t> boundaries);

/// Executes fn(lane) for lane in [0, lanes) on the global pool; the calling
/// thread participates, so `lanes` threads run in total.  Blocks until all
/// lanes finished.  The first exception thrown by any lane is rethrown on
/// the caller after the join; if the ambient cancel flag is set, lanes not
/// yet started are skipped and CancelledError is thrown.  lanes <= 1 runs
/// inline (still honoring the cancel flag).
void run_lanes(std::size_t lanes, FunctionRef<void(std::size_t)> fn);

/// Convenience element-wise loop: splits [0, n) into lanes_for(n) even
/// ranges and runs body(begin, end) per lane.  Serial when n is small.
void parallel_for(std::size_t n,
                  FunctionRef<void(std::size_t, std::size_t)> body);

/// A persistent pool of parked worker threads.  One process-global
/// instance serves all kernels (workers are spawned lazily up to the
/// largest lane count ever requested); independent instances exist for
/// tests.  run() may be called from multiple threads — calls serialize.
class ThreadPool {
 public:
  /// Spawns `workers` parked worker threads (0 is valid: run() then
  /// executes inline on the caller).
  explicit ThreadPool(std::size_t workers = 0);

  /// Signals shutdown and joins all workers; outstanding run() calls
  /// complete first (run() holds the pool busy until its job is done).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current worker-thread count (excludes callers).
  [[nodiscard]] std::size_t workers() const;

  /// Grows the pool to at least `workers` worker threads.
  void ensure_workers(std::size_t workers);

  /// Executes fn(chunk) for chunk in [0, chunks); the caller participates
  /// alongside the workers.  Chunks are claimed dynamically but carry their
  /// index, so which thread runs a chunk never affects results.  Blocks
  /// until every chunk completed (or was abandoned after cancellation /
  /// a thrown exception); rethrows the first exception, then
  /// CancelledError if `cancel` fired.
  void run(std::size_t chunks, FunctionRef<void(std::size_t)> fn,
           const std::atomic<bool>* cancel = nullptr);

  /// The process-global pool used by run_lanes.
  static ThreadPool& global();

 private:
  void worker_main();
  /// Claims and executes chunks of the current job until exhausted.
  void work(const FunctionRef<void(std::size_t)>& fn, std::size_t chunks,
            const std::atomic<bool>* cancel);

  mutable std::mutex mutex_;             // guards all job + lifecycle state
  std::condition_variable work_cv_;      // workers park here
  std::condition_variable done_cv_;      // run() waits here
  std::mutex run_mutex_;                 // serializes concurrent run() calls

  const FunctionRef<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_chunks_ = 0;
  const std::atomic<bool>* job_cancel_ = nullptr;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t remaining_ = 0;     // chunks not yet finished
  std::size_t active_ = 0;        // workers currently inside a job
  std::uint64_t generation_ = 0;  // bumped per job; workers wake on change
  std::exception_ptr error_;      // first failure of the current job
  bool stop_ = false;

  /// Per-job perf-counter deltas banked by workers (STOCDR_PERF=1): each
  /// worker measures its own counters around its share of the job and
  /// fetch_adds the delta here; run() folds the sums into the caller's
  /// foreign bank so open profiled spans on the caller absorb worker work.
  /// u64 sums are order-independent — deterministic under any scheduling.
  std::array<std::atomic<std::uint64_t>, obs::prof::kNumCounters> job_perf_{};

  /// Per-job allocation deltas banked the same way (STOCDR_MEM=1):
  /// allocated bytes, freed bytes, alloc count, free count.  Worker-side
  /// live peaks are *not* banked — a high-water across threads has no
  /// single-timeline meaning (see obs/mem/mem.hpp).
  std::array<std::atomic<std::uint64_t>, 4> job_mem_{};

  std::vector<std::thread> threads_;
};

}  // namespace stocdr::par
