// Deterministic parallel reductions and element-wise vector kernels.
//
// Serial fallbacks are the exact historical loops from support/math.cpp and
// the solvers (same operation order, same compensation scheme), so one
// effective thread reproduces pre-parallel results bit for bit.  The
// parallel paths split the index space into lanes_for(n) contiguous lanes,
// reduce each lane with the serial kernel, and combine the per-lane
// partials in ascending lane order — at a fixed thread count the result is
// bitwise reproducible across runs; across thread counts the association
// of the partial sums changes, so results agree only to rounding (well
// inside the 1e-12 solver tolerances; see docs/PARALLELISM.md).
#pragma once

#include <cstddef>
#include <span>

namespace stocdr::par {

/// Kahan-compensated sum (serial twin: stocdr::kahan_sum).
[[nodiscard]] double sum(std::span<const double> values);

/// Kahan-compensated L1 norm (serial twin: stocdr::l1_norm).
[[nodiscard]] double l1_norm(std::span<const double> values);

/// Plain-summation L1 distance (serial twin: stocdr::l1_distance).
[[nodiscard]] double l1_distance(std::span<const double> a,
                                 std::span<const double> b);

/// Plain-summation dot product (serial twin: the solvers' inline loops).
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// sqrt(dot(v, v)) with the solvers' plain accumulation order.
[[nodiscard]] double l2_norm(std::span<const double> values);

/// Infinity norm (order-independent: identical at any thread count).
[[nodiscard]] double linf_norm(std::span<const double> values);

/// Scales a nonnegative vector to unit L1 mass (serial twin:
/// stocdr::normalize_l1, including its NumericalError on zero/non-finite
/// mass).  The scaling pass is element-wise and exact at any lane count.
void normalize_l1(std::span<double> values);

}  // namespace stocdr::par
