#include "parallel/pool.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string_view>

#include "obs/metrics.hpp"

namespace stocdr::par {

namespace {

/// Per-thread ambient context consulted by every kernel (see pool.hpp).
struct Context {
  std::size_t threads = 0;  // 0 = unset -> default_threads()
  const std::atomic<bool>* cancel = nullptr;
  bool in_worker = false;  // pool workers (and lanes on the caller) force 1
};

Context& context() {
  thread_local Context ctx;
  return ctx;
}

/// Marks the current thread as executing a chunk so nested kernels run
/// serially instead of re-entering the pool (which would deadlock the
/// caller-participation scheme and wreck the static partitioning).
class WorkerGuard {
 public:
  WorkerGuard() : saved_(context().in_worker) { context().in_worker = true; }
  ~WorkerGuard() { context().in_worker = saved_; }

 private:
  bool saved_;
};

std::atomic<std::size_t> g_min_parallel_work{kDefaultMinParallelWork};

[[noreturn]] void throw_cancelled() {
  throw CancelledError("parallel: cooperative cancel flag set between chunks");
}

obs::Gauge& threads_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::instance().gauge("parallel.threads");
  return gauge;
}

obs::Histogram& imbalance_histogram() {
  static obs::Histogram& hist =
      obs::MetricsRegistry::instance().histogram("parallel.imbalance");
  return hist;
}

}  // namespace

std::size_t parse_threads_spec(const char* spec) {
  if (spec == nullptr || *spec == '\0') return 1;
  const std::string_view sv(spec);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (sv == "auto") return std::min(hw, kMaxThreads);
  for (const char c : sv) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return 1;
  }
  const unsigned long value = std::strtoul(spec, nullptr, 10);
  if (value == 0) return std::min(hw, kMaxThreads);
  return std::min<std::size_t>(value, kMaxThreads);
}

std::size_t default_threads() {
  static const std::size_t threads =
      parse_threads_spec(std::getenv("STOCDR_THREADS"));
  return threads;
}

std::size_t effective_threads() {
  const Context& ctx = context();
  if (ctx.in_worker) return 1;
  return ctx.threads > 0 ? ctx.threads : default_threads();
}

ThreadScope::ThreadScope(std::size_t threads, const std::atomic<bool>* cancel)
    : saved_threads_(context().threads), saved_cancel_(context().cancel) {
  if (threads > 0) context().threads = std::min(threads, kMaxThreads);
  if (cancel != nullptr) context().cancel = cancel;
}

ThreadScope::~ThreadScope() {
  context().threads = saved_threads_;
  context().cancel = saved_cancel_;
}

std::size_t min_parallel_work() {
  return g_min_parallel_work.load(std::memory_order_relaxed);
}

void set_min_parallel_work(std::size_t work) {
  g_min_parallel_work.store(std::max<std::size_t>(1, work),
                            std::memory_order_relaxed);
}

std::size_t lanes_for(std::size_t work) {
  const std::size_t threads = effective_threads();
  if (threads <= 1) return 1;
  const std::size_t min_work = min_parallel_work();
  if (work < min_work) return 1;
  return std::min(threads, std::max<std::size_t>(1, work / min_work));
}

Range even_range(std::size_t n, std::size_t lanes, std::size_t lane) {
  STOCDR_ASSERT(lanes >= 1 && lane < lanes);
  const std::size_t base = n / lanes;
  const std::size_t extra = n % lanes;
  const std::size_t begin = lane * base + std::min(lane, extra);
  return {begin, begin + base + (lane < extra ? 1 : 0)};
}

std::vector<std::size_t> balanced_boundaries(
    std::span<const std::uint32_t> prefix, std::size_t lanes) {
  STOCDR_REQUIRE(!prefix.empty(), "balanced_boundaries: empty prefix");
  STOCDR_REQUIRE(lanes >= 1, "balanced_boundaries: lanes must be positive");
  const std::size_t rows = prefix.size() - 1;
  const std::uint64_t total = prefix.back() - prefix.front();
  std::vector<std::size_t> bounds(lanes + 1);
  bounds[0] = 0;
  bounds[lanes] = rows;
  for (std::size_t k = 1; k < lanes; ++k) {
    const std::uint64_t target = prefix.front() + (total * k) / lanes;
    const auto it = std::lower_bound(prefix.begin(), prefix.end(),
                                     static_cast<std::uint32_t>(target));
    std::size_t row = static_cast<std::size_t>(it - prefix.begin());
    row = std::min(row, rows);
    bounds[k] = std::max(bounds[k - 1], row);
  }
  return bounds;
}

void observe_imbalance(std::span<const std::uint32_t> prefix,
                       std::span<const std::size_t> boundaries) {
  const std::size_t lanes = boundaries.size() - 1;
  if (lanes <= 1) return;
  const double total = static_cast<double>(prefix.back() - prefix.front());
  if (total <= 0.0) return;
  double max_weight = 0.0;
  for (std::size_t k = 0; k < lanes; ++k) {
    const double w = static_cast<double>(prefix[boundaries[k + 1]]) -
                     static_cast<double>(prefix[boundaries[k]]);
    max_weight = std::max(max_weight, w);
  }
  imbalance_histogram().observe(max_weight * static_cast<double>(lanes) /
                                total);
}

void run_lanes(std::size_t lanes, FunctionRef<void(std::size_t)> fn) {
  const std::atomic<bool>* cancel = context().cancel;
  if (lanes <= 1) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw_cancelled();
    }
    const WorkerGuard guard;
    fn(0);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  pool.ensure_workers(lanes - 1);
  threads_gauge().set(static_cast<double>(lanes));
  pool.run(lanes, fn, cancel);
}

void parallel_for(std::size_t n,
                  FunctionRef<void(std::size_t, std::size_t)> body) {
  const std::size_t lanes = lanes_for(n);
  if (lanes <= 1) {
    const std::atomic<bool>* cancel = context().cancel;
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw_cancelled();
    }
    const WorkerGuard guard;
    body(0, n);
    return;
  }
  run_lanes(lanes, [&](std::size_t lane) {
    const Range r = even_range(n, lanes, lane);
    body(r.begin, r.end);
  });
}

ThreadPool::ThreadPool(std::size_t workers) { ensure_workers(workers); }

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::workers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return threads_.size();
}

void ThreadPool::ensure_workers(std::size_t workers) {
  workers = std::min(workers, kMaxThreads);
  const std::lock_guard<std::mutex> lock(mutex_);
  while (threads_.size() < workers) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

void ThreadPool::run(std::size_t chunks, FunctionRef<void(std::size_t)> fn,
                     const std::atomic<bool>* cancel) {
  if (chunks == 0) return;
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  const bool profiled = obs::prof::enabled();
  const bool mem_tracked = obs::mem::enabled();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_chunks_ = chunks;
    job_cancel_ = cancel;
    next_chunk_.store(0, std::memory_order_relaxed);
    remaining_ = chunks;
    error_ = nullptr;
    ++generation_;
    if (profiled) {
      for (auto& slot : job_perf_) slot.store(0, std::memory_order_relaxed);
    }
    if (mem_tracked) {
      for (auto& slot : job_mem_) slot.store(0, std::memory_order_relaxed);
    }
  }
  work_cv_.notify_all();
  {
    const WorkerGuard guard;  // nested kernels on the caller stay serial
    work(fn, chunks, cancel);
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0 && active_ == 0; });
    job_fn_ = nullptr;
    error = error_;
  }
  if (profiled) {
    // Workers finished (active_ == 0 under the mutex), so every banked
    // delta is visible; credit the caller with the workers' share.
    obs::prof::CounterReading delta;
    for (std::size_t i = 0; i < obs::prof::kNumCounters; ++i) {
      delta.values[i] = job_perf_[i].load(std::memory_order_relaxed);
    }
    obs::prof::add_foreign(delta);
  }
  if (mem_tracked) {
    obs::mem::MemDelta delta;
    delta.allocated_bytes = job_mem_[0].load(std::memory_order_relaxed);
    delta.freed_bytes = job_mem_[1].load(std::memory_order_relaxed);
    delta.alloc_count = job_mem_[2].load(std::memory_order_relaxed);
    delta.free_count = job_mem_[3].load(std::memory_order_relaxed);
    obs::mem::add_foreign(delta);
  }
  if (error) std::rethrow_exception(error);
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    throw_cancelled();
  }
}

void ThreadPool::work(const FunctionRef<void(std::size_t)>& fn,
                      std::size_t chunks, const std::atomic<bool>* cancel) {
  for (;;) {
    const std::size_t chunk =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= chunks) return;
    // Between chunks: abandon the rest of the job on cancellation or after
    // another lane already failed (its exception will be rethrown).
    bool skip = cancel != nullptr && cancel->load(std::memory_order_relaxed);
    if (!skip) {
      const std::lock_guard<std::mutex> lock(mutex_);
      skip = error_ != nullptr;
    }
    if (!skip) {
      try {
        fn(chunk);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_main() {
  context().in_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    const FunctionRef<void(std::size_t)>* fn = nullptr;
    std::size_t chunks = 0;
    const std::atomic<bool>* cancel = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || (generation_ != seen &&
                                           job_fn_ != nullptr); });
      if (stop_) return;
      seen = generation_;
      fn = job_fn_;
      chunks = job_chunks_;
      cancel = job_cancel_;
      ++active_;
    }
    const bool mem_tracked = obs::mem::enabled();
    obs::mem::MemReading mem_before;
    if (mem_tracked) mem_before = obs::mem::read_current_thread();
    if (obs::prof::enabled()) {
      const obs::prof::CounterReading before = obs::prof::read_current_thread();
      work(*fn, chunks, cancel);
      const obs::prof::CounterReading after = obs::prof::read_current_thread();
      const obs::prof::CounterReading delta =
          obs::prof::reading_delta(before, after);
      for (std::size_t i = 0; i < obs::prof::kNumCounters; ++i) {
        if (delta.values[i] != 0) {
          job_perf_[i].fetch_add(delta.values[i], std::memory_order_relaxed);
        }
      }
    } else {
      work(*fn, chunks, cancel);
    }
    if (mem_tracked) {
      const obs::mem::MemReading mem_after = obs::mem::read_current_thread();
      const std::uint64_t diffs[4] = {
          mem_after.allocated_bytes - mem_before.allocated_bytes,
          mem_after.freed_bytes - mem_before.freed_bytes,
          mem_after.alloc_count - mem_before.alloc_count,
          mem_after.free_count - mem_before.free_count,
      };
      for (std::size_t i = 0; i < 4; ++i) {
        if (diffs[i] != 0) {
          job_mem_[i].fetch_add(diffs[i], std::memory_order_relaxed);
        }
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0 && remaining_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace stocdr::par
