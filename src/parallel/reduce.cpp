#include "parallel/reduce.hpp"

#include <cmath>
#include <vector>

#include "parallel/pool.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::par {

namespace {

/// Shared parallel skeleton: per-lane partials (each produced by the serial
/// kernel on its contiguous range) combined in ascending lane order.
template <typename LaneFn>
double lanewise(std::size_t n, const LaneFn& lane_fn, std::size_t lanes) {
  std::vector<double> partials(lanes, 0.0);
  run_lanes(lanes, [&](std::size_t lane) {
    const Range r = even_range(n, lanes, lane);
    partials[lane] = lane_fn(r.begin, r.end);
  });
  double acc = 0.0;
  for (const double p : partials) acc += p;
  return acc;
}

}  // namespace

double sum(std::span<const double> values) {
  const std::size_t lanes = lanes_for(values.size());
  if (lanes <= 1) return kahan_sum(values);
  return lanewise(
      values.size(),
      [&](std::size_t b, std::size_t e) {
        return kahan_sum(values.subspan(b, e - b));
      },
      lanes);
}

double l1_norm(std::span<const double> values) {
  const std::size_t lanes = lanes_for(values.size());
  if (lanes <= 1) return stocdr::l1_norm(values);
  return lanewise(
      values.size(),
      [&](std::size_t b, std::size_t e) {
        return stocdr::l1_norm(values.subspan(b, e - b));
      },
      lanes);
}

double l1_distance(std::span<const double> a, std::span<const double> b) {
  STOCDR_REQUIRE(a.size() == b.size(), "l1_distance requires equal sizes");
  const std::size_t lanes = lanes_for(a.size());
  if (lanes <= 1) return stocdr::l1_distance(a, b);
  return lanewise(
      a.size(),
      [&](std::size_t begin, std::size_t end) {
        double s = 0.0;
        for (std::size_t i = begin; i < end; ++i) s += std::abs(a[i] - b[i]);
        return s;
      },
      lanes);
}

double dot(std::span<const double> a, std::span<const double> b) {
  STOCDR_REQUIRE(a.size() == b.size(), "dot requires equal sizes");
  const auto lane_dot = [&](std::size_t begin, std::size_t end) {
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i) s += a[i] * b[i];
    return s;
  };
  const std::size_t lanes = lanes_for(a.size());
  if (lanes <= 1) return lane_dot(0, a.size());
  return lanewise(a.size(), lane_dot, lanes);
}

double l2_norm(std::span<const double> values) {
  return std::sqrt(dot(values, values));
}

double linf_norm(std::span<const double> values) {
  const auto lane_max = [&](std::size_t begin, std::size_t end) {
    double m = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      m = std::max(m, std::abs(values[i]));
    }
    return m;
  };
  const std::size_t lanes = lanes_for(values.size());
  if (lanes <= 1) return lane_max(0, values.size());
  std::vector<double> partials(lanes, 0.0);
  run_lanes(lanes, [&](std::size_t lane) {
    const Range r = even_range(values.size(), lanes, lane);
    partials[lane] = lane_max(r.begin, r.end);
  });
  double m = 0.0;
  for (const double p : partials) m = std::max(m, p);
  return m;
}

void normalize_l1(std::span<double> values) {
  const std::size_t lanes = lanes_for(values.size());
  if (lanes <= 1) {
    stocdr::normalize_l1(values);
    return;
  }
  const double mass = sum({values.data(), values.size()});
  if (!(mass > 0.0) || !std::isfinite(mass)) {
    throw NumericalError("normalize_l1: vector sum is zero or non-finite");
  }
  parallel_for(values.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) values[i] /= mass;
  });
}

}  // namespace stocdr::par
