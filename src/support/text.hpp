// Plain-text rendering used by the benchmark harnesses: aligned tables for
// the paper's per-experiment annotation lines, and ASCII density plots for
// the stationary phase-error PDFs of Figures 4 and 5.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace stocdr {

/// Column-aligned text table.  Rows are added as vectors of cells; render()
/// pads every column to its widest cell.
class TextTable {
 public:
  /// Creates a table with the given header row.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; it may have at most as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a separator line under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a discrete density (values at grid points) as an ASCII area plot,
/// `height` rows tall, one column per (possibly downsampled) grid point.
/// Used to reproduce the probability-density figures in text form.
[[nodiscard]] std::string ascii_density_plot(std::span<const double> x,
                                             std::span<const double> density,
                                             std::size_t width = 72,
                                             std::size_t height = 14);

/// Formats a double in the compact scientific style the paper's annotations
/// use, e.g. "1.6e-09".
[[nodiscard]] std::string sci(double value, int digits = 2);

/// Formats a double with fixed precision.
[[nodiscard]] std::string fixed(double value, int digits = 3);

}  // namespace stocdr
