// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the durable-checkpoint format (src/robust/checkpoint/) to detect
// torn or bit-flipped files before a corrupted iterate can poison a warm
// restart.  Table-driven, one byte per step — integrity checking is a
// rounding error next to the solve the checkpoint protects.
#pragma once

#include <cstdint>
#include <string_view>

namespace stocdr {

/// Incremental form: feed successive chunks with the previous return value
/// as `seed` (start from 0).  Equivalent to crc32(all bytes at once).
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t seed,
                                         const void* data, std::size_t size);

/// CRC-32 of one contiguous buffer.
[[nodiscard]] inline std::uint32_t crc32(std::string_view data) {
  return crc32_update(0, data.data(), data.size());
}

}  // namespace stocdr
