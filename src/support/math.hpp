// Scalar math helpers shared across the library: Gaussian density/CDF/tails,
// safe floating-point comparisons, and small numeric utilities.
//
// The phase-detector decision probabilities and the exact BER tail
// integration (DESIGN.md section 2) are built on gaussian_cdf/gaussian_tail,
// so these are implemented with erfc for full accuracy far into the tails —
// the whole point of the paper is evaluating probabilities near 1e-12 and
// below, where naive 1 - Phi(x) formulations lose all precision.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stocdr {

inline constexpr double kPi = 3.14159265358979323846;

/// Standard normal probability density at x.
[[nodiscard]] double gaussian_pdf(double x);

/// Standard normal CDF: P(Z <= x).  Accurate over the full range.
[[nodiscard]] double gaussian_cdf(double x);

/// Upper tail of the standard normal: P(Z > x) = erfc(x / sqrt(2)) / 2.
/// Keeps full relative accuracy for large x (e.g. returns ~1e-100 at x=21
/// rather than underflowing through 1 - cdf).
[[nodiscard]] double gaussian_tail(double x);

/// P(lo < Z <= hi) for a standard normal, computed to preserve accuracy
/// when the interval lies far in a tail.
[[nodiscard]] double gaussian_interval(double lo, double hi);

/// Approximate relative/absolute equality for doubles:
/// |a - b| <= atol + rtol * max(|a|, |b|).
[[nodiscard]] bool almost_equal(double a, double b, double rtol = 1e-12,
                                double atol = 1e-300);

/// Sum of a span using Kahan compensated summation.  Stationary vectors have
/// entries spanning ~300 orders of magnitude; naive summation of a million
/// entries is fine for the norm but compensated summation costs nothing and
/// removes a source of doubt in the validation tests.
[[nodiscard]] double kahan_sum(std::span<const double> values);

/// L1 norm of a span.
[[nodiscard]] double l1_norm(std::span<const double> values);

/// Infinity norm of a span.
[[nodiscard]] double linf_norm(std::span<const double> values);

/// L1 distance between two equally sized spans.
[[nodiscard]] double l1_distance(std::span<const double> a,
                                 std::span<const double> b);

/// Scales a nonnegative vector so its entries sum to one.  Throws
/// NumericalError if the sum is zero or not finite.
void normalize_l1(std::span<double> values);

/// Integer power of a double (exponentiation by squaring).
[[nodiscard]] double ipow(double base, unsigned exponent);

/// Greatest common divisor of two positive integers.
[[nodiscard]] std::size_t gcd_size(std::size_t a, std::size_t b);

/// Linearly spaced grid of n points covering [lo, hi] inclusive (n >= 2).
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t n);

}  // namespace stocdr
