// Error handling for the stocdr library.
//
// The library reports precondition violations and numerical failures with
// exceptions derived from stocdr::Error.  The STOCDR_REQUIRE macro is used at
// public API boundaries; STOCDR_ASSERT is an internal invariant check that is
// active in all build types (the cost is negligible next to the numerical
// kernels it guards).
#pragma once

#include <stdexcept>
#include <string>

namespace stocdr {

/// Base class for all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or produced an invalid result.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated (library bug, not caller error).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// A file or stream operation failed (trace files, bench artifacts, I/O).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_internal(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace stocdr

/// Check a documented precondition of a public entry point; throws
/// stocdr::PreconditionError with the failing expression and a caller message.
#define STOCDR_REQUIRE(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::stocdr::detail::throw_precondition(#expr, __FILE__, __LINE__, msg); \
    }                                                                       \
  } while (false)

/// Check an internal invariant; throws stocdr::InternalError on failure.
#define STOCDR_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::stocdr::detail::throw_internal(#expr, __FILE__, __LINE__);       \
    }                                                                    \
  } while (false)
