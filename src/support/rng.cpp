#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace stocdr {

namespace {

/// SplitMix64 step; used only to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  STOCDR_REQUIRE(n > 0, "Rng::below requires a positive bound");
  // Rejection to avoid modulo bias; the loop runs once in expectation.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

}  // namespace stocdr
