#include "support/atomic_file.hpp"

#include <cstdio>
#include <exception>

#include "support/error.hpp"

namespace stocdr {

AtomicFileWriter::AtomicFileWriter(std::string path, bool carry_existing)
    : path_(std::move(path)), temp_path_(path_ + ".tmp") {
  file_ = std::fopen(temp_path_.c_str(), "w");
  if (file_ == nullptr) {
    throw IoError("AtomicFileWriter: cannot open temporary file: " +
                  temp_path_);
  }
  if (carry_existing) {
    if (std::FILE* existing = std::fopen(path_.c_str(), "r")) {
      char buf[1 << 14];
      std::size_t got;
      while ((got = std::fread(buf, 1, sizeof buf, existing)) > 0) {
        std::fwrite(buf, 1, got, file_);
      }
      std::fclose(existing);
    }
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (file_ == nullptr) return;
  try {
    commit();
  } catch (const std::exception&) {
    // Destructors must not throw; the temporary is left for inspection.
  }
}

void AtomicFileWriter::write(const std::string& data) {
  STOCDR_REQUIRE(file_ != nullptr,
                 "AtomicFileWriter::write after commit/discard");
  std::fwrite(data.data(), 1, data.size(), file_);
}

void AtomicFileWriter::commit() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    throw IoError("AtomicFileWriter: cannot rename " + temp_path_ + " -> " +
                  path_);
  }
}

void AtomicFileWriter::discard() {
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
  std::remove(temp_path_.c_str());
}

}  // namespace stocdr
