#include "support/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <exception>

#include "support/error.hpp"

namespace stocdr {

namespace {

std::atomic<IoFaultHook> io_fault_hook{nullptr};

}  // namespace

int arm_io_fault(const char* site) {
  const IoFaultHook hook = io_fault_hook.load(std::memory_order_acquire);
  return hook != nullptr ? hook(site) : 0;
}

void set_io_fault_hook(IoFaultHook hook) {
  io_fault_hook.store(hook, std::memory_order_release);
}

void flush_and_sync(std::FILE* file, const std::string& what) {
  if (std::fflush(file) != 0) {
    throw IoError("cannot flush " + what);
  }
  if (::fsync(::fileno(file)) != 0) {
    throw IoError("cannot fsync " + what);
  }
}

void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);  // some filesystems reject directory fsync; best-effort
  (void)::close(fd);
}

AtomicFileWriter::AtomicFileWriter(std::string path, bool carry_existing)
    : path_(std::move(path)),
      temp_path_(path_ + "." + std::to_string(::getpid()) + ".tmp") {
  file_ = std::fopen(temp_path_.c_str(), "w");
  if (file_ == nullptr) {
    throw IoError("AtomicFileWriter: cannot open temporary file: " +
                  temp_path_);
  }
  if (carry_existing) {
    if (std::FILE* existing = std::fopen(path_.c_str(), "r")) {
      char buf[1 << 14];
      std::size_t got;
      while ((got = std::fread(buf, 1, sizeof buf, existing)) > 0) {
        std::fwrite(buf, 1, got, file_);
      }
      std::fclose(existing);
    }
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (file_ == nullptr) return;
  try {
    commit();
  } catch (const std::exception&) {
    // Destructors must not throw; the temporary is left for inspection.
  }
}

void AtomicFileWriter::write(const std::string& data) {
  STOCDR_REQUIRE(file_ != nullptr,
                 "AtomicFileWriter::write after commit/discard");
  std::fwrite(data.data(), 1, data.size(), file_);
}

void AtomicFileWriter::commit() {
  if (file_ == nullptr) return;
  const int fault = arm_io_fault("io_write");
  if (fault == 1) {
    // Simulated write failure: behave exactly like a full disk — close and
    // remove the temporary, leave the target untouched, throw.
    std::fclose(file_);
    file_ = nullptr;
    std::remove(temp_path_.c_str());
    throw IoError("AtomicFileWriter: injected io_write failure for " + path_);
  }
  try {
    flush_and_sync(file_, "temporary file " + temp_path_);
  } catch (const IoError&) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
  if (fault == 2) {
    // Simulated torn write: expose only a prefix of the committed bytes, as
    // a crash between a non-atomic writer's blocks would.
    const long size = std::ftell(file_);
    if (size > 0) {
      (void)::ftruncate(::fileno(file_), static_cast<off_t>(size / 2));
    }
  }
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    throw IoError("AtomicFileWriter: cannot rename " + temp_path_ + " -> " +
                  path_);
  }
  sync_parent_dir(path_);
}

void AtomicFileWriter::discard() {
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
  std::remove(temp_path_.c_str());
}

}  // namespace stocdr
