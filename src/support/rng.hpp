// Deterministic pseudo-random number generation.
//
// The Monte-Carlo baseline (src/sim) and the randomized test suites need a
// fast, reproducible generator.  We implement xoshiro256++ (Blackman/Vigna),
// which has a 256-bit state, passes BigCrush, and is much faster than
// std::mt19937_64.  All randomness in the library flows through this type so
// experiments are bit-reproducible given a seed.
#pragma once

#include <cstdint>

namespace stocdr {

/// xoshiro256++ pseudo-random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions, but the library mostly uses the
/// convenience helpers below which avoid distribution-object overhead.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a 64-bit seed via SplitMix64 expansion
  /// (the initialization recommended by the xoshiro authors).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next 64 random bits.
  result_type operator()() { return next(); }

  /// Next 64 random bits.
  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal variate (Marsaglia polar method, cached pair).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace stocdr
