#include "support/timer.hpp"

#include <cstdio>

namespace stocdr {

double Timer::seconds() const {
  const auto elapsed = Clock::now() - start_;
  return std::chrono::duration<double>(elapsed).count();
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fmin", seconds / 60.0);
  }
  return buf;
}

}  // namespace stocdr
