#include "support/math.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace stocdr {

double gaussian_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * kPi);
}

double gaussian_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double gaussian_tail(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double gaussian_interval(double lo, double hi) {
  STOCDR_REQUIRE(lo <= hi, "gaussian_interval requires lo <= hi");
  if (lo >= 0.0) {
    // Right tail: difference of upper tails keeps relative accuracy.
    return gaussian_tail(lo) - gaussian_tail(hi);
  }
  if (hi <= 0.0) {
    // Left tail: mirror.
    return gaussian_tail(-hi) - gaussian_tail(-lo);
  }
  // Interval straddles zero: both CDF evaluations are well conditioned.
  return gaussian_cdf(hi) - gaussian_cdf(lo);
}

bool almost_equal(double a, double b, double rtol, double atol) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= atol + rtol * scale;
}

double kahan_sum(std::span<const double> values) {
  double sum = 0.0;
  double c = 0.0;
  for (const double v : values) {
    const double y = v - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double l1_norm(std::span<const double> values) {
  double sum = 0.0;
  double c = 0.0;
  for (const double v : values) {
    const double y = std::abs(v) - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double linf_norm(std::span<const double> values) {
  double m = 0.0;
  for (const double v : values) m = std::max(m, std::abs(v));
  return m;
}

double l1_distance(std::span<const double> a, std::span<const double> b) {
  STOCDR_REQUIRE(a.size() == b.size(), "l1_distance requires equal sizes");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

void normalize_l1(std::span<double> values) {
  const double sum = kahan_sum({values.data(), values.size()});
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    throw NumericalError("normalize_l1: vector sum is zero or non-finite");
  }
  for (double& v : values) v /= sum;
}

double ipow(double base, unsigned exponent) {
  double result = 1.0;
  double b = base;
  unsigned e = exponent;
  while (e != 0) {
    if (e & 1u) result *= b;
    b *= b;
    e >>= 1;
  }
  return result;
}

std::size_t gcd_size(std::size_t a, std::size_t b) {
  while (b != 0) {
    const std::size_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  STOCDR_REQUIRE(n >= 2, "linspace requires at least two points");
  std::vector<double> grid(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    grid[i] = lo + step * static_cast<double>(i);
  }
  grid.back() = hi;
  return grid;
}

}  // namespace stocdr
