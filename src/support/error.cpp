#include "support/error.hpp"

#include <sstream>

namespace stocdr::detail {

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << msg << " [" << expr << " at " << file << ":"
     << line << "]";
  throw PreconditionError(os.str());
}

void throw_internal(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ":"
     << line;
  throw InternalError(os.str());
}

}  // namespace stocdr::detail
