#include "support/text.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace stocdr {

TextTable::TextTable(std::vector<std::string> header) {
  STOCDR_REQUIRE(!header.empty(), "TextTable header must be non-empty");
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  STOCDR_REQUIRE(row.size() <= rows_.front().size(),
                 "TextTable row has more cells than the header");
  row.resize(rows_.front().size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  const std::size_t ncols = rows_.front().size();
  std::vector<std::size_t> widths(ncols, 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < ncols; ++c) {
      os << rows_[r][c];
      if (c + 1 < ncols) {
        os << std::string(widths[c] - rows_[r][c].size() + 2, ' ');
      }
    }
    os << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < ncols; ++c) {
        total += widths[c] + (c + 1 < ncols ? 2 : 0);
      }
      os << std::string(total, '-') << '\n';
    }
  }
  return os.str();
}

std::string ascii_density_plot(std::span<const double> x,
                               std::span<const double> density,
                               std::size_t width, std::size_t height) {
  STOCDR_REQUIRE(x.size() == density.size() && !x.empty(),
                 "ascii_density_plot requires matching non-empty spans");
  STOCDR_REQUIRE(width >= 8 && height >= 4,
                 "ascii_density_plot plot area too small");

  // Downsample (max-pool) the density onto `width` columns so narrow peaks
  // survive the reduction.
  std::vector<double> cols(width, 0.0);
  for (std::size_t i = 0; i < density.size(); ++i) {
    const std::size_t c =
        std::min(width - 1, i * width / density.size());
    cols[c] = std::max(cols[c], density[i]);
  }
  const double peak = *std::max_element(cols.begin(), cols.end());
  std::ostringstream os;
  if (peak <= 0.0) {
    os << "(density identically zero)\n";
    return os.str();
  }
  for (std::size_t r = 0; r < height; ++r) {
    const double level =
        peak * static_cast<double>(height - r) / static_cast<double>(height);
    os << (r == 0 ? "peak" : "    ") << " |";
    for (std::size_t c = 0; c < width; ++c) {
      os << (cols[c] >= level ? '#' : ' ');
    }
    os << '\n';
  }
  os << "     +" << std::string(width, '-') << '\n';
  char lo[32], hi[32];
  std::snprintf(lo, sizeof lo, "%.3g", x.front());
  std::snprintf(hi, sizeof hi, "%.3g", x.back());
  os << "      " << lo << std::string(width > std::string(lo).size() +
                                              std::string(hi).size()
                                          ? width - std::string(lo).size() -
                                                std::string(hi).size()
                                          : 1,
                                      ' ')
     << hi << '\n';
  return os.str();
}

std::string sci(double value, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*e", digits, value);
  return buf;
}

std::string fixed(double value, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace stocdr
