// A lightweight non-owning callable reference (in the spirit of
// std::function_ref from C++26).
//
// The FSM composition inner loop invokes a branch callback for every
// stochastic alternative of every component in every reachable state;
// std::function's ownership and allocation semantics are unnecessary there.
// FunctionRef is two words, trivially copyable, and valid only while the
// referenced callable is alive — callers must not store it.
#pragma once

#include <type_traits>
#include <utility>

namespace stocdr {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds to any callable object with a compatible signature.  The
  /// callable must outlive the FunctionRef.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             !std::is_function_v<std::remove_reference_t<F>> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): by design
      : object_(const_cast<void*>(static_cast<const void*>(&f))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  /// Binds to a plain function (pointer); functions have static lifetime so
  /// no dangling concern applies.
  FunctionRef(R (*fn)(Args...))  // NOLINT(google-explicit-constructor)
      : object_(reinterpret_cast<void*>(fn)),
        invoke_([](void* object, Args... args) -> R {
          return reinterpret_cast<R (*)(Args...)>(object)(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

}  // namespace stocdr
