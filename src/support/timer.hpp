// Wall-clock timing used by solver statistics and the benchmark harnesses.
#pragma once

#include <chrono>
#include <string>

namespace stocdr {

/// Simple monotonic wall-clock stopwatch.
///
/// The paper reports "Matrixformtime" and "Solvetime" for each experiment;
/// this is the clock those numbers come from in our reproduction.
class Timer {
 public:
  /// Constructs a running timer.
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer from zero.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const;

  /// Elapsed time in minutes (the unit the paper's annotations use).
  [[nodiscard]] double minutes() const { return seconds() / 60.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in seconds as a compact human-readable string,
/// e.g. "183ms", "2.41s", "3.2min".
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace stocdr
