// Crash-safe file writing: write to a temporary sibling, rename on commit.
//
// Artifact files (BENCH_<name>.json, JSONL traces) are read by downstream
// tooling; a process killed mid-write — a crash, a deadline kill, an OOM —
// must never leave a truncated artifact that parses halfway.  POSIX rename()
// within one directory is atomic, so readers observe either the previous
// complete file or the new complete file, never a prefix.
#pragma once

#include <cstdio>
#include <string>

namespace stocdr {

/// Writes `<path>.tmp` and renames it to `<path>` on commit().  If the
/// process dies before commit, the temporary is left behind and the target
/// is untouched.  Destruction commits automatically (so RAII users — e.g. a
/// trace sink closed at exit — finalize without an explicit call); use
/// discard() to drop the temporary instead.
class AtomicFileWriter {
 public:
  /// Opens `<path>.tmp` for writing; throws stocdr::IoError on failure.
  /// With `carry_existing`, the current contents of `path` (if any) are
  /// copied into the temporary first, preserving append semantics across
  /// opens of the same artifact.
  explicit AtomicFileWriter(std::string path, bool carry_existing = false);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The stdio handle of the temporary file; valid until commit()/discard().
  [[nodiscard]] std::FILE* handle() { return file_; }

  /// True while the temporary is open (neither committed nor discarded).
  [[nodiscard]] bool open() const { return file_ != nullptr; }

  /// Convenience: fwrite the whole string.
  void write(const std::string& data);

  /// Flushes, closes, and atomically renames the temporary onto the target.
  /// Idempotent.  Throws stocdr::IoError if the rename fails.
  void commit();

  /// Closes and removes the temporary without touching the target.
  void discard();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& temp_path() const { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::FILE* file_ = nullptr;
};

}  // namespace stocdr
