// Crash-safe file writing: write to a temporary sibling, rename on commit.
//
// Artifact files (BENCH_<name>.json, JSONL traces, checkpoints) are read by
// downstream tooling; a process killed mid-write — a crash, a deadline
// kill, an OOM — must never leave a truncated artifact that parses halfway.
// POSIX rename() within one directory is atomic, so readers observe either
// the previous complete file or the new complete file, never a prefix.
//
// Commit is durable, not just atomic: the temporary is fsync'd before the
// rename (so the bytes the rename exposes have reached the disk, not just
// the page cache) and the parent directory is fsync'd after it (so the
// rename itself survives a power loss).  The temporary name embeds the pid,
// so two processes racing on the same artifact path cannot clobber each
// other's in-flight temporary — last rename wins, and both files are whole.
#pragma once

#include <cstdio>
#include <string>

namespace stocdr {

/// Fault-injection seam for crash testing, installed by the
/// robust/faultinject engine (see docs/ROBUSTNESS.md).  Consulted once per
/// commit with site "io_write"; the returned code requests a simulated
/// fault: 0 = none, 1 = fail (throw IoError before the rename, target
/// untouched), 2 = torn (truncate the temporary to half its bytes, then
/// rename — a committed-but-mangled artifact downstream readers must
/// reject gracefully).
using IoFaultHook = int (*)(const char* site);
void set_io_fault_hook(IoFaultHook hook);

/// Arms `site` against the installed hook (0 = no fault / no hook).  Used
/// by support- and obs-layer writers that cannot link the faultinject
/// engine directly — e.g. the event log's "event_append" site.
int arm_io_fault(const char* site);

/// Writes `<path>.<pid>.tmp` and renames it to `<path>` on commit().  If
/// the process dies before commit, the temporary is left behind and the
/// target is untouched.  Destruction commits automatically (so RAII users —
/// e.g. a trace sink closed at exit — finalize without an explicit call);
/// use discard() to drop the temporary instead.
class AtomicFileWriter {
 public:
  /// Opens the pid-unique temporary for writing; throws stocdr::IoError on
  /// failure.  With `carry_existing`, the current contents of `path` (if
  /// any) are copied into the temporary first, preserving append semantics
  /// across opens of the same artifact.
  explicit AtomicFileWriter(std::string path, bool carry_existing = false);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The stdio handle of the temporary file; valid until commit()/discard().
  [[nodiscard]] std::FILE* handle() { return file_; }

  /// True while the temporary is open (neither committed nor discarded).
  [[nodiscard]] bool open() const { return file_ != nullptr; }

  /// Convenience: fwrite the whole string.
  void write(const std::string& data);

  /// Flushes, fsyncs, closes, and atomically renames the temporary onto the
  /// target, then fsyncs the parent directory.  Idempotent.  Throws
  /// stocdr::IoError if the flush, sync, or rename fails.
  void commit();

  /// Closes and removes the temporary without touching the target.
  void discard();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& temp_path() const { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::FILE* file_ = nullptr;
};

/// fsync of an already-open stdio stream (flush first); throws
/// stocdr::IoError on failure.  Shared by the writer above and the
/// append-mode sweep journal, which must make each appended line durable
/// without the temp+rename dance.
void flush_and_sync(std::FILE* file, const std::string& what);

/// Best-effort fsync of `path`'s parent directory, making a completed
/// rename/creat in it durable.  Errors are ignored: some filesystems reject
/// directory fsync, and the data files themselves are already synced.
void sync_parent_dir(const std::string& path);

}  // namespace stocdr
