#include "cdr/components.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::cdr {

DataSource::DataSource(double transition_density, std::size_t max_run_length)
    : Component("data"),
      density_(transition_density),
      max_run_(max_run_length) {
  STOCDR_REQUIRE(transition_density > 0.0 && transition_density <= 1.0,
                 "DataSource: transition density must be in (0, 1]");
  STOCDR_REQUIRE(max_run_length >= 1, "DataSource: max run must be >= 1");
}

void DataSource::enumerate(std::uint32_t state,
                           std::span<const std::uint32_t> /*inputs*/,
                           fsm::BranchSink sink) const {
  STOCDR_REQUIRE(state < max_run_, "DataSource: state out of range");
  // A transition is forced when the run has reached its specified maximum.
  const bool forced = state + 1 >= max_run_;
  const double p_transition = forced ? 1.0 : density_;
  const std::uint32_t yes = 1;
  const std::uint32_t no = 0;
  sink(p_transition, std::span<const std::uint32_t>(&yes, 1), 0);
  if (p_transition < 1.0) {
    sink(1.0 - p_transition, std::span<const std::uint32_t>(&no, 1),
         state + 1);
  }
}

PhaseDetector::PhaseDetector(const PhaseGrid& grid, double sigma_nw,
                             Options options)
    : Component("pd"),
      phase_values_(grid.values()),
      sigma_nw_(sigma_nw),
      options_(std::move(options)) {
  STOCDR_REQUIRE(sigma_nw >= 0.0, "PhaseDetector: sigma must be >= 0");
  STOCDR_REQUIRE(options_.dead_zone >= 0.0,
                 "PhaseDetector: dead zone must be >= 0");
}

PhaseDetector::PhaseDetector(const PhaseGrid& grid,
                             std::vector<double> nw_values, Options options)
    : Component("pd"),
      phase_values_(grid.values()),
      discretized_(true),
      nw_values_(std::move(nw_values)),
      options_(std::move(options)) {
  STOCDR_REQUIRE(!nw_values_.empty(),
                 "PhaseDetector: discretized n_w needs at least one atom");
  STOCDR_REQUIRE(options_.dead_zone >= 0.0,
                 "PhaseDetector: dead zone must be >= 0");
}

double PhaseDetector::lead_probability(double phi) const {
  const double dz = options_.dead_zone;
  if (sigma_nw_ == 0.0) return phi > dz ? 1.0 : 0.0;
  // P(phi + n_w > dz) = Phi((phi - dz) / sigma).
  return gaussian_cdf((phi - dz) / sigma_nw_);
}

double PhaseDetector::lag_probability(double phi) const {
  const double dz = options_.dead_zone;
  if (sigma_nw_ == 0.0) return phi < -dz ? 1.0 : 0.0;
  // P(phi + n_w < -dz) = Phi((-dz - phi) / sigma).
  return gaussian_cdf((-dz - phi) / sigma_nw_);
}

void PhaseDetector::enumerate(std::uint32_t /*state*/,
                              std::span<const std::uint32_t> inputs,
                              fsm::BranchSink sink) const {
  const std::uint32_t transition = inputs[0];
  const std::uint32_t phase_index = inputs[1];
  STOCDR_REQUIRE(phase_index < phase_values_.size(),
                 "PhaseDetector: phase index out of range");
  std::uint32_t cmd;
  if (transition == 0) {
    // No data edge: the detector is blind this cycle.
    cmd = kHold;
    sink(1.0, std::span<const std::uint32_t>(&cmd, 1), 0);
    return;
  }
  double phi = phase_values_[phase_index];
  std::size_t next_input = 2;
  if (has_sj()) {
    const std::uint32_t sj_index = inputs[next_input++];
    STOCDR_REQUIRE(sj_index < options_.sj_offsets_ui.size(),
                   "PhaseDetector: SJ index out of range");
    phi += options_.sj_offsets_ui[sj_index];
  }
  if (discretized_) {
    const std::uint32_t atom = inputs[next_input];
    STOCDR_REQUIRE(atom < nw_values_.size(),
                   "PhaseDetector: n_w atom out of range");
    const double noisy = phi + nw_values_[atom];
    const double dz = options_.dead_zone;
    cmd = noisy > dz ? kUp : (noisy < -dz ? kDown : kHold);
    sink(1.0, std::span<const std::uint32_t>(&cmd, 1), 0);
    return;
  }
  double p_lead = lead_probability(phi);
  double p_lag = lag_probability(phi);
  double p_null = 1.0 - p_lead - p_lag;
  // With a zero dead zone p_null is mathematically zero but can come out
  // as a few ulps of residue from the two erfc evaluations; folding that
  // into the larger branch avoids spurious NULL transitions in the TPM.
  if (p_null > 0.0 && p_null < 1e-12) {
    (p_lead >= p_lag ? p_lead : p_lag) += p_null;
    p_null = 0.0;
  }
  if (p_lead > 0.0) {
    cmd = kUp;
    sink(p_lead, std::span<const std::uint32_t>(&cmd, 1), 0);
  }
  if (p_lag > 0.0) {
    cmd = kDown;
    sink(p_lag, std::span<const std::uint32_t>(&cmd, 1), 0);
  }
  if (p_null > 0.0) {
    cmd = kHold;
    sink(p_null, std::span<const std::uint32_t>(&cmd, 1), 0);
  }
}

UpDownCounter::UpDownCounter(std::size_t overflow_length)
    : DeterministicComponent("counter"), length_(overflow_length) {
  STOCDR_REQUIRE(overflow_length >= 1,
                 "UpDownCounter: overflow length must be >= 1");
}

Command UpDownCounter::emitted(std::uint32_t state,
                               std::uint32_t pd_command) const {
  const std::int32_t count = count_of(state);
  const auto n = static_cast<std::int32_t>(length_);
  if (pd_command == kUp && count + 1 >= n) return kUp;
  if (pd_command == kDown && count - 1 <= -n) return kDown;
  return kHold;
}

std::uint32_t UpDownCounter::next_state(
    std::uint32_t state, std::span<const std::uint32_t> inputs) const {
  const std::uint32_t pd_command = inputs[0];
  STOCDR_REQUIRE(pd_command <= kUp, "UpDownCounter: bad command");
  const std::int32_t count = count_of(state);
  std::int32_t next = count;
  if (pd_command == kUp) next = count + 1;
  if (pd_command == kDown) next = count - 1;
  if (emitted(state, pd_command) != kHold) next = 0;  // overflow resets
  return static_cast<std::uint32_t>(next +
                                    static_cast<std::int32_t>(length_) - 1);
}

void UpDownCounter::outputs(std::uint32_t state,
                            std::span<const std::uint32_t> inputs,
                            std::span<std::uint32_t> out) const {
  out[0] = emitted(state, inputs[0]);
}

MajorityVoteFilter::MajorityVoteFilter(std::size_t window)
    : DeterministicComponent("vote"), window_(window) {
  STOCDR_REQUIRE(window >= 1, "MajorityVoteFilter: window must be >= 1");
}

std::pair<std::uint32_t, std::int32_t> MajorityVoteFilter::decode(
    std::uint32_t state) const {
  STOCDR_REQUIRE(state < window_ * window_,
                 "MajorityVoteFilter: state out of range");
  // state = s^2 + (m + s), 0 <= m + s <= 2s.
  std::uint32_t s = 0;
  while ((s + 1) * (s + 1) <= state) ++s;
  const auto m = static_cast<std::int32_t>(state - s * s) -
                 static_cast<std::int32_t>(s);
  return {s, m};
}

Command MajorityVoteFilter::emitted(std::uint32_t state,
                                    std::uint32_t pd_command) const {
  if (pd_command == kHold) return kHold;
  const auto [s, m] = decode(state);
  if (s + 1 < window_) return kHold;  // window not full yet
  const std::int32_t final_sum = m + (pd_command == kUp ? 1 : -1);
  if (final_sum > 0) return kUp;
  if (final_sum < 0) return kDown;
  return kHold;  // tie (possible for even windows)
}

std::uint32_t MajorityVoteFilter::next_state(
    std::uint32_t state, std::span<const std::uint32_t> inputs) const {
  const std::uint32_t pd_command = inputs[0];
  STOCDR_REQUIRE(pd_command <= kUp, "MajorityVoteFilter: bad command");
  if (pd_command == kHold) return state;  // NULL cycles are not counted
  const auto [s, m] = decode(state);
  if (s + 1 >= window_) return 0;  // vote complete: restart
  const std::uint32_t s_next = s + 1;
  const std::int32_t m_next = m + (pd_command == kUp ? 1 : -1);
  return s_next * s_next +
         static_cast<std::uint32_t>(m_next + static_cast<std::int32_t>(s_next));
}

void MajorityVoteFilter::outputs(std::uint32_t state,
                                 std::span<const std::uint32_t> inputs,
                                 std::span<std::uint32_t> out) const {
  out[0] = emitted(state, inputs[0]);
}

PhaseErrorFsm::PhaseErrorFsm(const PhaseGrid& grid, std::size_t step_cells,
                             std::vector<std::int32_t> nr_offsets,
                             BoundaryMode boundary, std::uint32_t initial_index)
    : DeterministicComponent("phase"),
      points_(grid.size()),
      step_cells_(static_cast<std::int64_t>(step_cells)),
      nr_offsets_(std::move(nr_offsets)),
      boundary_(boundary),
      initial_(initial_index) {
  STOCDR_REQUIRE(step_cells >= 1, "PhaseErrorFsm: step must be >= 1 cell");
  STOCDR_REQUIRE(!nr_offsets_.empty(),
                 "PhaseErrorFsm: n_r offset table is empty");
  STOCDR_REQUIRE(initial_index < points_,
                 "PhaseErrorFsm: initial index out of range");
  for (const std::int32_t off : nr_offsets_) {
    STOCDR_REQUIRE(static_cast<std::size_t>(std::abs(off)) < points_ / 4,
                   "PhaseErrorFsm: n_r offset too large for the grid");
  }
  STOCDR_REQUIRE(static_cast<std::size_t>(step_cells_) < points_ / 4,
                 "PhaseErrorFsm: correction step too large for the grid");
}

void PhaseErrorFsm::moore_outputs(std::uint32_t state,
                                  std::span<std::uint32_t> outputs) const {
  outputs[0] = state;
}

std::int64_t PhaseErrorFsm::raw_next(std::uint32_t state,
                                     std::uint32_t command,
                                     std::uint32_t nr_atom) const {
  STOCDR_REQUIRE(command <= kUp, "PhaseErrorFsm: bad command");
  STOCDR_REQUIRE(nr_atom < nr_offsets_.size(),
                 "PhaseErrorFsm: n_r atom out of range");
  // Eqn (2): Phi_k = Phi_{k-1} - f(...) + n_r, with f = +G on UP, -G on DOWN.
  std::int64_t raw = static_cast<std::int64_t>(state);
  if (command == kUp) raw -= step_cells_;
  if (command == kDown) raw += step_cells_;
  raw += nr_offsets_[nr_atom];
  return raw;
}

std::uint32_t PhaseErrorFsm::next_state(
    std::uint32_t state, std::span<const std::uint32_t> inputs) const {
  const std::int64_t raw = raw_next(state, inputs[0], inputs[1]);
  const auto n = static_cast<std::int64_t>(points_);
  if (boundary_ == BoundaryMode::kSaturate) {
    return static_cast<std::uint32_t>(std::clamp<std::int64_t>(raw, 0, n - 1));
  }
  std::int64_t m = raw % n;
  if (m < 0) m += n;
  return static_cast<std::uint32_t>(m);
}

}  // namespace stocdr::cdr
