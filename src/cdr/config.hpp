// Configuration of the digital phase-selection loop model.
//
// The parameters mirror the knobs of the paper's industrial design
// (Figures 1 and 2): number of selectable VCO clock phases, the loop-filter
// counter length, the SONET data statistics, and the two noise processes
// n_w (eye-opening jitter) and n_r (drift/interference).
#pragma once

#include <cstddef>
#include <string>

namespace stocdr::cdr {

/// How the eye-opening jitter n_w enters the phase-detector decision.
enum class PdNoiseMode {
  /// The decision probability P(Phi + n_w > 0) uses the exact Gaussian CDF
  /// (equivalent to an infinitely fine n_w discretization).  Default.
  kExactGaussian,
  /// n_w is discretized into `nw_atoms` grid atoms and enters the network
  /// as an explicit IidSource (the paper's fully discretized formulation;
  /// kept for cross-validation and for non-Gaussian eye specifications).
  kDiscretized,
};

/// Behaviour of the phase error at the +-1/2 UI boundary.
enum class BoundaryMode {
  kWrap,      ///< physical: the phase circle wraps; crossing = cycle slip
  kSaturate,  ///< clamp (useful for studying the loop without slips)
};

/// Digital loop-filter architecture between the PD and the phase selector.
enum class FilterType {
  /// The paper's circuit: an up/down counter of overflow length N that
  /// emits UP/DOWN on overflow and resets.
  kUpDownCounter,
  /// A majority-vote (ballot) filter: collects N non-NULL PD decisions,
  /// emits the majority sign, resets.  A common alternative in burst-mode
  /// retimers; compared against the counter in bench/filter_architectures.
  kMajorityVote,
};

/// All knobs of the CDR model.  Defaults describe a plausible SONET-type
/// design near the paper's operating points (see DESIGN.md on OCR-lost
/// numerals).
struct CdrConfig {
  // --- discretization -----------------------------------------------------
  /// Number of phase-error grid cells (even; powers of two coarsen evenly).
  std::size_t phase_points = 512;

  // --- circuit ------------------------------------------------------------
  /// Selectable VCO clock phases; the smallest phase correction is
  /// G = 1/vco_phases UI.  Must divide phase_points.
  std::size_t vco_phases = 16;

  /// Loop-filter architecture (see FilterType).
  FilterType filter_type = FilterType::kUpDownCounter;

  /// Loop-filter depth N: the up/down counter's overflow length, or the
  /// majority-vote window.  The paper's Figure 5 sweeps this around the
  /// optimum 8.
  std::size_t counter_length = 8;

  /// Phase-detector dead zone in UI: |Phi + n_w| below this produces NULL
  /// even on a data transition (0 = the paper's pure signum detector).
  /// Ternary ("bang-bang with hold") detectors reduce hunting jitter at the
  /// cost of a wider static offset window.
  double pd_dead_zone = 0.0;

  // --- data statistics (SONET) ---------------------------------------------
  /// Probability of a data transition in each bit (scrambled NRZ ~ 0.5).
  double transition_density = 0.5;

  /// Maximum run of identical bits; a transition is forced afterwards
  /// (SONET specifies the longest possible transition-free sequence).
  std::size_t max_run_length = 8;

  // --- noise --------------------------------------------------------------
  /// RMS of the zero-mean white Gaussian eye-opening jitter n_w, in UI.
  double sigma_nw = 0.012;

  /// Mean of the drift noise n_r in UI/cycle (frequency offset between the
  /// incoming data and the local clock).  With the default loop (G = 1/16
  /// UI, counter 8, transition density ~0.53) the maximum trackable drift
  /// is ~0.004 UI/cycle; the default leaves a 4x margin, which places the
  /// counter-length optimum at 8 as in the paper's Figure 5.
  double nr_mean = 0.001;

  /// Bound of the (non-Gaussian, biased) n_r amplitude distribution, in UI.
  double nr_max = 0.003;

  /// Number of atoms in the discretized n_r PMF.
  std::size_t nr_atoms = 7;

  /// Phase-detector noise handling (see PdNoiseMode).
  PdNoiseMode pd_noise_mode = PdNoiseMode::kExactGaussian;

  /// Atoms for the discretized n_w (PdNoiseMode::kDiscretized only).
  std::size_t nw_atoms = 17;

  // --- sinusoidal (periodic) jitter ----------------------------------------
  /// Amplitude of deterministic sinusoidal jitter on the incoming data, in
  /// UI (0 = off).  Unlike the white n_w/n_r processes this is *correlated*
  /// cycle-to-cycle: it is modeled by an explicit rotating-phase FSM whose
  /// offset adds to the phase-detector input, enabling jitter-tolerance
  /// masks (amplitude vs frequency) to be computed analytically.
  double sj_amplitude = 0.0;

  /// Period of the sinusoidal jitter in bit cycles (frequency = 1/period of
  /// the bit rate).  Must be >= 4 when sj_amplitude > 0.
  std::size_t sj_period = 64;

  // --- boundary -----------------------------------------------------------
  BoundaryMode boundary = BoundaryMode::kWrap;

  /// The smallest phase correction G in UI.
  [[nodiscard]] double phase_step_ui() const {
    return 1.0 / static_cast<double>(vco_phases);
  }

  /// The correction G in grid cells.
  [[nodiscard]] std::size_t phase_step_cells() const {
    return phase_points / vco_phases;
  }

  /// Throws PreconditionError if any parameter is out of range or the
  /// parameters are inconsistent (e.g. vco_phases does not divide
  /// phase_points, or n_r is too small to register on the grid).
  void validate() const;

  /// One-line summary used by benches ("COUNTER: 8 STDnw: 1.2e-02 ...").
  [[nodiscard]] std::string summary() const;
};

}  // namespace stocdr::cdr
