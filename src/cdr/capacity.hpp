// Config-level capacity prediction for CDR chains.
//
// Predicts the composed chain's state and transition counts *from the
// configuration alone* — before any enumeration — and feeds them to the
// generic heap-capacity model (obs/mem/capacity.hpp).  This is what lets
// `cdr_analyzer --mem-estimate` print a footprint table without building
// the chain, and what a caller can use to set
// RobustOptions::memory_budget_bytes ahead of time.
//
// The state count is the product of the per-component *reachable* state
// counts (the composition prunes unreachable product states, but for this
// network the pruning is tiny: measured 0.998 of the full product on the
// paper's Figure 4 configuration):
//
//   states ~= max_run_length                    (data source)
//           * counter_reachable(filter, N)      (2N-1 up/down; N(N+1)/2 vote)
//           * phase_points                      (phase-error FSM)
//           * sj_period      (when sj_amplitude > 0)
//           * nw_atoms       (when pd_noise_mode == kDiscretized)
//
// The transition count per state is the branching factor of one clock
// cycle — data transition (2) x n_r atoms x n_w atoms when discretized —
// deflated by a merge factor for branches that land on the same successor
// (measured 0.8 on Figure 4: 11.19 stored transitions per state against a
// 2 x 7 branching product).
#pragma once

#include <cstdint>

#include "cdr/config.hpp"
#include "obs/mem/capacity.hpp"

namespace stocdr::cdr {

/// The prediction: structural counts plus the byte breakdown they imply.
struct CdrCapacityEstimate {
  std::uint64_t states = 0;       ///< predicted composed-chain states
  std::uint64_t transitions = 0;  ///< predicted stored transitions (nnz)
  obs::mem::CapacityBreakdown breakdown;  ///< byte model at those counts

  /// Headline number: predicted peak live bytes of build + solve.
  [[nodiscard]] std::uint64_t peak_bytes() const {
    return breakdown.peak_bytes();
  }
};

/// Predicts the chain dimensions and footprint for `config`.  Pure
/// function; does not build anything.  The config should be valid
/// (config.validate() passes); the prediction is still well-defined for
/// invalid configs but meaningless.
[[nodiscard]] CdrCapacityEstimate estimate_cdr_capacity(
    const CdrConfig& config);

/// The matrix-free counterpart: predicted footprint of solving through the
/// Kronecker descriptor (cdr/kron_model.hpp).  States are the *full*
/// tensor product (the descriptor does no reachability pruning); the
/// operator bytes bound the factor storage of the main + slip descriptors;
/// the workspace prices the operator ladder's iterate vectors.  Only
/// meaningful when kronecker_supported(config) holds.
struct KronCapacityEstimate {
  std::uint64_t states = 0;            ///< full product-space states
  std::uint64_t descriptor_bytes = 0;  ///< predicted factor storage
  obs::mem::CapacityBreakdown breakdown;

  [[nodiscard]] std::uint64_t peak_bytes() const {
    return breakdown.peak_bytes();
  }
};

[[nodiscard]] KronCapacityEstimate estimate_kron_capacity(
    const CdrConfig& config);

}  // namespace stocdr::cdr
