#include "cdr/kron_model.hpp"

#include <array>
#include <cmath>
#include <utility>

#include "cdr/components.hpp"
#include "fsm/component.hpp"
#include "kronecker/step_operator.hpp"
#include "obs/mem/mem.hpp"
#include "obs/trace.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"
#include "support/math.hpp"
#include "support/timer.hpp"

namespace stocdr::cdr {

namespace {

/// Which phase-factor entries a build pass keeps: everything, or only the
/// transitions whose raw (unwrapped) phase successor leaves the grid in one
/// direction — the slip-flux restrictions.
enum class PhaseFilter { kAll, kWrapUp, kWrapDown };

std::vector<std::size_t> make_dims(const CdrModel& model) {
  const fsm::Network& net = model.network();
  return {net.component(model.data_index()).num_states(),
          net.component(model.counter_index()).num_states(),
          net.component(model.phase_index()).num_states()};
}

}  // namespace

bool kronecker_supported(const CdrConfig& config, std::string* reason) {
  const auto fail = [&](const char* why) {
    if (reason) *reason = why;
    return false;
  };
  if (config.sj_amplitude > 0.0) {
    return fail(
        "sinusoidal jitter feeds the rotor phase into the detector, so the "
        "TPM does not factor over (data, filter, phase)");
  }
  if (config.pd_noise_mode == PdNoiseMode::kDiscretized) {
    return fail(
        "discretized n_w routes an extra noise source into the detector "
        "commands; only the exact-Gaussian detector is factorized");
  }
  if (reason) reason->clear();
  return true;
}

KroneckerCdrModel::KroneckerCdrModel(const CdrModel& model)
    : model_(&model),
      descriptor_(make_dims(model)),
      slip_up_(make_dims(model)),
      slip_down_(make_dims(model)) {
  std::string reason;
  STOCDR_REQUIRE(kronecker_supported(model.config(), &reason),
                 "KroneckerCdrModel: " + reason);
  const Timer timer;
  obs::Span span("cdr.kron_form");

  const fsm::Network& net = model.network();
  const auto& pd = dynamic_cast<const PhaseDetector&>(
      net.component(model.phase_detector_index()));
  const auto& filter = dynamic_cast<const fsm::DeterministicComponent&>(
      net.component(model.counter_index()));
  const auto& phase_fsm =
      dynamic_cast<const PhaseErrorFsm&>(net.component(model.phase_index()));
  const auto& nr_source = dynamic_cast<const fsm::IidSource&>(
      net.component(model.nr_source_index()));
  const std::vector<double>& pmf = nr_source.pmf();

  const std::size_t n_d = dims()[0];
  const std::size_t n_c = dims()[1];
  const std::size_t points = dims()[2];
  const PhaseGrid& grid = model.grid();

  // Per-phase detector probabilities, with PhaseDetector::enumerate's exact
  // residue folding so both representations place mass on the same branches.
  std::vector<double> p_lead(points), p_lag(points), p_null(points);
  for (std::size_t i = 0; i < points; ++i) {
    double lead = pd.lead_probability(grid.value(i));
    double lag = pd.lag_probability(grid.value(i));
    double null = 1.0 - lead - lag;
    if (null > 0.0 && null < 1e-12) {
      (lead >= lag ? lead : lag) += null;
      null = 0.0;
    }
    p_lead[i] = lead;
    p_lag[i] = lag;
    p_null[i] = null;
  }

  // Data factors: A^(1)[d, 0] = p_trans(d) (transition resets the run),
  // A^(0)[d, d+1] = 1 - p_trans(d), with the transition forced at the
  // maximum run length.
  sparse::CooBuilder a1_builder(n_d, n_d);
  sparse::CooBuilder a0_builder(n_d, n_d);
  const double density = model.config().transition_density;
  for (std::size_t d = 0; d < n_d; ++d) {
    const double p = d + 1 >= n_d ? 1.0 : density;
    a1_builder.add(d, 0, p);
    if (p < 1.0) a0_builder.add(d, d + 1, 1.0 - p);
  }
  const sparse::CsrMatrix a1 = a1_builder.to_csr();
  const sparse::CsrMatrix a0 = a0_builder.to_csr();

  // Filter factors C^(a,b): the deterministic (state, successor) pairs under
  // detector command a, grouped by the command b the filter emits.  Built
  // from the component's own next_state/outputs, so it is generic over both
  // loop-filter types.
  std::array<std::array<std::vector<std::pair<std::uint32_t, std::uint32_t>>,
                        3>,
             3>
      filter_pairs;
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t c = 0; c < n_c; ++c) {
      std::uint32_t b = kHold;
      filter.outputs(c, std::span<const std::uint32_t>(&a, 1),
                     std::span<std::uint32_t>(&b, 1));
      STOCDR_REQUIRE(b < 3, "KroneckerCdrModel: filter emitted a non-command");
      const std::uint32_t next =
          filter.next_state(c, std::span<const std::uint32_t>(&a, 1));
      filter_pairs[a][b].emplace_back(c, next);
    }
  }
  const auto filter_csr =
      [&](const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs) {
        sparse::CooBuilder builder(n_c, n_c);
        for (const auto& [c, next] : pairs) builder.add(c, next, 1.0);
        return builder.to_csr();
      };

  // Phase factors Diag(w) * S_b: row phi carries weight w(phi) spread over
  // the n_r atoms, with successors from the phase FSM's own raw/wrap/clamp
  // arithmetic.  `weight == nullptr` means weight 1 (the detector-blind
  // no-transition cycle).
  const auto phase_csr = [&](std::uint32_t b, const std::vector<double>* weight,
                             PhaseFilter restrict_to) {
    sparse::CooBuilder builder(points, points);
    for (std::uint32_t phi = 0; phi < points; ++phi) {
      const double w = weight ? (*weight)[phi] : 1.0;
      if (!(w > 0.0)) continue;
      for (std::uint32_t r = 0; r < pmf.size(); ++r) {
        if (pmf[r] <= 0.0) continue;
        if (restrict_to != PhaseFilter::kAll) {
          const std::int64_t raw = phase_fsm.raw_next(phi, b, r);
          const bool wraps_up = raw >= static_cast<std::int64_t>(points);
          const bool wraps_down = raw < 0;
          if (restrict_to == PhaseFilter::kWrapUp && !wraps_up) continue;
          if (restrict_to == PhaseFilter::kWrapDown && !wraps_down) continue;
        }
        const std::uint32_t inputs[2] = {b, r};
        builder.add(phi, phase_fsm.next_state(phi, inputs), w * pmf[r]);
      }
    }
    return builder.to_csr();
  };

  // Assemble the additive terms.  Per conditioning case (t=0 blind cycle;
  // t=1 with detector command a) and per emitted command b, the term is
  // data (x) filter (x) phase — each factor transposed so the descriptor
  // stores P^T, the library-wide storage convention.
  struct Case {
    const sparse::CsrMatrix* data;
    std::uint32_t a;
    const std::vector<double>* weight;
  };
  const std::array<Case, 4> cases = {{
      {&a0, kHold, nullptr},  // no data edge: detector blind, holds
      {&a1, kHold, &p_null},  // edge, dead-zone NULL
      {&a1, kUp, &p_lead},    // edge, LEAD
      {&a1, kDown, &p_lag},   // edge, LAG
  }};
  const auto add_terms = [&](kron::KroneckerDescriptor& dest,
                             PhaseFilter restrict_to) {
    for (const Case& cs : cases) {
      if (cs.data->nnz() == 0) continue;
      for (std::uint32_t b = 0; b < 3; ++b) {
        if (filter_pairs[cs.a][b].empty()) continue;
        sparse::CsrMatrix phase = phase_csr(b, cs.weight, restrict_to);
        if (phase.nnz() == 0) continue;
        kron::KroneckerTerm term;
        term.factors.push_back(cs.data->transpose());
        term.factors.push_back(filter_csr(filter_pairs[cs.a][b]).transpose());
        term.factors.push_back(phase.transpose());
        dest.add_term(std::move(term));
      }
    }
  };
  add_terms(descriptor_, PhaseFilter::kAll);
  if (model.config().boundary == BoundaryMode::kWrap) {
    add_terms(slip_up_, PhaseFilter::kWrapUp);
    add_terms(slip_down_, PhaseFilter::kWrapDown);
  }

  storage_bytes_ = descriptor_.storage_bytes() + slip_up_.storage_bytes() +
                   slip_down_.storage_bytes();
  form_seconds_ = timer.seconds();
  if (obs::mem::enabled()) {
    obs::mem::report_component("kron_descriptor", storage_bytes_);
  }
  if (span.active()) {
    span.attr("states", static_cast<std::uint64_t>(num_states()));
    span.attr("terms", static_cast<std::uint64_t>(descriptor_.num_terms()));
    span.attr("storage_bytes", static_cast<std::uint64_t>(storage_bytes_));
    span.attr("form_seconds", form_seconds_);
  }
}

std::size_t KroneckerCdrModel::state_index(std::uint32_t d, std::uint32_t c,
                                           std::uint32_t phi) const {
  const std::vector<std::size_t>& dm = dims();
  STOCDR_REQUIRE(d < dm[0] && c < dm[1] && phi < dm[2],
                 "state_index: coordinate out of range");
  return (static_cast<std::size_t>(d) * dm[1] + c) * dm[2] + phi;
}

std::vector<double> KroneckerCdrModel::phase_marginal(
    std::span<const double> eta) const {
  STOCDR_REQUIRE(eta.size() == num_states(),
                 "phase_marginal: eta size mismatch");
  const std::size_t points = dims().back();
  std::vector<double> marginal(points, 0.0);
  for (std::size_t i = 0; i < eta.size(); ++i) {
    marginal[i % points] += eta[i];
  }
  return marginal;
}

std::vector<double> KroneckerCdrModel::phase_density(
    std::span<const double> eta) const {
  std::vector<double> density = phase_marginal(eta);
  const double step = model_->grid().step();
  for (double& d : density) d /= step;
  return density;
}

double KroneckerCdrModel::bit_error_rate(std::span<const double> eta) const {
  obs::Span span("cdr.measure.ber");
  const std::vector<double> marginal = phase_marginal(eta);
  // Only the exact-Gaussian detector reaches here (the discretized mode is
  // rejected at construction), and without SJ the effective phase is the
  // grid value itself.
  const double sigma = model_->config().sigma_nw;
  const PhaseGrid& grid = model_->grid();
  double ber = 0.0;
  for (std::size_t i = 0; i < marginal.size(); ++i) {
    if (marginal[i] == 0.0) continue;
    const double phi = grid.value(i);
    double p_err;
    if (sigma == 0.0) {
      p_err = std::abs(phi) > 0.5 ? 1.0 : 0.0;
    } else {
      p_err = gaussian_tail((0.5 - phi) / sigma) +
              gaussian_tail((0.5 + phi) / sigma);
    }
    ber += marginal[i] * p_err;
  }
  return ber;
}

PhaseErrorMoments KroneckerCdrModel::phase_error_moments(
    std::span<const double> eta) const {
  const std::vector<double> marginal = phase_marginal(eta);
  const PhaseGrid& grid = model_->grid();
  PhaseErrorMoments moments;
  double second = 0.0;
  for (std::size_t i = 0; i < marginal.size(); ++i) {
    const double phi = grid.value(i);
    moments.mean += marginal[i] * phi;
    second += marginal[i] * phi * phi;
  }
  moments.rms = std::sqrt(second);
  return moments;
}

SlipStats KroneckerCdrModel::slip_stats(std::span<const double> eta) const {
  STOCDR_REQUIRE(model_->config().boundary == BoundaryMode::kWrap,
                 "slip_stats requires BoundaryMode::kWrap");
  STOCDR_REQUIRE(eta.size() == num_states(), "slip_stats: eta size mismatch");
  // The slip flux is the total mass the wrap-restricted kernels move in one
  // step: rate = 1^T (P_wrap^T eta), one shuffle apply per direction.  A raw
  // successor >= M wrapped downward in index, i.e. the phase crossed +1/2 UI.
  std::vector<double> flux(num_states());
  SlipStats stats;
  slip_up_.apply(eta, flux);
  stats.rate_up = kahan_sum(flux);
  slip_down_.apply(eta, flux);
  stats.rate_down = kahan_sum(flux);
  return stats;
}

robust::RobustResult solve_stationary_robust(const KroneckerCdrModel& model,
                                             const robust::RobustOptions& options,
                                             std::span<const double> initial) {
  const kron::KroneckerStepOperator op(model.descriptor());
  return robust::solve_stationary_robust(op, options, initial,
                                         model.storage_bytes(), "kronecker");
}

}  // namespace stocdr::cdr
