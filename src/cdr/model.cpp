#include "cdr/model.hpp"

#include <cmath>
#include <memory>
#include <unordered_map>

#include "noise/jitter.hpp"
#include "obs/mem/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/math.hpp"
#include "support/timer.hpp"

namespace stocdr::cdr {

CdrChain::CdrChain(fsm::ComposedChain composed,
                   std::vector<std::uint32_t> phase,
                   std::vector<std::uint32_t> label,
                   std::vector<double> effective_phase_ui,
                   double form_seconds)
    : composed_(std::move(composed)),
      phase_(std::move(phase)),
      label_(std::move(label)),
      effective_phase_(std::move(effective_phase_ui)),
      form_seconds_(form_seconds) {
  STOCDR_REQUIRE(phase_.size() == composed_.num_states() &&
                     label_.size() == composed_.num_states() &&
                     effective_phase_.size() == composed_.num_states(),
                 "CdrChain: annotation arrays must cover every state");
}

std::vector<markov::Partition> CdrChain::hierarchy(
    std::size_t coarsest_size) const {
  return solvers::build_grid_pair_hierarchy(phase_, label_, coarsest_size);
}

namespace {

/// The n_r PMF quantized onto the phase grid, from the SONET drift model.
noise::GridNoise make_nr_noise(const CdrConfig& config,
                               const PhaseGrid& grid) {
  if (config.nr_max == 0.0 && config.nr_mean == 0.0) {
    return noise::GridNoise{{0}, {1.0}};
  }
  const noise::DiscreteDistribution dist =
      noise::sonet_drift_noise(config.nr_mean, config.nr_max, config.nr_atoms);
  return noise::quantize_to_grid(dist, grid.step());
}

}  // namespace

CdrModel::CdrModel(const CdrConfig& config)
    : CdrModel(config, make_nr_noise(config, PhaseGrid(config.phase_points))) {
}

CdrModel::CdrModel(const CdrConfig& config, noise::GridNoise nr_noise)
    : config_(config), grid_(config.phase_points) {
  config_.validate();
  nr_noise_ = std::move(nr_noise);
  STOCDR_REQUIRE(!nr_noise_.offsets.empty() &&
                     nr_noise_.offsets.size() == nr_noise_.probabilities.size(),
                 "CdrModel: malformed n_r grid noise");

  data_ = network_.add_component(std::make_unique<DataSource>(
      config_.transition_density, config_.max_run_length));

  // Sinusoidal-jitter rotor: a deterministic cyclic Markov chain whose
  // Moore output (its own state) indexes the offset table held by the PD.
  if (config_.sj_amplitude > 0.0) {
    const std::size_t period = config_.sj_period;
    sj_offsets_ui_.resize(period);
    for (std::size_t k = 0; k < period; ++k) {
      sj_offsets_ui_[k] = config_.sj_amplitude *
                          std::sin(2.0 * kPi * static_cast<double>(k) /
                                   static_cast<double>(period));
    }
    std::vector<std::vector<double>> rows(period,
                                          std::vector<double>(period, 0.0));
    for (std::size_t k = 0; k < period; ++k) rows[k][(k + 1) % period] = 1.0;
    sj_ = static_cast<std::ptrdiff_t>(network_.add_component(
        std::make_unique<fsm::MarkovSource>("sj", std::move(rows))));
  }

  PhaseDetector::Options pd_options;
  pd_options.dead_zone = config_.pd_dead_zone;
  pd_options.sj_offsets_ui = sj_offsets_ui_;

  const bool discretized =
      config_.pd_noise_mode == PdNoiseMode::kDiscretized;
  if (discretized) {
    // Atoms span +-4 sigma; the step is chosen so that nw_atoms atoms cover
    // that support.
    constexpr double kSupportSigmas = 4.0;
    const noise::DiscreteDistribution nw =
        config_.sigma_nw == 0.0
            ? noise::DiscreteDistribution::point(0.0)
            : noise::discretize_gaussian(
                  0.0, config_.sigma_nw,
                  2.0 * kSupportSigmas * config_.sigma_nw /
                      static_cast<double>(config_.nw_atoms - 1),
                  kSupportSigmas);
    nw_values_.assign(nw.values().begin(), nw.values().end());
    pd_ = network_.add_component(
        std::make_unique<PhaseDetector>(grid_, nw_values_, pd_options));
    nw_ = static_cast<std::ptrdiff_t>(network_.add_component(
        std::make_unique<fsm::IidSource>(
            "nw", std::vector<double>(nw.probabilities().begin(),
                                      nw.probabilities().end()))));
  } else {
    pd_ = network_.add_component(
        std::make_unique<PhaseDetector>(grid_, config_.sigma_nw, pd_options));
  }

  if (config_.filter_type == FilterType::kUpDownCounter) {
    counter_ = network_.add_component(
        std::make_unique<UpDownCounter>(config_.counter_length));
  } else {
    counter_ = network_.add_component(
        std::make_unique<MajorityVoteFilter>(config_.counter_length));
  }

  // Initial phase error: one correction step off center, a generic
  // out-of-lock starting point within the pull-in range.
  const auto initial_index = static_cast<std::uint32_t>(
      grid_.size() / 2 + config_.phase_step_cells() / 2);
  phase_ = network_.add_component(std::make_unique<PhaseErrorFsm>(
      grid_, config_.phase_step_cells(), nr_noise_.offsets, config_.boundary,
      initial_index));

  nr_ = network_.add_component(
      std::make_unique<fsm::IidSource>("nr", nr_noise_.probabilities));

  // Wiring (paper Figure 2): data -> PD; phase state -> PD; PD -> counter;
  // counter -> phase; n_r -> phase; (n_w -> PD in discretized mode).
  network_.connect({data_, 0}, pd_, 0);
  network_.connect({phase_, 0}, pd_, 1);
  std::size_t next_pd_port = 2;
  if (sj_ >= 0) {
    network_.connect({static_cast<std::size_t>(sj_), 0}, pd_, next_pd_port++);
  }
  if (discretized) {
    network_.connect({static_cast<std::size_t>(nw_), 0}, pd_, next_pd_port);
  }
  network_.connect({pd_, 0}, counter_, 0);
  network_.connect({counter_, 0}, phase_, 0);
  network_.connect({nr_, 0}, phase_, 1);
  network_.validate();
}

std::size_t CdrModel::sj_index() const {
  STOCDR_REQUIRE(sj_ >= 0, "sj_index: sinusoidal jitter is disabled");
  return static_cast<std::size_t>(sj_);
}

std::size_t CdrModel::nw_source_index() const {
  STOCDR_REQUIRE(nw_ >= 0,
                 "nw_source_index: model uses the exact-Gaussian phase "
                 "detector (no explicit n_w source)");
  return static_cast<std::size_t>(nw_);
}

CdrChain CdrModel::build(const fsm::ComposeOptions& options) const {
  const Timer timer;
  // The paper's "Matrixformtime": state/transition enumeration plus the
  // phase annotation pass, each traced as its own sub-span.
  obs::Span span("cdr.matrix_form");

  obs::Span compose_span("cdr.compose");
  fsm::ComposedChain composed = network_.compose(options);
  if (compose_span.active()) {
    compose_span.attr("states", composed.num_states());
    compose_span.attr("transitions", composed.chain().num_transitions());
  }
  compose_span.end();
  const double form_seconds = timer.seconds();

  obs::Span annotate_span("cdr.annotate");
  const std::size_t n = composed.num_states();
  std::vector<std::uint32_t> phase_coord(n);
  std::vector<std::uint32_t> label(n);
  // Gap-free labels over the non-phase coordinates: hash the full-space
  // index with the phase dimension zeroed.
  std::unordered_map<std::uint64_t, std::uint32_t> label_ids;
  std::vector<double> effective_phase(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto coords = composed.coordinates(i);
    phase_coord[i] = coords[phase_];
    effective_phase[i] = grid_.value(phase_coord[i]);
    if (sj_ >= 0) {
      effective_phase[i] +=
          sj_offsets_ui_[coords[static_cast<std::size_t>(sj_)]];
    }
    coords[phase_] = 0;
    const std::uint64_t key = composed.space().encode(coords);
    const auto [it, inserted] = label_ids.try_emplace(
        key, static_cast<std::uint32_t>(label_ids.size()));
    label[i] = it->second;
  }
  if (annotate_span.active()) annotate_span.attr("labels", label_ids.size());
  annotate_span.end();

  obs::MetricsRegistry::instance().gauge("cdr.reachable_states")
      .set(static_cast<double>(n));
  if (obs::mem::enabled()) {
    obs::mem::report_component("cdr.chain_csr",
                               composed.chain().footprint_bytes());
    obs::mem::report_component(
        "cdr.annotations",
        n * (sizeof(std::uint32_t) * 2 + sizeof(double)));
  }
  if (span.active()) {
    span.attr("states", n);
    span.attr("transitions", composed.chain().num_transitions());
    span.attr("form_s", form_seconds);
  }
  return CdrChain(std::move(composed), std::move(phase_coord),
                  std::move(label), std::move(effective_phase),
                  form_seconds);
}

namespace {

/// Tags the lumping hierarchy's partition vectors as a mem.component.*
/// footprint (STOCDR_MEM=1).
void report_hierarchy_footprint(
    const std::vector<markov::Partition>& hierarchy) {
  if (!obs::mem::enabled()) return;
  std::uint64_t bytes = 0;
  for (const markov::Partition& p : hierarchy) {
    bytes += p.num_states() * sizeof(std::uint32_t);
  }
  obs::mem::report_component("cdr.hierarchy", bytes);
}

}  // namespace

solvers::StationaryResult solve_stationary(
    const CdrChain& chain, const solvers::MultilevelOptions& options) {
  obs::Span span("cdr.solve_stationary");
  if (span.active()) span.attr("states", chain.num_states());
  const auto hierarchy = chain.hierarchy(options.coarsest_size);
  report_hierarchy_footprint(hierarchy);
  return solvers::solve_stationary_multilevel(chain.chain(), hierarchy,
                                              options);
}

robust::RobustResult solve_stationary_robust(
    const CdrChain& chain, const robust::RobustOptions& options) {
  obs::Span span("cdr.solve_stationary_robust");
  if (span.active()) span.attr("states", chain.num_states());
  const auto hierarchy =
      chain.hierarchy(options.multilevel.coarsest_size);
  report_hierarchy_footprint(hierarchy);
  return robust::solve_stationary_robust(chain.chain(), hierarchy, options);
}

}  // namespace stocdr::cdr
