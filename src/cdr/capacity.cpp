#include "cdr/capacity.hpp"

#include <algorithm>

namespace stocdr::cdr {

namespace {

// Branches of one clock cycle that land on an already-stored successor
// merge into one CSR entry; measured on the Figure 4 configuration
// (11.19 nnz/state against a 2 x 7 branching product).
constexpr double kBranchMergeFactor = 0.8;

/// Reachable loop-filter states.  The up/down counter of overflow length N
/// visits counts -(N-1)..(N-1); the majority-vote filter's (ups, downs)
/// pairs are bounded by ups + downs < N, a triangle of N(N+1)/2 states out
/// of its N^2 encoding.
std::uint64_t counter_reachable(const CdrConfig& config) {
  const std::uint64_t n = config.counter_length;
  if (config.filter_type == FilterType::kUpDownCounter) {
    return 2 * n - 1;
  }
  return n * (n + 1) / 2;
}

}  // namespace

CdrCapacityEstimate estimate_cdr_capacity(const CdrConfig& config) {
  CdrCapacityEstimate out;

  std::uint64_t states = std::max<std::uint64_t>(config.max_run_length, 1);
  states *= counter_reachable(config);
  states *= std::max<std::uint64_t>(config.phase_points, 1);
  if (config.sj_amplitude > 0.0) {
    states *= std::max<std::uint64_t>(config.sj_period, 1);
  }
  if (config.pd_noise_mode == PdNoiseMode::kDiscretized) {
    states *= std::max<std::uint64_t>(config.nw_atoms, 1);
  }
  out.states = states;

  // Branching of one cycle: data transition / no transition (2), times the
  // n_r PMF atoms, times the n_w atoms when they enter as an explicit
  // source.  Deflated by the measured merge factor.
  double branches = 2.0 * static_cast<double>(
                              std::max<std::uint64_t>(config.nr_atoms, 1));
  if (config.pd_noise_mode == PdNoiseMode::kDiscretized) {
    branches *= static_cast<double>(std::max<std::uint64_t>(
        config.nw_atoms, 1));
  }
  const double per_state = std::max(1.0, branches * kBranchMergeFactor);
  out.transitions =
      static_cast<std::uint64_t>(static_cast<double>(states) * per_state);

  obs::mem::CapacityInputs in;
  in.states = out.states;
  in.transitions = out.transitions;
  out.breakdown = obs::mem::estimate_capacity(in);
  return out;
}

KronCapacityEstimate estimate_kron_capacity(const CdrConfig& config) {
  KronCapacityEstimate out;

  // The descriptor spans the full tensor product: the filter factor uses
  // the component's complete state encoding, not the reachable subset.
  const std::uint64_t n = config.counter_length;
  const std::uint64_t filter_states =
      config.filter_type == FilterType::kUpDownCounter ? 2 * n - 1 : n * n;
  const std::uint64_t n_d = std::max<std::uint64_t>(config.max_run_length, 1);
  const std::uint64_t points = std::max<std::uint64_t>(config.phase_points, 1);
  out.states = n_d * std::max<std::uint64_t>(filter_states, 1) * points;

  // Factor storage bound: the phase factors dominate at <= M x nr_atoms
  // entries each across ~6 main terms plus the (sparse) slip restrictions;
  // data and filter factors carry O(n_d) / O(n_c) entries per term.  CSR
  // storage is ~16 bytes per entry (value + column index + amortized row
  // pointers).
  const std::uint64_t atoms = std::max<std::uint64_t>(config.nr_atoms, 1);
  const std::uint64_t factor_nnz =
      8 * points * atoms + 8 * (n_d + filter_states);
  out.descriptor_bytes = 16 * factor_nnz;

  obs::mem::OperatorCapacityInputs in;
  in.states = out.states;
  in.operator_bytes = out.descriptor_bytes;
  out.breakdown = obs::mem::estimate_operator_capacity(in);
  return out;
}

}  // namespace stocdr::cdr
