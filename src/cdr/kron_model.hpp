// The CDR model's composite TPM as a matrix-free Kronecker descriptor.
//
// Conditioned on the three wire values of one cycle — the data transition
// indicator t, the phase-detector command a, and the loop-filter output b —
// every component transitions independently, so the TPM is an exact sum of
// Kronecker products over (data run-length) x (loop filter) x (phase
// error):
//
//   P = A^(0) (x) C^(H,H) (x) S_H                         (no transition)
//     + sum_{a,b} A^(1) (x) C^(a,b) (x) Diag(w_a) S_b     (transition)
//
// with w_U = p_lead(phi), w_D = p_lag(phi), w_H = p_null(phi) — the
// phase-conditional detector probabilities folded into the phase factor,
// which is where the cross-component coupling lives.  The descriptor stores
// ~O(n_d + n_c + M x atoms) factor entries in place of the explicit
// product's O(n_d x n_c x M x atoms) — the paper's stated path past
// explicit sparse storage ("the dimension of the problem is only limited by
// the available computer memory").
//
// The factorization reuses the *same component objects* the explicit
// compose path enumerates (PhaseDetector probabilities with their residue
// folding, the filter's next_state/outputs, PhaseErrorFsm's raw/wrap/clamp
// arithmetic, the IidSource's renormalized n_r PMF), so both
// representations describe the same chain up to floating-point summation
// order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cdr/measures.hpp"
#include "cdr/model.hpp"
#include "kronecker/descriptor.hpp"
#include "robust/robust_solver.hpp"

namespace stocdr::cdr {

/// True when `config` admits the exact Kronecker factorization.  On false,
/// `reason` (when non-null) explains which feature couples the components:
/// the SJ rotor feeds the detector (phase factors would need a rotor
/// index), and the discretized-n_w detector routes an extra source into the
/// command probabilities.  Dead zones, both boundary modes, and both filter
/// types are supported.
[[nodiscard]] bool kronecker_supported(const CdrConfig& config,
                                       std::string* reason = nullptr);

/// Builds and owns the descriptor form of a CdrModel's TPM (transposed,
/// matching the library-wide P^T storage convention: apply() computes
/// P^T x), plus the wrap-restricted auxiliary descriptors slip detection
/// needs.  Descriptor storage is reported to the mem layer as
/// `mem.component.kron_descriptor`.
///
/// The product state space is the *full* tensor product (no reachability
/// pruning): index = (d * n_c + c) * M + phi, phase fastest.  States the
/// explicit compose path would prune are transient, so the stationary
/// distribution is supported on the common recurrent class and every
/// stationary measure below agrees with the explicit-path one.
class KroneckerCdrModel {
 public:
  /// Requires kronecker_supported(model.config()); throws
  /// PreconditionError otherwise.  `model` must outlive this object.
  explicit KroneckerCdrModel(const CdrModel& model);

  [[nodiscard]] const kron::KroneckerDescriptor& descriptor() const {
    return descriptor_;
  }
  [[nodiscard]] const CdrModel& model() const { return *model_; }

  /// Component dimensions {n_d, n_c, M}.
  [[nodiscard]] const std::vector<std::size_t>& dims() const {
    return descriptor_.dims();
  }
  [[nodiscard]] std::size_t num_states() const {
    return descriptor_.dimension();
  }

  /// Wall-clock seconds spent building the factors (the descriptor-path
  /// "Matrixformtime"; compare CdrChain::form_seconds()).
  [[nodiscard]] double form_seconds() const { return form_seconds_; }

  /// Factor storage of the main + slip descriptors, in bytes.
  [[nodiscard]] std::size_t storage_bytes() const { return storage_bytes_; }

  /// Product-space index of (data run d, filter state c, phase cell phi).
  [[nodiscard]] std::size_t state_index(std::uint32_t d, std::uint32_t c,
                                        std::uint32_t phi) const;

  /// Phase-grid index of a product-space state (phase varies fastest).
  [[nodiscard]] std::uint32_t phase_of(std::size_t index) const {
    return static_cast<std::uint32_t>(index % dims().back());
  }

  // -- Stationary measures on a product-space distribution ----------------
  // Matrix-free counterparts of cdr/measures.hpp; `eta` is a stationary
  // vector over num_states() product states.

  /// Stationary probability mass per phase-error grid cell.
  [[nodiscard]] std::vector<double> phase_marginal(
      std::span<const double> eta) const;

  /// Mass / cell width per cell (the paper's Figure 4/5 quantity).
  [[nodiscard]] std::vector<double> phase_density(
      std::span<const double> eta) const;

  /// BER = P(|Phi + n_w| > 1/2) by exact Gaussian tail integration.
  [[nodiscard]] double bit_error_rate(std::span<const double> eta) const;

  /// Mean and RMS phase error in UI.
  [[nodiscard]] PhaseErrorMoments phase_error_moments(
      std::span<const double> eta) const;

  /// Cycle-slip flux through the +-1/2 UI boundary, computed by applying
  /// the wrap-restricted descriptors (no transition enumeration).  Requires
  /// BoundaryMode::kWrap.
  [[nodiscard]] SlipStats slip_stats(std::span<const double> eta) const;

 private:
  const CdrModel* model_;
  kron::KroneckerDescriptor descriptor_;
  /// P restricted to transitions whose raw phase successor wraps up past
  /// +1/2 UI (raw >= M) / down past -1/2 UI (raw < 0); empty term lists
  /// outside kWrap mode.
  kron::KroneckerDescriptor slip_up_;
  kron::KroneckerDescriptor slip_down_;
  double form_seconds_ = 0.0;
  std::size_t storage_bytes_ = 0;
};

/// Runs the matrix-free robust ladder (GMRES -> Jacobi -> power; see
/// robust/robust_solver.hpp) on the descriptor, pricing its factor storage
/// in the memory admission gate and stamping the report's representation as
/// "kronecker".
[[nodiscard]] robust::RobustResult solve_stationary_robust(
    const KroneckerCdrModel& model, const robust::RobustOptions& options = {},
    std::span<const double> initial = {});

}  // namespace stocdr::cdr
