// The discretized phase-error axis.
//
// Phase error is measured in unit intervals (UI; one symbol period) and
// lives on the circle [-1/2, +1/2) — a sampling instant more than half a
// symbol away from the ideal point belongs to the neighbouring symbol, which
// is precisely a bit error / cycle slip.  The grid places `points` cell
// centers symmetrically, so no grid point falls exactly on 0 or +-1/2 (the
// comparator and error thresholds are never hit exactly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stocdr::cdr {

/// Uniform discretization of the phase-error circle [-1/2, +1/2) UI.
class PhaseGrid {
 public:
  /// `points` must be even and >= 4.  Cell i has center
  /// -1/2 + (i + 1/2) / points.
  explicit PhaseGrid(std::size_t points);

  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Cell width in UI.
  [[nodiscard]] double step() const { return step_; }

  /// Center of cell i, in UI.
  [[nodiscard]] double value(std::size_t i) const { return values_[i]; }

  /// All cell centers.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Index of the cell containing phase x (x wrapped into [-1/2, 1/2)).
  [[nodiscard]] std::size_t index_of(double x) const;

  /// Wraps a raw (possibly out-of-range) cell index onto the circle.
  [[nodiscard]] std::size_t wrap(std::int64_t raw) const;

  /// Clamps a raw cell index to [0, size).
  [[nodiscard]] std::size_t clamp(std::int64_t raw) const;

 private:
  std::vector<double> values_;
  double step_;
};

}  // namespace stocdr::cdr
