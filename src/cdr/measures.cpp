#include "cdr/measures.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::cdr {

std::vector<double> phase_marginal(const CdrChain& chain,
                                   std::span<const double> eta) {
  STOCDR_REQUIRE(eta.size() == chain.num_states(),
                 "phase_marginal: eta size mismatch");
  const auto& phase = chain.phase_coordinate();
  std::size_t cells = 0;
  for (const std::uint32_t p : phase) {
    cells = std::max<std::size_t>(cells, p + 1);
  }
  std::vector<double> marginal(cells, 0.0);
  for (std::size_t i = 0; i < eta.size(); ++i) {
    marginal[phase[i]] += eta[i];
  }
  return marginal;
}

std::vector<double> phase_density(const CdrModel& model, const CdrChain& chain,
                                  std::span<const double> eta) {
  std::vector<double> density = phase_marginal(chain, eta);
  density.resize(model.grid().size(), 0.0);
  const double step = model.grid().step();
  for (double& d : density) d /= step;
  return density;
}

namespace {

/// Stationary mass aggregated by distinct *effective* phase value (grid
/// value plus the state's sinusoidal-jitter offset).  With SJ disabled this
/// coincides with the phase marginal keyed by grid values; with SJ enabled
/// there are at most (#cells x #SJ states) atoms.
std::map<double, double> effective_phase_mass(const CdrChain& chain,
                                              std::span<const double> eta) {
  STOCDR_REQUIRE(eta.size() == chain.num_states(),
                 "effective_phase_mass: eta size mismatch");
  std::map<double, double> mass;
  const auto& phi = chain.effective_phase_ui();
  for (std::size_t i = 0; i < eta.size(); ++i) {
    if (eta[i] != 0.0) mass[phi[i]] += eta[i];
  }
  return mass;
}

}  // namespace

std::vector<double> pd_input_density(const CdrModel& model,
                                     const CdrChain& chain,
                                     std::span<const double> eta,
                                     std::span<const double> xs) {
  const std::map<double, double> mass = effective_phase_mass(chain, eta);
  const PhaseGrid& grid = model.grid();
  std::vector<double> density(xs.size(), 0.0);
  const auto& cfg = model.config();

  if (cfg.pd_noise_mode == PdNoiseMode::kExactGaussian) {
    const double sigma = cfg.sigma_nw;
    if (sigma == 0.0) {
      // Degenerate: a histogram of the effective phase at grid resolution.
      const double pstep = grid.step();
      for (std::size_t q = 0; q < xs.size(); ++q) {
        double acc = 0.0;
        for (const auto& [phi, m] : mass) {
          if (std::abs(xs[q] - phi) <= 0.5 * pstep) acc += m / pstep;
        }
        density[q] = acc;
      }
      return density;
    }
    for (std::size_t q = 0; q < xs.size(); ++q) {
      double acc = 0.0;
      for (const auto& [phi, m] : mass) {
        const double z = (xs[q] - phi) / sigma;
        acc += m * gaussian_pdf(z) / sigma;
      }
      density[q] = acc;
    }
    return density;
  }

  // Discretized n_w: histogram of Phi_eff + n_w with cell width = grid
  // step, weighting each atom by its PMF from the network's n_w source.
  const auto& source = dynamic_cast<const fsm::IidSource&>(
      model.network().component(model.nw_source_index()));
  const auto& values = model.nw_values();
  const auto& probs = source.pmf();
  const double pstep = grid.step();
  for (std::size_t q = 0; q < xs.size(); ++q) {
    double acc = 0.0;
    for (const auto& [phi, m] : mass) {
      for (std::size_t k = 0; k < values.size(); ++k) {
        if (std::abs(xs[q] - (phi + values[k])) <= 0.5 * pstep) {
          acc += m * probs[k] / pstep;
        }
      }
    }
    density[q] = acc;
  }
  return density;
}

double bit_error_rate(const CdrModel& model, const CdrChain& chain,
                      std::span<const double> eta) {
  obs::Span span("cdr.measure.ber");
  const std::map<double, double> mass = effective_phase_mass(chain, eta);
  const auto& cfg = model.config();
  double ber = 0.0;

  if (cfg.pd_noise_mode == PdNoiseMode::kExactGaussian) {
    const double sigma = cfg.sigma_nw;
    for (const auto& [phi, m] : mass) {
      double p_err;
      if (sigma == 0.0) {
        p_err = std::abs(phi) > 0.5 ? 1.0 : 0.0;
      } else {
        p_err = gaussian_tail((0.5 - phi) / sigma) +
                gaussian_tail((0.5 + phi) / sigma);
      }
      ber += m * p_err;
    }
    return ber;
  }

  // Discretized: BER from the network's actual n_w atoms and probabilities.
  const auto& source = dynamic_cast<const fsm::IidSource&>(
      model.network().component(model.nw_source_index()));
  const auto& values = model.nw_values();
  const auto& probs = source.pmf();
  for (const auto& [phi, m] : mass) {
    for (std::size_t k = 0; k < values.size(); ++k) {
      if (std::abs(phi + values[k]) > 0.5) ber += m * probs[k];
    }
  }
  return ber;
}

double SlipStats::mean_cycles_between() const {
  const double r = rate();
  return r > 0.0 ? 1.0 / r : std::numeric_limits<double>::infinity();
}

SlipStats slip_stats(const CdrModel& model, const CdrChain& chain,
                     std::span<const double> eta) {
  STOCDR_REQUIRE(model.config().boundary == BoundaryMode::kWrap,
                 "slip_stats requires BoundaryMode::kWrap");
  STOCDR_REQUIRE(eta.size() == chain.num_states(),
                 "slip_stats: eta size mismatch");
  const auto& phase = chain.phase_coordinate();
  const auto half =
      static_cast<std::int64_t>(model.grid().size() / 2);
  SlipStats stats;
  // Per-step phase motion is bounded by G + max|n_r| << M/2, so any
  // transition whose phase index jumps by more than half the circle must
  // have wrapped: direction tells which boundary was crossed.
  chain.chain().pt().for_each(
      [&](std::size_t dst, std::size_t src, double p) {
        const std::int64_t delta = static_cast<std::int64_t>(phase[dst]) -
                                   static_cast<std::int64_t>(phase[src]);
        if (delta > half) {
          // Index jumped up by ~M: wrapped downward across -1/2 UI.
          stats.rate_down += eta[src] * p;
        } else if (delta < -half) {
          stats.rate_up += eta[src] * p;
        }
      });
  return stats;
}

SlipPassage mean_time_to_boundary(const CdrModel& model, const CdrChain& chain,
                                  std::span<const double> eta, double band_ui,
                                  const solvers::PassageOptions& options) {
  obs::Span span("cdr.measure.time_to_boundary");
  STOCDR_REQUIRE(band_ui > 0.0 && band_ui < 0.5,
                 "mean_time_to_boundary: band must be in (0, 1/2) UI");
  STOCDR_REQUIRE(eta.size() == chain.num_states(),
                 "mean_time_to_boundary: eta size mismatch");
  const PhaseGrid& grid = model.grid();
  const auto& phase = chain.phase_coordinate();

  std::vector<bool> target(chain.num_states(), false);
  bool any = false;
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (std::abs(grid.value(phase[i])) >= band_ui) {
      target[i] = true;
      any = true;
    }
  }
  STOCDR_REQUIRE(any, "mean_time_to_boundary: no state lies in the band; "
                      "lower band_ui or refine the grid");

  solvers::PassageOptions opts = options;
  if (!opts.grid_coordinate) {
    opts.grid_coordinate = chain.phase_coordinate();
    opts.other_label = chain.other_label();
  }
  const solvers::HittingTimeResult hit =
      solvers::mean_hitting_times(chain.chain(), target, opts);

  // Average over the stationary distribution of the in-lock states.
  double mass = 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (!target[i]) {
      mass += eta[i];
      mean += eta[i] * hit.mean_steps[i];
    }
  }
  SlipPassage result;
  result.mean_cycles_from_lock = mass > 0.0 ? mean / mass : 0.0;
  result.stats = hit.stats;
  return result;
}

LockTime mean_time_to_lock(const CdrModel& model, const CdrChain& chain,
                           double lock_band_ui,
                           const solvers::PassageOptions& options) {
  obs::Span span("cdr.measure.time_to_lock");
  STOCDR_REQUIRE(lock_band_ui > 0.0 && lock_band_ui < 0.5,
                 "mean_time_to_lock: band must be in (0, 1/2) UI");
  const PhaseGrid& grid = model.grid();
  const auto& phase = chain.phase_coordinate();

  std::vector<bool> locked(chain.num_states(), false);
  bool any = false;
  for (std::size_t i = 0; i < locked.size(); ++i) {
    if (std::abs(grid.value(phase[i])) <= lock_band_ui) {
      locked[i] = true;
      any = true;
    }
  }
  STOCDR_REQUIRE(any, "mean_time_to_lock: lock band is empty on this grid");

  solvers::PassageOptions opts = options;
  if (!opts.grid_coordinate) {
    opts.grid_coordinate = chain.phase_coordinate();
    opts.other_label = chain.other_label();
  }
  const solvers::HittingTimeResult hit =
      solvers::mean_hitting_times(chain.chain(), locked, opts);

  // Worst case: average over all states whose phase sits in the outermost
  // grid cells (|Phi| within one cell of 1/2 UI).
  const double worst = 0.5 - 1.5 * grid.step();
  double count = 0.0, total = 0.0;
  for (std::size_t i = 0; i < locked.size(); ++i) {
    if (std::abs(grid.value(phase[i])) >= worst) {
      total += hit.mean_steps[i];
      count += 1.0;
    }
  }
  LockTime result;
  result.mean_bits_from_worst_case = count > 0.0 ? total / count : 0.0;
  result.stats = hit.stats;
  return result;
}

SlipDirection slip_direction_probability(
    const CdrModel& model, const CdrChain& chain, std::span<const double> eta,
    double band_ui, const solvers::PassageOptions& options) {
  obs::Span span("cdr.measure.slip_direction");
  STOCDR_REQUIRE(band_ui > 0.0 && band_ui < 0.5,
                 "slip_direction_probability: band must be in (0, 1/2) UI");
  STOCDR_REQUIRE(eta.size() == chain.num_states(),
                 "slip_direction_probability: eta size mismatch");
  const PhaseGrid& grid = model.grid();
  const auto& phase = chain.phase_coordinate();

  std::vector<bool> up_band(chain.num_states(), false);
  std::vector<bool> down_band(chain.num_states(), false);
  bool any_up = false, any_down = false;
  for (std::size_t i = 0; i < phase.size(); ++i) {
    const double phi = grid.value(phase[i]);
    if (phi >= band_ui) {
      up_band[i] = true;
      any_up = true;
    } else if (phi <= -band_ui) {
      down_band[i] = true;
      any_down = true;
    }
  }
  STOCDR_REQUIRE(any_up && any_down,
                 "slip_direction_probability: bands are empty on this grid");

  solvers::PassageOptions opts = options;
  if (!opts.grid_coordinate) {
    opts.grid_coordinate = chain.phase_coordinate();
    opts.other_label = chain.other_label();
  }
  const solvers::HittingProbabilityResult hit =
      solvers::hitting_probability(chain.chain(), up_band, down_band, opts);

  double mass = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < eta.size(); ++i) {
    if (!up_band[i] && !down_band[i]) {
      mass += eta[i];
      weighted += eta[i] * hit.probability[i];
    }
  }
  SlipDirection result;
  result.probability_up = mass > 0.0 ? weighted / mass : 0.0;
  result.stats = hit.stats;
  return result;
}

PhaseErrorMoments phase_error_moments(const CdrModel& model,
                                      const CdrChain& chain,
                                      std::span<const double> eta) {
  const std::vector<double> marginal = phase_marginal(chain, eta);
  const PhaseGrid& grid = model.grid();
  PhaseErrorMoments moments;
  double second = 0.0;
  for (std::size_t i = 0; i < marginal.size(); ++i) {
    const double phi = grid.value(i);
    moments.mean += marginal[i] * phi;
    second += marginal[i] * phi * phi;
  }
  moments.rms = std::sqrt(second);
  return moments;
}

}  // namespace stocdr::cdr
