#include "cdr/grid.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace stocdr::cdr {

PhaseGrid::PhaseGrid(std::size_t points) {
  STOCDR_REQUIRE(points >= 4 && points % 2 == 0,
                 "PhaseGrid requires an even number of points >= 4");
  values_.resize(points);
  step_ = 1.0 / static_cast<double>(points);
  for (std::size_t i = 0; i < points; ++i) {
    values_[i] = -0.5 + (static_cast<double>(i) + 0.5) * step_;
  }
}

std::size_t PhaseGrid::index_of(double x) const {
  // Wrap into [-1/2, 1/2).
  x -= std::floor(x + 0.5);
  const auto idx = static_cast<std::int64_t>(std::floor((x + 0.5) / step_));
  return clamp(idx);
}

std::size_t PhaseGrid::wrap(std::int64_t raw) const {
  const auto n = static_cast<std::int64_t>(values_.size());
  std::int64_t m = raw % n;
  if (m < 0) m += n;
  return static_cast<std::size_t>(m);
}

std::size_t PhaseGrid::clamp(std::int64_t raw) const {
  const auto n = static_cast<std::int64_t>(values_.size());
  return static_cast<std::size_t>(std::clamp<std::int64_t>(raw, 0, n - 1));
}

}  // namespace stocdr::cdr
