#include "cdr/config_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "support/error.hpp"

namespace stocdr::cdr {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::size_t parse_size(const std::string& value, const std::string& key) {
  try {
    std::size_t consumed = 0;
    const long long parsed = std::stoll(value, &consumed);
    // Trailing garbage ("8x", "1 2") must not silently truncate.
    STOCDR_REQUIRE(consumed == value.size(),
                   "config: bad integer for '" + key + "': " + value);
    STOCDR_REQUIRE(parsed >= 0, "config: '" + key + "' must be >= 0");
    return static_cast<std::size_t>(parsed);
  } catch (const std::logic_error&) {
    throw PreconditionError("config: bad integer for '" + key + "': " +
                            value);
  }
}

double parse_double(const std::string& value, const std::string& key) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    STOCDR_REQUIRE(consumed == value.size(),
                   "config: bad number for '" + key + "': " + value);
    return parsed;
  } catch (const std::logic_error&) {
    throw PreconditionError("config: bad number for '" + key + "': " + value);
  }
}

}  // namespace

std::string to_text(const CdrConfig& config) {
  std::ostringstream os;
  os.precision(17);
  os << "# stocdr CDR operating point\n"
     << "# discretization\n"
     << "phase_points = " << config.phase_points << '\n'
     << "vco_phases = " << config.vco_phases << '\n'
     << "# loop\n"
     << "filter_type = "
     << (config.filter_type == FilterType::kUpDownCounter ? "counter"
                                                          : "vote")
     << '\n'
     << "counter_length = " << config.counter_length << '\n'
     << "pd_dead_zone = " << config.pd_dead_zone << '\n'
     << "# data statistics\n"
     << "transition_density = " << config.transition_density << '\n'
     << "max_run_length = " << config.max_run_length << '\n'
     << "# noise (UI)\n"
     << "sigma_nw = " << config.sigma_nw << '\n'
     << "nr_mean = " << config.nr_mean << '\n'
     << "nr_max = " << config.nr_max << '\n'
     << "nr_atoms = " << config.nr_atoms << '\n'
     << "pd_noise_mode = "
     << (config.pd_noise_mode == PdNoiseMode::kExactGaussian ? "exact"
                                                             : "discretized")
     << '\n'
     << "nw_atoms = " << config.nw_atoms << '\n'
     << "# sinusoidal jitter\n"
     << "sj_amplitude = " << config.sj_amplitude << '\n'
     << "sj_period = " << config.sj_period << '\n'
     << "# boundary\n"
     << "boundary = "
     << (config.boundary == BoundaryMode::kWrap ? "wrap" : "saturate")
     << '\n';
  return os.str();
}

CdrConfig config_from_text(std::istream& in) {
  CdrConfig config;
  std::string line;
  std::size_t line_number = 0;
  // First occurrence of each key, so a duplicate can be rejected naming
  // both lines.  A silent last-wins here once masked a typo'd operating
  // point for a whole sweep.
  std::map<std::string, std::size_t> first_seen;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    STOCDR_REQUIRE(eq != std::string::npos,
                   "config: line " + std::to_string(line_number) +
                       " is not 'key = value': " + trimmed);
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    STOCDR_REQUIRE(!key.empty() && !value.empty(),
                   "config: empty key or value on line " +
                       std::to_string(line_number));
    const auto [it, inserted] = first_seen.emplace(key, line_number);
    if (!inserted) {
      throw PreconditionError("config: duplicate key '" + key + "' on line " +
                              std::to_string(line_number) +
                              " (first set on line " +
                              std::to_string(it->second) + ")");
    }

    if (key == "phase_points") {
      config.phase_points = parse_size(value, key);
    } else if (key == "vco_phases") {
      config.vco_phases = parse_size(value, key);
    } else if (key == "counter_length") {
      config.counter_length = parse_size(value, key);
    } else if (key == "filter_type") {
      if (value == "counter") {
        config.filter_type = FilterType::kUpDownCounter;
      } else if (value == "vote") {
        config.filter_type = FilterType::kMajorityVote;
      } else {
        throw PreconditionError("config: filter_type must be counter|vote");
      }
    } else if (key == "pd_dead_zone") {
      config.pd_dead_zone = parse_double(value, key);
    } else if (key == "transition_density") {
      config.transition_density = parse_double(value, key);
    } else if (key == "max_run_length") {
      config.max_run_length = parse_size(value, key);
    } else if (key == "sigma_nw") {
      config.sigma_nw = parse_double(value, key);
    } else if (key == "nr_mean") {
      config.nr_mean = parse_double(value, key);
    } else if (key == "nr_max") {
      config.nr_max = parse_double(value, key);
    } else if (key == "nr_atoms") {
      config.nr_atoms = parse_size(value, key);
    } else if (key == "pd_noise_mode") {
      if (value == "exact") {
        config.pd_noise_mode = PdNoiseMode::kExactGaussian;
      } else if (value == "discretized") {
        config.pd_noise_mode = PdNoiseMode::kDiscretized;
      } else {
        throw PreconditionError(
            "config: pd_noise_mode must be exact|discretized");
      }
    } else if (key == "nw_atoms") {
      config.nw_atoms = parse_size(value, key);
    } else if (key == "sj_amplitude") {
      config.sj_amplitude = parse_double(value, key);
    } else if (key == "sj_period") {
      config.sj_period = parse_size(value, key);
    } else if (key == "boundary") {
      if (value == "wrap") {
        config.boundary = BoundaryMode::kWrap;
      } else if (value == "saturate") {
        config.boundary = BoundaryMode::kSaturate;
      } else {
        throw PreconditionError("config: boundary must be wrap|saturate");
      }
    } else {
      throw PreconditionError("config: unknown key '" + key + "' on line " +
                              std::to_string(line_number));
    }
  }
  config.validate();
  return config;
}

CdrConfig config_from_string(const std::string& text) {
  std::istringstream in(text);
  return config_from_text(in);
}

CdrConfig config_from_file(const std::string& path) {
  std::ifstream in(path);
  STOCDR_REQUIRE(in.good(), "config: cannot open '" + path + "'");
  return config_from_text(in);
}

}  // namespace stocdr::cdr
