// The four interacting FSMs of the paper's clock-recovery model (Figure 2):
// data statistics, phase detector, up/down counter loop filter, and the
// discretized phase error driven by n_r.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cdr/config.hpp"
#include "cdr/grid.hpp"
#include "fsm/component.hpp"
#include "noise/discrete.hpp"

namespace stocdr::cdr {

/// Phase-detector / counter command encoding shared by the components.
enum Command : std::uint32_t { kDown = 0, kHold = 1, kUp = 2 };

/// SONET-style data statistics: a run-length-limited random bit stream,
/// reduced to its behaviourally relevant content — whether a transition
/// occurred in the current bit.  State is the current run length (bits since
/// the last transition); each cycle the stream toggles with probability
/// `transition_density`, and a transition is forced once the run reaches
/// `max_run_length` (the longest transition-free sequence in the spec).
///
/// Output port 0: 1 if a transition occurred this cycle, else 0 (Mealy).
class DataSource final : public fsm::Component {
 public:
  DataSource(double transition_density, std::size_t max_run_length);

  [[nodiscard]] std::size_t num_states() const override { return max_run_; }
  [[nodiscard]] std::uint32_t initial_state() const override { return 0; }
  [[nodiscard]] std::size_t num_input_ports() const override { return 0; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }

  void enumerate(std::uint32_t state, std::span<const std::uint32_t> inputs,
                 fsm::BranchSink sink) const override;

 private:
  double density_;
  std::size_t max_run_;
};

/// The bang-bang phase detector: "a memoryless nonlinear function which
/// produces the signum of its input" — the input being Phi + n_w, and only
/// when the data has a transition ("the phase detector can produce a phase
/// error signal only when a transition occurs").  Optional extensions
/// beyond the paper's pure signum: a dead zone (ternary detector with a
/// hold region around zero) and a sinusoidal-jitter offset input.
///
/// Input 0: transition indicator (from DataSource).
/// Input 1: phase-error grid index (from PhaseErrorFsm, Moore).
/// Input 2 (when sj_offsets_ui is non-empty): sinusoidal-jitter phase index
///          (from the SJ rotor, Moore); the indexed offset adds to Phi.
/// Last input (kDiscretized mode only): n_w atom index (from an IidSource).
/// Output 0: Command (kDown = LAG, kHold = NULL, kUp = LEAD).
///
/// In kExactGaussian mode the LEAD/LAG probabilities use the exact Gaussian
/// CDF; in kDiscretized mode the comparison is deterministic given the
/// sampled atom.
/// Optional PhaseDetector behaviours beyond the paper's pure signum
/// detector.
struct PhaseDetectorOptions {
  /// |Phi + n_w| below this produces NULL even on a transition (UI).
  double dead_zone = 0.0;
  /// Per-SJ-state data phase offsets (UI); non-empty enables the SJ input
  /// port.
  std::vector<double> sj_offsets_ui;
};

class PhaseDetector final : public fsm::Component {
 public:
  using Options = PhaseDetectorOptions;

  /// Exact-Gaussian detector.
  PhaseDetector(const PhaseGrid& grid, double sigma_nw,
                Options options = {});

  /// Discretized detector with explicit n_w atom values (UI).
  PhaseDetector(const PhaseGrid& grid, std::vector<double> nw_values,
                Options options = {});

  [[nodiscard]] std::size_t num_states() const override { return 1; }
  [[nodiscard]] std::uint32_t initial_state() const override { return 0; }
  [[nodiscard]] std::size_t num_input_ports() const override {
    return 2 + (has_sj() ? 1 : 0) + (discretized_ ? 1 : 0);
  }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }

  [[nodiscard]] bool has_sj() const { return !options_.sj_offsets_ui.empty(); }

  void enumerate(std::uint32_t state, std::span<const std::uint32_t> inputs,
                 fsm::BranchSink sink) const override;

  /// P(output = LEAD | transition) at effective phase value phi (UI).
  [[nodiscard]] double lead_probability(double phi) const;

  /// P(output = LAG | transition) at effective phase value phi (UI).
  [[nodiscard]] double lag_probability(double phi) const;

 private:
  std::vector<double> phase_values_;
  double sigma_nw_ = 0.0;
  bool discretized_ = false;
  std::vector<double> nw_values_;
  Options options_;
};

/// The digital loop filter: an up/down counter of overflow length N.
/// LEAD increments, LAG decrements, NULL holds; reaching +N emits UP and
/// resets, reaching -N emits DOWN and resets.  State encodes the count
/// c in [-(N-1), N-1] as c + N - 1.
///
/// Input 0: Command from the phase detector.
/// Output 0: Command to the phase-error FSM (Mealy).
class UpDownCounter final : public fsm::DeterministicComponent {
 public:
  explicit UpDownCounter(std::size_t overflow_length);

  [[nodiscard]] std::size_t num_states() const override {
    return 2 * length_ - 1;
  }
  [[nodiscard]] std::uint32_t initial_state() const override {
    return static_cast<std::uint32_t>(length_ - 1);  // count 0
  }
  [[nodiscard]] std::size_t num_input_ports() const override { return 1; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }

  [[nodiscard]] std::uint32_t next_state(
      std::uint32_t state, std::span<const std::uint32_t> inputs) const override;
  void outputs(std::uint32_t state, std::span<const std::uint32_t> inputs,
               std::span<std::uint32_t> out) const override;

  /// Signed count encoded by a state.
  [[nodiscard]] std::int32_t count_of(std::uint32_t state) const {
    return static_cast<std::int32_t>(state) -
           static_cast<std::int32_t>(length_ - 1);
  }

 private:
  /// The command the counter emits for a given state/input (shared by
  /// next_state and outputs so they cannot disagree).
  [[nodiscard]] Command emitted(std::uint32_t state,
                                std::uint32_t pd_command) const;

  std::size_t length_;
};

/// A majority-vote (ballot) loop filter: collects `window` non-NULL phase
/// detector decisions, then emits the sign of the majority (HOLD on a tie)
/// and restarts.  Compared with the up/down counter it forgets nothing
/// within a window but everything between windows.
///
/// State encodes (samples seen s, running sum m) with |m| <= s < window as
/// s^2 + (m + s); only same-parity (s, m) pairs are reachable.
///
/// Input 0: Command from the phase detector.
/// Output 0: Command to the phase-error FSM (Mealy).
class MajorityVoteFilter final : public fsm::DeterministicComponent {
 public:
  explicit MajorityVoteFilter(std::size_t window);

  [[nodiscard]] std::size_t num_states() const override {
    return window_ * window_;
  }
  [[nodiscard]] std::uint32_t initial_state() const override { return 0; }
  [[nodiscard]] std::size_t num_input_ports() const override { return 1; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }

  [[nodiscard]] std::uint32_t next_state(
      std::uint32_t state, std::span<const std::uint32_t> inputs) const override;
  void outputs(std::uint32_t state, std::span<const std::uint32_t> inputs,
               std::span<std::uint32_t> out) const override;

  /// Decodes a state into (samples seen, running sum).
  [[nodiscard]] std::pair<std::uint32_t, std::int32_t> decode(
      std::uint32_t state) const;

 private:
  [[nodiscard]] Command emitted(std::uint32_t state,
                                std::uint32_t pd_command) const;

  std::size_t window_;
};

/// The discretized phase-error state (paper eqn (2)): a Moore machine whose
/// output is its own grid index.  Each cycle it moves by -G on UP, +G on
/// DOWN (G = phase_step_cells grid cells) plus the sampled n_r offset,
/// wrapping around the phase circle (a wrap is a cycle slip) or saturating
/// per BoundaryMode.
///
/// Input 0: Command from the counter.
/// Input 1: n_r atom index (from an IidSource).
/// Output 0: own grid index (Moore).
class PhaseErrorFsm final : public fsm::DeterministicComponent {
 public:
  PhaseErrorFsm(const PhaseGrid& grid, std::size_t step_cells,
                std::vector<std::int32_t> nr_offsets, BoundaryMode boundary,
                std::uint32_t initial_index);

  [[nodiscard]] std::size_t num_states() const override { return points_; }
  [[nodiscard]] std::uint32_t initial_state() const override {
    return initial_;
  }
  [[nodiscard]] std::size_t num_input_ports() const override { return 2; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }
  [[nodiscard]] bool is_moore() const override { return true; }

  void moore_outputs(std::uint32_t state,
                     std::span<std::uint32_t> outputs) const override;
  [[nodiscard]] std::uint32_t next_state(
      std::uint32_t state, std::span<const std::uint32_t> inputs) const override;

  /// The raw (unwrapped) successor index, exposed so slip detection and the
  /// Monte-Carlo baseline agree exactly with the TPM construction.
  [[nodiscard]] std::int64_t raw_next(std::uint32_t state,
                                      std::uint32_t command,
                                      std::uint32_t nr_atom) const;

 private:
  std::size_t points_;
  std::int64_t step_cells_;
  std::vector<std::int32_t> nr_offsets_;
  BoundaryMode boundary_;
  std::uint32_t initial_;
};

}  // namespace stocdr::cdr
