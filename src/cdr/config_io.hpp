// Textual (de)serialization of CdrConfig: a simple `key = value` format
// with `#` comments, so operating points can live in version-controlled
// files and drive the CLI analyzer (examples/cdr_analyzer).
#pragma once

#include <iosfwd>
#include <string>

#include "cdr/config.hpp"

namespace stocdr::cdr {

/// Renders the configuration as `key = value` lines (every field, in a
/// stable order, with explanatory comments).
[[nodiscard]] std::string to_text(const CdrConfig& config);

/// Parses the `key = value` format.  Unknown keys and malformed lines throw
/// PreconditionError; omitted keys keep their defaults.  The parsed
/// configuration is validated before being returned.
[[nodiscard]] CdrConfig config_from_text(std::istream& in);

/// Convenience: parses from a string.
[[nodiscard]] CdrConfig config_from_string(const std::string& text);

/// Convenience: parses from a file.
[[nodiscard]] CdrConfig config_from_file(const std::string& path);

}  // namespace stocdr::cdr
