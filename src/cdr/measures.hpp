// Performance measures derived from the stationary distribution — the
// quantities the paper's evaluation reports.
//
//   * BER: "whenever the phase error plus the data jitter, i.e.,
//     Phi_k + n_w[k], becomes larger/smaller than half a clock cycle, the
//     system might potentially produce bit errors... This probability can be
//     directly obtained from the steady-state probability distribution"
//     — computed here as the exact convolution of the stationary phase-error
//     marginal with the n_w amplitude law, integrated over the |x| > 1/2
//     tails.
//   * Cycle slips: "the average time between cycle slips... translates into
//     the computation of mean transition times between certain sets of MC
//     states" — computed both as steady-state boundary flux (exact) and as
//     a first-passage time (linear solve with the modified TPM).
#pragma once

#include <span>
#include <vector>

#include "cdr/model.hpp"
#include "solvers/passage.hpp"

namespace stocdr::cdr {

/// Stationary probability mass per phase-error grid cell.
[[nodiscard]] std::vector<double> phase_marginal(const CdrChain& chain,
                                                 std::span<const double> eta);

/// Stationary probability *density* (mass / cell width) per cell — the
/// quantity plotted in the paper's Figures 4 and 5.
[[nodiscard]] std::vector<double> phase_density(const CdrModel& model,
                                                const CdrChain& chain,
                                                std::span<const double> eta);

/// Density of the phase-detector input Phi + n_w evaluated at the points
/// `xs` (UI): the Gaussian-smoothed phase-error density (exact mode) or the
/// discrete-convolution histogram density (discretized mode).
[[nodiscard]] std::vector<double> pd_input_density(
    const CdrModel& model, const CdrChain& chain, std::span<const double> eta,
    std::span<const double> xs);

/// Per-bit probability that the sampling point leaves the bit interval:
/// BER = P(|Phi + n_w| > 1/2).  Exact Gaussian tail integration in
/// kExactGaussian mode; discrete convolution in kDiscretized mode.
[[nodiscard]] double bit_error_rate(const CdrModel& model,
                                    const CdrChain& chain,
                                    std::span<const double> eta);

/// Steady-state cycle-slip statistics from the boundary-crossing
/// probability flux.
struct SlipStats {
  double rate_up = 0.0;    ///< per-cycle probability of slipping past +1/2 UI
  double rate_down = 0.0;  ///< per-cycle probability of slipping past -1/2 UI

  [[nodiscard]] double rate() const { return rate_up + rate_down; }

  /// Mean cycles between slips (infinity if the rate is zero).
  [[nodiscard]] double mean_cycles_between() const;
};

/// Computes the slip flux: the eta-weighted probability of transitions that
/// wrap around the phase boundary.  Requires BoundaryMode::kWrap.
[[nodiscard]] SlipStats slip_stats(const CdrModel& model,
                                   const CdrChain& chain,
                                   std::span<const double> eta);

/// First-passage formulation of slip timing: the mean number of cycles to
/// first reach the boundary band (|Phi| >= band_ui), averaged over the
/// stationary distribution restricted to the in-lock states.
struct SlipPassage {
  double mean_cycles_from_lock = 0.0;
  solvers::SolverStats stats;
};

[[nodiscard]] SlipPassage mean_time_to_boundary(
    const CdrModel& model, const CdrChain& chain, std::span<const double> eta,
    double band_ui = 0.45, const solvers::PassageOptions& options = {});

/// Directional slip analysis: from the locked region, the probability that
/// the first boundary-band excursion happens at +1/2 UI rather than -1/2 UI
/// — which way the loop loses the bit when it does.  Solved as a
/// hitting-probability problem between the two bands (paper section 2:
/// "mean transition times between certain sets of MC states" generalizes to
/// hitting probabilities with the same modified-TPM machinery).
struct SlipDirection {
  /// eta-weighted P(reach the +band before the -band | start in lock).
  double probability_up = 0.0;
  solvers::SolverStats stats;
};

[[nodiscard]] SlipDirection slip_direction_probability(
    const CdrModel& model, const CdrChain& chain, std::span<const double> eta,
    double band_ui = 0.45, const solvers::PassageOptions& options = {});

/// Lock-acquisition timing: the mean number of bits to first enter the
/// lock band |Phi| <= lock_band_ui, starting from the worst-case phase
/// offset (|Phi| ~ 1/2 UI, loop quiescent) — the power-up pull-in time.
struct LockTime {
  double mean_bits_from_worst_case = 0.0;
  solvers::SolverStats stats;
};

[[nodiscard]] LockTime mean_time_to_lock(
    const CdrModel& model, const CdrChain& chain, double lock_band_ui = 0.1,
    const solvers::PassageOptions& options = {});

/// Mean (signed) phase error and its RMS, in UI — the residual static phase
/// offset and recovered-clock jitter of the locked loop.
struct PhaseErrorMoments {
  double mean = 0.0;
  double rms = 0.0;
};

[[nodiscard]] PhaseErrorMoments phase_error_moments(
    const CdrModel& model, const CdrChain& chain, std::span<const double> eta);

}  // namespace stocdr::cdr
