#include "cdr/config.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/text.hpp"

namespace stocdr::cdr {

void CdrConfig::validate() const {
  STOCDR_REQUIRE(phase_points >= 4 && phase_points % 2 == 0,
                 "phase_points must be even and >= 4");
  STOCDR_REQUIRE(vco_phases >= 2, "vco_phases must be >= 2");
  STOCDR_REQUIRE(phase_points % vco_phases == 0,
                 "vco_phases must divide phase_points");
  STOCDR_REQUIRE(counter_length >= 1, "counter_length must be >= 1");
  STOCDR_REQUIRE(pd_dead_zone >= 0.0 && pd_dead_zone < 0.25,
                 "pd_dead_zone must be in [0, 0.25) UI");
  STOCDR_REQUIRE(sj_amplitude >= 0.0 && sj_amplitude < 0.5,
                 "sj_amplitude must be in [0, 0.5) UI");
  if (sj_amplitude > 0.0) {
    STOCDR_REQUIRE(sj_period >= 4, "sj_period must be >= 4 cycles");
    STOCDR_REQUIRE(sj_amplitude < 0.2,
                   "sj_amplitude above 0.2 UI exceeds the phase-detector "
                   "linear range of this model");
  }
  STOCDR_REQUIRE(transition_density > 0.0 && transition_density <= 1.0,
                 "transition_density must be in (0, 1]");
  STOCDR_REQUIRE(max_run_length >= 1, "max_run_length must be >= 1");
  STOCDR_REQUIRE(sigma_nw >= 0.0, "sigma_nw must be >= 0");
  STOCDR_REQUIRE(nr_max >= 0.0, "nr_max must be >= 0");
  STOCDR_REQUIRE(std::abs(nr_mean) <= 0.25,
                 "nr_mean must be a small fraction of a UI");
  STOCDR_REQUIRE(nr_atoms >= 3, "nr_atoms must be >= 3");
  STOCDR_REQUIRE(nw_atoms >= 3, "nw_atoms must be >= 3");
  // The paper: the grid "needs to be fine enough to accurately capture the
  // small jumps in phase error due to n_r".
  const double cell = 1.0 / static_cast<double>(phase_points);
  if (nr_max > 0.0) {
    STOCDR_REQUIRE(nr_max >= 0.5 * cell,
                   "nr_max is below half a grid cell: the drift noise would "
                   "quantize to zero; increase phase_points or nr_max");
  }
  if (std::abs(nr_mean) > 0.0) {
    STOCDR_REQUIRE(std::abs(nr_mean) + nr_max >= 0.5 * cell,
                   "n_r quantizes to zero on this grid; refine phase_points");
  }
  // The loop must be able to out-run the drift on average, otherwise the
  // model describes a permanently slipping loop; allow it but nothing to
  // check here.  Do check the correction is representable:
  STOCDR_REQUIRE(phase_step_cells() >= 1,
                 "phase correction smaller than one grid cell");
}

std::string CdrConfig::summary() const {
  std::ostringstream os;
  os << (filter_type == FilterType::kUpDownCounter ? "COUNTER: " : "VOTE: ")
     << counter_length << "  STDnw: " << sci(sigma_nw, 1)
     << "  MAXnr: " << sci(nr_max, 1) << "  MEANnr: " << sci(nr_mean, 1)
     << "  M: " << phase_points << "  G: 1/" << vco_phases << " UI";
  if (pd_dead_zone > 0.0) os << "  DZ: " << sci(pd_dead_zone, 1);
  if (sj_amplitude > 0.0) {
    os << "  SJ: " << sci(sj_amplitude, 1) << "@1/" << sj_period;
  }
  return os.str();
}

}  // namespace stocdr::cdr
