// The composed CDR model: wiring of the four FSMs plus the n_r (and
// optionally n_w) noise sources into an fsm::Network, and its compilation
// into the analysis-ready Markov chain.
#pragma once

#include <cstdint>
#include <vector>

#include "cdr/components.hpp"
#include "cdr/config.hpp"
#include "cdr/grid.hpp"
#include "fsm/network.hpp"
#include "markov/lumping.hpp"
#include "noise/discrete.hpp"
#include "robust/robust_solver.hpp"
#include "solvers/aggregation.hpp"

namespace stocdr::cdr {

/// The compiled chain with the structural annotations the solvers and
/// measures need.
class CdrChain {
 public:
  CdrChain(fsm::ComposedChain composed, std::vector<std::uint32_t> phase,
           std::vector<std::uint32_t> label,
           std::vector<double> effective_phase_ui, double form_seconds);

  /// The reachable-state chain and its bookkeeping.
  [[nodiscard]] const fsm::ComposedChain& composed() const {
    return composed_;
  }

  /// The underlying Markov chain.
  [[nodiscard]] const markov::MarkovChain& chain() const {
    return composed_.chain();
  }

  [[nodiscard]] std::size_t num_states() const {
    return composed_.num_states();
  }

  /// Phase-error grid index of each dense state.
  [[nodiscard]] const std::vector<std::uint32_t>& phase_coordinate() const {
    return phase_;
  }

  /// Gap-free label of the non-phase coordinates of each dense state.
  [[nodiscard]] const std::vector<std::uint32_t>& other_label() const {
    return label_;
  }

  /// Effective data-vs-clock phase of each dense state in UI: the
  /// phase-error grid value plus the state's sinusoidal-jitter offset (equal
  /// to the grid value when SJ is disabled).  This is the quantity whose
  /// excursion past +-1/2 UI is a bit error.
  [[nodiscard]] const std::vector<double>& effective_phase_ui() const {
    return effective_phase_;
  }

  /// Wall-clock seconds spent forming the TPM (the paper's
  /// "Matrixformtime").
  [[nodiscard]] double form_seconds() const { return form_seconds_; }

  /// The paper's coarsening hierarchy for this chain: lump adjacent phase
  /// pairs, keep other coordinates distinct (see
  /// solvers::build_grid_pair_hierarchy).
  [[nodiscard]] std::vector<markov::Partition> hierarchy(
      std::size_t coarsest_size = 400) const;

 private:
  fsm::ComposedChain composed_;
  std::vector<std::uint32_t> phase_;
  std::vector<std::uint32_t> label_;
  std::vector<double> effective_phase_;
  double form_seconds_;
};

/// Builder/owner of the CDR network (paper Figure 2).
class CdrModel {
 public:
  /// Validates the configuration and wires the network.  The n_r PMF is
  /// built from the config's parametric SONET drift family.
  explicit CdrModel(const CdrConfig& config);

  /// Same, but with an explicit grid-quantized n_r PMF replacing the
  /// parametric family — the hook for arbitrary amplitude laws ("one can
  /// even mimic deterministic sinusoidally varying jitter by assigning the
  /// amplitude distribution of n_r appropriately", paper section 2).
  /// Offsets are in grid cells; probabilities must sum to 1.
  CdrModel(const CdrConfig& config, noise::GridNoise nr_noise);

  [[nodiscard]] const CdrConfig& config() const { return config_; }
  [[nodiscard]] const PhaseGrid& grid() const { return grid_; }
  [[nodiscard]] const fsm::Network& network() const { return network_; }

  /// Component indices within network().
  [[nodiscard]] std::size_t data_index() const { return data_; }
  [[nodiscard]] std::size_t phase_detector_index() const { return pd_; }
  [[nodiscard]] std::size_t counter_index() const { return counter_; }
  [[nodiscard]] std::size_t phase_index() const { return phase_; }
  [[nodiscard]] std::size_t nr_source_index() const { return nr_; }
  /// Index of the n_w source (kDiscretized mode only; throws otherwise).
  [[nodiscard]] std::size_t nw_source_index() const;

  /// True if the model includes the sinusoidal-jitter rotor.
  [[nodiscard]] bool has_sj() const { return sj_ >= 0; }
  /// Index of the SJ rotor component (throws when SJ is disabled).
  [[nodiscard]] std::size_t sj_index() const;
  /// Per-SJ-state data phase offsets in UI (empty when SJ is disabled).
  [[nodiscard]] const std::vector<double>& sj_offsets_ui() const {
    return sj_offsets_ui_;
  }

  /// The quantized n_r PMF actually used on the grid.
  [[nodiscard]] const noise::GridNoise& nr_noise() const { return nr_noise_; }

  /// The n_w atom values (kDiscretized mode; empty in exact mode).
  [[nodiscard]] const std::vector<double>& nw_values() const {
    return nw_values_;
  }

  /// Composes the network into the reachable Markov chain and annotates it
  /// (phase coordinates, labels, timing).
  [[nodiscard]] CdrChain build(const fsm::ComposeOptions& options = {}) const;

 private:
  CdrConfig config_;
  PhaseGrid grid_;
  noise::GridNoise nr_noise_;
  std::vector<double> nw_values_;
  std::vector<double> sj_offsets_ui_;
  fsm::Network network_;
  std::size_t data_ = 0, pd_ = 0, counter_ = 0, phase_ = 0, nr_ = 0;
  std::ptrdiff_t nw_ = -1;
  std::ptrdiff_t sj_ = -1;
};

/// Solves the chain's stationary distribution with the paper's multilevel
/// solver using the model's phase-pair hierarchy.
[[nodiscard]] solvers::StationaryResult solve_stationary(
    const CdrChain& chain, const solvers::MultilevelOptions& options = {});

/// Fault-tolerant variant: runs the robust fallback ladder (multilevel ->
/// GMRES -> SOR -> power -> GTH) on the chain with the model's phase-pair
/// hierarchy.  Convergence failures, deadlines, and numerical faults come
/// back as a structured RobustSolveReport instead of a wrong answer or an
/// exception; see robust/robust_solver.hpp for the budget semantics.
[[nodiscard]] robust::RobustResult solve_stationary_robust(
    const CdrChain& chain, const robust::RobustOptions& options = {});

}  // namespace stocdr::cdr
