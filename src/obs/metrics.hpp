// Process-global metrics registry: named counters, gauges, and histograms
// that any component can update cheaply and a reporter can snapshot.
//
// Design constraints:
//   * hot-path updates are a single atomic op — callers cache the returned
//     Counter&/Gauge&/Histogram& (addresses are stable for process lifetime);
//   * registration is thread-safe (mutex-protected map, node-stable storage);
//   * snapshot() is consistent enough for reporting (each value is read
//     atomically; the set of metrics only grows).
//
// Naming convention: dotted lowercase paths, e.g. "solver.matvec",
// "mg.level2.coarsen_ratio", "cdr.states".
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stocdr::obs {

/// Monotonic counter (events, matvecs, states expanded).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (current level size, coarsening ratio, peak RSS).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming summary histogram: count / sum / min / max of observed values
/// (residual-reduction factors, per-cycle seconds).  Observation takes one
/// mutex-free CAS loop per extremum; contention is negligible at solver
/// cadence.
class Histogram {
 public:
  void observe(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Extrema; 0 before the first observation.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One metric in a snapshot.
struct MetricSample {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  double value = 0.0;          ///< counter/gauge value, histogram mean
  std::uint64_t count = 0;     ///< histogram observation count
  double min = 0.0, max = 0.0; ///< histogram extrema
};

/// The process-global registry.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Returns the metric with this name, creating it on first use.  The
  /// returned reference is valid for the process lifetime; hot paths should
  /// call once and cache it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// All metrics, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Resets counters to zero (gauges and histograms keep their last state);
  /// intended for tests and between bench cases.
  void reset_counters();

 private:
  MetricsRegistry() = default;

  // Node-stable storage: metrics are never destroyed or moved.
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mutex_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

/// Peak resident-set size of this process in bytes (0 if unavailable).
/// Reported by bench artifacts alongside solver cost.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace stocdr::obs
