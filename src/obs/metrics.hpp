// Process-global metrics registry: named counters, gauges, and histograms
// that any component can update cheaply and a reporter can snapshot.
//
// Design constraints:
//   * hot-path updates are a single atomic op — callers cache the returned
//     Counter&/Gauge&/Histogram& (addresses are stable for process lifetime);
//   * registration is thread-safe (mutex-protected map, node-stable storage);
//   * snapshot() is consistent enough for reporting (each value is read
//     atomically; the set of metrics only grows).
//
// Naming convention: dotted lowercase paths, e.g. "solver.matvec",
// "mg.level2.coarsen_ratio", "cdr.states".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stocdr::obs {

/// Monotonic counter (events, matvecs, states expanded).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (current level size, coarsening ratio, peak RSS).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-bucket histogram with streaming count / sum / exact extrema and
/// quantile estimates (residual-reduction factors, per-cycle seconds).
///
/// Buckets are log10-spaced: kBucketsPerDecade per power of ten over
/// [1e-12, 1e12), plus an underflow bucket (values below 1e-12, including
/// zero, negatives, and NaN) and an overflow bucket.  An observation is a
/// handful of relaxed atomic ops plus one log10; contention is negligible at
/// solver cadence.  Quantiles are estimated by rank-walking the bucket
/// counts with geometric interpolation inside the hit bucket; the hit
/// bucket's bounds are first tightened to the exact observed [min, max]
/// (which matters in the terminal buckets, where a wide bucket otherwise
/// collapses tail quantiles onto its 10^(k/kBucketsPerDecade) edge) — the
/// estimate is within one bucket width (a factor of
/// 10^(1/kBucketsPerDecade) ~ 1.33) of the true value.
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kMinDecade = -12;  ///< lowest bucketed value, 1e-12
  static constexpr int kMaxDecade = 12;   ///< overflow at and above 1e12
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>((kMaxDecade - kMinDecade) * kBucketsPerDecade);

  /// Plain-value copy of a histogram's full state.  Because every process
  /// uses the same fixed bucket layout, merging states is *exact* for
  /// count/sum/min/max and bucket counts — merged quantile estimates are
  /// identical to observing the union of samples in one histogram.
  struct State {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::array<std::uint64_t, kNumBuckets> buckets{};
  };

  void observe(double v);

  /// Snapshot of the full state (each field read atomically).
  [[nodiscard]] State state() const;

  /// Folds another histogram's state into this one (exact; see State).
  /// An empty state (count 0) is a no-op, so min/max stay untouched.
  void merge(const State& other);
  void merge(const Histogram& other) { merge(other.state()); }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Exact extrema; 0 before the first observation.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// Estimated q-quantile (q in [0, 1], clamped); 0 before the first
  /// observation.  Underflow observations resolve to min(), overflow to
  /// max().
  [[nodiscard]] double quantile(double q) const;

  /// Clears all state (counts, sum, extrema, buckets).
  void reset();

  /// The lower bound of bucket `index` (index kNumBuckets gives the
  /// overflow boundary).  Exposed for tests and exporters.
  [[nodiscard]] static double bucket_lower_bound(std::size_t index);

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// One metric in a snapshot.
struct MetricSample {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  double value = 0.0;          ///< counter/gauge value, histogram mean
  std::uint64_t count = 0;     ///< histogram observation count
  double sum = 0.0;            ///< histogram sum of observations
  double min = 0.0, max = 0.0; ///< histogram extrema
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;  ///< histogram quantile estimates
  /// Raw bucket state (filled by snapshot(); empty for non-histograms).
  /// Carried so exported snapshots can be merged exactly across workers.
  std::vector<std::uint64_t> buckets;
  std::uint64_t underflow = 0, overflow = 0;
};

/// The process-global registry.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Returns the metric with this name, creating it on first use.  The
  /// returned reference is valid for the process lifetime; hot paths should
  /// call once and cache it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// All metrics, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Folds a snapshot from another process into this registry: counters
  /// add, gauges take the sample's value (last write wins), histograms
  /// merge exactly from the sample's raw bucket state (a sample without
  /// buckets contributes count/sum/extrema only — quantiles then degrade
  /// to the extrema).  Used by the fleet dashboard to aggregate workers.
  void merge_snapshot(const std::vector<MetricSample>& samples);

  /// Resets counters to zero (gauges and histograms keep their last state);
  /// intended for tests.
  void reset_counters();

  /// Resets everything — counters, gauges, and histogram state — so that a
  /// following snapshot reflects only work done after this call.  Used
  /// between bench cases to keep per-case BENCH metrics uncontaminated.
  void reset_all();

 private:
  MetricsRegistry() = default;

  // Node-stable storage: metrics are never destroyed or moved.
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mutex_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

/// Serializes a snapshot as a JSON array (one object per metric; histograms
/// carry count/mean/min/max/sum and the p50/p90/p99 estimates).  Embedded in
/// BENCH_<name>.json artifacts and `cdr_analyzer --metrics-out` dumps.
[[nodiscard]] std::string metrics_to_json(
    const std::vector<MetricSample>& samples);

/// Peak resident-set size of this process in bytes (0 if unavailable).
/// Reported by bench artifacts alongside solver cost.  NOTE: ru_maxrss is
/// a monotone process-wide maximum — for per-case attribution use
/// PeakRssSampler, which resets the kernel high-water between cases.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Current resident-set size of this process in bytes (0 if unavailable);
/// sampled from /proc/self/statm on Linux.  Exported as a live gauge so
/// `stocdr-obsctl watch` can show memory next to solver progress.
[[nodiscard]] std::uint64_t current_rss_bytes();

/// Per-interval peak-RSS attribution.  On Linux, begin() resets the
/// kernel's per-process RSS high-water (writing "5" to
/// /proc/self/clear_refs) and peak() reads VmHWM from /proc/self/status,
/// so consecutive intervals each report their *own* peak instead of
/// inheriting the largest case's (the ru_maxrss contamination bug).  When
/// the reset is unavailable (non-Linux, restricted /proc), peak() falls
/// back to the monotone ru_maxrss value and source() says so.
class PeakRssSampler {
 public:
  /// Starts an attribution interval (resets the kernel high-water when
  /// possible).
  void begin();

  /// Peak RSS in bytes since begin() — or the process-monotone ru_maxrss
  /// when the per-interval reset is unavailable.
  [[nodiscard]] std::uint64_t peak() const;

  /// "vmhwm_reset" when peak() is per-interval, "ru_maxrss" when it is the
  /// process-wide fallback.
  [[nodiscard]] const char* source() const {
    return reset_worked_ ? "vmhwm_reset" : "ru_maxrss";
  }

 private:
  bool reset_worked_ = false;
};

}  // namespace stocdr::obs
