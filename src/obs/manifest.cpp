#include "obs/manifest.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "obs/dist/context.hpp"
#include "obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

// Build-time injections (CMake); fall back to "unknown" so non-CMake builds
// (e.g. single-file compiles in tooling) still link.
#ifndef STOCDR_GIT_SHA
#define STOCDR_GIT_SHA "unknown"
#endif
#ifndef STOCDR_BUILD_TYPE
#define STOCDR_BUILD_TYPE "unknown"
#endif
#ifndef STOCDR_BUILD_FLAGS
#define STOCDR_BUILD_FLAGS ""
#endif

namespace stocdr::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string host_name() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

std::string utc_date() {
  // The harness (CI, a bench driver) can pin the stamp for reproducible
  // artifact diffs; otherwise take the current wall clock.
  if (const char* injected = std::getenv("STOCDR_RUN_DATE");
      injected != nullptr && *injected != '\0') {
    return injected;
  }
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

RunManifest current_manifest() {
  RunManifest manifest;
  manifest.git_sha = STOCDR_GIT_SHA;
  manifest.compiler = compiler_id();
  manifest.build_type = STOCDR_BUILD_TYPE;
  manifest.flags = STOCDR_BUILD_FLAGS;
  manifest.hostname = host_name();
  manifest.date_utc = utc_date();
  manifest.pid = dist::process_pid();
  char trace_hex[17];
  std::snprintf(trace_hex, sizeof trace_hex, "%016llx",
                static_cast<unsigned long long>(dist::process_trace_id()));
  manifest.trace_id = trace_hex;
  return manifest;
}

std::string manifest_to_json(const RunManifest& manifest) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", std::uint64_t{manifest.schema});
  w.field("git_sha", manifest.git_sha);
  w.field("compiler", manifest.compiler);
  w.field("build_type", manifest.build_type);
  w.field("flags", manifest.flags);
  w.field("hostname", manifest.hostname);
  w.field("date_utc", manifest.date_utc);
  if (manifest.pid != 0) w.field("pid", std::uint64_t{manifest.pid});
  if (!manifest.trace_id.empty()) w.field("trace_id", manifest.trace_id);
  if (!manifest.config_hash.empty()) {
    w.field("config_hash", manifest.config_hash);
  }
  w.end_object();
  return std::move(w).str();
}

std::string fnv1a_hex(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace stocdr::obs
