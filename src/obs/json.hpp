// Minimal JSON emission used by the observability sinks and the bench
// artifact writer.  Only what the JSONL trace format and BENCH_<name>.json
// need: objects, arrays, strings with correct escaping, numbers, booleans.
// Not a parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace stocdr::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes are not
/// added).  Handles quotes, backslashes, and control characters (including
/// DEL); well-formed UTF-8 passes through verbatim, and each byte of an
/// ill-formed sequence is replaced with U+FFFD so the output is always
/// valid JSON no matter what bytes the input carries.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Formats a double as a JSON number.  Non-finite values (which JSON cannot
/// represent) are rendered as strings: "inf", "-inf", "nan".
[[nodiscard]] std::string json_number(double value);

/// Incremental writer for a single JSON value tree.  Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.field("name", "solve");
///   w.field("states", std::uint64_t{1024});
///   w.key("history"); w.begin_array();
///   w.value(1.0); w.value(0.5);
///   w.end_array();
///   w.end_object();
///   std::string line = std::move(w).str();
///
/// Commas between siblings are inserted automatically.  The writer does not
/// validate nesting beyond what is needed for comma placement.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; must be followed by exactly one value.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(bool v);

  /// Splices a pre-serialized JSON value verbatim (no escaping).  The
  /// caller is responsible for `json` being valid JSON.
  void raw_value(std::string_view json);

  /// key() + value() in one call.
  template <typename T>
  void field(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

  [[nodiscard]] std::string str() && { return std::move(out_); }
  [[nodiscard]] const std::string& str() const& { return out_; }

 private:
  void separate();

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace stocdr::obs
