#include "obs/mem/capacity.hpp"

#include <algorithm>

namespace stocdr::obs::mem {

namespace {

// Bytes-per-element coefficients, from the concrete containers involved
// (sparse/csr.hpp, sparse/coo.hpp, cdr/model.cpp) plus calibration against
// STOCDR_MEM=1 tracked high-water on the paper's fig4/fig5 configs.

/// CSR: double value (8) + u32 col index (4) per nnz.
constexpr double kCsrBytesPerNnz = 12.0;
/// CSR row_ptr: u32 per row (+1, absorbed into fixed overhead).
constexpr double kCsrBytesPerRow = 4.0;
/// Build transient per nnz: 16-byte COO Triplet, sort/merge scratch, and
/// the per-branch successor records of the composition frontier, all
/// coexisting with the nascent CSR arrays.  Calibrated: 42 bytes/nnz fits
/// the tracked build high-water of both fig4 (50.2 MB measured vs 50.7
/// predicted) and fig5 counter=32 (210.9 MB vs 211.3) to within ~1%.
constexpr double kBuildBytesPerNnz = 42.0;
/// Build transient per state: composition frontier, coordinate decode
/// scratch and the state-index hash table (node + bucket overhead).
constexpr double kBuildBytesPerState = 64.0;
/// Per-state annotations: phase coordinate (u32) + lump label (u32) +
/// effective phase (double), cdr/model.cpp.
constexpr double kAnnotationBytesPerState = 16.0;
/// Lumping hierarchy: u32 partition vector per level; levels halve, so the
/// geometric sum over levels is ~2n entries.
constexpr double kHierarchyBytesPerState = 8.0;
/// Multilevel solve residency beyond the fine CSR, as a multiple of it:
/// the coarse-chain CSRs of every level (geometric sum ~1x), the
/// aggregation plans' slot maps and quotient patterns (~1x: one u32 per
/// fine nnz plus the coarse patterns), and re-aggregation scratch.
/// Calibrated: 2.8 reproduces the tracked solve-phase high-water of fig4
/// (44.1 MB measured vs 44.2 predicted) and fig5 counter=32 (190.1 MB vs
/// 183.6).
constexpr double kCoarseCsrFactor = 2.8;
/// Solver iterate vectors are doubles.
constexpr double kBytesPerVectorEntry = 8.0;
/// Allocator slack: glibc malloc rounds requests up and vectors grow
/// geometrically, so live usable bytes run above the sum of ideal sizes.
constexpr double kAllocatorSlack = 1.15;
/// Process-fixed live heap (metrics registry, trace machinery, stdio,
/// noise tables) — independent of problem size.
constexpr std::uint64_t kFixedBytes = 2ull << 20;

std::uint64_t scaled(double value) {
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value * kAllocatorSlack);
}

}  // namespace

std::uint64_t CapacityBreakdown::build_phase_bytes() const {
  return fixed_bytes + build_bytes + csr_bytes + annotation_bytes;
}

std::uint64_t CapacityBreakdown::solve_phase_bytes() const {
  return fixed_bytes + csr_bytes + annotation_bytes + hierarchy_bytes +
         coarse_bytes + workspace_bytes;
}

std::uint64_t CapacityBreakdown::peak_bytes() const {
  return std::max(build_phase_bytes(), solve_phase_bytes());
}

CapacityBreakdown estimate_capacity(const CapacityInputs& in) {
  const auto n = static_cast<double>(in.states);
  const auto nnz = static_cast<double>(in.transitions);
  CapacityBreakdown out;
  out.csr_bytes = scaled(kCsrBytesPerNnz * nnz + kCsrBytesPerRow * n);
  out.build_bytes = scaled(kBuildBytesPerNnz * nnz + kBuildBytesPerState * n);
  out.annotation_bytes = scaled(kAnnotationBytesPerState * n);
  out.hierarchy_bytes = scaled(kHierarchyBytesPerState * n);
  if (in.multilevel) {
    out.coarse_bytes = static_cast<std::uint64_t>(
        static_cast<double>(out.csr_bytes) * kCoarseCsrFactor);
  }
  out.workspace_bytes =
      scaled(in.workspace_vectors * kBytesPerVectorEntry * n);
  out.fixed_bytes = kFixedBytes;
  return out;
}

CapacityBreakdown estimate_operator_capacity(const OperatorCapacityInputs& in) {
  const auto n = static_cast<double>(in.states);
  CapacityBreakdown out;
  out.csr_bytes = scaled(static_cast<double>(in.operator_bytes));
  out.workspace_bytes =
      scaled(in.workspace_vectors * kBytesPerVectorEntry * n);
  out.fixed_bytes = kFixedBytes;
  return out;
}

}  // namespace stocdr::obs::mem
