// JSON serialization for the bench "mem" section.  The counter machinery
// and component registry live in alloc.cpp (everything the allocation
// hooks touch stays in one constant-initialized translation unit); this
// file only reads snapshots.

#include "obs/mem/mem.hpp"

#include "obs/json.hpp"

namespace stocdr::obs::mem {

namespace {

void write_aggregate_fields(JsonWriter& w, const MemAggregate& agg) {
  w.field("regions", agg.regions);
  w.field("wall_seconds", static_cast<double>(agg.wall_ns) * 1e-9);
  w.field("allocated_bytes", agg.allocated_bytes);
  w.field("freed_bytes", agg.freed_bytes);
  w.field("alloc_count", agg.alloc_count);
  w.field("free_count", agg.free_count);
  w.field("peak_live_bytes", agg.peak_live_bytes);
}

}  // namespace

std::string mem_section_json(std::uint64_t predicted_peak_bytes,
                             std::uint64_t states) {
  JsonWriter w;
  w.begin_object();
  w.field("enabled", true);
  w.field("available", tracking_available());
  const std::uint64_t measured = peak_live_bytes();
  w.field("live_bytes", live_bytes());
  w.field("peak_live_bytes", measured);
  w.field("total_allocated_bytes", total_allocated_bytes());
  w.field("total_freed_bytes", total_freed_bytes());
  if (predicted_peak_bytes > 0) {
    w.field("predicted_peak_bytes", predicted_peak_bytes);
    if (measured > 0) {
      // Signed relative drift of the prediction against the tracked
      // high-water: +0.25 = model predicts 25% above what was measured.
      w.field("prediction_drift",
              (static_cast<double>(predicted_peak_bytes) -
               static_cast<double>(measured)) /
                  static_cast<double>(measured));
    }
  }
  if (states > 0) {
    w.field("bytes_per_state",
            static_cast<double>(measured) / static_cast<double>(states));
  }
  w.key("total");
  w.begin_object();
  write_aggregate_fields(w, total());
  w.end_object();
  w.key("spans");
  w.begin_object();
  for (const MemAggregate& agg : snapshot()) {
    if (agg.regions == 0) continue;
    w.key(agg.name);
    w.begin_object();
    write_aggregate_fields(w, agg);
    w.end_object();
  }
  w.end_object();
  w.key("components");
  w.begin_object();
  for (const auto& [tag, bytes] : component_snapshot()) {
    w.field(tag, bytes);
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace stocdr::obs::mem
