// Analytic heap-capacity model.
//
// Predicts the peak live-byte footprint of building and solving a chain
// from its structural dimensions (states, stored transitions) and the
// solver configuration — *before* any allocation happens — so callers can
// refuse or degrade work that will not fit (RobustOptions::
// memory_budget_bytes) and `cdr_analyzer --mem-estimate` can print a
// footprint table without solving.  The model is deliberately coarse: it
// tracks the handful of owners that dominate at scale (CSR arrays, the
// build-time COO/exploration transient, per-state annotations, the lumping
// hierarchy, multilevel coarse chains, solver iterate vectors) and folds
// everything else into a fixed overhead.  Constants are calibrated against
// STOCDR_MEM=1 tracked high-water on the paper's fig4/fig5 configurations;
// the committed tolerance is ±25% (tests/test_mem.cpp).
//
// This layer knows nothing about CDR configs; predicting states and
// transitions *from a config* is the job of src/cdr/capacity.hpp, which
// feeds its estimates into this model.
#pragma once

#include <cstdint>

namespace stocdr::obs::mem {

/// Structural dimensions of the problem whose footprint is being predicted.
struct CapacityInputs {
  std::uint64_t states = 0;       ///< chain states n
  std::uint64_t transitions = 0;  ///< stored nnz of P^T
  /// True when the solve runs the aggregation/multilevel path (coarse
  /// chains and the lumping hierarchy are then resident during the solve).
  bool multilevel = true;
  /// n-length double vectors the solver keeps live at once (iterates,
  /// residuals, scratch).  The default covers the stationary power /
  /// multilevel smoother working set.
  double workspace_vectors = 6.0;
};

/// Per-owner byte breakdown.  `peak_bytes()` is the model's headline
/// number: fixed + max(build-phase, solve-phase) resident bytes.
struct CapacityBreakdown {
  std::uint64_t csr_bytes = 0;         ///< values + col_idx + row_ptr
  std::uint64_t build_bytes = 0;       ///< COO triplets + exploration tables
  std::uint64_t annotation_bytes = 0;  ///< per-state labels/coordinates
  std::uint64_t hierarchy_bytes = 0;   ///< lumping partition vectors
  std::uint64_t coarse_bytes = 0;      ///< multilevel coarse-chain CSRs
  std::uint64_t workspace_bytes = 0;   ///< solver iterate vectors
  std::uint64_t fixed_bytes = 0;       ///< everything not scaling with n/nnz

  /// Peak of the build phase (COO + CSR coexist during conversion).
  [[nodiscard]] std::uint64_t build_phase_bytes() const;
  /// Peak of the solve phase (hierarchy + coarse chains + workspace).
  [[nodiscard]] std::uint64_t solve_phase_bytes() const;
  /// Predicted live-byte high-water across both phases.
  [[nodiscard]] std::uint64_t peak_bytes() const;
};

/// Evaluates the model.  Pure function of its inputs.
[[nodiscard]] CapacityBreakdown estimate_capacity(const CapacityInputs& in);

/// Structural dimensions of a matrix-free (operator / Kronecker-descriptor)
/// solve.  Nothing scaling with the product nnz is ever resident: the peak
/// is the operator's own storage (factor matrices, a few KB even for 10^7
/// states) plus the n-length iterate/shuffle vectors the ladder keeps live.
struct OperatorCapacityInputs {
  std::uint64_t states = 0;         ///< product-space dimension n
  std::uint64_t operator_bytes = 0; ///< descriptor storage_bytes()
  /// n-length double vectors resident at once: solver iterates (x, y,
  /// next, diag, best) plus the shuffle ping/pong workspace.  Krylov rungs
  /// add their basis on top — price that by raising this.
  double workspace_vectors = 8.0;
};

/// Evaluates the matrix-free model.  The breakdown reuses `csr_bytes` for
/// the operator's storage (the analogous "matrix bytes" owner); build,
/// annotation, hierarchy, and coarse owners are all zero — there is no
/// build transient and no lumping machinery on this path.
[[nodiscard]] CapacityBreakdown estimate_operator_capacity(
    const OperatorCapacityInputs& in);

}  // namespace stocdr::obs::mem
