// Heap allocation telemetry (STOCDR_MEM=1).
//
// The roadmap's matrix-free and sharded/out-of-core items are memory-bound,
// yet the only memory signal used to be a single process-wide ru_maxrss.
// This layer attaches *byte attribution* to the existing span taxonomy: the
// replaceable global operator new/delete (src/obs/mem/alloc.cpp) feed
// thread-local counters, deltas are snapshotted around every obs::Span and
// aggregated per span name — the same banking pattern src/obs/prof/ uses
// for perf counters — so a tracked run reports bytes allocated / freed,
// allocation counts and the live-byte high-water per span next to the
// wall-clock and perf numbers.
//
// Byte accounting uses malloc_usable_size() at both allocation and free on
// Linux (so alloc and free sides agree exactly and cross-thread frees
// balance globally); elsewhere only allocation *counts* are tracked and
// tracking_available() reports false.
//
// Per-span live high-water rides on the per-thread Span LIFO invariant
// (debug-asserted in obs/trace.cpp): span_begin() saves the thread's
// running peak and restarts it at the current live level; span_end()
// harvests the span's own peak and restores max(saved, span peak) so an
// enclosing span still sees the inner maximum.  Worker-pool jobs bank
// allocated/freed/count deltas to the dispatching thread (add_foreign) as
// deterministic u64 sums; worker-side peaks are thread-local and are *not*
// banked (a cross-thread high-water has no well-defined single timeline).
//
// Tracking is off unless STOCDR_MEM is set (to anything but "" or "0");
// when off, every allocation pays one relaxed load + branch.  Enabling
// tracking changes no solver result bit: counters are observed strictly
// outside the numerics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stocdr::obs::mem {

/// Cumulative per-thread totals (monotone running sums, foreign included).
struct MemReading {
  std::uint64_t allocated_bytes = 0;
  std::uint64_t freed_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t free_count = 0;
};

/// One completed region's contribution: summed deltas plus the region's own
/// live-byte high-water (thread-local, relative to process live bytes).
struct MemDelta {
  std::uint64_t allocated_bytes = 0;
  std::uint64_t freed_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t free_count = 0;
  std::uint64_t peak_live_bytes = 0;
};

/// Per-name (or total) aggregate over completed spans.  `peak_live_bytes`
/// is the max over contributing regions, not a sum.
struct MemAggregate {
  std::string name;
  std::uint64_t regions = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t allocated_bytes = 0;
  std::uint64_t freed_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t free_count = 0;
  std::uint64_t peak_live_bytes = 0;
};

/// True when STOCDR_MEM enables tracking (parsed once, lazily; test hook
/// can override).
[[nodiscard]] bool enabled();

/// True when byte-exact accounting is compiled in (malloc_usable_size);
/// false on platforms where only allocation counts are tracked.
[[nodiscard]] bool tracking_available();

/// Process-wide live heap bytes right now (0 when tracking is off or
/// unavailable).
[[nodiscard]] std::uint64_t live_bytes();

/// Process-wide live-byte high-water since process start or the last
/// reset().
[[nodiscard]] std::uint64_t peak_live_bytes();

/// Cumulative process totals (sum over all threads; approximate only in
/// the sense that threads publish at allocation granularity).
[[nodiscard]] std::uint64_t total_allocated_bytes();
[[nodiscard]] std::uint64_t total_freed_bytes();

/// Reads the calling thread's cumulative counters *plus* whatever pool
/// workers banked for this thread — see add_foreign().
[[nodiscard]] MemReading read_current_thread();

/// Banks worker-side deltas against the calling thread, so an open tracked
/// span on the dispatching thread absorbs worker allocations into its
/// delta.  Per-slot u64 sums — deterministic regardless of scheduling.
/// `peak_live_bytes` of the delta is ignored (see file comment).
void add_foreign(const MemDelta& delta);

/// Opaque state captured at span start; pass back to span_end().
struct SpanStart {
  MemReading start;
  std::uint64_t saved_peak = 0;
  std::uint64_t start_ns = 0;
  bool top_level = false;
};

/// Begins a tracked region on this thread: snapshots cumulative counters,
/// saves the thread's running peak and restarts peak tracking at the
/// current live level.  Also bumps the per-thread region depth
/// (`top_level` is set for the outermost region).
[[nodiscard]] SpanStart span_begin(std::uint64_t start_ns);

/// Ends a tracked region: computes the delta (saturating per slot),
/// harvests this region's live high-water, restores the enclosing peak and
/// pops the region depth.  Does NOT accumulate — the caller decides the
/// name (mirrors prof::reading_delta + accumulate).
[[nodiscard]] MemDelta span_end(const SpanStart& start);

/// Folds one completed region's delta into the per-name aggregate table
/// (creating the name on first use) and, when `top_level`, into the
/// process "total" aggregate.
void accumulate(const char* name, const MemDelta& delta,
                std::uint64_t wall_ns, bool top_level);

/// Snapshot of every named aggregate with at least one completed region,
/// sorted by name (reset() keeps names registered but empties them).
[[nodiscard]] std::vector<MemAggregate> snapshot();

/// The process "total" aggregate (deltas of top-level tracked spans).
[[nodiscard]] MemAggregate total();

/// Clears every aggregate (names stay registered), clears component
/// footprints, and restarts the process high-water at the current live
/// level; used by the bench harness for per-case isolation alongside
/// MetricsRegistry::reset_all() and prof::reset().
void reset();

/// Publishes mem.* gauges into the global MetricsRegistry:
/// mem.live_bytes, mem.peak_live_bytes, mem.total_allocated_bytes,
/// mem.<span>.allocated_bytes / peak_live_bytes, plus every
/// mem.component.<tag> footprint — so metrics snapshots and the live
/// exporter carry byte attribution next to wall-clock histograms.
void publish_to_metrics();

// --- component footprint registry -------------------------------------------

/// Big owners (CsrMatrix, solver workspaces, the lumping hierarchy, the
/// trace ring) report their tagged footprint here; surfaces as
/// mem.component.<tag> gauges and in the bench mem section.  Reporting the
/// same tag overwrites (latest wins); 0 removes the tag.  No-op when
/// tracking is disabled.
void report_component(std::string_view tag, std::uint64_t bytes);

/// All currently reported component footprints, sorted by tag.
[[nodiscard]] std::map<std::string, std::uint64_t, std::less<>>
component_snapshot();

// --- bench JSON --------------------------------------------------------------

/// Serializes the "mem" object of a BENCH_*.json artifact (the caller
/// splices it after a "mem" key): enabled/available flags, process totals,
/// predicted vs. measured peak, bytes-per-state, per-span aggregates and
/// component footprints.  `predicted_peak_bytes` = 0 means no prediction
/// (fields omitted); `states` = 0 omits bytes_per_state.
[[nodiscard]] std::string mem_section_json(std::uint64_t predicted_peak_bytes,
                                           std::uint64_t states);

namespace detail {
/// Test hook: overrides STOCDR_MEM (true/false); pass reset_override to
/// return to environment control.
void set_enabled_for_test(bool enabled);
}  // namespace detail

}  // namespace stocdr::obs::mem
