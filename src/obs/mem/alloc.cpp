// Replaceable global operator new/delete plus the thread-local counter and
// per-span banking machinery behind obs/mem/mem.hpp.
//
// Everything the allocation hooks touch lives in this translation unit and
// is constant-initialized (plain atomics and trivially-destructible
// thread-locals), so a hook can never recurse into the allocator or trip a
// static-init-order hazard.  The hooks themselves do arithmetic only; the
// map-backed aggregate table is touched exclusively from span_end /
// accumulate, which run outside the hooks (their own allocations are simply
// counted like any other).
//
// Linkage note: these operators live in a static archive, so they replace
// the default allocator only when this object file is pulled into the link.
// mem::enabled() is defined here and called by obs::Span (obs/trace.cpp),
// which every stocdr binary links — that reference guarantees the pull-in.

#include "obs/mem/mem.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <string_view>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <malloc.h>
#define STOCDR_MEM_HAVE_USABLE_SIZE 1
#else
#define STOCDR_MEM_HAVE_USABLE_SIZE 0
#endif

// In this TU the compiler sees both the replaced operator new (malloc-
// backed) and operator delete (free-backed) and flags every new/free pair
// it inlines as mismatched.  The pairing is the whole point of the funnel:
// every variant goes through malloc/posix_memalign + free so usable-size
// accounting agrees on both sides.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace stocdr::obs::mem {

namespace {

// --- process-wide configuration --------------------------------------------

/// -1 = follow STOCDR_MEM; 0/1 = test override.
std::atomic<int> g_enabled_override{-1};
/// Resolved tracking state: -1 unknown, 0 off, 1 on.  The allocation hooks
/// read this with one relaxed load; resolution happens on first use.
std::atomic<int> g_tracking{-1};

bool compute_enabled() {
  const int override_value =
      g_enabled_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return override_value != 0;
  const char* v = std::getenv("STOCDR_MEM");
  return v != nullptr && v[0] != '\0' && std::string_view(v) != "0";
}

bool tracking_on() {
  int state = g_tracking.load(std::memory_order_relaxed);
  if (state < 0) {
    state = compute_enabled() ? 1 : 0;
    g_tracking.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

// --- process-wide totals -----------------------------------------------------

std::atomic<std::int64_t> g_live{0};
std::atomic<std::uint64_t> g_peak{0};
std::atomic<std::uint64_t> g_total_allocated{0};
std::atomic<std::uint64_t> g_total_freed{0};
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_free_count{0};

void update_global_peak(std::uint64_t live) {
  std::uint64_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak.compare_exchange_weak(peak, live,
                                       std::memory_order_relaxed)) {
  }
}

// --- per-thread counters -----------------------------------------------------

/// Trivially-destructible, constant-initialized: safe to touch from inside
/// the allocation hooks on any thread at any point of its lifetime.
struct ThreadMem {
  std::uint64_t allocated;
  std::uint64_t freed;
  std::uint64_t allocs;
  std::uint64_t frees;
  std::uint64_t live;  ///< this thread's net view, clamped at 0
  std::uint64_t peak;  ///< high-water of `live` since last span_begin/reset
  std::uint32_t depth;  ///< tracked-region nesting depth
};
thread_local ThreadMem t_mem{};

/// Worker deltas banked by add_foreign(); only the owner touches it.
struct ForeignMem {
  std::uint64_t allocated;
  std::uint64_t freed;
  std::uint64_t allocs;
  std::uint64_t frees;
};
thread_local ForeignMem t_foreign{};

std::size_t usable_size(void* p) {
#if STOCDR_MEM_HAVE_USABLE_SIZE
  return malloc_usable_size(p);
#else
  (void)p;
  return 0;
#endif
}

void note_alloc(void* p) {
  if (p == nullptr || !tracking_on()) return;
  const std::uint64_t bytes = usable_size(p);
  ThreadMem& t = t_mem;
  t.allocated += bytes;
  t.allocs += 1;
  t.live += bytes;
  if (t.live > t.peak) t.peak = t.live;
  const std::int64_t live =
      g_live.fetch_add(static_cast<std::int64_t>(bytes),
                       std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  if (live > 0) update_global_peak(static_cast<std::uint64_t>(live));
  g_total_allocated.fetch_add(bytes, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
}

void note_free(void* p) {
  if (p == nullptr || !tracking_on()) return;
  const std::uint64_t bytes = usable_size(p);
  ThreadMem& t = t_mem;
  t.freed += bytes;
  t.frees += 1;
  // A block freed on a thread other than its allocator would drive this
  // thread's net view negative; clamp at zero (the global live count stays
  // exact because alloc and free sides use the same usable size).
  t.live = bytes < t.live ? t.live - bytes : 0;
  g_live.fetch_sub(static_cast<std::int64_t>(bytes),
                   std::memory_order_relaxed);
  g_total_freed.fetch_add(bytes, std::memory_order_relaxed);
  g_free_count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

// --- raw allocation paths ----------------------------------------------------

void* alloc_plain(std::size_t size) { return std::malloc(size ? size : 1); }

void* alloc_aligned(std::size_t size, std::size_t alignment) {
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  // posix_memalign (unlike std::aligned_alloc) has no size-multiple
  // requirement, and its result is legal to pass to free() /
  // malloc_usable_size().
  if (posix_memalign(&p, alignment, size ? size : 1) != 0) return nullptr;
  return p;
}

// --- per-name aggregation ----------------------------------------------------

struct AggregateCells {
  std::uint64_t regions = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t allocated_bytes = 0;
  std::uint64_t freed_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t free_count = 0;
  std::uint64_t peak_live_bytes = 0;  ///< max over regions

  void add(const MemDelta& delta, std::uint64_t wall) {
    ++regions;
    wall_ns += wall;
    allocated_bytes += delta.allocated_bytes;
    freed_bytes += delta.freed_bytes;
    alloc_count += delta.alloc_count;
    free_count += delta.free_count;
    peak_live_bytes = std::max(peak_live_bytes, delta.peak_live_bytes);
  }

  [[nodiscard]] MemAggregate to_aggregate(const std::string& name) const {
    MemAggregate agg;
    agg.name = name;
    agg.regions = regions;
    agg.wall_ns = wall_ns;
    agg.allocated_bytes = allocated_bytes;
    agg.freed_bytes = freed_bytes;
    agg.alloc_count = alloc_count;
    agg.free_count = free_count;
    agg.peak_live_bytes = peak_live_bytes;
    return agg;
  }
};

struct AggregateTable {
  std::mutex mutex;
  std::map<std::string, AggregateCells, std::less<>> by_name;
  AggregateCells total;
  std::map<std::string, std::uint64_t, std::less<>> components;
};

AggregateTable& table() {
  static AggregateTable t;
  return t;
}

}  // namespace

bool enabled() { return tracking_on(); }

bool tracking_available() { return STOCDR_MEM_HAVE_USABLE_SIZE != 0; }

std::uint64_t live_bytes() {
  const std::int64_t live = g_live.load(std::memory_order_relaxed);
  return live > 0 ? static_cast<std::uint64_t>(live) : 0;
}

std::uint64_t peak_live_bytes() {
  return g_peak.load(std::memory_order_relaxed);
}

std::uint64_t total_allocated_bytes() {
  return g_total_allocated.load(std::memory_order_relaxed);
}

std::uint64_t total_freed_bytes() {
  return g_total_freed.load(std::memory_order_relaxed);
}

MemReading read_current_thread() {
  const ThreadMem& t = t_mem;
  const ForeignMem& f = t_foreign;
  MemReading reading;
  reading.allocated_bytes = t.allocated + f.allocated;
  reading.freed_bytes = t.freed + f.freed;
  reading.alloc_count = t.allocs + f.allocs;
  reading.free_count = t.frees + f.frees;
  return reading;
}

void add_foreign(const MemDelta& delta) {
  ForeignMem& f = t_foreign;
  f.allocated += delta.allocated_bytes;
  f.freed += delta.freed_bytes;
  f.allocs += delta.alloc_count;
  f.frees += delta.free_count;
}

SpanStart span_begin(std::uint64_t start_ns) {
  ThreadMem& t = t_mem;
  SpanStart start;
  start.top_level = t.depth == 0;
  ++t.depth;
  start.start_ns = start_ns;
  start.start = read_current_thread();
  // Restart this thread's high-water at the current live level so the
  // region harvests its *own* peak; the enclosing region's running peak is
  // restored (max-merged) in span_end.  Relies on the per-thread span LIFO
  // invariant asserted in obs/trace.cpp.
  start.saved_peak = t.peak;
  t.peak = t.live;
  return start;
}

MemDelta span_end(const SpanStart& start) {
  ThreadMem& t = t_mem;
  if (t.depth > 0) --t.depth;
  const MemReading now = read_current_thread();
  MemDelta delta;
  delta.allocated_bytes =
      sat_sub(now.allocated_bytes, start.start.allocated_bytes);
  delta.freed_bytes = sat_sub(now.freed_bytes, start.start.freed_bytes);
  delta.alloc_count = sat_sub(now.alloc_count, start.start.alloc_count);
  delta.free_count = sat_sub(now.free_count, start.start.free_count);
  delta.peak_live_bytes = t.peak;
  t.peak = std::max(start.saved_peak, t.peak);
  return delta;
}

void accumulate(const char* name, const MemDelta& delta,
                std::uint64_t wall_ns, bool top_level) {
  AggregateTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  auto it = t.by_name.find(std::string_view(name));
  if (it == t.by_name.end()) {
    it = t.by_name.emplace(std::string(name), AggregateCells{}).first;
  }
  it->second.add(delta, wall_ns);
  if (top_level) t.total.add(delta, wall_ns);
}

std::vector<MemAggregate> snapshot() {
  AggregateTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  std::vector<MemAggregate> out;
  out.reserve(t.by_name.size());
  for (const auto& [name, cells] : t.by_name) {
    if (cells.regions == 0) continue;
    out.push_back(cells.to_aggregate(name));
  }
  return out;
}

MemAggregate total() {
  AggregateTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  return t.total.to_aggregate("total");
}

void reset() {
  {
    AggregateTable& t = table();
    const std::lock_guard<std::mutex> lock(t.mutex);
    for (auto& [name, cells] : t.by_name) cells = AggregateCells{};
    t.total = AggregateCells{};
    t.components.clear();
  }
  // Restart the process high-water at the current live level (and the
  // calling thread's running peak; other threads' peaks restart at their
  // next span_begin).
  g_peak.store(live_bytes(), std::memory_order_relaxed);
  ThreadMem& t = t_mem;
  t.peak = t.live;
}

void report_component(std::string_view tag, std::uint64_t bytes) {
  if (!tracking_on()) return;
  AggregateTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  if (bytes == 0) {
    t.components.erase(std::string(tag));
  } else {
    t.components.insert_or_assign(std::string(tag), bytes);
  }
}

std::map<std::string, std::uint64_t, std::less<>> component_snapshot() {
  AggregateTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  return t.components;
}

void publish_to_metrics() {
  if (!tracking_on()) return;
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.gauge("mem.live_bytes")
      .set(static_cast<double>(live_bytes()));
  registry.gauge("mem.peak_live_bytes")
      .set(static_cast<double>(peak_live_bytes()));
  registry.gauge("mem.total_allocated_bytes")
      .set(static_cast<double>(total_allocated_bytes()));
  registry.gauge("mem.total_freed_bytes")
      .set(static_cast<double>(total_freed_bytes()));
  const auto publish = [&registry](const MemAggregate& agg) {
    const std::string prefix = "mem." + agg.name + ".";
    registry.gauge(prefix + "allocated_bytes")
        .set(static_cast<double>(agg.allocated_bytes));
    registry.gauge(prefix + "peak_live_bytes")
        .set(static_cast<double>(agg.peak_live_bytes));
  };
  publish(total());
  for (const MemAggregate& agg : snapshot()) {
    if (agg.regions > 0) publish(agg);
  }
  for (const auto& [tag, bytes] : component_snapshot()) {
    registry.gauge("mem.component." + tag)
        .set(static_cast<double>(bytes));
  }
}

namespace detail {

void set_enabled_for_test(bool enabled) {
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
  g_tracking.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace stocdr::obs::mem

// --- replaceable global allocation functions ---------------------------------
//
// Every variant funnels into malloc / posix_memalign + free so the alloc
// and free sides agree on malloc_usable_size, then notes the event.  These
// are the standard-mandated replaceable signatures ([new.delete]);
// placement forms are untouched.  Unnamed-namespace helpers above are
// reachable here via their enclosing namespace.

namespace memhook = stocdr::obs::mem;

void* operator new(std::size_t size) {
  void* p = memhook::alloc_plain(size);
  if (p == nullptr) throw std::bad_alloc();
  memhook::note_alloc(p);
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = memhook::alloc_plain(size);
  memhook::note_alloc(p);
  return p;
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p =
      memhook::alloc_aligned(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  memhook::note_alloc(p);
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  void* p =
      memhook::alloc_aligned(size, static_cast<std::size_t>(alignment));
  memhook::note_alloc(p);
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t& tag) noexcept {
  return ::operator new(size, alignment, tag);
}

void operator delete(void* p) noexcept {
  memhook::note_free(p);
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
