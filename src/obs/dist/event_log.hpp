// Unified structured event log: one ordered file for everything notable.
//
// The robust substrate already *detects* every interesting condition —
// sentinel trips, ladder rung changes, checkpoint writes/restores/rejects,
// journal recovery, admission decisions, health alarms, fault firings —
// but reports them through six different side channels (stderr lines,
// counters, trace attributes, report structs).  "What happened during this
// 4-hour sweep" should be one ordered file.  The EventLog is that file:
// bounded, thread-safe, multi-process-safe, and deliberately lossy-on-
// error (an observability sink must never take down the solve it
// observes).
//
// Record schema (JSONL, one object per line):
//
//   {"event":"<kind>","severity":"info|warning|alarm","ts_ns":<wall ns>,
//    "pid":<pid>,"trace_id":"<hex16>","span_id":<id>,"attrs":{...}}
//
//   ts_ns     CLOCK_REALTIME nanoseconds (wall, not monotonic) so records
//             from different processes order meaningfully
//   trace_id  the process trace id (obs/dist/context.hpp) — identical
//             across a fleet spawned from one parent
//   span_id   the innermost span open on the emitting thread (0 = none)
//
// Multi-process ordering: the file is opened O_APPEND and each record is
// written with a single write(2), so a parent and its workers can share
// one event-log path and the kernel interleaves whole lines.  (POSIX
// guarantees atomicity for O_APPEND writes well past this record size on
// regular files.)  No fsync: a torn final line after a crash is expected,
// and every reader skips malformed lines.
//
// Enabling: STOCDR_EVENT_LOG=<path> (read once, lazily), or
// EventLog::instance().install(path).  Disabled, emit() is one relaxed
// atomic load.  The last `ring_capacity` rendered lines are also retained
// in memory (recent()) for tests and crash diagnostics, mirroring the
// flight recorder's ring-tee shape.
//
// Fault site "event_append" (STOCDR_FAULT_PLAN): `fail` drops the record
// (counted in events.dropped), `torn` persists half the line with no
// newline — both return normally; the event log never throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/sink.hpp"

namespace stocdr::obs::evt {

enum class Severity {
  kInfo,     ///< progress, lifecycle
  kWarning,  ///< degraded but proceeding (rung failure, reject, degrade)
  kAlarm,    ///< numerical-health alarm; `obsctl events` exits non-zero
};

[[nodiscard]] const char* to_string(Severity severity);

/// Attribute list of one event; reuses the span AttrValue variant.
using EventAttrs = std::vector<std::pair<std::string, AttrValue>>;

/// One event as rendered/parsed (exposed for tests and obsctl).
struct EventRecord {
  std::string kind;
  Severity severity = Severity::kInfo;
  std::uint64_t ts_ns = 0;    ///< CLOCK_REALTIME ns
  std::uint32_t pid = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  EventAttrs attrs;
};

/// Renders one record as its JSONL line (no trailing newline).
[[nodiscard]] std::string event_to_jsonl(const EventRecord& record);

/// The process-global event log.
class EventLog {
 public:
  static EventLog& instance();

  /// True when a destination (file or ring-only install) is active.  The
  /// disabled fast path is one relaxed atomic load.
  [[nodiscard]] bool enabled() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Stamps ts/pid/trace_id/span_id and appends one record.  Never throws;
  /// write failures and injected faults increment dropped().
  void publish(std::string_view kind, Severity severity,
               EventAttrs attrs = {});

  /// Programmatic install: `path` "" keeps the ring tee only (tests);
  /// `ring_capacity` 0 keeps the current capacity.  Replaces any prior
  /// destination (including the environment-selected one) and clears the
  /// ring.
  void install(const std::string& path, std::size_t ring_capacity = 0);

  /// Closes the file destination and disables the log (ring retained).
  void close();

  /// The retained rendered lines, oldest first.
  [[nodiscard]] std::vector<std::string> recent() const;

  [[nodiscard]] std::uint64_t published() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  EventLog();

  bool append_line(const std::string& line);

  mutable std::mutex mutex_;
  std::atomic<bool> active_{false};
  int fd_ = -1;              ///< O_APPEND file, -1 = none
  bool ring_only_ = false;   ///< installed with an empty path
  std::size_t ring_capacity_ = 256;
  std::deque<std::string> ring_;
  std::uint64_t published_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Convenience: EventLog::instance().publish(...) behind an enabled()
/// guard, so call sites pay nothing when the log is off.
inline void emit(std::string_view kind, Severity severity = Severity::kInfo,
                 EventAttrs attrs = {}) {
  EventLog& log = EventLog::instance();
  if (log.enabled()) log.publish(kind, severity, std::move(attrs));
}

/// True when the process event log is active (cheap; for call sites that
/// want to skip attr construction entirely).
[[nodiscard]] inline bool enabled() { return EventLog::instance().enabled(); }

}  // namespace stocdr::obs::evt
