// Distributed trace context: one trace across many processes.
//
// A single-process trace keys spans by process-unique ids; a fleet of
// cooperating workers (a sharded sweep, the future stocdr-serve) needs one
// identity that survives fork/exec so their traces can be merged and the
// cross-process call chain reconstructed.  The context is three numbers:
//
//   trace_id   64-bit id shared by every process in one logical run; a
//              child adopts its parent's, a root process derives a fresh
//              one from pid + clock entropy
//   pid        the OS pid of the process that owns span_id (span ids are
//              only process-unique, so a cross-process reference must be
//              the (pid, span_id) pair)
//   span_id    the span open at the moment the context was captured
//              (0 = "the process itself", no specific span)
//
// Propagation is environmental: `format_traceparent` renders the context
// as `<trace_id:hex16>-<pid:hex8>-<span_id:hex16>` and `spawn_child`
// injects it as STOCDR_TRACE_PARENT into the child's environment.  On the
// child side the first span of the process (parent_ == nullptr) records
// the remote context as its cross-process parent, and the process adopts
// the parent's trace_id — so spans and event-log records of the whole
// fleet carry one consistent trace_id.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stocdr::obs::dist {

/// One cross-process trace reference (see file comment).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t pid = 0;
  std::uint64_t span_id = 0;  ///< 0 = no specific span

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// `<trace_id:hex16>-<pid:hex8>-<span_id:hex16>`, e.g.
/// "00c2f1d4a9e37b58-00004e21-0000000000000007".
[[nodiscard]] std::string format_traceparent(const TraceContext& ctx);

/// Parses the format above; nullopt on any malformation (wrong field
/// widths, non-hex digits, zero trace_id).
[[nodiscard]] std::optional<TraceContext> parse_traceparent(
    std::string_view text);

/// The remote parent context parsed from STOCDR_TRACE_PARENT (read once,
/// lazily); nullopt when unset or malformed.
[[nodiscard]] const std::optional<TraceContext>& remote_parent();

/// This process's trace id: the remote parent's when STOCDR_TRACE_PARENT
/// is set, otherwise derived once from pid + clock entropy.  Never 0.
[[nodiscard]] std::uint64_t process_trace_id();

/// getpid(), cached (safe across fork+exec: the exec'd image re-caches).
[[nodiscard]] std::uint32_t process_pid();

/// The context of the innermost span open on the calling thread (span_id 0
/// when tracing is off or no span is open) — what a spawner exports so the
/// child's root spans link under the spawning span.
[[nodiscard]] TraceContext current_context();

/// format_traceparent(current_context()).
[[nodiscard]] std::string current_traceparent();

#if defined(__unix__) || defined(__APPLE__)
/// fork/exec helper that propagates the trace context: the child runs
/// `argv` (argv[0] = executable path) with the parent's environment plus
/// STOCDR_TRACE_PARENT=current_traceparent() plus `extra_env` (each entry
/// "KEY=VALUE"; entries override inherited variables of the same KEY, and
/// a later entry overrides an earlier one).  Returns the child pid; throws
/// stocdr::IoError when fork fails.  A failed exec exits the child with
/// status 127.
[[nodiscard]] int spawn_child(const std::vector<std::string>& argv,
                              const std::vector<std::string>& extra_env = {});

/// Blocks until `pid` exits; returns its exit status (128 + signal when it
/// died on a signal).  Throws stocdr::IoError when waitpid fails.
[[nodiscard]] int wait_child(int pid);
#endif

}  // namespace stocdr::obs::dist
