#include "obs/dist/event_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/dist/context.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/atomic_file.hpp"

namespace stocdr::obs::evt {

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::size_t parse_capacity(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(text, &end, 10);
  if (end == text || parsed == 0) return 0;
  return static_cast<std::size_t>(parsed);
}

/// publish() can re-enter itself: an injected "event_append" fault is
/// announced by the faultinject engine, which publishes a fault.fired
/// event.  The guard turns the inner publish into a drop instead of an
/// unbounded recursion.
thread_local bool t_in_publish = false;

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kAlarm: return "alarm";
  }
  return "unknown";
}

std::string event_to_jsonl(const EventRecord& record) {
  JsonWriter w;
  w.begin_object();
  w.field("event", record.kind);
  w.field("severity", to_string(record.severity));
  w.field("ts_ns", record.ts_ns);
  w.field("pid", std::uint64_t{record.pid});
  char trace_hex[17];
  std::snprintf(trace_hex, sizeof trace_hex, "%016" PRIx64, record.trace_id);
  w.field("trace_id", trace_hex);
  w.field("span_id", record.span_id);
  if (!record.attrs.empty()) {
    w.key("attrs");
    w.begin_object();
    for (const auto& [key, value] : record.attrs) {
      w.key(key);
      if (const auto* u = std::get_if<std::uint64_t>(&value)) {
        w.value(*u);
      } else if (const auto* d = std::get_if<double>(&value)) {
        w.value(*d);
      } else {
        w.value(std::get<std::string>(value));
      }
    }
    w.end_object();
  }
  w.end_object();
  return std::move(w).str();
}

EventLog::EventLog() {
  if (const std::size_t ring =
          parse_capacity(std::getenv("STOCDR_EVENT_RING"));
      ring > 0) {
    ring_capacity_ = ring;
  }
  if (const char* path = std::getenv("STOCDR_EVENT_LOG");
      path != nullptr && *path != '\0') {
    install(path);
  }
}

EventLog& EventLog::instance() {
  static EventLog log;
  return log;
}

void EventLog::install(const std::string& path, std::size_t ring_capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ring_only_ = path.empty();
  if (ring_capacity > 0) ring_capacity_ = ring_capacity;
  ring_.clear();
  if (!path.empty()) {
    // O_APPEND so a fleet of processes can share one ordered file: each
    // whole-line write(2) lands atomically at the current end.
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
      std::fprintf(stderr, "stocdr: event log disabled: cannot open %s\n",
                   path.c_str());
      ring_only_ = false;
      active_.store(false, std::memory_order_relaxed);
      return;
    }
  }
  active_.store(true, std::memory_order_relaxed);
}

void EventLog::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ring_only_ = false;
  active_.store(false, std::memory_order_relaxed);
}

bool EventLog::append_line(const std::string& line) {
  // Under mutex_.  Faults model a crash mid-append: `torn` persists a
  // newline-less prefix (the next record's line merges with it and the
  // reader counts one malformed line), `fail` drops the record.  Neither
  // throws — observability must not take down the host solve.
  std::size_t persist = line.size();
  switch (arm_io_fault("event_append")) {
    case 1:
      ++dropped_;
      return false;
    case 2:
      persist = line.size() / 2;
      break;
    default:
      break;
  }
  if (fd_ >= 0) {
    std::string out = line.substr(0, persist);
    if (persist == line.size()) out += '\n';
    const ssize_t wrote = ::write(fd_, out.data(), out.size());
    if (wrote != static_cast<ssize_t>(out.size())) {
      ++dropped_;
      return false;
    }
  }
  if (persist != line.size()) {
    ++dropped_;  // torn: the prefix is on disk but the record is lost
    return false;
  }
  ring_.push_back(line);
  while (ring_.size() > ring_capacity_) ring_.pop_front();
  ++published_;
  return true;
}

void EventLog::publish(std::string_view kind, Severity severity,
                       EventAttrs attrs) {
  if (!enabled()) return;
  if (t_in_publish) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++dropped_;
    return;
  }
  t_in_publish = true;
  EventRecord record;
  record.kind = std::string(kind);
  record.severity = severity;
  record.ts_ns = wall_ns();
  record.pid = dist::process_pid();
  record.trace_id = dist::process_trace_id();
  record.span_id = Tracer::current_span_id();
  record.attrs = std::move(attrs);
  const std::string line = event_to_jsonl(record);
  bool appended;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    appended = append_line(line);
  }
  MetricsRegistry::instance()
      .counter(appended ? "events.published" : "events.dropped")
      .add(1);
  t_in_publish = false;
}

std::vector<std::string> EventLog::recent() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t EventLog::published() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

std::uint64_t EventLog::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

}  // namespace stocdr::obs::evt
