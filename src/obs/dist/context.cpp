#include "obs/dist/context.hpp"

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.hpp"
#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
extern char** environ;
#endif

namespace stocdr::obs::dist {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash for trace-id
/// derivation (no cryptographic requirement — only collision unlikelihood
/// between unrelated runs on the same host).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_trace_id() {
  const auto wall = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const std::uint64_t id =
      mix64(wall ^ (static_cast<std::uint64_t>(process_pid()) << 32));
  return id != 0 ? id : 1;
}

bool parse_hex(std::string_view text, std::uint64_t& out) {
  out = 0;
  if (text.empty()) return false;
  for (const char c : text) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;  // uppercase rejected: the format is lowercase-only
    }
    out = (out << 4) | digit;
  }
  return true;
}

struct ProcessContext {
  std::optional<TraceContext> remote;
  std::uint64_t trace_id = 0;
};

/// One-time resolution of STOCDR_TRACE_PARENT and the process trace id.
const ProcessContext& process_context() {
  static const ProcessContext ctx = [] {
    ProcessContext out;
    if (const char* env = std::getenv("STOCDR_TRACE_PARENT");
        env != nullptr && *env != '\0') {
      out.remote = parse_traceparent(env);
      if (!out.remote.has_value()) {
        std::fprintf(stderr,
                     "stocdr: ignoring malformed STOCDR_TRACE_PARENT "
                     "\"%s\"\n",
                     env);
      }
    }
    out.trace_id =
        out.remote.has_value() ? out.remote->trace_id : derive_trace_id();
    return out;
  }();
  return ctx;
}

}  // namespace

std::string format_traceparent(const TraceContext& ctx) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%016" PRIx64 "-%08x-%016" PRIx64,
                ctx.trace_id, ctx.pid, ctx.span_id);
  return buf;
}

std::optional<TraceContext> parse_traceparent(std::string_view text) {
  // Fixed widths: 16 + 1 + 8 + 1 + 16.
  if (text.size() != 42 || text[16] != '-' || text[25] != '-') {
    return std::nullopt;
  }
  TraceContext ctx;
  std::uint64_t pid = 0;
  if (!parse_hex(text.substr(0, 16), ctx.trace_id) ||
      !parse_hex(text.substr(17, 8), pid) ||
      !parse_hex(text.substr(26, 16), ctx.span_id)) {
    return std::nullopt;
  }
  if (ctx.trace_id == 0) return std::nullopt;
  ctx.pid = static_cast<std::uint32_t>(pid);
  return ctx;
}

const std::optional<TraceContext>& remote_parent() {
  return process_context().remote;
}

std::uint64_t process_trace_id() { return process_context().trace_id; }

std::uint32_t process_pid() {
#if defined(__unix__) || defined(__APPLE__)
  static const std::uint32_t pid = static_cast<std::uint32_t>(::getpid());
  return pid;
#else
  return 0;
#endif
}

TraceContext current_context() {
  TraceContext ctx;
  ctx.trace_id = process_trace_id();
  ctx.pid = process_pid();
  ctx.span_id = Tracer::current_span_id();
  return ctx;
}

std::string current_traceparent() {
  return format_traceparent(current_context());
}

#if defined(__unix__) || defined(__APPLE__)

int spawn_child(const std::vector<std::string>& argv,
                const std::vector<std::string>& extra_env) {
  STOCDR_REQUIRE(!argv.empty(), "spawn_child: argv must not be empty");

  std::vector<std::string> env_storage;
  std::vector<std::string> overrides = extra_env;
  overrides.push_back("STOCDR_TRACE_PARENT=" + current_traceparent());

  const auto key_of = [](std::string_view entry) {
    return entry.substr(0, entry.find('='));
  };
  // Inherited environment minus any overridden keys, then the overrides
  // (later overrides win by shadowing earlier ones in reverse scan).
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string_view entry(*e);
    bool overridden = false;
    for (const std::string& o : overrides) {
      if (key_of(o) == key_of(entry)) {
        overridden = true;
        break;
      }
    }
    if (!overridden) env_storage.emplace_back(entry);
  }
  for (auto it = overrides.begin(); it != overrides.end(); ++it) {
    bool shadowed = false;
    for (auto later = it + 1; later != overrides.end(); ++later) {
      if (key_of(*later) == key_of(*it)) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) env_storage.push_back(*it);
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  std::vector<char*> cenv;
  cenv.reserve(env_storage.size() + 1);
  for (const std::string& e : env_storage) {
    cenv.push_back(const_cast<char*>(e.c_str()));
  }
  cenv.push_back(nullptr);

  std::fflush(nullptr);  // do not duplicate buffered output into the child
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw IoError("spawn_child: fork failed for " + argv.front());
  }
  if (pid == 0) {
    ::execve(cargv[0], cargv.data(), cenv.data());
    // Only reached when exec failed; stdio state is the parent's, so use
    // the async-signal-safe exit.
    _exit(127);
  }
  return static_cast<int>(pid);
}

int wait_child(int pid) {
  int status = 0;
  pid_t got;
  do {
    got = ::waitpid(static_cast<pid_t>(pid), &status, 0);
  } while (got < 0 && errno == EINTR);
  if (got < 0) {
    throw IoError("wait_child: waitpid failed for pid " + std::to_string(pid));
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

#endif  // __unix__ || __APPLE__

}  // namespace stocdr::obs::dist
