// Run-provenance manifest: the identifying facts stamped into every trace
// and BENCH_<name>.json artifact so cross-run diffs (stocdr-obsctl
// bench-diff, flamegraph comparisons) are trustworthy — a 2x "regression"
// measured against a different compiler, host, or configuration is not a
// regression.
//
// Fields and where they come from:
//   git_sha     build-time git HEAD (STOCDR_GIT_SHA compile definition,
//               injected by CMake; "unknown" outside a git checkout)
//   compiler    compiler id + version (predefined macros)
//   build_type  CMAKE_BUILD_TYPE (STOCDR_BUILD_TYPE definition)
//   flags       the C++ flags the library was compiled with
//   hostname    runtime gethostname()
//   date_utc    wall-clock date: the STOCDR_RUN_DATE environment variable
//               when the harness injects one (CI does, for reproducible
//               artifacts), otherwise the current UTC time
//   config_hash FNV-1a of the experiment configuration summary; empty for
//               artifacts with no single configuration (e.g. traces)
//   schema      trace/artifact schema version (bumped on layout changes)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace stocdr::obs {

struct RunManifest {
  std::string git_sha;
  std::string compiler;
  std::string build_type;
  std::string flags;
  std::string hostname;
  std::string date_utc;
  std::string config_hash;
  std::uint32_t pid = 0;      ///< emitting process (fleet trace merging)
  std::string trace_id;       ///< process trace id, 16 hex digits
  std::uint32_t schema = 3;
};

/// The manifest for this process (config_hash left empty; stamp it per
/// artifact when the artifact describes one configuration).
[[nodiscard]] RunManifest current_manifest();

/// Serializes a manifest as one JSON object (empty config_hash omitted).
[[nodiscard]] std::string manifest_to_json(const RunManifest& manifest);

/// 64-bit FNV-1a of `data` as 16 lowercase hex digits; used for
/// config_hash stamping.
[[nodiscard]] std::string fnv1a_hex(std::string_view data);

}  // namespace stocdr::obs
