// Hardware performance-counter profiling (STOCDR_PERF=1).
//
// The roadmap's matrix-free and SIMD items both rest on the claim that the
// SpMV-bound hot loop is memory-bandwidth-limited; wall-clock spans cannot
// prove that.  This layer attaches *hardware evidence* to the existing span
// taxonomy: per-thread perf_event_open counter groups whose deltas are
// snapshotted around every obs::Span and aggregated per span name, so a
// profiled run reports instructions retired, IPC, cache-miss rates and
// achieved bandwidth next to the wall-clock numbers — and the bench gate
// can compare instructions retired, which is nearly deterministic where
// wall-clock on shared CI runners is noise.
//
// Counter sources, best first, degrading gracefully and never fatally:
//   * hardware group — one perf_event_open group per thread, leader
//     CPU cycles, members instructions / cache-references / cache-misses /
//     branch-misses / stalled-cycles-backend, read atomically with
//     PERF_FORMAT_GROUP and scaled by time_enabled/time_running when the
//     PMU multiplexes;
//   * software group — task-clock (ns) and page-faults, which work in most
//     containers where the PMU is hidden;
//   * rusage fallback — RUSAGE_THREAD cpu time + fault counts when
//     perf_event_open is unavailable entirely (EACCES under
//     kernel.perf_event_paranoid >= 3, ENOSYS, seccomp, no /proc PMU).
//
// Profiling is off unless STOCDR_PERF is set (to anything but "" or "0");
// when off, every entry point is a relaxed load + branch.  Enabling
// profiling changes no solver result bit: counters are observed strictly
// outside the numerics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace stocdr::obs::prof {

/// Counter slots, fixed order.  kTaskClockNs is nanoseconds of cpu time;
/// everything else is an event count.
enum Counter : std::size_t {
  kCycles = 0,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchMisses,
  kStalledCyclesBackend,
  kTaskClockNs,
  kPageFaults,
  kNumCounters,
};

/// Canonical JSON/metric name of a counter slot ("cycles", "instructions",
/// "cache_references", ...).
[[nodiscard]] const char* counter_name(std::size_t index);

/// Where this process's counters come from (the best source that opened).
enum class Source {
  kRusage,       ///< getrusage + steady clock only
  kSoftware,     ///< perf software events (task-clock, page-faults)
  kHardware,     ///< full hardware group + software group
};

[[nodiscard]] const char* source_name(Source source);

/// One snapshot of the calling thread's counters (monotonic running
/// totals).  `mask` has bit i set when counter slot i carries a value.
struct CounterReading {
  std::array<std::uint64_t, kNumCounters> values{};
  std::uint64_t mask = 0;

  [[nodiscard]] bool has(std::size_t index) const {
    return (mask >> index) & 1u;
  }
};

/// Per-name (or total) counter aggregate: summed deltas over all regions
/// that carried the name, plus wall time.  `mask` is the intersection of
/// the contributing deltas' masks — a counter is only reported when every
/// contribution carried it.
struct PerfAggregate {
  std::string name;
  std::uint64_t regions = 0;   ///< completed spans merged in
  std::uint64_t wall_ns = 0;   ///< summed wall time of those spans
  std::array<std::uint64_t, kNumCounters> values{};
  std::uint64_t mask = 0;

  [[nodiscard]] bool has(std::size_t index) const {
    return (mask >> index) & 1u;
  }
  /// Instructions per cycle; 0 when either counter is absent or cycles = 0.
  [[nodiscard]] double ipc() const;
  /// cache_misses / cache_references; 0 when absent or no references.
  [[nodiscard]] double cache_miss_rate() const;
};

/// True when STOCDR_PERF enables profiling (parsed once, lazily).
[[nodiscard]] bool enabled();

/// The counter source this process resolved to.  Performs the first
/// (lazy) perf_event_open probe; cheap afterwards.
[[nodiscard]] Source source();

/// True when the full hardware group (instructions, cycles, ...) opened.
[[nodiscard]] bool counters_available();

/// Reads the calling thread's counters (opening them lazily on first use),
/// *plus* the foreign work pool workers banked for this thread — see
/// add_foreign().  Returns an all-zero reading with an rusage-level mask
/// when nothing better is available.
[[nodiscard]] CounterReading read_current_thread();

/// Banks counter deltas measured on pool worker threads against the
/// calling thread, so an open profiled span on the dispatching thread
/// absorbs worker work into its delta.  Merging is a per-slot u64 sum —
/// deterministic regardless of worker scheduling.
void add_foreign(const CounterReading& delta);

/// Computes `end - start` per slot (mask = intersection), saturating at 0
/// per slot so a counter reset mid-flight cannot produce garbage.
[[nodiscard]] CounterReading reading_delta(const CounterReading& start,
                                           const CounterReading& end);

/// Folds one completed region's delta into the per-name aggregate table
/// (creating the name on first use) and, when `top_level` is true, into
/// the process "total" aggregate.
void accumulate(const char* name, const CounterReading& delta,
                std::uint64_t wall_ns, bool top_level);

/// Per-thread profiled-span nesting depth (top-level regions feed the
/// "total" aggregate).  Exposed for the Span integration in obs/trace.cpp.
[[nodiscard]] std::uint32_t enter_region();
void leave_region();

/// Snapshot of every named aggregate with at least one completed region,
/// sorted by name (reset() keeps names registered but empties them).
[[nodiscard]] std::vector<PerfAggregate> snapshot();

/// The process "total" aggregate (deltas of top-level profiled spans).
[[nodiscard]] PerfAggregate total();

/// Clears every aggregate (names stay registered); used by the bench
/// harness for per-case isolation alongside MetricsRegistry::reset_all().
void reset();

/// Publishes derived per-name gauges into the global MetricsRegistry:
/// perf.<name>.ipc, perf.<name>.cache_miss_rate, perf.<name>.instructions,
/// plus perf.total.* — so metrics snapshots and the live exporter carry
/// the derived rates next to the wall-clock histograms.
void publish_to_metrics();

namespace detail {
/// Test hooks.  force_unavailable makes every perf_event_open attempt fail
/// (exercising the rusage fallback); set_enabled overrides STOCDR_PERF.
/// Both reset per-process cached state so tests can flip them mid-run.
void set_enabled_for_test(bool enabled);
void set_force_unavailable_for_test(bool force);
}  // namespace detail

}  // namespace stocdr::obs::prof
