// Bytes-moved cost models and per-kernel roofline attribution.
//
// Each hot kernel (CSR SpMV, transpose SpMV, Jacobi sweep, power-iteration
// update, multilevel aggregate/disaggregate) declares an analytic model of
// the memory traffic and flops one call performs.  A profiled run records
// model bytes, model flops, and measured wall seconds per kernel, from
// which the roofline report derives arithmetic intensity (flops/byte) and
// achieved-vs-model bandwidth (GB/s) — the evidence the roadmap's
// matrix-free and SIMD items need to prove "memory-bound".
//
// The models count compulsory traffic only (every value, index, and vector
// element touched exactly once); caches can do better on the vectors, so
// achieved_gbps is a lower bound on true bus traffic and an upper bound on
// effective bandwidth.  Kernel attribution scopes overlap span timings (a
// Jacobi sweep runs inside a solve span) — rows are independent, not
// summable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/prof/perf.hpp"
#include "support/timer.hpp"

namespace stocdr::obs::prof {

/// Compulsory traffic of y = A*x for CSR A (rows x cols, nnz entries):
/// values (8B) + column indices (4B) once each, the row-pointer array once,
/// x and y once.  Flops: one multiply + one add per stored entry.
[[nodiscard]] constexpr std::uint64_t spmv_bytes(std::uint64_t rows,
                                                 std::uint64_t cols,
                                                 std::uint64_t nnz) {
  return nnz * (8 + 4) + (rows + 1) * 4 + rows * 8 + cols * 8;
}
[[nodiscard]] constexpr std::uint64_t spmv_flops(std::uint64_t nnz) {
  return 2 * nnz;
}

/// Jacobi sweep x' = (b - R x) / d over `rows` rows with `nnz` off-diagonal
/// entries: CSR traffic plus the diagonal, b, x, and x' vectors.
[[nodiscard]] constexpr std::uint64_t jacobi_bytes(std::uint64_t rows,
                                                   std::uint64_t nnz) {
  return nnz * (8 + 4) + (rows + 1) * 4 + 4 * rows * 8;
}
[[nodiscard]] constexpr std::uint64_t jacobi_flops(std::uint64_t rows,
                                                   std::uint64_t nnz) {
  return 2 * nnz + 2 * rows;
}

/// Power-iteration vector update (blend + renormalize): read next and
/// previous iterates, write the blended iterate, one reduction pass.
[[nodiscard]] constexpr std::uint64_t power_update_bytes(std::uint64_t n) {
  return 4 * n * 8;
}
[[nodiscard]] constexpr std::uint64_t power_update_flops(std::uint64_t n) {
  return 4 * n;
}

/// One mode of the Kronecker shuffle matvec (I_L (x) M (x) I_R) x over a
/// product space of `dim` elements: the factor's CSR arrays once (cached
/// across the L x R repetitions), the input and output product vectors
/// once each.  Flops: every stored factor entry multiplies-and-adds one
/// length-(dim / rows) slice of the product vector.
[[nodiscard]] constexpr std::uint64_t kron_mode_bytes(std::uint64_t dim,
                                                      std::uint64_t rows,
                                                      std::uint64_t nnz) {
  return nnz * (8 + 4) + (rows + 1) * 4 + 2 * dim * 8;
}
[[nodiscard]] constexpr std::uint64_t kron_mode_flops(std::uint64_t dim,
                                                      std::uint64_t rows,
                                                      std::uint64_t nnz) {
  return rows == 0 ? 0 : 2 * nnz * (dim / rows);
}

/// Per-term accumulation y += c * z after the shuffle passes: read z and y,
/// write y; one multiply + one add per element.
[[nodiscard]] constexpr std::uint64_t kron_accumulate_bytes(
    std::uint64_t dim) {
  return 3 * dim * 8;
}
[[nodiscard]] constexpr std::uint64_t kron_accumulate_flops(
    std::uint64_t dim) {
  return 2 * dim;
}

/// Multilevel restriction (lump fine vector into aggregates) or
/// disaggregation (expand coarse correction): one fine-vector pass, one
/// coarse-vector pass, one aggregate-map pass (4B indices).
[[nodiscard]] constexpr std::uint64_t aggregation_bytes(
    std::uint64_t fine, std::uint64_t coarse) {
  return fine * (8 + 4) + coarse * 8;
}
[[nodiscard]] constexpr std::uint64_t aggregation_flops(std::uint64_t fine) {
  return fine;
}

/// One kernel's accumulated roofline inputs.
struct KernelAggregate {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;   ///< model compulsory traffic, summed
  std::uint64_t flops = 0;   ///< model flops, summed
  double seconds = 0.0;      ///< measured wall time, summed

  /// flops / byte of the model (the roofline x-axis).
  [[nodiscard]] double arithmetic_intensity() const;
  /// Model bytes / measured seconds, in GB/s (the achieved bandwidth).
  [[nodiscard]] double achieved_gbps() const;
  /// Model flops / measured seconds, in Gflop/s.
  [[nodiscard]] double gflops() const;
};

/// Folds one kernel call into the per-kernel table.  Thread-safe; cheap
/// enough for per-call use at solver cadence (one mutex + map hit).
void record_kernel(const char* name, std::uint64_t bytes, std::uint64_t flops,
                   double seconds);

/// RAII helper: times one kernel call and records it on destruction.  A
/// no-op (one relaxed load) when profiling is disabled.
class KernelScope {
 public:
  KernelScope(const char* name, std::uint64_t bytes, std::uint64_t flops)
      : name_(enabled() ? name : nullptr), bytes_(bytes), flops_(flops) {
    if (name_ != nullptr) timer_.reset();
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;
  ~KernelScope() {
    if (name_ != nullptr) record_kernel(name_, bytes_, flops_, timer_.seconds());
  }

 private:
  const char* name_;
  std::uint64_t bytes_;
  std::uint64_t flops_;
  Timer timer_;
};

/// Snapshot of every kernel aggregate with at least one call, sorted by
/// name (reset_kernels() keeps names registered but empties them).
[[nodiscard]] std::vector<KernelAggregate> kernel_snapshot();

/// Clears the kernel table (bench per-case isolation; prof::reset() calls
/// this too).
void reset_kernels();

/// Publishes perf.kernel.<name>.gbps / .arithmetic_intensity gauges.
void publish_kernels_to_metrics();

/// Serializes the full `perf` section embedded in BENCH_*.json artifacts:
///   {"enabled":true, "available":<hw counters opened>, "source":"...",
///    "total":{...counters, "ipc", "cache_miss_rate"...},
///    "spans":{<name>:{...}}, "kernels":{<name>:{"calls","bytes","flops",
///    "seconds","arithmetic_intensity","achieved_gbps","gflops"}}}
/// Counter fields appear only when every contribution carried them, so an
/// unavailable-PMU run emits `"available": false` and omits instructions /
/// cycles rather than reporting zeros.
[[nodiscard]] std::string perf_section_json();

}  // namespace stocdr::obs::prof
