#include "obs/prof/roofline.hpp"

#include <map>
#include <mutex>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace stocdr::obs::prof {

namespace {

struct KernelCells {
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;
  std::uint64_t flops = 0;
  double seconds = 0.0;
};

struct KernelTable {
  std::mutex mutex;
  std::map<std::string, KernelCells, std::less<>> by_name;
};

KernelTable& table() {
  static KernelTable t;
  return t;
}

}  // namespace

double KernelAggregate::arithmetic_intensity() const {
  if (bytes == 0) return 0.0;
  return static_cast<double>(flops) / static_cast<double>(bytes);
}

double KernelAggregate::achieved_gbps() const {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / seconds * 1e-9;
}

double KernelAggregate::gflops() const {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(flops) / seconds * 1e-9;
}

void record_kernel(const char* name, std::uint64_t bytes, std::uint64_t flops,
                   double seconds) {
  KernelTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  auto it = t.by_name.find(std::string_view(name));
  if (it == t.by_name.end()) {
    it = t.by_name.emplace(std::string(name), KernelCells{}).first;
  }
  KernelCells& cells = it->second;
  ++cells.calls;
  cells.bytes += bytes;
  cells.flops += flops;
  cells.seconds += seconds;
}

std::vector<KernelAggregate> kernel_snapshot() {
  KernelTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  std::vector<KernelAggregate> out;
  out.reserve(t.by_name.size());
  for (const auto& [name, cells] : t.by_name) {
    // reset_kernels() keeps name keys registered; skip empty aggregates.
    if (cells.calls == 0) continue;
    KernelAggregate agg;
    agg.name = name;
    agg.calls = cells.calls;
    agg.bytes = cells.bytes;
    agg.flops = cells.flops;
    agg.seconds = cells.seconds;
    out.push_back(std::move(agg));
  }
  return out;
}

void reset_kernels() {
  KernelTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  for (auto& [name, cells] : t.by_name) cells = KernelCells{};
}

void publish_kernels_to_metrics() {
  MetricsRegistry& registry = MetricsRegistry::instance();
  for (const KernelAggregate& agg : kernel_snapshot()) {
    if (agg.calls == 0) continue;
    const std::string prefix = "perf.kernel." + agg.name + ".";
    registry.gauge(prefix + "gbps").set(agg.achieved_gbps());
    registry.gauge(prefix + "arithmetic_intensity")
        .set(agg.arithmetic_intensity());
  }
}

namespace {

void write_aggregate_fields(JsonWriter& w, const PerfAggregate& agg) {
  w.field("regions", agg.regions);
  w.field("wall_seconds", static_cast<double>(agg.wall_ns) * 1e-9);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (agg.has(i)) w.field(counter_name(i), agg.values[i]);
  }
  if (agg.has(kCycles) && agg.has(kInstructions)) {
    w.field("ipc", agg.ipc());
  }
  if (agg.has(kCacheReferences) && agg.has(kCacheMisses)) {
    w.field("cache_miss_rate", agg.cache_miss_rate());
  }
}

}  // namespace

std::string perf_section_json() {
  JsonWriter w;
  w.begin_object();
  w.field("enabled", true);
  w.field("available", counters_available());
  w.field("source", source_name(source()));
  w.key("total");
  w.begin_object();
  write_aggregate_fields(w, total());
  w.end_object();
  w.key("spans");
  w.begin_object();
  for (const PerfAggregate& agg : snapshot()) {
    if (agg.regions == 0) continue;
    w.key(agg.name);
    w.begin_object();
    write_aggregate_fields(w, agg);
    w.end_object();
  }
  w.end_object();
  w.key("kernels");
  w.begin_object();
  for (const KernelAggregate& agg : kernel_snapshot()) {
    if (agg.calls == 0) continue;
    w.key(agg.name);
    w.begin_object();
    w.field("calls", agg.calls);
    w.field("bytes", agg.bytes);
    w.field("flops", agg.flops);
    w.field("seconds", agg.seconds);
    w.field("arithmetic_intensity", agg.arithmetic_intensity());
    w.field("achieved_gbps", agg.achieved_gbps());
    w.field("gflops", agg.gflops());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace stocdr::obs::prof
