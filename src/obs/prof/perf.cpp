#include "obs/prof/perf.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/prof/roofline.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/time.h>
#endif

namespace stocdr::obs::prof {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "cycles",
    "instructions",
    "cache_references",
    "cache_misses",
    "branch_misses",
    "stalled_cycles_backend",
    "task_clock_ns",
    "page_faults",
};

constexpr std::uint64_t bit(std::size_t index) {
  return std::uint64_t{1} << index;
}

constexpr std::uint64_t kHardwareMask =
    bit(kCycles) | bit(kInstructions) | bit(kCacheReferences) |
    bit(kCacheMisses) | bit(kBranchMisses) | bit(kStalledCyclesBackend);
constexpr std::uint64_t kSoftwareMask = bit(kTaskClockNs) | bit(kPageFaults);

// --- process-wide configuration --------------------------------------------

/// -1 = follow STOCDR_PERF; 0/1 = test override.
std::atomic<int> g_enabled_override{-1};
std::atomic<bool> g_force_unavailable{false};
/// Bumped whenever a test hook changes; per-thread counter state re-opens
/// when it observes a stale generation.
std::atomic<std::uint64_t> g_config_generation{0};
/// Cached process source; -1 = not yet probed.
std::atomic<int> g_source{-1};

bool env_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("STOCDR_PERF");
    return v != nullptr && v[0] != '\0' && std::string_view(v) != "0";
  }();
  return enabled;
}

// --- per-thread counter file descriptors ------------------------------------

#if defined(__linux__)

long sys_perf_event_open(perf_event_attr* attr, int group_fd) {
  if (g_force_unavailable.load(std::memory_order_relaxed)) {
    errno = EACCES;
    return -1;
  }
  return syscall(SYS_perf_event_open, attr, /*pid=*/0, /*cpu=*/-1, group_fd,
                 /*flags=*/0UL);
}

perf_event_attr make_attr(std::uint32_t type, std::uint64_t config,
                          bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  // Leaders start disabled and the whole group is enabled with one ioctl,
  // so every member covers the same interval; exclude_kernel/hv keeps the
  // open legal at kernel.perf_event_paranoid = 2 (the common default).
  attr.disabled = leader ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

/// One perf_event group: a leader fd plus the slot order of its members.
struct EventGroup {
  int fd = -1;                       ///< leader; -1 = group unavailable
  std::vector<std::size_t> slots;    ///< counter slot per read position

  void close_all(std::vector<int>& member_fds) {
    for (const int member : member_fds) ::close(member);
    member_fds.clear();
    if (fd >= 0) ::close(fd);
    fd = -1;
    slots.clear();
  }
};

struct GroupSpec {
  std::size_t slot;
  std::uint32_t type;
  std::uint64_t config;
};

constexpr GroupSpec kHardwareSpecs[] = {
    {kCycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {kInstructions, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {kCacheReferences, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {kCacheMisses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {kBranchMisses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {kStalledCyclesBackend, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

constexpr GroupSpec kSoftwareSpecs[] = {
    {kTaskClockNs, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {kPageFaults, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
};

/// The calling thread's counter state.  Opened lazily on first read and
/// closed when the thread exits; re-opened when the test hooks bump the
/// config generation.
class ThreadCounters {
 public:
  ~ThreadCounters() { close_groups(); }

  CounterReading read() {
    const std::uint64_t generation =
        g_config_generation.load(std::memory_order_acquire);
    if (!opened_ || generation != generation_) {
      close_groups();
      open_groups();
      generation_ = generation;
      opened_ = true;
    }
    CounterReading reading;
    read_group(hw_, reading);
    read_group(sw_, reading);
    if ((reading.mask & kSoftwareMask) != kSoftwareMask) {
      read_rusage(reading);
    }
    return reading;
  }

 private:
  /// Opens `specs` as one group (first successful open leads).  Members
  /// that fail to open are skipped individually — a PMU without a
  /// stalled-cycles counter still yields the rest of the group.
  template <std::size_t N>
  EventGroup open_group(const GroupSpec (&specs)[N]) {
    EventGroup group;
    for (const GroupSpec& spec : specs) {
      const bool leader = group.fd < 0;
      perf_event_attr attr = make_attr(spec.type, spec.config, leader);
      const long fd =
          sys_perf_event_open(&attr, leader ? -1 : group.fd);
      if (fd < 0) {
        if (leader) return group;  // no leader, no group
        continue;
      }
      if (leader) {
        group.fd = static_cast<int>(fd);
      } else {
        member_fds_.push_back(static_cast<int>(fd));
      }
      group.slots.push_back(spec.slot);
    }
    if (group.fd >= 0) {
      ioctl(group.fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
      ioctl(group.fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }
    return group;
  }

  void open_groups() {
    hw_ = open_group(kHardwareSpecs);
    sw_ = open_group(kSoftwareSpecs);
    // First thread to open publishes the process-wide source (threads in
    // one process resolve identically; a racing store writes the same
    // value).
    const Source source = hw_.fd >= 0   ? Source::kHardware
                          : sw_.fd >= 0 ? Source::kSoftware
                                        : Source::kRusage;
    g_source.store(static_cast<int>(source), std::memory_order_release);
  }

  void close_groups() {
    hw_.close_all(member_fds_);
    sw_.close_all(member_fds_);
  }

  static void read_group(const EventGroup& group, CounterReading& reading) {
    if (group.fd < 0) return;
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[nr].
    std::uint64_t buffer[3 + kNumCounters] = {};
    const ssize_t n = ::read(group.fd, buffer, sizeof buffer);
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return;
    const std::uint64_t nr = buffer[0];
    const std::uint64_t enabled = buffer[1];
    const std::uint64_t running = buffer[2];
    // Multiplex scaling: when the PMU rotated this group out for part of
    // the interval, extrapolate linearly.  running == 0 means the group
    // never counted — report nothing rather than zeros.
    if (running == 0) return;
    const double scale =
        running < enabled
            ? static_cast<double>(enabled) / static_cast<double>(running)
            : 1.0;
    const std::size_t count =
        std::min<std::size_t>(nr, group.slots.size());
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t slot = group.slots[i];
      reading.values[slot] =
          static_cast<std::uint64_t>(static_cast<double>(buffer[3 + i]) *
                                     scale);
      reading.mask |= bit(slot);
    }
  }

  static void read_rusage(CounterReading& reading) {
#if defined(RUSAGE_THREAD)
    struct rusage usage {};
    if (getrusage(RUSAGE_THREAD, &usage) != 0) return;
    const auto tv_ns = [](const timeval& tv) {
      return static_cast<std::uint64_t>(tv.tv_sec) * 1000000000ULL +
             static_cast<std::uint64_t>(tv.tv_usec) * 1000ULL;
    };
    if (!reading.has(kTaskClockNs)) {
      reading.values[kTaskClockNs] =
          tv_ns(usage.ru_utime) + tv_ns(usage.ru_stime);
      reading.mask |= bit(kTaskClockNs);
    }
    if (!reading.has(kPageFaults)) {
      reading.values[kPageFaults] =
          static_cast<std::uint64_t>(usage.ru_minflt) +
          static_cast<std::uint64_t>(usage.ru_majflt);
      reading.mask |= bit(kPageFaults);
    }
#else
    (void)reading;
#endif
  }

  bool opened_ = false;
  std::uint64_t generation_ = 0;
  EventGroup hw_;
  EventGroup sw_;
  std::vector<int> member_fds_;
};

ThreadCounters& thread_counters() {
  thread_local ThreadCounters counters;
  return counters;
}

#else  // !__linux__

/// Non-Linux: no perf_event_open; rusage-process fallback only (good
/// enough to keep the API total — this project targets Linux).
struct ThreadCounters {
  CounterReading read() {
    CounterReading reading;
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      const auto tv_ns = [](const timeval& tv) {
        return static_cast<std::uint64_t>(tv.tv_sec) * 1000000000ULL +
               static_cast<std::uint64_t>(tv.tv_usec) * 1000ULL;
      };
      reading.values[kTaskClockNs] =
          tv_ns(usage.ru_utime) + tv_ns(usage.ru_stime);
      reading.values[kPageFaults] =
          static_cast<std::uint64_t>(usage.ru_minflt) +
          static_cast<std::uint64_t>(usage.ru_majflt);
      reading.mask = kSoftwareMask;
    }
#endif
    g_source.store(static_cast<int>(Source::kRusage),
                   std::memory_order_release);
    return reading;
  }
};

ThreadCounters& thread_counters() {
  thread_local ThreadCounters counters;
  return counters;
}

#endif  // __linux__

// --- foreign (pool-worker) contributions ------------------------------------

/// Worker deltas banked against this thread by add_foreign(); folded into
/// every reading so open spans on the dispatching thread absorb worker
/// work.  Plain thread-local (only the owner reads and writes it).
thread_local std::array<std::uint64_t, kNumCounters> t_foreign{};

/// Per-thread profiled-span nesting depth.
thread_local std::uint32_t t_region_depth = 0;

// --- per-name aggregation ----------------------------------------------------

struct AggregateCells {
  std::uint64_t regions = 0;
  std::uint64_t wall_ns = 0;
  std::array<std::uint64_t, kNumCounters> values{};
  std::uint64_t mask = ~std::uint64_t{0};  ///< intersection of contributions
  bool touched = false;

  void add(const CounterReading& delta, std::uint64_t wall) {
    ++regions;
    wall_ns += wall;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      values[i] += delta.values[i];
    }
    mask &= delta.mask;
    touched = true;
  }

  [[nodiscard]] PerfAggregate to_aggregate(const std::string& name) const {
    PerfAggregate agg;
    agg.name = name;
    agg.regions = regions;
    agg.wall_ns = wall_ns;
    agg.values = values;
    agg.mask = touched ? mask : 0;
    return agg;
  }
};

struct AggregateTable {
  std::mutex mutex;
  std::map<std::string, AggregateCells, std::less<>> by_name;
  AggregateCells total;
};

AggregateTable& table() {
  static AggregateTable t;
  return t;
}

}  // namespace

const char* counter_name(std::size_t index) {
  return index < kNumCounters ? kCounterNames[index] : "?";
}

const char* source_name(Source source) {
  switch (source) {
    case Source::kHardware:
      return "perf_event_hw";
    case Source::kSoftware:
      return "perf_event_sw";
    case Source::kRusage:
      return "rusage";
  }
  return "?";
}

double PerfAggregate::ipc() const {
  if (!has(kCycles) || !has(kInstructions) || values[kCycles] == 0) return 0.0;
  return static_cast<double>(values[kInstructions]) /
         static_cast<double>(values[kCycles]);
}

double PerfAggregate::cache_miss_rate() const {
  if (!has(kCacheReferences) || !has(kCacheMisses) ||
      values[kCacheReferences] == 0) {
    return 0.0;
  }
  return static_cast<double>(values[kCacheMisses]) /
         static_cast<double>(values[kCacheReferences]);
}

bool enabled() {
  const int override_value =
      g_enabled_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return override_value != 0;
  return env_enabled();
}

Source source() {
  int cached = g_source.load(std::memory_order_acquire);
  if (cached < 0) {
    (void)thread_counters().read();  // probe opens and publishes the source
    cached = g_source.load(std::memory_order_acquire);
  }
  return cached < 0 ? Source::kRusage : static_cast<Source>(cached);
}

bool counters_available() { return source() == Source::kHardware; }

CounterReading read_current_thread() {
  CounterReading reading = thread_counters().read();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    reading.values[i] += t_foreign[i];
  }
  return reading;
}

void add_foreign(const CounterReading& delta) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    t_foreign[i] += delta.values[i];
  }
}

CounterReading reading_delta(const CounterReading& start,
                             const CounterReading& end) {
  CounterReading delta;
  delta.mask = start.mask & end.mask;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    delta.values[i] =
        end.values[i] > start.values[i] ? end.values[i] - start.values[i] : 0;
  }
  return delta;
}

void accumulate(const char* name, const CounterReading& delta,
                std::uint64_t wall_ns, bool top_level) {
  AggregateTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  auto it = t.by_name.find(std::string_view(name));
  if (it == t.by_name.end()) {
    it = t.by_name.emplace(std::string(name), AggregateCells{}).first;
  }
  it->second.add(delta, wall_ns);
  if (top_level) t.total.add(delta, wall_ns);
}

std::uint32_t enter_region() { return t_region_depth++; }

void leave_region() {
  if (t_region_depth > 0) --t_region_depth;
}

std::vector<PerfAggregate> snapshot() {
  AggregateTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  std::vector<PerfAggregate> out;
  out.reserve(t.by_name.size());
  for (const auto& [name, cells] : t.by_name) {
    // reset() keeps name keys registered; empty aggregates are not data.
    if (cells.regions == 0) continue;
    out.push_back(cells.to_aggregate(name));
  }
  return out;
}

PerfAggregate total() {
  AggregateTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  return t.total.to_aggregate("total");
}

void reset() {
  {
    AggregateTable& t = table();
    const std::lock_guard<std::mutex> lock(t.mutex);
    for (auto& [name, cells] : t.by_name) cells = AggregateCells{};
    t.total = AggregateCells{};
  }
  reset_kernels();
}

void publish_to_metrics() {
  MetricsRegistry& registry = MetricsRegistry::instance();
  const auto publish = [&registry](const PerfAggregate& agg) {
    const std::string prefix = "perf." + agg.name + ".";
    if (agg.has(kInstructions)) {
      registry.gauge(prefix + "instructions")
          .set(static_cast<double>(agg.values[kInstructions]));
    }
    if (agg.has(kCycles)) {
      registry.gauge(prefix + "ipc").set(agg.ipc());
    }
    if (agg.has(kCacheReferences)) {
      registry.gauge(prefix + "cache_miss_rate").set(agg.cache_miss_rate());
    }
    if (agg.has(kTaskClockNs)) {
      registry.gauge(prefix + "task_clock_seconds")
          .set(static_cast<double>(agg.values[kTaskClockNs]) * 1e-9);
    }
  };
  publish(total());
  for (const PerfAggregate& agg : snapshot()) {
    if (agg.regions > 0) publish(agg);
  }
}

namespace detail {

void set_enabled_for_test(bool enabled) {
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
  g_config_generation.fetch_add(1, std::memory_order_acq_rel);
}

void set_force_unavailable_for_test(bool force) {
  g_force_unavailable.store(force, std::memory_order_relaxed);
  g_source.store(-1, std::memory_order_release);
  g_config_generation.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace detail

}  // namespace stocdr::obs::prof
