#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace stocdr::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    if (std::isnan(value)) return "\"nan\"";
    return value > 0.0 ? "\"inf\"" : "\"-inf\"";
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void JsonWriter::separate() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::begin_object() {
  separate();
  out_ += '{';
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  separate();
  out_ += '[';
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  separate();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
}

void JsonWriter::value(std::string_view v) {
  separate();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::value(double v) {
  separate();
  out_ += json_number(v);
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::raw_value(std::string_view json) {
  separate();
  out_ += json;
  need_comma_ = true;
}

}  // namespace stocdr::obs
