#include "obs/json.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace stocdr::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  const auto escape_codepoint = [&out](unsigned int cp) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "\\u%04x", cp);
    out += buf;
  };
  for (std::size_t i = 0; i < s.size();) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"') {
      out += "\\\"";
      ++i;
    } else if (c == '\\') {
      out += "\\\\";
      ++i;
    } else if (c == '\n') {
      out += "\\n";
      ++i;
    } else if (c == '\r') {
      out += "\\r";
      ++i;
    } else if (c == '\t') {
      out += "\\t";
      ++i;
    } else if (c == '\b') {
      out += "\\b";
      ++i;
    } else if (c == '\f') {
      out += "\\f";
      ++i;
    } else if (c < 0x20 || c == 0x7f) {
      escape_codepoint(c);
      ++i;
    } else if (c < 0x80) {
      out += static_cast<char>(c);
      ++i;
    } else {
      // Multi-byte lead: copy the sequence only if it is well-formed UTF-8
      // (correct length and continuations, no overlongs, no surrogates,
      // <= U+10FFFF); otherwise substitute U+FFFD for the one bad byte so
      // the emitted JSON stays valid regardless of what an attribute
      // string contains.
      const std::size_t len = c >= 0xf0 ? 4 : c >= 0xe0 ? 3 : c >= 0xc0 ? 2 : 0;
      bool ok = len != 0 && i + len <= s.size() && c <= 0xf4;
      std::uint32_t cp = ok ? (c & (0x7fu >> len)) : 0;
      for (std::size_t k = 1; ok && k < len; ++k) {
        const unsigned char cc = static_cast<unsigned char>(s[i + k]);
        ok = (cc & 0xc0) == 0x80;
        cp = (cp << 6) | (cc & 0x3fu);
      }
      if (ok) {
        static constexpr std::uint32_t kMinByLen[5] = {0, 0, 0x80, 0x800,
                                                       0x10000};
        ok = cp >= kMinByLen[len] && cp <= 0x10ffff &&
             !(cp >= 0xd800 && cp <= 0xdfff);
      }
      if (ok) {
        out.append(s.substr(i, len));
        i += len;
      } else {
        out += "\\ufffd";
        ++i;
      }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    if (std::isnan(value)) return "\"nan\"";
    return value > 0.0 ? "\"inf\"" : "\"-inf\"";
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void JsonWriter::separate() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::begin_object() {
  separate();
  out_ += '{';
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  separate();
  out_ += '[';
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  separate();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
}

void JsonWriter::value(std::string_view v) {
  separate();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::value(double v) {
  separate();
  out_ += json_number(v);
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::raw_value(std::string_view json) {
  separate();
  out_ += json;
  need_comma_ = true;
}

}  // namespace stocdr::obs
