#include "obs/dist/event_log.hpp"
#include "obs/health/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace stocdr::obs::health {

namespace {

/// -1 = not yet read from the environment; 0/1 = resolved.
std::atomic<int> g_enabled{-1};
std::atomic<std::size_t> g_stride{0};

bool env_truthy(const char* v) {
  if (v == nullptr || *v == '\0') return false;
  const std::string_view s(v);
  return s != "0" && s != "off" && s != "false";
}

Counter& site_counter(const char* prefix, const char* site) {
  // Sampled path only; the lookup cost is amortized by the stride.
  return MetricsRegistry::instance().counter(std::string(prefix) + site);
}

}  // namespace

bool enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = env_truthy(std::getenv("STOCDR_HEALTH")) ? 1 : 0;
    int expected = -1;
    if (!g_enabled.compare_exchange_strong(expected, state,
                                           std::memory_order_relaxed)) {
      state = expected;  // a concurrent resolve or set_enabled won
    }
  }
  return state == 1;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::size_t sample_stride() {
  std::size_t stride = g_stride.load(std::memory_order_relaxed);
  if (stride == 0) {
    stride = 8;
    if (const char* v = std::getenv("STOCDR_HEALTH_SAMPLE")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end != v && parsed >= 1) stride = parsed;
    }
    std::size_t expected = 0;
    if (!g_stride.compare_exchange_strong(expected, stride,
                                          std::memory_order_relaxed)) {
      stride = expected;
    }
  }
  return stride;
}

void set_sample_stride(std::size_t stride) {
  g_stride.store(std::max<std::size_t>(stride, 1),
                 std::memory_order_relaxed);
}

bool should_sample(std::atomic<std::uint64_t>& site_counter) {
  if (!enabled()) return false;
  const std::uint64_t visit =
      site_counter.fetch_add(1, std::memory_order_relaxed);
  return visit % sample_stride() == 0;
}

void record_level_rho(std::size_t level, double rho) {
  if (!enabled()) return;
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.histogram("mg.level.rho").observe(rho);
  registry.histogram("mg.level" + std::to_string(level) + ".rho")
      .observe(rho);
}

void audit_mass(const char* site, double before, double after) {
  if (!enabled()) return;
  // Relative defect; a zero-mass `before` (degenerate input) makes any
  // created mass an infinite relative error, which the histogram's
  // overflow bucket absorbs.
  const double scale = std::max(std::abs(before), 1e-300);
  const double defect = std::abs(after - before) / scale;
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.histogram("health.mass_defect").observe(defect);
  registry.counter("health.mass_audits").add(1);
  site_counter("health.mass_audits.", site).add(1);
  if (!(defect <= kMassAlarmThreshold)) {  // NaN counts as an alarm
    registry.counter("health.mass_alarms").add(1);
    evt::emit("health.mass_alarm", evt::Severity::kAlarm,
              {{"site", std::string(site)}, {"defect", defect}});
  }
}

void audit_nonnegativity(const char* site, std::span<const double> x) {
  if (!enabled()) return;
  std::uint64_t negatives = 0;
  for (const double v : x) {
    if (v < 0.0) ++negatives;
  }
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter("health.nonneg_audits").add(1);
  if (negatives > 0) {
    registry.counter("health.negativity").add(negatives);
    site_counter("health.negativity.", site).add(negatives);
    evt::emit("health.negativity", evt::Severity::kAlarm,
              {{"site", std::string(site)}, {"negatives", negatives}});
  }
}

void record_stochasticity_drift(double defect) {
  if (!enabled()) return;
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.gauge("health.stochasticity_drift").set(defect);
  registry.counter("health.stochasticity_audits").add(1);
}

double effective_tail_digits(double tail_mass, double residual) {
  if (!(tail_mass > 0.0)) return 0.0;
  if (!(residual > 0.0)) return 17.0;  // residual 0: fully resolved
  return std::clamp(std::log10(tail_mass / residual), 0.0, 17.0);
}

void record_tail_conditioning(double tail_mass, double residual) {
  if (!enabled()) return;
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.gauge("health.tail_mass").set(tail_mass);
  registry.gauge("health.tail_digits")
      .set(effective_tail_digits(tail_mass, residual));
}

}  // namespace stocdr::obs::health
