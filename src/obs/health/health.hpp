// Numerical-health monitors: shadow audits of the quantities a correct
// stationary solve must conserve.
//
// The paper certifies BERs near 1e-12 by analysis; a solve that silently
// loses probability mass, goes negative, or stops contracting produces a
// confidently wrong tail.  These monitors watch exactly those invariants —
// per-level multigrid convergence factors, mass conservation across
// lump/expand, nonnegativity of iterates, coarse-matrix stochasticity
// drift, and the conditioning of the BER tail mass — and publish what they
// see as ordinary metrics ("mg.level.rho", "health.*") so the live exporter
// and BENCH artifacts carry them.
//
// Cost contract: every monitor is *read-only* (it never changes an iterate,
// so solver results are bit-identical whether monitoring is on or off), off
// by default, and sampled when on.  The disabled fast path is one relaxed
// atomic load.
//
// Enabling: STOCDR_HEALTH=1 (anything but ""/"0"/"off"), or
// set_enabled(true) programmatically.  STOCDR_HEALTH_SAMPLE=N audits every
// Nth visit of each call site (default 8; 1 = audit everything).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>

namespace stocdr::obs::health {

/// Relative mass defect above which a lump/expand audit counts as an alarm
/// ("health.mass_alarms").  Rounding on a well-scaled distribution sits many
/// orders below this; crossing it means mass is genuinely leaking.
inline constexpr double kMassAlarmThreshold = 1e-9;

/// True when the monitors are on (lazy STOCDR_HEALTH read on first call).
[[nodiscard]] bool enabled();

/// Programmatic override of STOCDR_HEALTH (tests, embedding services).
void set_enabled(bool on);

/// Every Nth visit of a call site is audited (>= 1).  Lazy
/// STOCDR_HEALTH_SAMPLE read on first call; default 8.
[[nodiscard]] std::size_t sample_stride();
void set_sample_stride(std::size_t stride);

/// Sampling gate for one call site: the caller owns a static atomic visit
/// counter; returns true when monitoring is enabled and this visit falls on
/// the sampling stride.  Guards the O(n) audits below so their cost is
/// amortized to ~1/stride of visits.
[[nodiscard]] bool should_sample(std::atomic<std::uint64_t>& site_counter);

/// Per-level asymptotic convergence-factor estimate: the ratio of the
/// stationary residual after a level's cycle work to the residual before
/// it.  Observed into the aggregate "mg.level.rho" histogram and the
/// per-level "mg.level<l>.rho" histogram.  rho >= 1 means the level did
/// not contract.
void record_level_rho(std::size_t level, double rho);

/// Mass-conservation audit at an aggregate/disaggregate boundary: `before`
/// and `after` are the total probability mass on the two sides of the
/// transfer.  Records the relative defect into "health.mass_defect" and
/// bumps "health.mass_alarms" when it exceeds kMassAlarmThreshold.
/// `site` ("lump", "expand", ...) is attached to the per-site counter.
void audit_mass(const char* site, double before, double after);

/// Nonnegativity audit: counts strictly negative entries of `x` into
/// "health.negativity" (a correct probability iterate has none).
void audit_nonnegativity(const char* site, std::span<const double> x);

/// Row-stochasticity drift of a coarse (aggregated) transition matrix:
/// the largest |column sum - 1| of the transposed coarse TPM.  Published
/// as the "health.stochasticity_drift" gauge (last audited value).
void record_stochasticity_drift(double defect);

/// Effective decimal digits to which a tail mass is resolved given the
/// solve residual: log10(tail / residual), clamped to [0, 17].  A BER of
/// 1e-12 from a residual-1e-15 solve has ~3 trustworthy digits; a BER at
/// or below the residual has none.
[[nodiscard]] double effective_tail_digits(double tail_mass, double residual);

/// Publishes the BER tail-conditioning gauges: "health.tail_mass" (the
/// tail probability itself) and "health.tail_digits" (effective digits).
void record_tail_conditioning(double tail_mass, double residual);

}  // namespace stocdr::obs::health
