// Solver progress callbacks.
//
// Iterative solvers report one ProgressEvent per sweep / cycle / outer
// iteration through a non-owning FunctionRef installed in the solver
// options.  This is the programmatic counterpart of the residual_history
// recorded in SolverStats: the callback sees the trajectory live (for
// cancellation UIs, convergence dashboards, adaptive drivers) without the
// solver allocating anything on its behalf.
//
// The observer is invoked synchronously on the solver thread; it must be
// cheap and must outlive the solve (FunctionRef does not own the callable).
#pragma once

#include <cstddef>
#include <optional>

#include "support/function_ref.hpp"

namespace stocdr::obs {

/// One solver progress tick.
struct ProgressEvent {
  const char* method = "";      ///< solver name ("power", "multilevel", ...)
  std::size_t iteration = 0;    ///< 1-based sweep / cycle / outer iteration
  double residual = 0.0;        ///< residual after this iteration
  std::size_t matvec_count = 0; ///< cumulative matrix-vector products
};

/// Non-owning per-iteration callback (see support/function_ref.hpp for
/// lifetime rules).
using ProgressObserver = FunctionRef<void(const ProgressEvent&)>;

/// How solver options store an optional observer.
using OptionalProgress = std::optional<ProgressObserver>;

/// Invokes `progress` if set.  Inline fast path: one branch when unset.
inline void notify(const OptionalProgress& progress, const char* method,
                   std::size_t iteration, double residual,
                   std::size_t matvecs) {
  if (progress) {
    (*progress)(ProgressEvent{method, iteration, residual, matvecs});
  }
}

}  // namespace stocdr::obs
