// Solver progress callbacks.
//
// Iterative solvers report one ProgressEvent per sweep / cycle / outer
// iteration through a non-owning FunctionRef installed in the solver
// options.  This is the programmatic counterpart of the residual_history
// recorded in SolverStats: the callback sees the trajectory live (for
// cancellation UIs, convergence dashboards, adaptive drivers) without the
// solver allocating anything on its behalf.
//
// The observer returns a ProgressAction: kContinue keeps iterating,
// kStop makes the solver finish the current iteration, leave
// `converged = false`, and return its current state.  Cooperative
// cancellation is what deadline budgets and divergence sentinels
// (src/robust/) are built on; observers that never cancel simply always
// return kContinue.
//
// Events carry a read-only view of the solver's current iterate (when the
// method maintains one) so observers can snapshot a last-good vector for
// checkpoint/restart.  The span aliases solver-internal storage: it is valid
// only during the callback and must be copied to be kept.
//
// The observer is invoked synchronously on the solver thread; it must be
// cheap and must outlive the solve (FunctionRef does not own the callable).
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "support/function_ref.hpp"

namespace stocdr::obs {

/// What the solver should do after a progress tick.
enum class ProgressAction {
  kContinue,  ///< keep iterating
  kStop,      ///< stop now; report converged = false with the current state
};

/// One solver progress tick.
struct ProgressEvent {
  const char* method = "";      ///< solver name ("power", "multilevel", ...)
  std::size_t iteration = 0;    ///< 1-based sweep / cycle / outer iteration
  double residual = 0.0;        ///< residual after this iteration
  std::size_t matvec_count = 0; ///< cumulative matrix-vector products
  /// The solver's current iterate (stationary vector / linear solution),
  /// empty when the method has none at event time.  Valid only during the
  /// callback.
  std::span<const double> iterate;
};

/// Non-owning per-iteration callback (see support/function_ref.hpp for
/// lifetime rules).
using ProgressObserver = FunctionRef<ProgressAction(const ProgressEvent&)>;

/// How solver options store an optional observer.
using OptionalProgress = std::optional<ProgressObserver>;

/// Invokes `progress` if set.  Inline fast path: one branch when unset.
/// Returns false when the observer requested a stop.
[[nodiscard]] inline bool notify(const OptionalProgress& progress,
                                 const char* method, std::size_t iteration,
                                 double residual, std::size_t matvecs,
                                 std::span<const double> iterate = {}) {
  if (!progress) return true;
  return (*progress)(ProgressEvent{method, iteration, residual, matvecs,
                                   iterate}) == ProgressAction::kContinue;
}

}  // namespace stocdr::obs
