#include "obs/sink.hpp"

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "support/error.hpp"

namespace stocdr::obs {

std::string attr_to_string(const AttrValue& value) {
  if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    return std::to_string(*u);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", *d);
    return buf;
  }
  return std::get<std::string>(value);
}

std::string manifest_jsonl_line() {
  JsonWriter w;
  w.begin_object();
  w.key("manifest");
  w.raw_value(manifest_to_json(current_manifest()));
  w.end_object();
  return std::move(w).str();
}

std::string span_to_jsonl(const SpanRecord& span) {
  JsonWriter w;
  w.begin_object();
  w.field("name", span.name);
  w.field("id", span.id);
  w.field("parent", span.parent_id);
  w.field("depth", std::uint64_t{span.depth});
  w.field("tid", std::uint64_t{span.tid});
  w.field("pid", std::uint64_t{span.pid});
  w.field("ts_ns", span.start_ns);
  w.field("dur_ns", span.duration_ns);
  if (span.remote_parent_pid != 0 || span.remote_parent_id != 0) {
    w.field("remote_parent_pid", std::uint64_t{span.remote_parent_pid});
    w.field("remote_parent_id", span.remote_parent_id);
  }
  if (!span.attrs.empty()) {
    w.key("attrs");
    w.begin_object();
    for (const auto& [key, value] : span.attrs) {
      w.key(key);
      if (const auto* u = std::get_if<std::uint64_t>(&value)) {
        w.value(*u);
      } else if (const auto* d = std::get_if<double>(&value)) {
        w.value(*d);
      } else {
        w.value(std::get<std::string>(value));
      }
    }
    w.end_object();
  }
  w.end_object();
  return std::move(w).str();
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : writer_(path, /*carry_existing=*/true) {
  // Stamp provenance before the first span.  Appended traces accumulate one
  // manifest per sink open; readers treat each as authoritative for the
  // spans that follow it.
  const std::string line = manifest_jsonl_line();
  std::FILE* file = writer_.handle();
  std::fwrite(line.data(), 1, line.size(), file);
  std::fputc('\n', file);
  std::fflush(file);
}

JsonlFileSink::~JsonlFileSink() = default;  // AtomicFileWriter commits

void JsonlFileSink::on_span(const SpanRecord& span) {
  const std::string line = span_to_jsonl(span);

  const std::lock_guard<std::mutex> lock(mutex_);
  std::FILE* file = writer_.handle();
  std::fwrite(line.data(), 1, line.size(), file);
  std::fputc('\n', file);
  std::fflush(file);
}

void ConsoleSink::on_span(const SpanRecord& span) {
  std::string attrs;
  for (const auto& [key, value] : span.attrs) {
    attrs += ' ';
    attrs += key;
    attrs += '=';
    attrs += attr_to_string(value);
  }
  const double ms = static_cast<double>(span.duration_ns) * 1e-6;
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(out_, "[trace] %*s%s  %.3fms %s\n",
               static_cast<int>(2 * span.depth), "", span.name, ms,
               attrs.c_str());
}

void CollectingSink::on_span(const SpanRecord& span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  if (keep_records_) records_.push_back(span);
}

std::size_t CollectingSink::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::vector<SpanRecord> CollectingSink::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void CollectingSink::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  records_.clear();
}

}  // namespace stocdr::obs
