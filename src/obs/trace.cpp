#include "obs/trace.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "obs/dist/context.hpp"
#include "obs/live/crash_handler.hpp"
#include "obs/live/flight_recorder.hpp"
#include "support/error.hpp"

namespace stocdr::obs {

namespace {

std::atomic<TraceSink*> g_sink{nullptr};

/// Installed sinks are retired, not destroyed, when replaced: a thread may
/// still hold the raw pointer inside an open Span.  The set is bounded by
/// the number of install() calls (normally one).
std::mutex g_install_mutex;
std::vector<std::unique_ptr<TraceSink>>& retired_sinks() {
  static std::vector<std::unique_ptr<TraceSink>> sinks;
  return sinks;
}

std::once_flag g_env_once;

void install_locked(std::unique_ptr<TraceSink> sink) {
  g_sink.store(sink.get(), std::memory_order_release);
  if (sink) retired_sinks().push_back(std::move(sink));
}

/// One-time sink selection from STOCDR_TRACE / STOCDR_TRACE_FILE /
/// STOCDR_TRACE_RING.  The ring wraps whatever base sink the other two
/// variables select (or stands alone), so in-memory capture and a streamed
/// trace coexist.
void init_from_env() {
  const char* file = std::getenv("STOCDR_TRACE_FILE");
  const char* mode = std::getenv("STOCDR_TRACE");
  const std::size_t ring =
      parse_ring_capacity(std::getenv("STOCDR_TRACE_RING"));
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  if (g_sink.load(std::memory_order_acquire) != nullptr) {
    return;  // a programmatic install won the race
  }
  std::unique_ptr<TraceSink> base;
  if (file != nullptr && *file != '\0') {
    // A bad environment value must not abort the traced program: degrade
    // to untraced with a warning (this runs inside the first Span).
    try {
      base = std::make_unique<JsonlFileSink>(file);
    } catch (const IoError& e) {
      std::fprintf(stderr, "stocdr: tracing disabled: %s\n", e.what());
    }
  } else if (mode != nullptr && std::strcmp(mode, "console") == 0) {
    base = std::make_unique<ConsoleSink>();
  }
  if (ring > 0) {
    auto recorder = std::make_unique<FlightRecorder>(ring, base.get());
    if (base) retired_sinks().push_back(std::move(base));
    FlightRecorder::set_active(recorder.get());
    // A ring without a fatal-signal dump path would lose exactly the spans
    // it was retaining; STOCDR_CRASH_DUMP=off opts out.
    install_crash_handler_from_env();
    install_locked(std::move(recorder));
  } else if (base) {
    install_locked(std::move(base));
  }
}

/// Per-thread innermost open span, for parent/depth bookkeeping.
thread_local Span* t_current_span = nullptr;

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Small dense per-process thread index (1-based, assigned on first span on
/// the thread) — stable across the thread's lifetime and friendlier to
/// trace viewers than opaque native handles.
std::uint32_t this_thread_index() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace

void Tracer::install(std::unique_ptr<TraceSink> sink) {
  // Mark env processing as done so a later lazy call cannot override an
  // explicit install (including an explicit uninstall).
  std::call_once(g_env_once, [] {});
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  install_locked(std::move(sink));
}

TraceSink* Tracer::sink() {
  std::call_once(g_env_once, init_from_env);
  return g_sink.load(std::memory_order_acquire);
}

std::uint64_t Tracer::current_span_id() {
  return t_current_span != nullptr ? t_current_span->id() : 0;
}

std::uint64_t Tracer::now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

Span::Span(const char* name) : sink_(Tracer::sink()) {
  record_.name = name;
  if (sink_ != nullptr) {
    record_.id = next_span_id();
    record_.tid = this_thread_index();
    record_.pid = dist::process_pid();
    parent_ = t_current_span;
    if (parent_ != nullptr) {
      record_.parent_id = parent_->record_.id;
      record_.depth = parent_->record_.depth + 1;
    } else if (const std::optional<dist::TraceContext>& remote =
                   dist::remote_parent();
               remote.has_value() && remote->span_id != 0) {
      // Root span of a spawned worker: link it under the spawning span so a
      // merged multi-process trace reconstructs the cross-process chain.
      record_.remote_parent_pid = remote->pid;
      record_.remote_parent_id = remote->span_id;
    }
    t_current_span = this;
    record_.start_ns = Tracer::now_ns();
  }
  if (prof::enabled()) {
    perf_ = true;
    perf_top_ = prof::enter_region() == 0;
    perf_start_ns_ =
        sink_ != nullptr ? record_.start_ns : Tracer::now_ns();
    perf_start_ = prof::read_current_thread();
  }
  if (mem::enabled()) {
    mem_ = true;
    const std::uint64_t start_ns =
        perf_ ? perf_start_ns_
              : (sink_ != nullptr ? record_.start_ns : Tracer::now_ns());
    mem_start_ = mem::span_begin(start_ns);
  }
}

void Span::attr(std::string_view key, std::uint64_t value) {
  if (sink_ == nullptr) return;
  record_.attrs.emplace_back(std::string(key), AttrValue(value));
}

void Span::attr(std::string_view key, double value) {
  if (sink_ == nullptr) return;
  record_.attrs.emplace_back(std::string(key), AttrValue(value));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (sink_ == nullptr) return;
  record_.attrs.emplace_back(std::string(key), AttrValue(std::string(value)));
}

void Span::end() {
  if (mem_) {
    mem_ = false;
    // Harvest the region's allocation delta and live high-water before the
    // perf/trace bookkeeping below allocates anything of its own.
    const mem::MemDelta delta = mem::span_end(mem_start_);
    const std::uint64_t end_ns = Tracer::now_ns();
    mem::accumulate(record_.name, delta, end_ns - mem_start_.start_ns,
                    mem_start_.top_level);
    if (sink_ != nullptr) {
      attr("mem.allocated_bytes", delta.allocated_bytes);
      attr("mem.peak_live_bytes", delta.peak_live_bytes);
    }
  }
  if (perf_) {
    perf_ = false;
    // Counters first, clock second: any profiling overhead lands in the
    // wall number, never as phantom counted work.
    const prof::CounterReading now = prof::read_current_thread();
    const std::uint64_t end_ns = Tracer::now_ns();
    prof::leave_region();
    const prof::CounterReading delta = prof::reading_delta(perf_start_, now);
    prof::accumulate(record_.name, delta, end_ns - perf_start_ns_, perf_top_);
    if (sink_ != nullptr) {
      // Traced + profiled runs carry the headline counters per span record.
      if (delta.has(prof::kInstructions)) {
        attr("perf.instructions", delta.values[prof::kInstructions]);
      }
      if (delta.has(prof::kCycles)) {
        attr("perf.cycles", delta.values[prof::kCycles]);
      }
      if (delta.has(prof::kCacheMisses)) {
        attr("perf.cache_misses", delta.values[prof::kCacheMisses]);
      }
      if (delta.has(prof::kTaskClockNs)) {
        attr("perf.task_clock_ns", delta.values[prof::kTaskClockNs]);
      }
    }
  }
  if (sink_ == nullptr) return;
  record_.duration_ns = Tracer::now_ns() - record_.start_ns;
  // Spans are a per-thread stack: ending one that is not innermost (e.g. a
  // heap-kept span ended across scopes) would silently corrupt the
  // parent/depth chain of every span still open above it.  Debug builds
  // refuse; release builds keep the historical pop-if-top behavior.
  assert(t_current_span == this &&
         "obs::Span::end() called out of LIFO order on this thread");
  if (t_current_span == this) t_current_span = parent_;
  TraceSink* sink = sink_;
  sink_ = nullptr;  // idempotent: further calls are no-ops
  sink->on_span(record_);
}

}  // namespace stocdr::obs
