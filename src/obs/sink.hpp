// Trace sinks: where finished spans go.
//
// A sink receives one SpanRecord per completed span, already stamped with
// monotonic times.  Sinks must be safe to call from multiple threads (the
// provided sinks serialize internally); they should be cheap, since the
// tracer calls them synchronously from the instrumented code.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "support/atomic_file.hpp"

namespace stocdr::obs {

/// Attribute value attached to a span: unsigned integer (counts, sizes),
/// double (residuals, seconds), or string (method names, labels).
using AttrValue = std::variant<std::uint64_t, double, std::string>;

/// A completed span as handed to the sink.
struct SpanRecord {
  const char* name = "";       ///< static span name ("mg.cycle", ...)
  std::uint64_t id = 0;        ///< process-unique span id
  std::uint64_t parent_id = 0; ///< 0 = root span
  std::uint32_t depth = 0;     ///< nesting depth on the emitting thread
  std::uint32_t tid = 0;       ///< small per-process thread index (1-based)
  std::uint32_t pid = 0;       ///< OS pid of the emitting process
  std::uint64_t start_ns = 0;  ///< monotonic ns since the tracer epoch
  std::uint64_t duration_ns = 0;
  /// Cross-process parent (root spans under STOCDR_TRACE_PARENT; see
  /// obs/dist/context.hpp).  Both 0 when there is no remote parent.
  std::uint32_t remote_parent_pid = 0;
  std::uint64_t remote_parent_id = 0;
  std::vector<std::pair<std::string, AttrValue>> attrs;
};

/// Abstract destination for completed spans.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_span(const SpanRecord& span) = 0;
};

/// Writes one JSON object per span per line (JSONL).  The first line is a
/// run-provenance manifest ({"manifest":{..}}; see obs/manifest.hpp); each
/// span is then one stable object:
/// {"name":..,"id":..,"parent":..,"depth":..,"tid":..,"ts_ns":..,
///  "dur_ns":..,"attrs":{..}}.
///
/// Writes are crash-safe: spans stream into the pid-unique temporary
/// `<path>.<pid>.tmp` and the file is fsync'd and atomically renamed onto
/// `path` when the sink closes, so a crash or a deadline kill never leaves
/// a truncated trace behind (the partial temporary remains for inspection)
/// and two concurrent processes tracing to the same path never clobber
/// each other's temporary.  An existing `path` is carried into the new
/// file first, preserving the historical append semantics.
class JsonlFileSink final : public TraceSink {
 public:
  /// Opens the pid-unique temporary; throws IoError if it cannot be opened.
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  void on_span(const SpanRecord& span) override;

 private:
  std::mutex mutex_;
  AtomicFileWriter writer_;
};

/// Human-readable sink: one indented line per span on stderr, e.g.
///   [trace]     mg.level  1.23ms  level=2 states=1024
class ConsoleSink final : public TraceSink {
 public:
  explicit ConsoleSink(std::FILE* out = stderr) : out_(out) {}

  void on_span(const SpanRecord& span) override;

 private:
  std::mutex mutex_;
  std::FILE* out_;
};

/// Test/diagnostic sink: counts spans and optionally retains them.
class CollectingSink final : public TraceSink {
 public:
  explicit CollectingSink(bool keep_records = true)
      : keep_records_(keep_records) {}

  void on_span(const SpanRecord& span) override;

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::vector<SpanRecord> records() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  bool keep_records_;
  std::size_t count_ = 0;
  std::vector<SpanRecord> records_;
};

/// Renders a span's attribute value as text (used by ConsoleSink and tests).
[[nodiscard]] std::string attr_to_string(const AttrValue& value);

/// Renders one span as its JSONL trace line (no trailing newline) — the
/// schema JsonlFileSink writes and obs/analyze reads.  Shared with the
/// flight recorder so ring dumps and streamed traces stay byte-compatible.
[[nodiscard]] std::string span_to_jsonl(const SpanRecord& span);

/// The {"manifest":{..}} provenance line stamped first into every trace
/// artifact (no trailing newline).
[[nodiscard]] std::string manifest_jsonl_line();

}  // namespace stocdr::obs
