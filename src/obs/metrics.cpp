#include "obs/metrics.hpp"

#include <algorithm>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace stocdr::obs {

namespace {

/// CAS-accumulate: applies `op` to the stored value until the update wins.
template <typename Op>
void atomic_update(std::atomic<double>& target, double v, Op op) {
  double expected = target.load(std::memory_order_relaxed);
  double desired = op(expected, v);
  while (desired != expected &&
         !target.compare_exchange_weak(expected, desired,
                                       std::memory_order_relaxed)) {
    desired = op(expected, v);
  }
}

}  // namespace

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_update(sum_, v, [](double a, double b) { return a + b; });
  atomic_update(min_, v, [](double a, double b) { return std::min(a, b); });
  atomic_update(max_, v, [](double a, double b) { return std::max(a, b); });
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

// Lookup is a linear scan under the mutex: registration happens once per
// call site (callers cache the reference) and registries stay small.

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) {
    if (entry.name == name) return *entry.metric;
  }
  counters_.push_back({std::string(name), std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : gauges_) {
    if (entry.name == name) return *entry.metric;
  }
  gauges_.push_back({std::string(name), std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : histograms_) {
    if (entry.name == name) return *entry.metric;
  }
  histograms_.push_back({std::string(name), std::make_unique<Histogram>()});
  return *histograms_.back().metric;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& entry : counters_) {
      out.push_back({entry.name, MetricSample::Kind::kCounter,
                     static_cast<double>(entry.metric->value()), 0, 0.0, 0.0});
    }
    for (const auto& entry : gauges_) {
      out.push_back({entry.name, MetricSample::Kind::kGauge,
                     entry.metric->value(), 0, 0.0, 0.0});
    }
    for (const auto& entry : histograms_) {
      out.push_back({entry.name, MetricSample::Kind::kHistogram,
                     entry.metric->mean(), entry.metric->count(),
                     entry.metric->min(), entry.metric->max()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset_counters() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.metric->reset();
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace stocdr::obs
