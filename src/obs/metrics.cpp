#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/live/exporter.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <unistd.h>
#endif

namespace stocdr::obs {

namespace {

/// CAS-accumulate: applies `op` to the stored value until the update wins.
template <typename Op>
void atomic_update(std::atomic<double>& target, double v, Op op) {
  double expected = target.load(std::memory_order_relaxed);
  double desired = op(expected, v);
  while (desired != expected &&
         !target.compare_exchange_weak(expected, desired,
                                       std::memory_order_relaxed)) {
    desired = op(expected, v);
  }
}

}  // namespace

double Histogram::bucket_lower_bound(std::size_t index) {
  return std::pow(10.0, kMinDecade + static_cast<double>(index) /
                                         kBucketsPerDecade);
}

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_update(sum_, v, [](double a, double b) { return a + b; });
  atomic_update(min_, v, [](double a, double b) { return std::min(a, b); });
  atomic_update(max_, v, [](double a, double b) { return std::max(a, b); });
  // Bucket index: NaN comparisons are false, so NaN lands in underflow.
  if (!(v >= bucket_lower_bound(0))) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double position = (std::log10(v) - kMinDecade) * kBucketsPerDecade;
  if (position >= static_cast<double>(kNumBuckets)) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto index = static_cast<std::size_t>(position);
  if (index >= kNumBuckets) index = kNumBuckets - 1;  // log10 rounding edge
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
}

Histogram::State Histogram::state() const {
  State s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.underflow = underflow_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::merge(const State& other) {
  if (other.count == 0) return;  // keep min/max untouched (they start at inf)
  count_.fetch_add(other.count, std::memory_order_relaxed);
  atomic_update(sum_, other.sum, [](double a, double b) { return a + b; });
  atomic_update(min_, other.min,
                [](double a, double b) { return std::min(a, b); });
  atomic_update(max_, other.max,
                [](double a, double b) { return std::max(a, b); });
  underflow_.fetch_add(other.underflow, std::memory_order_relaxed);
  overflow_.fetch_add(other.overflow, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (other.buckets[i] != 0) {
      buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
    }
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  // Local snapshot so the rank walk sees one consistent-enough view.
  std::array<std::uint64_t, kNumBuckets> counts;
  const std::uint64_t under = underflow_.load(std::memory_order_relaxed);
  const std::uint64_t over = overflow_.load(std::memory_order_relaxed);
  std::uint64_t total = under + over;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double lo_clamp = min();
  const double hi_clamp = max();
  if (q == 0.0) return lo_clamp;  // the extrema are tracked exactly
  if (q == 1.0) return hi_clamp;
  const double target = q * static_cast<double>(total - 1);
  double cum = static_cast<double>(under);
  if (target < cum) return lo_clamp;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c > 0.0 && target < cum + c) {
      // Geometric interpolation inside the hit bucket (log-spaced bounds),
      // tightened to the exact extrema: in the first (last) populated
      // bucket no value lies below min() (above max()), so interpolating
      // between the raw bounds would pin tail quantiles to a bucket edge.
      // The tightening is safe unconditionally — when the extremum lives
      // in another bucket, min()/max() lie outside [lo, hi] and the
      // max/min below are no-ops.
      const double f = (target - cum + 0.5) / c;
      const double lo = std::max(bucket_lower_bound(i), lo_clamp);
      const double hi = std::min(bucket_lower_bound(i + 1), hi_clamp);
      const double estimate = lo * std::pow(hi / lo, std::clamp(f, 0.0, 1.0));
      return std::clamp(estimate, lo_clamp, hi_clamp);
    }
    cum += c;
  }
  return hi_clamp;  // rank fell into overflow
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  // Lazy env hook *after* the registry static: the exporter is constructed
  // later, so static destruction tears it down first and its final publish
  // still sees a live registry.  Re-entrant calls return immediately.
  detail::ensure_live_exporter_from_env();
  return registry;
}

// Lookup is a linear scan under the mutex: registration happens once per
// call site (callers cache the reference) and registries stay small.

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) {
    if (entry.name == name) return *entry.metric;
  }
  counters_.push_back({std::string(name), std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : gauges_) {
    if (entry.name == name) return *entry.metric;
  }
  gauges_.push_back({std::string(name), std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : histograms_) {
    if (entry.name == name) return *entry.metric;
  }
  histograms_.push_back({std::string(name), std::make_unique<Histogram>()});
  return *histograms_.back().metric;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& entry : counters_) {
      MetricSample sample;
      sample.name = entry.name;
      sample.kind = MetricSample::Kind::kCounter;
      sample.value = static_cast<double>(entry.metric->value());
      out.push_back(std::move(sample));
    }
    for (const auto& entry : gauges_) {
      MetricSample sample;
      sample.name = entry.name;
      sample.kind = MetricSample::Kind::kGauge;
      sample.value = entry.metric->value();
      out.push_back(std::move(sample));
    }
    for (const auto& entry : histograms_) {
      MetricSample sample;
      sample.name = entry.name;
      sample.kind = MetricSample::Kind::kHistogram;
      sample.value = entry.metric->mean();
      sample.count = entry.metric->count();
      sample.sum = entry.metric->sum();
      sample.min = entry.metric->min();
      sample.max = entry.metric->max();
      sample.p50 = entry.metric->quantile(0.50);
      sample.p90 = entry.metric->quantile(0.90);
      sample.p99 = entry.metric->quantile(0.99);
      const Histogram::State state = entry.metric->state();
      sample.buckets.assign(state.buckets.begin(), state.buckets.end());
      sample.underflow = state.underflow;
      sample.overflow = state.overflow;
      out.push_back(std::move(sample));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::merge_snapshot(const std::vector<MetricSample>& samples) {
  for (const MetricSample& sample : samples) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        counter(sample.name).add(static_cast<std::uint64_t>(sample.value));
        break;
      case MetricSample::Kind::kGauge:
        gauge(sample.name).set(sample.value);
        break;
      case MetricSample::Kind::kHistogram: {
        if (sample.count == 0) break;
        Histogram::State state;
        state.count = sample.count;
        state.sum = sample.sum;
        state.min = sample.min;
        state.max = sample.max;
        state.underflow = sample.underflow;
        state.overflow = sample.overflow;
        const std::size_t n =
            std::min(sample.buckets.size(), state.buckets.size());
        for (std::size_t i = 0; i < n; ++i) state.buckets[i] = sample.buckets[i];
        histogram(sample.name).merge(state);
        break;
      }
    }
  }
}

void MetricsRegistry::reset_counters() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.metric->reset();
}

void MetricsRegistry::reset_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.metric->reset();
  for (auto& entry : gauges_) entry.metric->reset();
  for (auto& entry : histograms_) entry.metric->reset();
}

std::string metrics_to_json(const std::vector<MetricSample>& samples) {
  JsonWriter w;
  w.begin_array();
  for (const MetricSample& sample : samples) {
    w.begin_object();
    w.field("name", sample.name);
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        w.field("kind", "counter");
        w.field("value", static_cast<std::uint64_t>(sample.value));
        break;
      case MetricSample::Kind::kGauge:
        w.field("kind", "gauge");
        w.field("value", sample.value);
        break;
      case MetricSample::Kind::kHistogram:
        w.field("kind", "histogram");
        w.field("count", sample.count);
        w.field("sum", sample.sum);
        w.field("mean", sample.value);
        w.field("min", sample.min);
        w.field("max", sample.max);
        w.field("p50", sample.p50);
        w.field("p90", sample.p90);
        w.field("p99", sample.p99);
        break;
    }
    w.end_object();
  }
  w.end_array();
  return std::move(w).str();
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "re");
  if (f == nullptr) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  return static_cast<std::uint64_t>(resident) *
         static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

void PeakRssSampler::begin() {
  reset_worked_ = false;
#if defined(__linux__)
  // "5" resets the process's RSS high-water (VmHWM); needs write access to
  // /proc/self/clear_refs, which sandboxes sometimes withhold — the
  // fallback below keeps peak() total.
  std::FILE* f = std::fopen("/proc/self/clear_refs", "we");
  if (f != nullptr) {
    reset_worked_ = std::fputs("5", f) >= 0;
    if (std::fclose(f) != 0) reset_worked_ = false;
  }
#endif
}

std::uint64_t PeakRssSampler::peak() const {
#if defined(__linux__)
  if (reset_worked_) {
    std::FILE* f = std::fopen("/proc/self/status", "re");
    if (f != nullptr) {
      char line[256];
      while (std::fgets(line, sizeof line, f) != nullptr) {
        unsigned long long kib = 0;
        if (std::sscanf(line, "VmHWM: %llu kB", &kib) == 1) {
          std::fclose(f);
          return static_cast<std::uint64_t>(kib) * 1024;
        }
      }
      std::fclose(f);
    }
  }
#endif
  return peak_rss_bytes();
}

}  // namespace stocdr::obs
