// Fatal-signal post-mortem: dump the flight-recorder ring and a backtrace.
//
// A solve service killed by SIGSEGV/SIGABRT must leave the same trail a
// sentinel trip does.  The installed handler is async-signal-safe by
// construction: the dump path is resolved and the ring lines pre-rendered
// *before* any signal can arrive, so the handler only open(2)s, write(2)s,
// and re-raises.  On glibc a symbolized backtrace lands next to the dump
// (<path>.backtrace via backtrace_symbols_fd).
//
// Installed automatically when STOCDR_TRACE_RING enables the ring;
// STOCDR_CRASH_DUMP overrides the dump path ("off" disables the handler).
#pragma once

#include <string>

namespace stocdr::obs {

/// Installs handlers for SIGSEGV, SIGABRT, SIGBUS, SIGFPE, and SIGILL.
/// `dump_path` "" selects the default "stocdr_crash.jsonl".  The handler
/// writes the dump, restores the default disposition, and re-raises, so the
/// process still dies by the original signal.  Safe to call more than once
/// (the latest path wins).  No-op on non-POSIX platforms.
void install_crash_handler(const std::string& dump_path = "");

/// Env-driven install: honors STOCDR_CRASH_DUMP (path override; "off"
/// disables).  Called by the trace env init when the ring is enabled.
void install_crash_handler_from_env();

[[nodiscard]] bool crash_handler_installed();

}  // namespace stocdr::obs
