// Flight recorder: a bounded in-memory ring of the most recent spans.
//
// Streaming every span to disk is the wrong tool for a long-running solve
// service — what matters after a divergence, a watchdog trip, or a SIGSEGV
// is the *last* few hundred spans, not gigabytes of history.  The recorder
// is a TraceSink that tees: each completed span is rendered to its JSONL
// line immediately (same schema as JsonlFileSink, via span_to_jsonl) into a
// fixed-size slot of a ring, then forwarded to an optional downstream sink,
// so ring capture and a full streamed trace coexist.
//
// Pre-rendering at on_span time is what makes the dump paths possible:
//   * dump(path)    — atomic temp+rename write, called on demand or by the
//                     robust harness when a SolveSentinel trips;
//   * dump_to_fd(fd)— async-signal-safe (only memcpy-free slot reads and
//                     write(2)), called from the fatal-signal handler.
//
// Enable via STOCDR_TRACE_RING=N (spans; clamped to [16, 1<<20]) — the lazy
// trace env init then wraps whatever sink STOCDR_TRACE/_FILE selected — or
// programmatically via FlightRecorder::install().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace stocdr::obs {

class FlightRecorder final : public TraceSink {
 public:
  /// One pre-rendered span line per slot.  A line that does not fit is
  /// re-rendered without attributes so every occupied slot holds one
  /// complete, parseable JSON object.
  static constexpr std::size_t kSlotBytes = 1024;
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kMaxCapacity = std::size_t{1} << 20;

  /// `downstream` (optional, not owned, must outlive the recorder) receives
  /// every span after it is ringed.
  explicit FlightRecorder(std::size_t capacity,
                          TraceSink* downstream = nullptr);

  void on_span(const SpanRecord& span) override;

  /// Writes the ring — manifest line first, then the retained spans oldest
  /// to newest — to `path` via atomic temp+rename.  Returns the number of
  /// span lines written.  Throws stocdr::IoError on I/O failure.
  std::size_t dump(const std::string& path) const;

  /// Async-signal-safe dump to an already-open file descriptor: no locks,
  /// no allocation, only write(2) of the pre-rendered slots.  Spans being
  /// rewritten concurrently by another thread are skipped (zero-length).
  void dump_to_fd(int fd) const;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Total spans recorded since construction (>= capacity() means the ring
  /// has wrapped).
  [[nodiscard]] std::uint64_t recorded() const {
    return seq_.load(std::memory_order_acquire);
  }

  /// The process-wide recorder the robust harness and the crash handler
  /// dump, or nullptr.  Set by install() / the STOCDR_TRACE_RING env init.
  static FlightRecorder* active();
  static void set_active(FlightRecorder* recorder);

  /// Wraps the currently installed tracer sink (which keeps receiving every
  /// span downstream), installs the recorder as the process sink, and marks
  /// it active.  Returns the recorder (owned by the tracer's retired-sink
  /// registry, alive for the process lifetime).
  static FlightRecorder* install(std::size_t capacity);

 private:
  struct Slot {
    std::atomic<std::uint32_t> length{0};  ///< 0 = empty / being rewritten
    char text[kSlotBytes];
  };

  TraceSink* downstream_;
  std::string manifest_line_;  ///< pre-rendered at construction
  mutable std::mutex mutex_;   ///< serializes writers; dumps-from-signal skip it
  std::atomic<std::uint64_t> seq_{0};
  std::vector<Slot> slots_;
};

/// Parses a STOCDR_TRACE_RING value: 0 for unset/empty/non-numeric/zero
/// (ring disabled), otherwise the capacity clamped to
/// [kMinCapacity, kMaxCapacity].
[[nodiscard]] std::size_t parse_ring_capacity(const char* spec);

}  // namespace stocdr::obs
