#include "obs/live/flight_recorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/mem/mem.hpp"
#include "obs/trace.hpp"
#include "support/atomic_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace stocdr::obs {

namespace {

std::atomic<FlightRecorder*> g_active{nullptr};

#if defined(__unix__) || defined(__APPLE__)
/// write(2) the whole buffer; best-effort (a failing fd during a crash dump
/// has no recovery path).
void write_fd(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}
#endif

}  // namespace

std::size_t parse_ring_capacity(const char* spec) {
  if (spec == nullptr || *spec == '\0') return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(spec, &end, 10);
  if (end == spec || value == 0) return 0;
  return std::clamp<std::size_t>(static_cast<std::size_t>(value),
                                 FlightRecorder::kMinCapacity,
                                 FlightRecorder::kMaxCapacity);
}

FlightRecorder::FlightRecorder(std::size_t capacity, TraceSink* downstream)
    : downstream_(downstream),
      manifest_line_(manifest_jsonl_line()),
      slots_(std::clamp(capacity, kMinCapacity, kMaxCapacity)) {
  // The ring's slot array is a fixed multi-megabyte owner at large
  // capacities — tag it so mem telemetry attributes it.
  mem::report_component("obs.trace_ring", slots_.size() * sizeof(Slot));
}

void FlightRecorder::on_span(const SpanRecord& span) {
  std::string line = span_to_jsonl(span);
  if (line.size() >= kSlotBytes) {
    // Attribute payloads are unbounded (strings); the core fields are not.
    // Re-render without attrs so the slot always holds complete JSON.
    SpanRecord trimmed = span;
    trimmed.attrs.clear();
    line = span_to_jsonl(trimmed);
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t seq = seq_.load(std::memory_order_relaxed);
    Slot& slot = slots_[seq % slots_.size()];
    // Publish protocol for the lock-free signal-handler reader: mark the
    // slot empty, rewrite the text, then publish the new length.
    slot.length.store(0, std::memory_order_release);
    std::memcpy(slot.text, line.data(), line.size());
    slot.length.store(static_cast<std::uint32_t>(line.size()),
                      std::memory_order_release);
    seq_.store(seq + 1, std::memory_order_release);
  }
  if (downstream_ != nullptr) downstream_->on_span(span);
}

std::size_t FlightRecorder::dump(const std::string& path) const {
  AtomicFileWriter writer(path);
  writer.write(manifest_line_);
  writer.write("\n");
  std::size_t written = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t seq = seq_.load(std::memory_order_acquire);
    const std::uint64_t retained =
        std::min<std::uint64_t>(seq, slots_.size());
    for (std::uint64_t i = seq - retained; i < seq; ++i) {
      const Slot& slot = slots_[i % slots_.size()];
      const std::uint32_t length = slot.length.load(std::memory_order_acquire);
      if (length == 0) continue;
      writer.write(std::string(slot.text, length));
      writer.write("\n");
      ++written;
    }
  }
  writer.commit();
  return written;
}

void FlightRecorder::dump_to_fd(int fd) const {
#if defined(__unix__) || defined(__APPLE__)
  write_fd(fd, manifest_line_.data(), manifest_line_.size());
  write_fd(fd, "\n", 1);
  const std::uint64_t seq = seq_.load(std::memory_order_acquire);
  const std::uint64_t retained = std::min<std::uint64_t>(seq, slots_.size());
  for (std::uint64_t i = seq - retained; i < seq; ++i) {
    const Slot& slot = slots_[i % slots_.size()];
    const std::uint32_t length = slot.length.load(std::memory_order_acquire);
    if (length == 0 || length > kSlotBytes) continue;
    write_fd(fd, slot.text, length);
    write_fd(fd, "\n", 1);
  }
#else
  (void)fd;
#endif
}

FlightRecorder* FlightRecorder::active() {
  return g_active.load(std::memory_order_acquire);
}

void FlightRecorder::set_active(FlightRecorder* recorder) {
  g_active.store(recorder, std::memory_order_release);
}

FlightRecorder* FlightRecorder::install(std::size_t capacity) {
  auto recorder =
      std::make_unique<FlightRecorder>(capacity, Tracer::sink());
  FlightRecorder* raw = recorder.get();
  // Tracer::install retires (never destroys) the previous sink, so the
  // downstream pointer captured above stays valid for the process lifetime.
  Tracer::install(std::move(recorder));
  set_active(raw);
  return raw;
}

}  // namespace stocdr::obs
