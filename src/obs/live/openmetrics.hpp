// OpenMetrics text rendering of a metrics snapshot, plus the parser
// stocdr-obsctl uses to consume it.
//
// Rendering rules (the subset of the OpenMetrics/Prometheus text format
// that fits this registry):
//   * names are sanitized (non-[A-Za-z0-9_] -> '_') and prefixed "stocdr_";
//   * counters render as "<name>_total <value>" with TYPE counter;
//   * gauges render as "<name> <value>" with TYPE gauge;
//   * histograms render as summaries: "<name>{quantile="0.5|0.9|0.99"}"
//     lines plus "<name>_sum" and "<name>_count";
//   * the document terminates with "# EOF" — its presence is how a reader
//     (obsctl watch) distinguishes a complete atomic snapshot from noise.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace stocdr::obs {

/// "mg.level.rho" -> "stocdr_mg_level_rho".
[[nodiscard]] std::string openmetrics_name(std::string_view name);

/// Renders a full snapshot (see file comment for the schema).
[[nodiscard]] std::string to_openmetrics(
    const std::vector<MetricSample>& samples);

/// One parsed sample line: `name` carries any suffix (_total/_sum/_count),
/// `labels` the raw text between braces ("" when unlabeled).
struct OpenMetricsSample {
  std::string name;
  std::string labels;
  double value = 0.0;
};

struct OpenMetricsDocument {
  std::vector<OpenMetricsSample> samples;
  bool complete = false;  ///< saw the terminating "# EOF"
};

/// Parses OpenMetrics text; unparseable lines are skipped (never throws).
[[nodiscard]] OpenMetricsDocument parse_openmetrics(std::string_view text);

/// First sample matching `name` (and `labels` when given); NaN if absent.
[[nodiscard]] double openmetrics_value(const OpenMetricsDocument& doc,
                                       std::string_view name,
                                       std::string_view labels = "");

/// Reconstructs MetricSamples from a parsed document (the inverse of
/// to_openmetrics, up to name sanitization: the returned names are the
/// OpenMetrics names minus the "stocdr_" prefix, with '_' where the
/// original had '.').  Histograms are identified by their quantile/_bucket
/// lines and regain their raw bucket state, so feeding the result to
/// MetricsRegistry::merge_snapshot merges workers exactly.  Used by
/// `stocdr-obsctl fleet`.
[[nodiscard]] std::vector<MetricSample> openmetrics_to_samples(
    const OpenMetricsDocument& doc);

}  // namespace stocdr::obs
