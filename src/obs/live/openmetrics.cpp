#include "obs/live/openmetrics.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace stocdr::obs {

namespace {

/// Shortest round-trippable rendering; Prometheus spells non-finite values
/// "+Inf"/"-Inf"/"NaN".
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void render_quantile(std::string& out, const std::string& name,
                     const char* quantile, double value) {
  out += name;
  out += "{quantile=\"";
  out += quantile;
  out += "\"} ";
  out += format_value(value);
  out += '\n';
}

}  // namespace

std::string openmetrics_name(std::string_view name) {
  std::string out = "stocdr_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_openmetrics(const std::vector<MetricSample>& samples) {
  std::string out;
  for (const MetricSample& sample : samples) {
    const std::string name = openmetrics_name(sample.name);
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + "_total " + format_value(sample.value) + '\n';
        break;
      case MetricSample::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ' + format_value(sample.value) + '\n';
        break;
      case MetricSample::Kind::kHistogram:
        out += "# TYPE " + name + " summary\n";
        render_quantile(out, name, "0.5", sample.p50);
        render_quantile(out, name, "0.9", sample.p90);
        render_quantile(out, name, "0.99", sample.p99);
        out += name + "_sum " + format_value(sample.sum) + '\n';
        out += name + "_count " +
               format_value(static_cast<double>(sample.count)) + '\n';
        break;
    }
  }
  out += "# EOF\n";
  return out;
}

OpenMetricsDocument parse_openmetrics(std::string_view text) {
  OpenMetricsDocument doc;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    if (line.front() == '#') {
      if (line == "# EOF") doc.complete = true;
      continue;
    }

    OpenMetricsSample sample;
    std::size_t value_start;
    const std::size_t brace = line.find('{');
    if (brace != std::string_view::npos) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string_view::npos) continue;
      sample.name = std::string(line.substr(0, brace));
      sample.labels = std::string(line.substr(brace + 1, close - brace - 1));
      value_start = close + 1;
    } else {
      const std::size_t space = line.find(' ');
      if (space == std::string_view::npos) continue;
      sample.name = std::string(line.substr(0, space));
      value_start = space;
    }
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    if (value_start >= line.size()) continue;

    // The value field ends at the next space (an optional timestamp may
    // follow); strtod handles inf/nan spellings case-insensitively.
    const std::string value_text(
        line.substr(value_start, line.find(' ', value_start) - value_start));
    char* end = nullptr;
    sample.value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) continue;
    doc.samples.push_back(std::move(sample));
  }
  return doc;
}

double openmetrics_value(const OpenMetricsDocument& doc,
                         std::string_view name, std::string_view labels) {
  for (const OpenMetricsSample& sample : doc.samples) {
    if (sample.name == name && (labels.empty() || sample.labels == labels)) {
      return sample.value;
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace stocdr::obs
