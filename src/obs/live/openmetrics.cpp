#include "obs/live/openmetrics.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace stocdr::obs {

namespace {

/// Shortest round-trippable rendering; Prometheus spells non-finite values
/// "+Inf"/"-Inf"/"NaN".
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void render_quantile(std::string& out, const std::string& name,
                     const char* quantile, double value) {
  out += name;
  out += "{quantile=\"";
  out += quantile;
  out += "\"} ";
  out += format_value(value);
  out += '\n';
}

}  // namespace

std::string openmetrics_name(std::string_view name) {
  std::string out = "stocdr_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_openmetrics(const std::vector<MetricSample>& samples) {
  std::string out;
  for (const MetricSample& sample : samples) {
    const std::string name = openmetrics_name(sample.name);
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + "_total " + format_value(sample.value) + '\n';
        break;
      case MetricSample::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ' + format_value(sample.value) + '\n';
        break;
      case MetricSample::Kind::kHistogram:
        out += "# TYPE " + name + " summary\n";
        render_quantile(out, name, "0.5", sample.p50);
        render_quantile(out, name, "0.9", sample.p90);
        render_quantile(out, name, "0.99", sample.p99);
        out += name + "_sum " + format_value(sample.sum) + '\n';
        out += name + "_count " +
               format_value(static_cast<double>(sample.count)) + '\n';
        // Raw state for exact cross-worker merging (obsctl fleet): exact
        // extrema plus the nonzero log-bucket counts.  %.17g round-trips
        // uint64 bucket counts exactly up to 2^53 — far beyond any
        // realistic observation count.
        out += name + "_min " + format_value(sample.min) + '\n';
        out += name + "_max " + format_value(sample.max) + '\n';
        if (sample.underflow > 0) {
          out += name + "_bucket{i=\"under\"} " +
                 format_value(static_cast<double>(sample.underflow)) + '\n';
        }
        for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
          if (sample.buckets[i] == 0) continue;
          out += name + "_bucket{i=\"" + std::to_string(i) + "\"} " +
                 format_value(static_cast<double>(sample.buckets[i])) + '\n';
        }
        if (sample.overflow > 0) {
          out += name + "_bucket{i=\"over\"} " +
                 format_value(static_cast<double>(sample.overflow)) + '\n';
        }
        break;
    }
  }
  out += "# EOF\n";
  return out;
}

OpenMetricsDocument parse_openmetrics(std::string_view text) {
  OpenMetricsDocument doc;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    if (line.front() == '#') {
      if (line == "# EOF") doc.complete = true;
      continue;
    }

    OpenMetricsSample sample;
    std::size_t value_start;
    const std::size_t brace = line.find('{');
    if (brace != std::string_view::npos) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string_view::npos) continue;
      sample.name = std::string(line.substr(0, brace));
      sample.labels = std::string(line.substr(brace + 1, close - brace - 1));
      value_start = close + 1;
    } else {
      const std::size_t space = line.find(' ');
      if (space == std::string_view::npos) continue;
      sample.name = std::string(line.substr(0, space));
      value_start = space;
    }
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    if (value_start >= line.size()) continue;

    // The value field ends at the next space (an optional timestamp may
    // follow); strtod handles inf/nan spellings case-insensitively.
    const std::string value_text(
        line.substr(value_start, line.find(' ', value_start) - value_start));
    char* end = nullptr;
    sample.value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) continue;
    doc.samples.push_back(std::move(sample));
  }
  return doc;
}

namespace {

bool strip_suffix(std::string& name, std::string_view suffix) {
  if (name.size() <= suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  name.resize(name.size() - suffix.size());
  return true;
}

void strip_prefix(std::string& name) {
  constexpr std::string_view kPrefix = "stocdr_";
  if (name.size() > kPrefix.size() &&
      name.compare(0, kPrefix.size(), kPrefix) == 0) {
    name.erase(0, kPrefix.size());
  }
}

}  // namespace

std::vector<MetricSample> openmetrics_to_samples(
    const OpenMetricsDocument& doc) {
  // Pass 1: histogram base names, identified by quantile or _bucket lines.
  // (A plain counter/gauge never emits labeled samples.)
  std::vector<std::string> hist_names;
  auto is_hist = [&hist_names](const std::string& base) {
    for (const std::string& h : hist_names) {
      if (h == base) return true;
    }
    return false;
  };
  for (const OpenMetricsSample& s : doc.samples) {
    std::string base = s.name;
    if (s.labels.rfind("quantile=", 0) != 0 &&
        !(s.labels.rfind("i=", 0) == 0 && strip_suffix(base, "_bucket"))) {
      continue;
    }
    if (!is_hist(base)) hist_names.push_back(base);
  }

  // Pass 2: assemble samples.  Histogram parts accumulate into one entry.
  std::vector<MetricSample> out;
  auto hist_entry = [&out](std::string name) -> MetricSample& {
    strip_prefix(name);
    for (MetricSample& sample : out) {
      if (sample.kind == MetricSample::Kind::kHistogram &&
          sample.name == name) {
        return sample;
      }
    }
    MetricSample sample;
    sample.name = std::move(name);
    sample.kind = MetricSample::Kind::kHistogram;
    sample.buckets.assign(Histogram::kNumBuckets, 0);
    out.push_back(std::move(sample));
    return out.back();
  };
  for (const OpenMetricsSample& s : doc.samples) {
    std::string base = s.name;
    if (s.labels.rfind("quantile=", 0) == 0 && is_hist(base)) {
      MetricSample& h = hist_entry(base);
      if (s.labels == "quantile=\"0.5\"") h.p50 = s.value;
      if (s.labels == "quantile=\"0.9\"") h.p90 = s.value;
      if (s.labels == "quantile=\"0.99\"") h.p99 = s.value;
      continue;
    }
    if (s.labels.rfind("i=", 0) == 0 && strip_suffix(base, "_bucket") &&
        is_hist(base)) {
      MetricSample& h = hist_entry(base);
      const auto n = static_cast<std::uint64_t>(s.value);
      if (s.labels == "i=\"under\"") {
        h.underflow = n;
      } else if (s.labels == "i=\"over\"") {
        h.overflow = n;
      } else if (s.labels.size() > 4 && s.labels[2] == '"' &&
                 s.labels.back() == '"') {
        char* end = nullptr;
        const unsigned long idx = std::strtoul(s.labels.c_str() + 3, &end, 10);
        if (end != s.labels.c_str() + 3 && idx < h.buckets.size()) {
          h.buckets[idx] = n;
        }
      }
      continue;
    }
    if (!s.labels.empty()) continue;  // unknown labeled line
    base = s.name;
    if (strip_suffix(base, "_sum") && is_hist(base)) {
      hist_entry(base).sum = s.value;
    } else if ((base = s.name, strip_suffix(base, "_count")) &&
               is_hist(base)) {
      hist_entry(base).count = static_cast<std::uint64_t>(s.value);
    } else if ((base = s.name, strip_suffix(base, "_min")) && is_hist(base)) {
      hist_entry(base).min = s.value;
    } else if ((base = s.name, strip_suffix(base, "_max")) && is_hist(base)) {
      hist_entry(base).max = s.value;
    } else if ((base = s.name, strip_suffix(base, "_total")) &&
               !is_hist(base)) {
      MetricSample sample;
      strip_prefix(base);
      sample.name = std::move(base);
      sample.kind = MetricSample::Kind::kCounter;
      sample.value = s.value;
      out.push_back(std::move(sample));
    } else if (!is_hist(s.name)) {
      MetricSample sample;
      base = s.name;
      strip_prefix(base);
      sample.name = std::move(base);
      sample.kind = MetricSample::Kind::kGauge;
      sample.value = s.value;
      out.push_back(std::move(sample));
    }
  }
  // Derive the mean for reconstructed histograms (the summary text has no
  // mean line).
  for (MetricSample& sample : out) {
    if (sample.kind == MetricSample::Kind::kHistogram && sample.count > 0) {
      sample.value = sample.sum / static_cast<double>(sample.count);
    }
  }
  return out;
}

double openmetrics_value(const OpenMetricsDocument& doc,
                         std::string_view name, std::string_view labels) {
  for (const OpenMetricsSample& sample : doc.samples) {
    if (sample.name == name && (labels.empty() || sample.labels == labels)) {
      return sample.value;
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace stocdr::obs
