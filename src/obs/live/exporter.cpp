#include "obs/live/exporter.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/dist/context.hpp"
#include "obs/live/openmetrics.hpp"
#include "obs/mem/mem.hpp"
#include "obs/metrics.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"

namespace stocdr::obs {

LiveExporter::LiveExporter(Options options) : options_(std::move(options)) {}

LiveExporter::~LiveExporter() { stop(); }

void LiveExporter::start() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  publish();  // a started exporter is immediately observable
  thread_ = std::thread([this] { thread_main(); });
}

void LiveExporter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
  }
  publish();  // final snapshot: the heartbeat records the clean shutdown
}

void LiveExporter::publish() {
  const std::uint64_t tick =
      ticks_.fetch_add(1, std::memory_order_acq_rel) + 1;
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.gauge("export.heartbeat").set(static_cast<double>(tick));
  // The emitting pid lets `stocdr-obsctl fleet` attribute a snapshot file
  // to its worker process.
  registry.gauge("process.pid").set(static_cast<double>(dist::process_pid()));
  // Memory is sampled at publish time so watchers see live values: current
  // and peak RSS always, plus the heap-byte gauges when STOCDR_MEM=1.
  registry.gauge("process.current_rss_bytes")
      .set(static_cast<double>(current_rss_bytes()));
  registry.gauge("process.peak_rss_bytes")
      .set(static_cast<double>(peak_rss_bytes()));
  mem::publish_to_metrics();
  const std::string text = to_openmetrics(registry.snapshot());
  try {
    AtomicFileWriter writer(options_.path);
    writer.write(text);
    writer.commit();
  } catch (const IoError& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!write_warned_) {
      write_warned_ = true;
      std::fprintf(stderr, "stocdr: live metrics export failed: %s\n",
                   e.what());
    }
  }
}

void LiveExporter::thread_main() {
  const auto period = std::chrono::milliseconds(options_.period_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    if (wake_.wait_for(lock, period,
                       [this] { return stop_requested_; })) {
      break;  // the final snapshot belongs to stop()
    }
    lock.unlock();
    publish();
    lock.lock();
  }
}

namespace detail {

void ensure_live_exporter_from_env() {
  // Guarded by a small state machine instead of call_once: publish() calls
  // MetricsRegistry::instance(), which calls back here — a re-entrant
  // call_once on the same flag would deadlock, while state 1 simply
  // returns.
  static std::atomic<int> state{0};  // 0 unset, 1 initializing, 2 done
  if (state.load(std::memory_order_acquire) == 2) return;
  int expected = 0;
  if (!state.compare_exchange_strong(expected, 1,
                                     std::memory_order_acq_rel)) {
    return;  // another thread owns init, or we are re-entered mid-init
  }
  const char* path = std::getenv("STOCDR_METRICS_EXPORT");
  if (path != nullptr && *path != '\0') {
    LiveExporter::Options options;
    options.path = path;
    if (const char* period = std::getenv("STOCDR_METRICS_PERIOD_MS")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(period, &end, 10);
      if (end != period && parsed > 0) {
        options.period_ms = std::clamp<std::size_t>(parsed, 10, 3600000);
      }
    }
    // Function-local static: constructed after the metrics registry (the
    // registry's instance() invoked us), so it is destroyed first at exit —
    // the final publish still sees a live registry.
    static LiveExporter exporter(std::move(options));
    exporter.start();
  }
  state.store(2, std::memory_order_release);
}

}  // namespace detail

}  // namespace stocdr::obs
