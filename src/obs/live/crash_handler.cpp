#include "obs/live/crash_handler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/live/flight_recorder.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace stocdr::obs {

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
constexpr std::size_t kPathMax = 4096;

// Pre-resolved at install time: the handler must not allocate or touch the
// heap-backed std::string machinery.
char g_dump_path[kPathMax];
char g_backtrace_path[kPathMax];
std::atomic<bool> g_installed{false};
volatile std::sig_atomic_t g_handling = 0;

void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void write_literal(int fd, const char* s) { write_all(fd, s, std::strlen(s)); }

void write_unsigned(int fd, unsigned long value) {
  char buf[24];
  std::size_t n = 0;
  do {
    buf[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0 && n < sizeof buf);
  while (n > 0) write_all(fd, &buf[--n], 1);
}

void fatal_signal_handler(int sig) {
  // A crash inside the handler itself must not recurse: SA_RESETHAND has
  // already restored the default disposition, and this flag covers a
  // *different* fatal signal arriving mid-dump.
  if (g_handling != 0) {
    ::raise(sig);
    return;
  }
  g_handling = 1;

  const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    // One marker line the trace reader surfaces as crash_signal, then the
    // ring (manifest line + retained spans).
    write_literal(fd, "{\"crash\":{\"signal\":");
    write_unsigned(fd, static_cast<unsigned long>(sig));
    write_literal(fd, "}}\n");
    if (const FlightRecorder* recorder = FlightRecorder::active()) {
      recorder->dump_to_fd(fd);
    }
    ::close(fd);
  }

#if defined(__GLIBC__)
  const int bt_fd =
      ::open(g_backtrace_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (bt_fd >= 0) {
    void* frames[64];
    const int depth = ::backtrace(frames, 64);
    ::backtrace_symbols_fd(frames, depth, bt_fd);
    ::close(bt_fd);
  }
#endif

  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

void copy_path(char (&dst)[kPathMax], const std::string& src) {
  const std::size_t n = std::min(src.size(), kPathMax - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

void install_crash_handler(const std::string& dump_path) {
  const std::string path =
      dump_path.empty() ? std::string("stocdr_crash.jsonl") : dump_path;
  copy_path(g_dump_path, path);
  copy_path(g_backtrace_path, path + ".backtrace");

#if defined(__GLIBC__)
  // backtrace() may dlopen libgcc on first use — do that now, outside any
  // signal context.
  void* warmup[2];
  ::backtrace(warmup, 2);
#endif

  struct sigaction action {};
  action.sa_handler = fatal_signal_handler;
  sigemptyset(&action.sa_mask);
  // One shot: the disposition resets on entry, so a fault inside the
  // handler falls through to the default (terminate) action.
  action.sa_flags = SA_RESETHAND;
  for (const int sig : kFatalSignals) {
    ::sigaction(sig, &action, nullptr);
  }
  g_installed.store(true, std::memory_order_release);
}

void install_crash_handler_from_env() {
  const char* configured = std::getenv("STOCDR_CRASH_DUMP");
  if (configured != nullptr && std::strcmp(configured, "off") == 0) return;
  install_crash_handler(configured != nullptr ? configured : "");
}

bool crash_handler_installed() {
  return g_installed.load(std::memory_order_acquire);
}

}  // namespace stocdr::obs

#else  // non-POSIX: no signal post-mortem

namespace stocdr::obs {

void install_crash_handler(const std::string&) {}
void install_crash_handler_from_env() {}
bool crash_handler_installed() { return false; }

}  // namespace stocdr::obs

#endif
