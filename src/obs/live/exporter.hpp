// Live telemetry export: a background thread publishing metrics snapshots.
//
// The ROADMAP north-star is a long-running solve service; its operators
// need to see "mg.level.rho" drifting toward 1 *while* the solve runs, not
// in a BENCH artifact afterwards.  The exporter thread wakes every
// period_ms, takes a registry snapshot, renders it as OpenMetrics text, and
// atomically replaces the export file (temp+rename, so a scraper or
// `stocdr-obsctl watch` never reads a torn document).  Every publish first
// advances the "export.heartbeat" gauge — a reader seeing the same
// heartbeat twice knows the producer is stalled or gone.
//
// Enable via STOCDR_METRICS_EXPORT=<path> (+ STOCDR_METRICS_PERIOD_MS,
// default 1000, clamped to [10, 3600000]); the env-driven exporter starts
// lazily with the first metrics-registry access and publishes a final
// snapshot at process exit.  An initial snapshot is published on start()
// and a final one on stop(), so any started exporter leaves a heartbeat of
// at least 2.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace stocdr::obs {

class LiveExporter {
 public:
  struct Options {
    std::string path;             ///< OpenMetrics output file
    std::size_t period_ms = 1000; ///< publish cadence
  };

  explicit LiveExporter(Options options);

  /// Stops and joins, publishing one final snapshot.
  ~LiveExporter();

  LiveExporter(const LiveExporter&) = delete;
  LiveExporter& operator=(const LiveExporter&) = delete;

  /// Publishes immediately, then starts the periodic thread.  Idempotent.
  void start();

  /// Stops the thread and publishes the final snapshot.  Idempotent.
  void stop();

  /// Publishes one snapshot synchronously (heartbeat + render + atomic
  /// write).  Callable with or without the thread running.
  void publish();

  /// Snapshots published so far (== the exported heartbeat gauge).
  [[nodiscard]] std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const std::string& path() const { return options_.path; }

 private:
  void thread_main();

  Options options_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool running_ = false;
  bool write_warned_ = false;
  std::atomic<std::uint64_t> ticks_{0};
  std::thread thread_;
};

namespace detail {

/// Starts the process-wide env-configured exporter on first call (no-op
/// when STOCDR_METRICS_EXPORT is unset).  Re-entrant: called from inside
/// MetricsRegistry::instance(), including by the exporter thread itself.
void ensure_live_exporter_from_env();

}  // namespace detail

}  // namespace stocdr::obs
