#include "obs/analyze/reader.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <set>
#include <utility>

#include "support/error.hpp"

namespace stocdr::obs::analyze {

namespace {

/// A span line must carry at least a string name and a positive id; the
/// remaining fields default to zero so schema-1 traces (no tid) still load.
bool parse_span_line(const JsonValue& doc, TraceSpan& out) {
  const JsonValue* name = doc.find("name");
  const JsonValue* id = doc.find("id");
  if (name == nullptr || name->type != JsonValue::Type::kString ||
      id == nullptr || id->type != JsonValue::Type::kNumber) {
    return false;
  }
  out.name = name->string;
  out.id = id->uint_or(0);
  if (out.id == 0) return false;
  if (const JsonValue* v = doc.find("parent")) out.parent = v->uint_or(0);
  if (const JsonValue* v = doc.find("depth")) {
    out.depth = static_cast<std::uint32_t>(v->uint_or(0));
  }
  if (const JsonValue* v = doc.find("tid")) {
    out.tid = static_cast<std::uint32_t>(v->uint_or(0));
  }
  if (const JsonValue* v = doc.find("pid")) {
    out.pid = static_cast<std::uint32_t>(v->uint_or(0));
  }
  if (const JsonValue* v = doc.find("ts_ns")) out.ts_ns = v->uint_or(0);
  if (const JsonValue* v = doc.find("dur_ns")) out.dur_ns = v->uint_or(0);
  if (const JsonValue* v = doc.find("remote_parent_pid")) {
    out.remote_parent_pid = static_cast<std::uint32_t>(v->uint_or(0));
  }
  if (const JsonValue* v = doc.find("remote_parent_id")) {
    out.remote_parent_id = v->uint_or(0);
  }
  if (const JsonValue* attrs = doc.find("attrs");
      attrs != nullptr && attrs->is_object()) {
    out.attrs = attrs->object;
  }
  return true;
}

}  // namespace

TraceFile read_trace(std::istream& in) {
  TraceFile trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++trace.total_lines;
    std::optional<JsonValue> doc = parse_json(line);
    if (!doc || !doc->is_object()) {
      ++trace.skipped_lines;
      continue;
    }
    if (const JsonValue* manifest = doc->find("manifest");
        manifest != nullptr && manifest->is_object()) {
      trace.manifest = *manifest;
      trace.has_manifest = true;
      continue;
    }
    // Crash marker written by the fatal-signal dump path ahead of the ring.
    if (const JsonValue* crash = doc->find("crash");
        crash != nullptr && crash->is_object()) {
      if (const JsonValue* sig = crash->find("signal")) {
        trace.crash_signal = static_cast<int>(sig->uint_or(0));
      }
      continue;
    }
    TraceSpan span;
    if (parse_span_line(*doc, span)) {
      trace.spans.push_back(std::move(span));
    } else {
      ++trace.skipped_lines;
    }
  }
  return trace;
}

TraceFile read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw IoError("cannot open trace file: " + path);
  }
  return read_trace(in);
}

std::optional<std::string> empty_trace_reason(const TraceFile& trace) {
  if (!trace.spans.empty()) return std::nullopt;
  if (trace.total_lines == 0) {
    return "trace is empty (no lines) — was tracing enabled? "
           "(STOCDR_TRACE_FILE / STOCDR_TRACE_RING)";
  }
  if (trace.skipped_lines == trace.total_lines) {
    return "trace has no spans: all " + std::to_string(trace.total_lines) +
           " line(s) are malformed — is this a JSONL trace?";
  }
  return "trace has no spans (" + std::to_string(trace.total_lines) +
         " line(s): manifest/marker only)";
}

TraceFile merge_traces(std::vector<TraceFile> files) {
  TraceFile merged;
  // (pid, original id) -> renumbered id, for remote-parent stitching.  The
  // pid key matters: span ids restart at 1 in every process.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> by_origin;
  std::uint64_t base = 0;
  for (TraceFile& file : files) {
    if (file.has_manifest && !merged.has_manifest) {
      merged.manifest = std::move(file.manifest);
      merged.has_manifest = true;
    }
    if (merged.crash_signal == 0) merged.crash_signal = file.crash_signal;
    merged.total_lines += file.total_lines;
    merged.skipped_lines += file.skipped_lines;
    std::uint64_t max_id = 0;
    for (TraceSpan& span : file.spans) {
      if (span.id > max_id) max_id = span.id;
      const std::uint64_t new_id = base + span.id;
      by_origin.emplace(std::make_pair(span.pid, span.id), new_id);
      span.id = new_id;
      if (span.parent != 0) span.parent += base;
      merged.spans.push_back(std::move(span));
    }
    base += max_id;
  }
  // Stitch worker roots under the spawning span of their parent process.
  // Index the merged vector first: the parent span may live in a file read
  // after the child's (shard files are merged in shard order, not time
  // order).
  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < merged.spans.size(); ++i) {
    index_of.emplace(merged.spans[i].id, i);
  }
  std::set<std::uint32_t> shifted_pids;
  for (std::size_t i = 0; i < merged.spans.size(); ++i) {
    TraceSpan& span = merged.spans[i];
    if (span.parent != 0 || span.remote_parent_id == 0) continue;
    const auto mapped = by_origin.find(
        std::make_pair(span.remote_parent_pid, span.remote_parent_id));
    if (mapped == by_origin.end()) continue;  // parent's trace not supplied
    const auto parent_it = index_of.find(mapped->second);
    if (parent_it == index_of.end()) continue;
    const std::size_t parent_index = parent_it->second;
    span.parent = mapped->second;
    const std::uint32_t parent_depth = merged.spans[parent_index].depth;
    // The whole child process subtree shifts down with its root (once per
    // pid — a worker with several thread roots shares one shift).
    if (parent_depth + 1 > span.depth &&
        shifted_pids.insert(span.pid).second) {
      const std::uint32_t depth_shift = parent_depth + 1 - span.depth;
      for (TraceSpan& other : merged.spans) {
        if (other.pid == span.pid) other.depth += depth_shift;
      }
    }
    merged.flows.push_back(FlowLink{parent_index, i});
  }
  return merged;
}

}  // namespace stocdr::obs::analyze
