#include "obs/analyze/reader.hpp"

#include <fstream>
#include <istream>

#include "support/error.hpp"

namespace stocdr::obs::analyze {

namespace {

/// A span line must carry at least a string name and a positive id; the
/// remaining fields default to zero so schema-1 traces (no tid) still load.
bool parse_span_line(const JsonValue& doc, TraceSpan& out) {
  const JsonValue* name = doc.find("name");
  const JsonValue* id = doc.find("id");
  if (name == nullptr || name->type != JsonValue::Type::kString ||
      id == nullptr || id->type != JsonValue::Type::kNumber) {
    return false;
  }
  out.name = name->string;
  out.id = id->uint_or(0);
  if (out.id == 0) return false;
  if (const JsonValue* v = doc.find("parent")) out.parent = v->uint_or(0);
  if (const JsonValue* v = doc.find("depth")) {
    out.depth = static_cast<std::uint32_t>(v->uint_or(0));
  }
  if (const JsonValue* v = doc.find("tid")) {
    out.tid = static_cast<std::uint32_t>(v->uint_or(0));
  }
  if (const JsonValue* v = doc.find("ts_ns")) out.ts_ns = v->uint_or(0);
  if (const JsonValue* v = doc.find("dur_ns")) out.dur_ns = v->uint_or(0);
  if (const JsonValue* attrs = doc.find("attrs");
      attrs != nullptr && attrs->is_object()) {
    out.attrs = attrs->object;
  }
  return true;
}

}  // namespace

TraceFile read_trace(std::istream& in) {
  TraceFile trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++trace.total_lines;
    std::optional<JsonValue> doc = parse_json(line);
    if (!doc || !doc->is_object()) {
      ++trace.skipped_lines;
      continue;
    }
    if (const JsonValue* manifest = doc->find("manifest");
        manifest != nullptr && manifest->is_object()) {
      trace.manifest = *manifest;
      trace.has_manifest = true;
      continue;
    }
    // Crash marker written by the fatal-signal dump path ahead of the ring.
    if (const JsonValue* crash = doc->find("crash");
        crash != nullptr && crash->is_object()) {
      if (const JsonValue* sig = crash->find("signal")) {
        trace.crash_signal = static_cast<int>(sig->uint_or(0));
      }
      continue;
    }
    TraceSpan span;
    if (parse_span_line(*doc, span)) {
      trace.spans.push_back(std::move(span));
    } else {
      ++trace.skipped_lines;
    }
  }
  return trace;
}

TraceFile read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw IoError("cannot open trace file: " + path);
  }
  return read_trace(in);
}

std::optional<std::string> empty_trace_reason(const TraceFile& trace) {
  if (!trace.spans.empty()) return std::nullopt;
  if (trace.total_lines == 0) {
    return "trace is empty (no lines) — was tracing enabled? "
           "(STOCDR_TRACE_FILE / STOCDR_TRACE_RING)";
  }
  if (trace.skipped_lines == trace.total_lines) {
    return "trace has no spans: all " + std::to_string(trace.total_lines) +
           " line(s) are malformed — is this a JSONL trace?";
  }
  return "trace has no spans (" + std::to_string(trace.total_lines) +
         " line(s): manifest/marker only)";
}

}  // namespace stocdr::obs::analyze
