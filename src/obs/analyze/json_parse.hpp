// The reading half of the observability JSON story (obs/json.hpp is the
// writing half): a small recursive-descent JSON parser used by the trace
// analysis toolchain and stocdr-obsctl to consume JSONL traces and
// BENCH_<name>.json artifacts.
//
// Deliberately forgiving about *values* (numbers are held as double, big
// integers lose precision above 2^53 — fine for our artifact ranges) and
// strict about *syntax*: any malformed document yields std::nullopt, never
// a partial tree, so callers can count-and-skip bad JSONL lines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stocdr::obs::analyze {

/// One parsed JSON value.  A tagged struct rather than a std::variant so
/// lookups read naturally (`value.find("solve")->find("seconds")`).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered (duplicate keys keep the first occurrence on find()).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Dotted-path lookup ("solve.seconds"); nullptr when any hop is missing.
  [[nodiscard]] const JsonValue* find_path(std::string_view dotted) const;

  [[nodiscard]] double number_or(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
  [[nodiscard]] std::uint64_t uint_or(std::uint64_t fallback) const {
    return type == Type::kNumber && number >= 0.0
               ? static_cast<std::uint64_t>(number)
               : fallback;
  }
  [[nodiscard]] std::string_view string_or(std::string_view fallback) const {
    return type == Type::kString ? std::string_view(string) : fallback;
  }
};

/// Parses one complete JSON document (leading/trailing whitespace allowed;
/// trailing garbage is an error).  Returns std::nullopt on any syntax
/// error, unpaired surrogate escape, or nesting deeper than an internal
/// limit.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text);

/// Serializes a JsonValue back to compact JSON (used by the Chrome
/// trace_event exporter to splice parsed attribute values into "args").
[[nodiscard]] std::string to_json_text(const JsonValue& value);

}  // namespace stocdr::obs::analyze
