#include "obs/analyze/json_parse.hpp"

#include <charconv>
#include <cstdlib>

#include "obs/json.hpp"

namespace stocdr::obs::analyze {

namespace {

/// Bounds recursion on adversarial inputs; real traces nest a few levels.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    skip_whitespace();
    JsonValue value;
    if (!parse_value(value, 0)) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return consume_literal("null");
      default:
        out.type = JsonValue::Type::kNumber;
        return parse_number(out.number);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (consume('}')) return true;
    while (true) {
      skip_whitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        return false;
      }
      skip_whitespace();
      if (!consume(':')) return false;
      skip_whitespace();
      JsonValue member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_whitespace();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (consume(']')) return true;
    while (true) {
      skip_whitespace();
      JsonValue element;
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_whitespace();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_number(double& out) {
    // std::from_chars accepts exactly the JSON number grammar minus the
    // leading '+' (which JSON also forbids), so delegate wholesale.
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc() || ptr == begin) return false;
    pos_ += static_cast<std::size_t>(ptr - begin);
    return true;
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text_[pos_ + static_cast<std::size_t>(k)];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
      out = (out << 4) | digit;
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            std::uint32_t low = 0;
            if (!consume('\\') || !consume('u') || !parse_hex4(low) ||
                low < 0xdc00 || low > 0xdfff) {
              return false;
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return false;  // unpaired low surrogate
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::find_path(std::string_view dotted) const {
  const JsonValue* node = this;
  while (node != nullptr && !dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view hop =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    node = node->find(hop);
    dotted = dot == std::string_view::npos ? std::string_view()
                                           : dotted.substr(dot + 1);
  }
  return node;
}

std::optional<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string to_json_text(const JsonValue& value) {
  switch (value.type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return value.boolean ? "true" : "false";
    case JsonValue::Type::kNumber:
      return json_number(value.number);
    case JsonValue::Type::kString:
      return '"' + json_escape(value.string) + '"';
    case JsonValue::Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i != 0) out += ',';
        out += to_json_text(value.array[i]);
      }
      out += ']';
      return out;
    }
    case JsonValue::Type::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < value.object.size(); ++i) {
        if (i != 0) out += ',';
        out += '"' + json_escape(value.object[i].first) + "\":";
        out += to_json_text(value.object[i].second);
      }
      out += '}';
      return out;
    }
  }
  return "null";  // unreachable
}

}  // namespace stocdr::obs::analyze
