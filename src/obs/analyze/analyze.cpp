#include "obs/analyze/analyze.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "obs/json.hpp"

namespace stocdr::obs::analyze {

namespace {

/// Map from span id to the span, for parent-chain walks.
std::unordered_map<std::uint64_t, const TraceSpan*> index_by_id(
    const std::vector<TraceSpan>& spans) {
  std::unordered_map<std::uint64_t, const TraceSpan*> index;
  index.reserve(spans.size());
  for (const TraceSpan& span : spans) index.emplace(span.id, &span);
  return index;
}

/// Self time per span id: duration minus the summed duration of direct
/// children, clamped at zero.
std::unordered_map<std::uint64_t, std::uint64_t> self_times(
    const std::vector<TraceSpan>& spans) {
  std::unordered_map<std::uint64_t, std::uint64_t> children_ns;
  children_ns.reserve(spans.size());
  for (const TraceSpan& span : spans) {
    if (span.parent != 0) children_ns[span.parent] += span.dur_ns;
  }
  std::unordered_map<std::uint64_t, std::uint64_t> self;
  self.reserve(spans.size());
  for (const TraceSpan& span : spans) {
    const auto it = children_ns.find(span.id);
    const std::uint64_t in_children = it == children_ns.end() ? 0 : it->second;
    self[span.id] = span.dur_ns > in_children ? span.dur_ns - in_children : 0;
  }
  return self;
}

std::uint64_t nearest_rank(const std::vector<std::uint64_t>& sorted,
                           double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  auto index = static_cast<std::size_t>(pos + 0.5);
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

}  // namespace

std::vector<SpanAggregate> aggregate_spans(
    const std::vector<TraceSpan>& spans) {
  const auto self = self_times(spans);
  std::map<std::string, std::vector<const TraceSpan*>> by_name;
  for (const TraceSpan& span : spans) by_name[span.name].push_back(&span);

  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (const auto& [name, group] : by_name) {
    SpanAggregate agg;
    agg.name = name;
    agg.count = group.size();
    std::vector<std::uint64_t> durations;
    durations.reserve(group.size());
    for (const TraceSpan* span : group) {
      agg.total_ns += span->dur_ns;
      agg.self_ns += self.at(span->id);
      durations.push_back(span->dur_ns);
    }
    std::sort(durations.begin(), durations.end());
    agg.p50_ns = nearest_rank(durations, 0.50);
    agg.p90_ns = nearest_rank(durations, 0.90);
    agg.p99_ns = nearest_rank(durations, 0.99);
    agg.max_ns = durations.back();
    out.push_back(std::move(agg));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                              : a.name < b.name;
            });
  return out;
}

std::string aggregates_to_json(const std::vector<SpanAggregate>& aggregates) {
  JsonWriter w;
  w.begin_array();
  for (const SpanAggregate& agg : aggregates) {
    w.begin_object();
    w.field("name", agg.name);
    w.field("count", agg.count);
    w.field("total_ns", agg.total_ns);
    w.field("self_ns", agg.self_ns);
    w.field("p50_ns", agg.p50_ns);
    w.field("p90_ns", agg.p90_ns);
    w.field("p99_ns", agg.p99_ns);
    w.field("max_ns", agg.max_ns);
    w.end_object();
  }
  w.end_array();
  return std::move(w).str();
}

std::string to_folded_stacks(const std::vector<TraceSpan>& spans) {
  const auto by_id = index_by_id(spans);
  const auto self = self_times(spans);

  bool multi_thread = false;
  if (!spans.empty()) {
    for (const TraceSpan& span : spans) {
      if (span.tid != spans.front().tid) {
        multi_thread = true;
        break;
      }
    }
  }

  // Collapse identical stacks; std::map gives the sorted output order.
  std::map<std::string, std::uint64_t> weight_us;
  std::vector<const TraceSpan*> chain;
  for (const TraceSpan& span : spans) {
    const std::uint64_t us = self.at(span.id) / 1000;
    if (us == 0) continue;
    // Root-to-leaf name chain via parent pointers.  The depth field bounds
    // the walk, so a cyclic parent link in a corrupt trace cannot hang us.
    chain.clear();
    const TraceSpan* node = &span;
    for (std::uint32_t hops = 0; node != nullptr && hops <= span.depth + 1;
         ++hops) {
      chain.push_back(node);
      if (node->parent == 0) break;
      const auto it = by_id.find(node->parent);
      node = it == by_id.end() ? nullptr : it->second;
    }
    std::string stack;
    if (multi_thread) stack = "thread-" + std::to_string(span.tid);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!stack.empty()) stack += ';';
      stack += (*it)->name;
    }
    weight_us[stack] += us;
  }

  std::string out;
  for (const auto& [stack, us] : weight_us) {
    out += stack;
    out += ' ';
    out += std::to_string(us);
    out += '\n';
  }
  return out;
}

std::string to_chrome_trace(const TraceFile& trace) {
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  if (trace.has_manifest) {
    w.key("metadata");
    w.raw_value(to_json_text(trace.manifest));
  }
  w.key("traceEvents");
  w.begin_array();
  for (const TraceSpan& span : trace.spans) {
    w.begin_object();
    w.field("name", span.name);
    w.field("cat", "stocdr");
    w.field("ph", "X");
    w.field("ts", static_cast<double>(span.ts_ns) / 1000.0);
    w.field("dur", static_cast<double>(span.dur_ns) / 1000.0);
    // Pre-pid traces (schema <= 2) carry pid 0; show them as process 1.
    w.field("pid", std::uint64_t{span.pid == 0 ? 1u : span.pid});
    w.field("tid", std::uint64_t{span.tid});
    if (!span.attrs.empty()) {
      w.key("args");
      w.begin_object();
      for (const auto& [key, value] : span.attrs) {
        w.key(key);
        w.raw_value(to_json_text(value));
      }
      w.end_object();
    }
    w.end_object();
  }
  // Cross-process links stitched by merge_traces render as flow arrows
  // (ph "s" at the spawning span, matching ph "f" at the worker root).
  std::uint64_t flow_id = 0;
  for (const FlowLink& flow : trace.flows) {
    if (flow.from_index >= trace.spans.size() ||
        flow.to_index >= trace.spans.size()) {
      continue;
    }
    const TraceSpan& from = trace.spans[flow.from_index];
    const TraceSpan& to = trace.spans[flow.to_index];
    ++flow_id;
    w.begin_object();
    w.field("name", "spawn");
    w.field("cat", "stocdr.flow");
    w.field("ph", "s");
    w.field("id", flow_id);
    w.field("ts", static_cast<double>(from.ts_ns) / 1000.0);
    w.field("pid", std::uint64_t{from.pid == 0 ? 1u : from.pid});
    w.field("tid", std::uint64_t{from.tid});
    w.end_object();
    w.begin_object();
    w.field("name", "spawn");
    w.field("cat", "stocdr.flow");
    w.field("ph", "f");
    w.field("bp", "e");
    w.field("id", flow_id);
    w.field("ts", static_cast<double>(to.ts_ns) / 1000.0);
    w.field("pid", std::uint64_t{to.pid == 0 ? 1u : to.pid});
    w.field("tid", std::uint64_t{to.tid});
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

}  // namespace stocdr::obs::analyze
