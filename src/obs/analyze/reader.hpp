// JSONL trace reader: turns the stream a JsonlFileSink wrote back into
// structured spans plus the run-provenance manifest.
//
// Robustness contract (stocdr-obsctl must never crash on a trace): a line
// that is empty is ignored; a line that is not valid JSON, not an object,
// or lacks the required span fields is *skipped and counted* — a truncated
// final line from a killed process is the expected case, not an error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/analyze/json_parse.hpp"

namespace stocdr::obs::analyze {

/// One span parsed back from a trace line (see obs/sink.hpp for the
/// emitting side).  Attribute values keep their parsed JSON form.
struct TraceSpan {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint32_t depth = 0;
  std::uint32_t tid = 0;     ///< 0 on pre-tid traces (schema 1)
  std::uint32_t pid = 0;     ///< 0 on pre-pid traces (schema <= 2)
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Cross-process parent reference ((pid, span id) in the spawning
  /// process); both 0 when absent.  merge_traces resolves it.
  std::uint32_t remote_parent_pid = 0;
  std::uint64_t remote_parent_id = 0;
  std::vector<std::pair<std::string, JsonValue>> attrs;
};

/// One resolved cross-process parent->child link, as indices into
/// TraceFile::spans (stable under the id renumbering merge_traces does).
struct FlowLink {
  std::size_t from_index = 0;  ///< parent (spawning) span
  std::size_t to_index = 0;    ///< child root span
};

/// A fully read trace.
struct TraceFile {
  /// The first manifest line ({"manifest":{..}}) if present; later manifest
  /// lines (appended traces) replace it, so this reflects the newest run.
  JsonValue manifest;
  bool has_manifest = false;

  std::vector<TraceSpan> spans;

  /// Cross-process parent->child links stitched by merge_traces (empty for
  /// a single-file read; the Chrome exporter renders them as flow arrows).
  std::vector<FlowLink> flows;

  /// Signal number from a {"crash":{"signal":N}} marker line (written by
  /// the fatal-signal flight-recorder dump); 0 = no crash marker.
  int crash_signal = 0;

  std::size_t total_lines = 0;    ///< non-empty lines seen
  std::size_t skipped_lines = 0;  ///< malformed / unrecognized lines
};

/// Reads a trace from a stream (one JSON object per line).
[[nodiscard]] TraceFile read_trace(std::istream& in);

/// Reads a trace file; throws stocdr::IoError if the file cannot be opened.
[[nodiscard]] TraceFile read_trace_file(const std::string& path);

/// nullopt when the trace holds at least one span; otherwise a one-line
/// human-readable reason ("empty trace file", "no spans: ... malformed
/// line(s)", ...) the CLI surfaces with its distinct exit code.
[[nodiscard]] std::optional<std::string> empty_trace_reason(
    const TraceFile& trace);

/// Merges per-process traces (one file per worker) into a single trace:
///   - span ids are renumbered so ids from different processes never
///     collide (parent references are remapped consistently);
///   - a worker root span carrying a (remote_parent_pid, remote_parent_id)
///     reference is stitched under the matching span of the spawning
///     process — its parent/depth are rewritten and the link is recorded
///     in TraceFile::flows for the Chrome exporter's flow arrows.
/// The merged manifest is the first file's (workers inherit the parent's
/// trace id, so any file's manifest identifies the run); line counts are
/// summed and the first nonzero crash signal wins.
[[nodiscard]] TraceFile merge_traces(std::vector<TraceFile> files);

}  // namespace stocdr::obs::analyze
