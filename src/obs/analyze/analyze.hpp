// Trace analysis: per-name aggregates over a parsed trace, and exporters
// to the two de-facto profile interchange formats —
//   * folded stacks ("a;b;c <weight>" lines) for flamegraph.pl and
//     speedscope, weighted by *self* time in microseconds;
//   * Chrome trace_event JSON ("ph":"X" complete events) for Perfetto and
//     chrome://tracing, with span attributes carried in "args" and the run
//     manifest in "metadata".
//
// Span trees are reconstructed per thread from the recorded parent ids;
// self time is a span's duration minus the duration of its direct children
// (clamped at zero — clock granularity can make children sum past the
// parent by a few ns).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analyze/reader.hpp"

namespace stocdr::obs::analyze {

/// Aggregate cost of one span name across a trace.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< sum of durations (includes children)
  std::uint64_t self_ns = 0;   ///< total minus direct children
  /// Exact nearest-rank duration quantiles over this name's spans.
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Per-name aggregates, sorted by total_ns descending.
[[nodiscard]] std::vector<SpanAggregate> aggregate_spans(
    const std::vector<TraceSpan>& spans);

/// Machine-readable twin of the summarize table: a JSON array with one
/// object per aggregate ({"name","count","total_ns","self_ns","p50_ns",
/// "p90_ns","p99_ns","max_ns"}), in the same order as the input.  Consumed
/// by CI and the perf reports instead of screen-scraping the table.
[[nodiscard]] std::string aggregates_to_json(
    const std::vector<SpanAggregate>& aggregates);

/// Folded-stack output (one "root;child;leaf weight" line per unique stack,
/// lexicographically sorted; weight = self time in microseconds, stacks
/// whose self time rounds to 0 us are dropped).  When the trace holds spans
/// from more than one thread, stacks are rooted under "thread-<tid>".
[[nodiscard]] std::string to_folded_stacks(const std::vector<TraceSpan>& spans);

/// Chrome trace_event JSON document for the whole trace.
[[nodiscard]] std::string to_chrome_trace(const TraceFile& trace);

}  // namespace stocdr::obs::analyze
