// BENCH_<name>.json artifact diffing: the regression gate behind
// `stocdr-obsctl bench-diff old.json new.json --threshold 10%`.
//
// Three classes of metric:
//   * gating — wall-clock costs (matrix_form_seconds, solve.seconds) and
//     the deterministic work counts (solve.iterations, solve.matvecs).
//     A relative increase beyond the threshold marks the diff regressed
//     (non-zero CLI exit).  Time metrics whose baseline is below
//     min_seconds are reported but never gate: micro-timings are noise.
//   * counter-gating — instructions retired (perf.total.instructions, from
//     STOCDR_PERF=1 runs).  Nearly deterministic, so it gates at the much
//     tighter instr_threshold (default +3%).  When either artifact lacks
//     the counter (profiling off, PMU unavailable) the gate is skipped
//     with an explicit note — the wall-clock seconds gate still applies.
//   * gating, memory — bytes per state (mem.bytes_per_state, from
//     STOCDR_MEM=1 runs): the chain's normalized heap footprint, nearly
//     deterministic like the instruction count.  Gates at the wall-clock
//     threshold.  When either artifact lacks the mem section the gate is
//     skipped with an explicit coverage-drift note.
//   * report-only — memory (peak_rss_bytes, mem.peak_live_bytes), problem
//     sizes, BER.  Shown with their deltas; never fail the gate.
//
// Cross-run trust: when both artifacts carry a manifest, mismatched
// config_hash / compiler / build_type are surfaced as notes — a diff
// across configurations is labelled, not silently trusted.  A gating
// metric present in only one artifact is likewise surfaced as coverage
// drift instead of being silently skipped.
#pragma once

#include <string>
#include <vector>

#include "obs/analyze/json_parse.hpp"

namespace stocdr::obs::analyze {

struct BenchDiffOptions {
  double threshold = 0.10;    ///< gating relative increase (0.10 = +10%)
  double min_seconds = 0.0;   ///< time metrics below this baseline never gate
  /// Gating relative increase for counter metrics (instructions retired).
  /// Counters are nearly deterministic, so the default is far tighter than
  /// the wall-clock threshold.
  double instr_threshold = 0.03;
};

/// One compared metric.
struct MetricDelta {
  std::string key;            ///< dotted path into the artifact
  bool present = false;       ///< both artifacts carried the metric
  double old_value = 0.0;
  double new_value = 0.0;
  double change = 0.0;        ///< (new - old) / old; 0 when old == 0
  bool gating = false;
  bool regressed = false;
};

struct BenchDiffReport {
  std::vector<MetricDelta> deltas;
  std::vector<std::string> notes;  ///< manifest drift, missing metrics, ...
  bool regressed = false;          ///< any gating metric regressed

  /// Human-readable rendering (one line per metric plus the notes).
  [[nodiscard]] std::string render() const;
};

/// Diffs two parsed BENCH artifacts.
[[nodiscard]] BenchDiffReport diff_bench_artifacts(
    const JsonValue& old_doc, const JsonValue& new_doc,
    const BenchDiffOptions& options = {});

}  // namespace stocdr::obs::analyze
