#include "obs/analyze/benchdiff.hpp"

#include <cmath>
#include <cstdio>
#include <string_view>

namespace stocdr::obs::analyze {

namespace {

struct MetricSpec {
  const char* key;
  bool gating;
  bool is_time;     ///< min_seconds floor applies
  bool is_counter;  ///< instr_threshold applies (perf-counter metric)
};

// Keys into the artifact JSON (dotted paths; see bench/common.hpp to_json).
constexpr MetricSpec kMetrics[] = {
    {"matrix_form_seconds", /*gating=*/true, /*is_time=*/true,
     /*is_counter=*/false},
    {"solve.seconds", /*gating=*/true, /*is_time=*/true, /*is_counter=*/false},
    {"solve.iterations", /*gating=*/true, /*is_time=*/false,
     /*is_counter=*/false},
    {"solve.matvecs", /*gating=*/true, /*is_time=*/false,
     /*is_counter=*/false},
    {"perf.total.instructions", /*gating=*/true, /*is_time=*/false,
     /*is_counter=*/true},
    {"mem.bytes_per_state", /*gating=*/true, /*is_time=*/false,
     /*is_counter=*/false},
    {"mem.peak_live_bytes", /*gating=*/false, /*is_time=*/false,
     /*is_counter=*/false},
    {"peak_rss_bytes", /*gating=*/false, /*is_time=*/false,
     /*is_counter=*/false},
    {"states", /*gating=*/false, /*is_time=*/false, /*is_counter=*/false},
    {"transitions", /*gating=*/false, /*is_time=*/false,
     /*is_counter=*/false},
    {"ber", /*gating=*/false, /*is_time=*/false, /*is_counter=*/false},
};

void note_manifest_drift(const JsonValue& old_doc, const JsonValue& new_doc,
                         std::vector<std::string>& notes) {
  const JsonValue* old_manifest = old_doc.find("manifest");
  const JsonValue* new_manifest = new_doc.find("manifest");
  if (old_manifest == nullptr || new_manifest == nullptr) {
    if (old_manifest != new_manifest) {
      notes.push_back("manifest present in only one artifact");
    }
    return;
  }
  // git_sha is expected to differ between a baseline and a candidate run;
  // the fields below changing mean the two costs are not comparable.
  for (const char* field : {"config_hash", "compiler", "build_type"}) {
    const JsonValue* old_field = old_manifest->find(field);
    const JsonValue* new_field = new_manifest->find(field);
    const std::string_view old_text =
        old_field == nullptr ? std::string_view() : old_field->string_or("");
    const std::string_view new_text =
        new_field == nullptr ? std::string_view() : new_field->string_or("");
    if (old_text != new_text) {
      notes.push_back(std::string(field) + " differs: \"" +
                      std::string(old_text) + "\" vs \"" +
                      std::string(new_text) + "\"");
    }
  }
}

}  // namespace

BenchDiffReport diff_bench_artifacts(const JsonValue& old_doc,
                                     const JsonValue& new_doc,
                                     const BenchDiffOptions& options) {
  BenchDiffReport report;
  if (old_doc.find("name") != nullptr && new_doc.find("name") != nullptr &&
      old_doc.find("name")->string_or("") !=
          new_doc.find("name")->string_or("")) {
    report.notes.push_back(
        "artifact names differ: \"" +
        std::string(old_doc.find("name")->string_or("")) + "\" vs \"" +
        std::string(new_doc.find("name")->string_or("")) + "\"");
  }
  note_manifest_drift(old_doc, new_doc, report.notes);

  bool mem_note_emitted = false;
  for (const MetricSpec& spec : kMetrics) {
    MetricDelta delta;
    delta.key = spec.key;
    const JsonValue* old_value = old_doc.find_path(spec.key);
    const JsonValue* new_value = new_doc.find_path(spec.key);
    const bool old_ok =
        old_value != nullptr && old_value->type == JsonValue::Type::kNumber;
    const bool new_ok =
        new_value != nullptr && new_value->type == JsonValue::Type::kNumber;
    if (!old_ok || !new_ok) {
      // A gating metric carried by only one side means the two runs were
      // measured differently (instrumentation added/removed, counters
      // available on one host only) — that is coverage drift worth a note,
      // not a silent skip.
      if (old_ok != new_ok) {
        report.notes.push_back(
            std::string(spec.key) + " present in only one artifact" +
            (spec.gating ? " — gating-metric coverage drift (gate skipped)"
                         : ""));
      }
      if (spec.is_counter) {
        report.notes.push_back(
            "instructions-retired gate unavailable (perf counters absent "
            "from at least one artifact); the wall-clock seconds gate "
            "applies");
      }
      if (!mem_note_emitted &&
          std::string_view(spec.key).starts_with("mem.")) {
        mem_note_emitted = true;
        report.notes.push_back(
            "memory telemetry absent from at least one artifact (was the "
            "bench run with STOCDR_MEM=1?); the bytes-per-state gate is "
            "skipped");
      }
      report.deltas.push_back(std::move(delta));
      continue;
    }
    delta.present = true;
    delta.old_value = old_value->number;
    delta.new_value = new_value->number;
    if (delta.old_value != 0.0) {
      delta.change = (delta.new_value - delta.old_value) / delta.old_value;
    }
    const bool below_floor =
        spec.is_time && delta.old_value < options.min_seconds;
    const double threshold =
        spec.is_counter ? options.instr_threshold : options.threshold;
    delta.gating = spec.gating && !below_floor;
    delta.regressed = delta.gating &&
                      ((delta.old_value == 0.0 && delta.new_value > 0.0) ||
                       delta.change > threshold);
    report.regressed = report.regressed || delta.regressed;
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

std::string BenchDiffReport::render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-22s %14s %14s %9s\n", "metric", "old",
                "new", "change");
  out += line;
  for (const MetricDelta& delta : deltas) {
    if (!delta.present) {
      std::snprintf(line, sizeof line, "%-22s %14s %14s %9s\n",
                    delta.key.c_str(), "-", "-", "-");
      out += line;
      continue;
    }
    const char* tag = delta.regressed        ? "  REGRESSED"
                      : delta.gating         ? ""
                                             : "  (report-only)";
    std::snprintf(line, sizeof line, "%-22s %14.6g %14.6g %+8.1f%%%s\n",
                  delta.key.c_str(), delta.old_value, delta.new_value,
                  100.0 * delta.change, tag);
    out += line;
  }
  for (const std::string& note : notes) {
    out += "note: ";
    out += note;
    out += '\n';
  }
  return out;
}

}  // namespace stocdr::obs::analyze
