// Scoped-span tracing.
//
// The paper's evaluation is built on per-experiment cost annotations
// ("Matrixformtime", "Solvetime", multigrid cycle counts); this layer makes
// those measurements a structural property of the code instead of ad-hoc
// printf accounting.  A Span is an RAII region: construction stamps a
// monotonic start time (the same steady clock as stocdr::Timer), destruction
// emits a SpanRecord — name, nesting, duration, attributes — to the
// installed TraceSink.
//
// Tracing is off by default and the disabled path is designed to cost
// nothing: a Span constructed while no sink is installed stores a null sink
// pointer and every member function returns immediately without allocating.
//
// Sink selection:
//   * programmatic: Tracer::install(std::make_unique<ConsoleSink>());
//   * environment (read once, lazily, on first use):
//       STOCDR_TRACE_FILE=trace.jsonl   -> JSONL file sink
//       STOCDR_TRACE=console            -> human-readable stderr sink
//       STOCDR_TRACE=off / unset        -> null (no) sink
//
// Span ids are process-unique; parent/depth tracking is per-thread (a span
// opened on one thread is never the parent of a span on another).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <type_traits>

#include "obs/mem/mem.hpp"
#include "obs/prof/perf.hpp"
#include "obs/sink.hpp"

namespace stocdr::obs {

/// Process-global tracer state: the installed sink and the monotonic epoch.
class Tracer {
 public:
  /// True when a sink is installed (after lazy env initialization).  This is
  /// the fast-path guard instrumented code may use to skip attribute
  /// computation that is only needed for tracing.
  static bool enabled() { return sink() != nullptr; }

  /// Installs `sink` as the process sink (nullptr uninstalls).  Replaces any
  /// previous sink, including one selected via environment variables.
  static void install(std::unique_ptr<TraceSink> sink);

  /// The installed sink, or nullptr.  Performs the one-time environment
  /// lookup on first call.
  static TraceSink* sink();

  /// Monotonic nanoseconds since the process tracer epoch (the first use of
  /// the tracing clock); shares steady_clock with stocdr::Timer.
  static std::uint64_t now_ns();

  /// Id of the innermost span open on the calling thread (0 when tracing is
  /// disabled or no span is open).  Cross-process context capture
  /// (obs/dist/context.hpp) exports this so a spawned child's root spans
  /// can link under the spawning span.
  static std::uint64_t current_span_id();
};

/// RAII scoped span.  Cheap to construct when tracing is disabled; when
/// enabled, records duration and attributes and emits on destruction (or on
/// an explicit end()).  Spans must be ended in LIFO order per thread —
/// guaranteed by scoping them as locals, and enforced by an assert() in
/// debug builds (out-of-order end() corrupts parent/depth bookkeeping).
class Span {
 public:
  /// `name` must be a string literal (stored by pointer).
  explicit Span(const char* name);
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span will be emitted; use to guard attribute
  /// computations that are only meaningful under tracing.
  [[nodiscard]] bool active() const { return sink_ != nullptr; }

  /// Attaches a key/value attribute (no-op when inactive).
  void attr(std::string_view key, std::uint64_t value);
  void attr(std::string_view key, double value);
  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, bool value) {
    attr(key, std::string_view(value ? "true" : "false"));
  }
  /// Any other integral type funnels into the std::uint64_t overload.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, std::uint64_t> &&
             !std::is_same_v<T, bool>)
  void attr(std::string_view key, T value) {
    attr(key, static_cast<std::uint64_t>(value));
  }

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void end();

  /// The span's process-unique id (0 when inactive).
  [[nodiscard]] std::uint64_t id() const { return record_.id; }

 private:
  TraceSink* sink_;       // nullptr = disabled span, all calls no-ops
  SpanRecord record_;     // only `name` is set when disabled
  Span* parent_ = nullptr;

  // Perf-counter integration (STOCDR_PERF=1): a profiled span snapshots the
  // thread's counters at both ends and folds the delta into the per-name
  // prof aggregates — independent of whether a trace sink is installed, so
  // profiling works on untraced runs.  Perf-only spans never touch the
  // per-thread parent/depth chain.
  bool perf_ = false;       // counters snapshotted; end() must accumulate
  bool perf_top_ = false;   // outermost profiled span on this thread
  std::uint64_t perf_start_ns_ = 0;
  prof::CounterReading perf_start_;

  // Allocation-telemetry integration (STOCDR_MEM=1): same banking shape as
  // perf — a tracked span snapshots the thread's allocation counters at
  // both ends and folds the delta (plus the region's live high-water) into
  // the per-name mem aggregates, independent of any trace sink.
  bool mem_ = false;        // mem snapshotted; end() must accumulate
  mem::SpanStart mem_start_;
};

}  // namespace stocdr::obs
