// Sparse matrix and vector interchange: Matrix Market (.mtx) read/write.
//
// The de-facto exchange format for sparse matrices; lets the TPMs built
// here be inspected in Octave/SciPy/SuiteSparse tooling and lets external
// chains be analyzed with this library's solvers.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace stocdr::sparse {

/// Writes `matrix` in Matrix Market coordinate/real/general format.
/// `comment`, if non-empty, is embedded as a % header line.
void write_matrix_market(std::ostream& out, const CsrMatrix& matrix,
                         const std::string& comment = "");

/// Convenience: writes to a file; throws PreconditionError on I/O failure.
void write_matrix_market_file(const std::string& path, const CsrMatrix& matrix,
                              const std::string& comment = "");

/// Parses Matrix Market coordinate/real (or integer) general format.
/// Duplicate coordinates are summed.  Throws PreconditionError on malformed
/// input or unsupported variants (complex, pattern, symmetric).
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);

/// Convenience: reads from a file.
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes a dense vector in Matrix Market array format.
void write_vector_market(std::ostream& out, std::span<const double> vector,
                         const std::string& comment = "");

/// Reads a dense vector in Matrix Market array format (n x 1).
[[nodiscard]] std::vector<double> read_vector_market(std::istream& in);

}  // namespace stocdr::sparse
