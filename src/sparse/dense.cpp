#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/csr.hpp"
#include "support/error.hpp"

namespace stocdr::sparse {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a) {
  DenseMatrix d(a.rows(), a.cols());
  a.for_each([&d](std::size_t r, std::size_t c, double v) { d.at(r, c) = v; });
  return d;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) d.at(i, i) = 1.0;
  return d;
}

void DenseMatrix::multiply(std::span<const double> x,
                           std::span<double> y) const {
  STOCDR_REQUIRE(x.size() == cols_ && y.size() == rows_,
                 "DenseMatrix::multiply dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void DenseMatrix::multiply_transpose(std::span<const double> x,
                                     std::span<double> y) const {
  STOCDR_REQUIRE(x.size() == rows_ && y.size() == cols_,
                 "DenseMatrix::multiply_transpose dimension mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& b) const {
  STOCDR_REQUIRE(cols_ == b.rows_, "DenseMatrix::multiply shape mismatch");
  DenseMatrix c(rows_, b.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = at(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data_.data() + k * b.cols_;
      double* crow = c.data_.data() + i * b.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

double DenseMatrix::max_abs() const {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::abs(v));
  return m;
}

LuFactorization::LuFactorization(const DenseMatrix& a) : lu_(a) {
  STOCDR_REQUIRE(a.rows() == a.cols(),
                 "LuFactorization requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below k.
    std::size_t pivot = k;
    double best = std::abs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_.at(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) {
      throw NumericalError("LuFactorization: matrix is singular");
    }
    perm_[k] = pivot;
    if (pivot != k) {
      auto rk = lu_.row(k);
      auto rp = lu_.row(pivot);
      std::swap_ranges(rk.begin(), rk.end(), rp.begin());
    }
    const double inv_pivot = 1.0 / lu_.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_.at(r, k) * inv_pivot;
      lu_.at(r, k) = factor;  // store L below the diagonal
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_.at(r, c) -= factor * lu_.at(k, c);
      }
    }
  }
}

std::vector<double> LuFactorization::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  STOCDR_REQUIRE(b.size() == n, "LuFactorization::solve size mismatch");
  std::vector<double> x(b.begin(), b.end());
  // Apply the row permutation, then forward/back substitution.
  for (std::size_t k = 0; k < n; ++k) std::swap(x[k], x[perm_[k]]);
  for (std::size_t r = 1; r < n; ++r) {
    double acc = x[r];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_.at(r, c) * x[c];
    x[r] = acc;
  }
  for (std::size_t r = n; r-- > 0;) {
    double acc = x[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= lu_.at(r, c) * x[c];
    x[r] = acc / lu_.at(r, r);
  }
  return x;
}

std::vector<double> LuFactorization::solve_transpose(
    std::span<const double> b) const {
  // A^T = (P^T L U)^T = U^T L^T P, so solve U^T z = b, L^T w = z, x = P^T w.
  const std::size_t n = lu_.rows();
  STOCDR_REQUIRE(b.size() == n,
                 "LuFactorization::solve_transpose size mismatch");
  std::vector<double> x(b.begin(), b.end());
  // U^T is lower triangular: forward substitution with the U part.
  for (std::size_t r = 0; r < n; ++r) {
    double acc = x[r];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_.at(c, r) * x[c];
    x[r] = acc / lu_.at(r, r);
  }
  // L^T is upper triangular with unit diagonal: back substitution.
  for (std::size_t r = n; r-- > 0;) {
    double acc = x[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= lu_.at(c, r) * x[c];
    x[r] = acc;
  }
  // Undo the permutation (applied in reverse order).
  for (std::size_t k = n; k-- > 0;) std::swap(x[k], x[perm_[k]]);
  return x;
}

}  // namespace stocdr::sparse
