// Coordinate-format sparse matrix assembly.
//
// Transition probability matrices are assembled entry-by-entry while
// enumerating FSM transitions and noise realizations; the same (row, col)
// pair is typically hit several times (different noise samples leading to the
// same successor state), so assembly must accumulate duplicates.  CooBuilder
// collects triplets and compresses them into CSR.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stocdr::sparse {

class CsrMatrix;

/// A single (row, col, value) triplet.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

/// Accumulating COO assembler.
///
/// add() appends triplets (duplicates allowed); to_csr() sorts, merges
/// duplicates by summation, and produces a compressed CSR matrix.  The
/// builder can be reused after to_csr().
class CooBuilder {
 public:
  /// Creates a builder for a rows x cols matrix.
  CooBuilder(std::size_t rows, std::size_t cols);

  /// Appends value at (row, col).  Zero values are skipped.
  void add(std::size_t row, std::size_t col, double value);

  /// Pre-allocates space for n triplets.
  void reserve(std::size_t n) { triplets_.reserve(n); }

  /// Number of accumulated triplets (before duplicate merging).
  [[nodiscard]] std::size_t triplet_count() const { return triplets_.size(); }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Compresses into CSR, merging duplicate coordinates by summation and
  /// dropping entries whose merged magnitude is below `drop_tol`.
  [[nodiscard]] CsrMatrix to_csr(double drop_tol = 0.0) const;

  /// Discards all accumulated triplets, keeping the shape.
  void clear() { triplets_.clear(); }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

}  // namespace stocdr::sparse
