#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "obs/prof/roofline.hpp"
#include "parallel/pool.hpp"
#include "support/error.hpp"

namespace stocdr::sparse {

namespace {

/// Parallel scatter only pays off when there are enough nonzeros per output
/// column to amortize zeroing and merging the per-lane partial vectors.
constexpr std::size_t kScatterColsFactor = 4;

}  // namespace

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::uint32_t> row_ptr,
                     std::vector<std::uint32_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  STOCDR_REQUIRE(row_ptr_.size() == rows_ + 1,
                 "CsrMatrix: row_ptr must have rows+1 entries");
  STOCDR_REQUIRE(col_idx_.size() == values_.size(),
                 "CsrMatrix: col_idx/values size mismatch");
  STOCDR_REQUIRE(row_ptr_.front() == 0 && row_ptr_.back() == values_.size(),
                 "CsrMatrix: row_ptr bounds inconsistent with values");
  for (std::size_t r = 0; r < rows_; ++r) {
    STOCDR_REQUIRE(row_ptr_[r] <= row_ptr_[r + 1],
                   "CsrMatrix: row_ptr must be non-decreasing");
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      STOCDR_REQUIRE(col_idx_[k] < cols_, "CsrMatrix: column out of range");
      if (k > row_ptr_[r]) {
        STOCDR_REQUIRE(col_idx_[k - 1] < col_idx_[k],
                       "CsrMatrix: columns must be strictly increasing");
      }
    }
  }
}

CsrMatrix CsrMatrix::identity(std::size_t n) {
  std::vector<std::uint32_t> ptr(n + 1);
  std::vector<std::uint32_t> col(n);
  std::vector<double> val(n, 1.0);
  for (std::size_t i = 0; i <= n; ++i) ptr[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < n; ++i) col[i] = static_cast<std::uint32_t>(i);
  return CsrMatrix(n, n, std::move(ptr), std::move(col), std::move(val));
}

std::span<const std::uint32_t> CsrMatrix::row_cols(std::size_t r) const {
  STOCDR_REQUIRE(r < rows_, "CsrMatrix::row_cols out of range");
  return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> CsrMatrix::row_values(std::size_t r) const {
  STOCDR_REQUIRE(r < rows_, "CsrMatrix::row_values out of range");
  return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  STOCDR_REQUIRE(r < rows_ && c < cols_, "CsrMatrix::at out of range");
  const auto cols = row_cols(r);
  const auto it = std::lower_bound(cols.begin(), cols.end(),
                                   static_cast<std::uint32_t>(c));
  if (it == cols.end() || *it != c) return 0.0;
  return values_[row_ptr_[r] + static_cast<std::size_t>(it - cols.begin())];
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::span<double> y) const {
  STOCDR_REQUIRE(x.size() == cols_ && y.size() == rows_,
                 "CsrMatrix::multiply dimension mismatch");
  const obs::prof::KernelScope roofline(
      "spmv", obs::prof::spmv_bytes(rows_, cols_, nnz()),
      obs::prof::spmv_flops(nnz()));
  // Gather: each output row is an independent dot product, so the parallel
  // split (nnz-balanced contiguous row ranges) keeps the serial per-row
  // accumulation order and the result is identical at any lane count.
  const auto row_block = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      double acc = 0.0;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += values_[k] * x[col_idx_[k]];
      }
      y[r] = acc;
    }
  };
  const std::size_t lanes = par::lanes_for(nnz());
  if (lanes <= 1) {
    row_block(0, rows_);
    return;
  }
  const auto bounds = par::balanced_boundaries(row_ptr_, lanes);
  par::observe_imbalance(row_ptr_, bounds);
  par::run_lanes(lanes, [&](std::size_t lane) {
    row_block(bounds[lane], bounds[lane + 1]);
  });
}

void CsrMatrix::multiply_transpose(std::span<const double> x,
                                   std::span<double> y) const {
  STOCDR_REQUIRE(x.size() == rows_ && y.size() == cols_,
                 "CsrMatrix::multiply_transpose dimension mismatch");
  const obs::prof::KernelScope roofline(
      "spmv_t", obs::prof::spmv_bytes(rows_, cols_, nnz()),
      obs::prof::spmv_flops(nnz()));
  // Scatter: rows write overlapping output entries, so each lane scatters
  // into its own partial output vector and the partials are merged by
  // column range in ascending lane order (per column, contributions keep
  // ascending row order — only the association of the partial sums differs
  // from serial).  When the matrix is so sparse that zeroing + merging the
  // lane-sized partials would dominate (nnz < kScatterColsFactor * cols),
  // the scatter stays serial; see docs/PARALLELISM.md for the trade-off
  // against the alternative transposed-copy strategy.
  std::size_t lanes = par::lanes_for(nnz());
  if (nnz() < kScatterColsFactor * cols_) lanes = 1;
  if (lanes <= 1) {
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double xr = x[r];
      if (xr == 0.0) continue;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        y[col_idx_[k]] += values_[k] * xr;
      }
    }
    return;
  }
  const auto bounds = par::balanced_boundaries(row_ptr_, lanes);
  par::observe_imbalance(row_ptr_, bounds);
  // Reused scratch: scatter partials are hot inside passage / expectation
  // iterations, and a fresh multi-megabyte allocation per matvec would
  // dominate the win.  Thread-local keeps concurrent multiply_transpose
  // callers race-free; lanes must go through the captured base pointer —
  // naming `partials` inside the lambda would resolve to each worker's own
  // (empty) instance.
  thread_local std::vector<double> partials;
  partials.assign(lanes * cols_, 0.0);
  double* const partials_base = partials.data();
  par::run_lanes(lanes, [&](std::size_t lane) {
    double* out = partials_base + lane * cols_;
    for (std::size_t r = bounds[lane]; r < bounds[lane + 1]; ++r) {
      const double xr = x[r];
      if (xr == 0.0) continue;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        out[col_idx_[k]] += values_[k] * xr;
      }
    }
  });
  par::run_lanes(lanes, [&](std::size_t lane) {
    const par::Range range = par::even_range(cols_, lanes, lane);
    for (std::size_t j = range.begin; j < range.end; ++j) {
      double acc = 0.0;
      for (std::size_t t = 0; t < lanes; ++t) {
        acc += partials_base[t * cols_ + j];
      }
      y[j] = acc;
    }
  });
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<std::uint32_t> ptr(cols_ + 1, 0);
  for (const std::uint32_t c : col_idx_) ptr[c + 1]++;
  for (std::size_t c = 0; c < cols_; ++c) ptr[c + 1] += ptr[c];
  std::vector<std::uint32_t> col(values_.size());
  std::vector<double> val(values_.size());
  std::vector<std::uint32_t> cursor(ptr.begin(), ptr.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::uint32_t dst = cursor[col_idx_[k]]++;
      col[dst] = static_cast<std::uint32_t>(r);
      val[dst] = values_[k];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(ptr), std::move(col),
                   std::move(val));
}

std::vector<double> CsrMatrix::row_sums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k];
    }
    sums[r] = acc;
  }
  return sums;
}

std::vector<double> CsrMatrix::col_sums() const {
  std::vector<double> sums(cols_, 0.0);
  for (std::size_t k = 0; k < values_.size(); ++k) {
    sums[col_idx_[k]] += values_[k];
  }
  return sums;
}

void CsrMatrix::for_each(
    const std::function<void(std::size_t, std::size_t, double)>& f) const {
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      f(r, col_idx_[k], values_[k]);
    }
  }
}

double CsrMatrix::max_abs() const {
  double m = 0.0;
  for (const double v : values_) m = std::max(m, std::abs(v));
  return m;
}

bool CsrMatrix::equals(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
         values_ == other.values_;
}

}  // namespace stocdr::sparse
