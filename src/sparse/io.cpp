#include "sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::sparse {

namespace {

/// Reads the next non-comment, non-blank line; false at EOF.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == line.size() || line[i] == '%') continue;
    return true;
  }
  return false;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

struct Header {
  bool matrix = false;
  bool coordinate = false;  // vs array
  bool real_or_integer = false;
  bool general = false;
};

Header parse_header(std::istream& in) {
  std::string line;
  STOCDR_REQUIRE(static_cast<bool>(std::getline(in, line)),
                 "matrix market: empty stream");
  std::istringstream fields(lower(line));
  std::string banner, object, format, field, symmetry;
  fields >> banner >> object >> format >> field >> symmetry;
  STOCDR_REQUIRE(banner == "%%matrixmarket",
                 "matrix market: missing %%MatrixMarket banner");
  Header header;
  header.matrix = object == "matrix";
  header.coordinate = format == "coordinate";
  header.real_or_integer = field == "real" || field == "integer";
  header.general = symmetry == "general";
  return header;
}

}  // namespace

void write_matrix_market(std::ostream& out, const CsrMatrix& matrix,
                         const std::string& comment) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  if (!comment.empty()) out << "% " << comment << '\n';
  out << matrix.rows() << ' ' << matrix.cols() << ' ' << matrix.nnz() << '\n';
  out.precision(17);
  matrix.for_each([&out](std::size_t r, std::size_t c, double v) {
    out << (r + 1) << ' ' << (c + 1) << ' ' << v << '\n';
  });
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& matrix,
                              const std::string& comment) {
  std::ofstream out(path);
  STOCDR_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write_matrix_market(out, matrix, comment);
  STOCDR_REQUIRE(out.good(), "write to '" + path + "' failed");
}

CsrMatrix read_matrix_market(std::istream& in) {
  const Header header = parse_header(in);
  STOCDR_REQUIRE(header.matrix && header.coordinate &&
                     header.real_or_integer && header.general,
                 "matrix market: only coordinate real/integer general "
                 "matrices are supported");
  std::string line;
  STOCDR_REQUIRE(next_data_line(in, line),
                 "matrix market: missing size line");
  std::istringstream size_line(line);
  std::size_t rows = 0, cols = 0, nnz = 0;
  size_line >> rows >> cols >> nnz;
  STOCDR_REQUIRE(!size_line.fail(), "matrix market: malformed size line");

  CooBuilder builder(rows, cols);
  builder.reserve(nnz);
  for (std::size_t k = 0; k < nnz; ++k) {
    STOCDR_REQUIRE(next_data_line(in, line),
                   "matrix market: truncated entry list");
    std::istringstream entry(line);
    std::size_t r = 0, c = 0;
    double v = 0.0;
    entry >> r >> c >> v;
    STOCDR_REQUIRE(!entry.fail() && r >= 1 && c >= 1 && r <= rows &&
                       c <= cols,
                   "matrix market: malformed entry '" + line + "'");
    builder.add(r - 1, c - 1, v);
  }
  return builder.to_csr();
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  STOCDR_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  return read_matrix_market(in);
}

void write_vector_market(std::ostream& out, std::span<const double> vector,
                         const std::string& comment) {
  out << "%%MatrixMarket matrix array real general\n";
  if (!comment.empty()) out << "% " << comment << '\n';
  out << vector.size() << " 1\n";
  out.precision(17);
  for (const double v : vector) out << v << '\n';
}

std::vector<double> read_vector_market(std::istream& in) {
  const Header header = parse_header(in);
  STOCDR_REQUIRE(header.matrix && !header.coordinate &&
                     header.real_or_integer && header.general,
                 "matrix market: expected an array real general vector");
  std::string line;
  STOCDR_REQUIRE(next_data_line(in, line),
                 "matrix market: missing size line");
  std::istringstream size_line(line);
  std::size_t rows = 0, cols = 0;
  size_line >> rows >> cols;
  STOCDR_REQUIRE(!size_line.fail() && cols == 1,
                 "matrix market: vector must be n x 1");
  std::vector<double> values(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    STOCDR_REQUIRE(next_data_line(in, line),
                   "matrix market: truncated vector");
    std::istringstream entry(line);
    entry >> values[i];
    STOCDR_REQUIRE(!entry.fail(), "matrix market: malformed value");
  }
  return values;
}

}  // namespace stocdr::sparse
