#include "sparse/coo.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/csr.hpp"
#include "support/error.hpp"

namespace stocdr::sparse {

CooBuilder::CooBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  STOCDR_REQUIRE(rows <= 0xffffffffull && cols <= 0xffffffffull,
                 "CooBuilder dimensions must fit in 32 bits");
}

void CooBuilder::add(std::size_t row, std::size_t col, double value) {
  STOCDR_REQUIRE(row < rows_ && col < cols_, "CooBuilder::add out of range");
  if (value == 0.0) return;
  triplets_.push_back({static_cast<std::uint32_t>(row),
                       static_cast<std::uint32_t>(col), value});
}

CsrMatrix CooBuilder::to_csr(double drop_tol) const {
  // Counting sort by row, then sort each row's slice by column.  This is
  // O(nnz log rowlen) and avoids sorting the whole triplet array at once.
  std::vector<std::uint32_t> row_ptr(rows_ + 1, 0);
  for (const Triplet& t : triplets_) row_ptr[t.row + 1]++;
  for (std::size_t r = 0; r < rows_; ++r) row_ptr[r + 1] += row_ptr[r];

  std::vector<Triplet> sorted(triplets_.size());
  {
    std::vector<std::uint32_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
    for (const Triplet& t : triplets_) sorted[cursor[t.row]++] = t;
  }

  std::vector<std::uint32_t> out_ptr(rows_ + 1, 0);
  std::vector<std::uint32_t> out_col;
  std::vector<double> out_val;
  out_col.reserve(sorted.size());
  out_val.reserve(sorted.size());

  for (std::size_t r = 0; r < rows_; ++r) {
    auto begin = sorted.begin() + row_ptr[r];
    auto end = sorted.begin() + row_ptr[r + 1];
    std::sort(begin, end, [](const Triplet& a, const Triplet& b) {
      return a.col < b.col;
    });
    for (auto it = begin; it != end;) {
      const std::uint32_t col = it->col;
      double sum = 0.0;
      for (; it != end && it->col == col; ++it) sum += it->value;
      if (std::abs(sum) > drop_tol) {
        out_col.push_back(col);
        out_val.push_back(sum);
      }
    }
    out_ptr[r + 1] = static_cast<std::uint32_t>(out_col.size());
  }
  return CsrMatrix(rows_, cols_, std::move(out_ptr), std::move(out_col),
                   std::move(out_val));
}

}  // namespace stocdr::sparse
