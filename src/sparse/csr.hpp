// Compressed sparse row matrix.
//
// This is the workhorse storage for transition probability matrices.  As
// described in DESIGN.md, the library stores the TPM *transposed* (rows of
// the stored matrix are destination states); the two matvec flavours below
// then cover both orientations without a second copy:
//
//   multiply()           y = A x        (gather; rows of the stored matrix)
//   multiply_transpose() y = A^T x      (scatter; columns of the stored one)
//
// so with A = P^T stored, multiply computes P^T x (stationary iterations
// x_{k+1} = P^T x_k) and multiply_transpose computes P x (first-passage
// iterations t = 1 + Q t).
//
// Both matvecs run on the shared thread pool when the ambient parallel
// context grants more than one thread (see parallel/pool.hpp): multiply
// splits rows into nnz-balanced contiguous ranges (identical results at
// any thread count); multiply_transpose scatters into per-lane partial
// outputs merged in lane order (bitwise reproducible at a fixed thread
// count, rounding-level differences across thread counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace stocdr::sparse {

/// Immutable CSR sparse matrix with double values and 32-bit column indices.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Constructs from raw CSR arrays.  row_ptr must have rows+1 entries,
  /// col_idx/values must have row_ptr.back() entries, and column indices
  /// must be sorted and in range within each row.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::uint32_t> row_ptr,
            std::vector<std::uint32_t> col_idx, std::vector<double> values);

  /// Builds an n x n identity matrix.
  [[nodiscard]] static CsrMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  [[nodiscard]] std::span<const std::uint32_t> row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const std::uint32_t> col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] std::span<const double> values() const { return values_; }

  /// Column indices of row r.
  [[nodiscard]] std::span<const std::uint32_t> row_cols(std::size_t r) const;

  /// Values of row r.
  [[nodiscard]] std::span<const double> row_values(std::size_t r) const;

  /// Value at (r, c); zero if the entry is not stored.  O(log nnz(row)).
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// y = A x (gather kernel).  y must have rows() entries, x cols().
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = A^T x (scatter kernel).  y must have cols() entries, x rows().
  void multiply_transpose(std::span<const double> x,
                          std::span<double> y) const;

  /// Returns the explicit transpose (fresh storage).
  [[nodiscard]] CsrMatrix transpose() const;

  /// Sum of each row's values (for stochasticity checks on P-oriented
  /// storage) — index i gets sum_j a_ij.
  [[nodiscard]] std::vector<double> row_sums() const;

  /// Sum of each column's values (for stochasticity checks on P^T-oriented
  /// storage) — index j gets sum_i a_ij.
  [[nodiscard]] std::vector<double> col_sums() const;

  /// Applies f(row, col, value) to every stored entry in row-major order.
  void for_each(
      const std::function<void(std::size_t, std::size_t, double)>& f) const;

  /// Frobenius-style maximum absolute entry.
  [[nodiscard]] double max_abs() const;

  /// True if shapes, patterns and values match exactly.
  [[nodiscard]] bool equals(const CsrMatrix& other) const;

  /// Heap bytes held by the three CSR arrays (vector capacities — what the
  /// allocator actually retains).  Reported as a mem.component.* footprint
  /// by the owners of large matrices.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return row_ptr_.capacity() * sizeof(std::uint32_t) +
           col_idx_.capacity() * sizeof(std::uint32_t) +
           values_.capacity() * sizeof(double);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_ptr_ = {0};
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace stocdr::sparse
