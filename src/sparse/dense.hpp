// Dense matrix with LU factorization.
//
// Used for the coarsest level of the multigrid hierarchy and as an oracle in
// the test suite (small problems only; everything large stays sparse).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stocdr::sparse {

class CsrMatrix;

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix initialized to zero.
  DenseMatrix(std::size_t rows, std::size_t cols);

  /// Materializes a sparse matrix densely (test/oracle use).
  [[nodiscard]] static DenseMatrix from_csr(const CsrMatrix& a);

  /// n x n identity.
  [[nodiscard]] static DenseMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Row r as a span.
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = A x.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = A^T x.
  void multiply_transpose(std::span<const double> x,
                          std::span<double> y) const;

  /// C = A * B.
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& b) const;

  /// Transposed copy.
  [[nodiscard]] DenseMatrix transpose() const;

  /// Maximum absolute entry.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
///
/// Throws NumericalError on (numerical) singularity.  Solves A x = b for
/// multiple right-hand sides after a single factorization.
class LuFactorization {
 public:
  /// Factorizes a (copied; the original is untouched).
  explicit LuFactorization(const DenseMatrix& a);

  /// Solves A x = b; returns x.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Solves A^T x = b; returns x.
  [[nodiscard]] std::vector<double> solve_transpose(
      std::span<const double> b) const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;  // row permutation: pivot row of step k
};

}  // namespace stocdr::sparse
