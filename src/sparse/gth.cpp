#include "sparse/gth.hpp"

#include <cmath>

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::sparse {

std::vector<double> gth_stationary(const DenseMatrix& p_in) {
  STOCDR_REQUIRE(p_in.rows() == p_in.cols(),
                 "gth_stationary requires a square matrix");
  const std::size_t n = p_in.rows();
  STOCDR_REQUIRE(n >= 1, "gth_stationary requires a non-empty matrix");
  DenseMatrix p = p_in;  // working copy; destroyed by elimination

  // Elimination sweep: censor states n-1, n-2, ..., 1 (0-based) one by one.
  // The subtraction-free update uses only additions, multiplications and one
  // division by a sum of probabilities per step.
  for (std::size_t k = n; k-- > 1;) {
    double s = 0.0;
    for (std::size_t j = 0; j < k; ++j) s += p.at(k, j);
    if (!(s > 0.0)) {
      throw NumericalError(
          "gth_stationary: reducible chain (state with no transition into "
          "the remaining states)");
    }
    const double inv_s = 1.0 / s;
    for (std::size_t i = 0; i < k; ++i) {
      const double pik = p.at(i, k) * inv_s;
      p.at(i, k) = pik;
      if (pik == 0.0) continue;
      for (std::size_t j = 0; j < k; ++j) {
        p.at(i, j) += pik * p.at(k, j);
      }
    }
  }

  // Back-substitution: unnormalized eta, then L1 normalization.
  std::vector<double> eta(n, 0.0);
  eta[0] = 1.0;
  for (std::size_t j = 1; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < j; ++i) acc += eta[i] * p.at(i, j);
    eta[j] = acc;
  }
  normalize_l1(eta);
  return eta;
}

std::vector<double> gth_stationary(const CsrMatrix& p) {
  return gth_stationary(DenseMatrix::from_csr(p));
}

std::vector<double> gth_stationary_transposed(const CsrMatrix& pt) {
  DenseMatrix p(pt.cols(), pt.rows());
  pt.for_each([&p](std::size_t dst, std::size_t src, double v) {
    p.at(src, dst) = v;
  });
  return gth_stationary(p);
}

}  // namespace stocdr::sparse
