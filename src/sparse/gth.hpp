// Grassmann–Taksar–Heyman (GTH) direct stationary-distribution solver.
//
// GTH is a subtraction-free Gaussian elimination specialized to stochastic
// matrices: the diagonal is recomputed from off-diagonal row sums at every
// step, so no cancellation occurs and the computed stationary vector is
// accurate to machine precision even for stiff chains (probabilities spanning
// many orders of magnitude — exactly the regime of BER ~ 1e-12 analysis).
//
// This is the "direct method" that solves the coarsest level of the paper's
// multigrid hierarchy exactly, and the oracle against which every iterative
// solver is validated in the test suite.  Cost is O(n^3) dense, so use only
// for small n (the multigrid driver enforces a threshold).
#pragma once

#include <span>
#include <vector>

namespace stocdr::sparse {

class CsrMatrix;
class DenseMatrix;

/// Computes the stationary distribution eta with eta P = eta, sum(eta) = 1,
/// for an irreducible row-stochastic matrix P given densely.
/// Throws NumericalError if the chain is reducible (elimination encounters a
/// state with no remaining outgoing probability).
[[nodiscard]] std::vector<double> gth_stationary(const DenseMatrix& p);

/// Same, for P given in CSR (rows are source states).  Densifies internally.
[[nodiscard]] std::vector<double> gth_stationary(const CsrMatrix& p);

/// Same, for P given *transposed* in CSR (the library's stored orientation:
/// rows of the argument are destination states).
[[nodiscard]] std::vector<double> gth_stationary_transposed(
    const CsrMatrix& p_transposed);

}  // namespace stocdr::sparse
