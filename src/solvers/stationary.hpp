// Basic iterative stationary-distribution solvers.
//
// These are the classical methods the paper's multigrid is benchmarked
// against (section 3: "basic iterative methods such as Jacobi and
// Gauss-Seidel"), plus the power method.  All solve eta P = eta with
// sum(eta) = 1 on an irreducible chain.
#pragma once

#include <span>

#include "markov/chain.hpp"
#include "solvers/options.hpp"

namespace stocdr::obs {
class Counter;
}  // namespace stocdr::obs

namespace stocdr::solvers {

/// Damped power iteration: x <- (1-w) x + w P^T x, renormalized.
/// With w < 1 this converges for periodic chains as well.
[[nodiscard]] StationaryResult solve_stationary_power(
    const markov::MarkovChain& chain, const SolverOptions& options = {},
    std::span<const double> initial = {});

/// Gauss-Jacobi sweeps on (P^T - I) x = 0:
///   x_i <- (sum_{j != i} p_ji x_j) / (1 - p_ii),  renormalized each sweep,
/// damped by options.relaxation.  This is the smoother the paper interleaves
/// with its lumping/expanding steps.
[[nodiscard]] StationaryResult solve_stationary_jacobi(
    const markov::MarkovChain& chain, const SolverOptions& options = {},
    std::span<const double> initial = {});

/// Gauss-Seidel sweeps: same update as Jacobi but in place, so later states
/// see already-updated values within the sweep.
[[nodiscard]] StationaryResult solve_stationary_gauss_seidel(
    const markov::MarkovChain& chain, const SolverOptions& options = {},
    std::span<const double> initial = {});

/// Successive over-relaxation: Gauss-Seidel blended with the previous value
/// by options.relaxation (w in (0, 2)).
[[nodiscard]] StationaryResult solve_stationary_sor(
    const markov::MarkovChain& chain, const SolverOptions& options = {},
    std::span<const double> initial = {});

/// Direct GTH solve wrapped in the common result type (small chains only;
/// cost is O(n^3) dense).
[[nodiscard]] StationaryResult solve_stationary_direct(
    const markov::MarkovChain& chain);

/// L1 residual ||P^T x - x||_1 of a (normalized) candidate vector.
[[nodiscard]] double stationary_residual(const markov::MarkovChain& chain,
                                         std::span<const double> x);

namespace detail {
/// Fills x with the initial guess: a copy of `initial` if non-empty
/// (validated and normalized), otherwise the uniform distribution.
std::vector<double> make_initial(const markov::MarkovChain& chain,
                                 std::span<const double> initial);
/// The shared `solver.stationary.matvec` metric; the operator-based
/// solvers (operator_stationary.cpp) count into the same stream.
obs::Counter& stationary_matvec_counter();
}  // namespace detail

}  // namespace stocdr::solvers
