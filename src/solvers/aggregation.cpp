#include "solvers/aggregation.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "obs/health/health.hpp"
#include "obs/mem/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/pool.hpp"
#include "parallel/reduce.hpp"
#include "solvers/stationary.hpp"
#include "sparse/gth.hpp"
#include "support/error.hpp"
#include "support/math.hpp"
#include "support/timer.hpp"

namespace stocdr::solvers {

namespace {

obs::Counter& multilevel_matvec_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::instance().counter("solver.stationary.matvec");
  return counter;
}

/// Residual-reduction factor per outer cycle across all multilevel solves.
obs::Histogram& cycle_reduction_histogram() {
  static obs::Histogram& hist =
      obs::MetricsRegistry::instance().histogram("mg.residual_reduction");
  return hist;
}

/// Wall-clock seconds per outer cycle (smoothing + recursion + residual).
obs::Histogram& cycle_seconds_histogram() {
  static obs::Histogram& hist =
      obs::MetricsRegistry::instance().histogram("mg.cycle_seconds");
  return hist;
}

/// Residual-reduction factor regarded as a stall, and how many consecutive
/// stalled cycles trigger the V-to-W escalation.
constexpr double kStallFactor = 0.7;
constexpr std::size_t kStallWindow = 3;

/// One damped power sweep x <- (1-w) x + w P^T x, renormalized.
void smooth(const sparse::CsrMatrix& pt, double w, std::vector<double>& x,
            std::vector<double>& scratch) {
  pt.multiply(x, scratch);
  if (w == 1.0) {
    x.swap(scratch);
  } else {
    par::parallel_for(x.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        x[i] = (1.0 - w) * x[i] + w * scratch[i];
      }
    });
  }
  par::normalize_l1(x);
}

/// Exact coarsest-level solve; falls back to heavy smoothing if the
/// (weighted) coarse chain happens to be reducible.
void solve_coarsest(const sparse::CsrMatrix& pt, std::vector<double>& x,
                    std::vector<double>& scratch, std::size_t* matvecs) {
  try {
    x = sparse::gth_stationary_transposed(pt);
  } catch (const NumericalError&) {
    constexpr std::size_t kFallbackSweeps = 60;
    for (std::size_t s = 0; s < kFallbackSweeps; ++s) {
      smooth(pt, 1.0, x, scratch);
    }
    *matvecs += kFallbackSweeps;
  }
}

/// Recursive V/W-cycle worker.  `level` indexes into `hierarchy`; `pt` is
/// the (transposed) TPM of this level's chain and `x` its current iterate.
class MultilevelWorker {
 public:
  MultilevelWorker(const std::vector<markov::Partition>& hierarchy,
                   const MultilevelOptions& options)
      : hierarchy_(hierarchy),
        options_(options),
        cycle_shape_(options.cycle_shape) {}

  void cycle(std::size_t level, const sparse::CsrMatrix& pt,
             std::vector<double>& x) {
    obs::Span span("mg.level");
    const bool traced = span.active();
    if (traced) {
      span.attr("level", level);
      span.attr("states", pt.rows());
    }
    std::vector<double> scratch(x.size());

    // Health shadow monitor: sampled per-level convergence factor, the
    // ratio of this level's fixed-point residual ||P^T x - x||_1 after its
    // cycle work to the residual before it.  The two extra matvecs are
    // read-only (x is untouched), so monitored and unmonitored solves stay
    // bit-identical; they are deliberately not counted in matvecs_ (solver
    // stats report solver work, not observability overhead).
    static std::atomic<std::uint64_t> rho_site{0};
    const bool monitored = obs::health::should_sample(rho_site);
    double residual_before = 0.0;
    if (monitored) {
      pt.multiply(x, scratch);
      residual_before = par::l1_distance(scratch, x);
    }
    const auto finish_monitor = [&] {
      if (!monitored) return;
      pt.multiply(x, scratch);
      const double residual_after = par::l1_distance(scratch, x);
      if (residual_before > 0.0) {
        obs::health::record_level_rho(level,
                                      residual_after / residual_before);
      }
    };

    if (pt.rows() <= options_.coarsest_size || level >= hierarchy_.size()) {
      if (pt.rows() <= kGthSizeLimit) {
        solve_coarsest(pt, x, scratch, &matvecs_);
        if (traced) span.attr("role", std::string_view("coarsest-gth"));
      } else {
        // Hierarchy exhausted but the level is still too large for a dense
        // direct solve: polish iteratively instead.
        constexpr std::size_t kBottomSweeps = 40;
        for (std::size_t s = 0; s < kBottomSweeps; ++s) {
          smooth(pt, options_.smoothing_damping, x, scratch);
        }
        matvecs_ += kBottomSweeps;
        if (traced) span.attr("role", std::string_view("coarsest-smooth"));
      }
      finish_monitor();
      return;
    }

    const markov::Partition& part = hierarchy_[level];
    STOCDR_ASSERT(part.num_states() == pt.rows());

    Timer phase_timer;  // per-phase cost split, only read when traced
    for (std::size_t s = 0; s < options_.pre_smooth; ++s) {
      smooth(pt, options_.smoothing_damping, x, scratch);
    }
    matvecs_ += options_.pre_smooth;
    if (traced) span.attr("pre_smooth_s", phase_timer.seconds());

    // Lump with the current iterate as aggregation weights, recurse on the
    // coarse chain, then expand the coarse solution back.  The quotient
    // pattern per level is fixed across cycles, so it is planned once and
    // each re-aggregation is a single accumulation pass.
    if (plans_.size() <= level) plans_.resize(level + 1);
    if (!plans_[level]) {
      plans_[level] = std::make_unique<markov::AggregationPlan>(pt, part);
      if (obs::mem::enabled()) {
        std::uint64_t bytes = 0;
        for (const auto& plan : plans_) {
          if (plan) bytes += plan->footprint_bytes();
        }
        obs::mem::report_component("solver.aggregation_plans", bytes);
      }
    }
    double lump_seconds = 0.0;
    double expand_seconds = 0.0;
    for (std::size_t visit = 0; visit < cycle_shape_; ++visit) {
      phase_timer.reset();
      const sparse::CsrMatrix coarse_pt = plans_[level]->aggregate(pt, x);
      ++matvecs_;  // aggregation is one O(nnz) pass
      std::vector<double> xc = markov::restrict_sum(part, x);
      if (traced) lump_seconds += phase_timer.seconds();
      cycle(level + 1, coarse_pt, xc);
      phase_timer.reset();
      markov::disaggregate(part, xc, x);
      if (traced) expand_seconds += phase_timer.seconds();
    }

    phase_timer.reset();
    for (std::size_t s = 0; s < options_.post_smooth; ++s) {
      smooth(pt, options_.smoothing_damping, x, scratch);
    }
    matvecs_ += options_.post_smooth;
    par::normalize_l1(x);
    if (traced) {
      span.attr("post_smooth_s", phase_timer.seconds());
      span.attr("lump_s", lump_seconds);
      span.attr("expand_s", expand_seconds);
      span.attr("coarse_states", part.num_groups());
    }
    obs::MetricsRegistry::instance()
        .gauge("mg.level" + std::to_string(level) + ".coarsen_ratio")
        .set(static_cast<double>(part.num_groups()) /
             static_cast<double>(part.num_states()));
    finish_monitor();
  }

  [[nodiscard]] std::size_t matvecs() const { return matvecs_; }

  /// Changes the number of recursive coarse visits per level (1 = V-cycle,
  /// 2 = W-cycle); used by the driver's stall-escalation logic.
  void set_cycle_shape(std::size_t shape) { cycle_shape_ = shape; }

  [[nodiscard]] std::size_t cycle_shape() const { return cycle_shape_; }

 private:
  // Dense GTH beyond this size would dominate the cycle cost.
  static constexpr std::size_t kGthSizeLimit = 4000;

  const std::vector<markov::Partition>& hierarchy_;
  const MultilevelOptions& options_;
  std::size_t cycle_shape_ = 1;
  std::size_t matvecs_ = 0;
  std::vector<std::unique_ptr<markov::AggregationPlan>> plans_;
};

}  // namespace

std::vector<markov::Partition> build_grid_pair_hierarchy(
    std::span<const std::uint32_t> grid_coordinate,
    std::span<const std::uint32_t> other_label, std::size_t coarsest_size) {
  STOCDR_REQUIRE(grid_coordinate.size() == other_label.size(),
                 "grid/label spans must have equal length");
  STOCDR_REQUIRE(!grid_coordinate.empty(),
                 "hierarchy requires at least one state");

  std::vector<std::uint32_t> grid(grid_coordinate.begin(),
                                  grid_coordinate.end());
  std::vector<std::uint32_t> label(other_label.begin(), other_label.end());
  std::vector<markov::Partition> hierarchy;

  while (grid.size() > coarsest_size) {
    // Group key: (label, grid / 2).  Assign gap-free ids in first-seen order
    // so group ids are deterministic.
    std::unordered_map<std::uint64_t, std::uint32_t> ids;
    ids.reserve(grid.size());
    std::vector<std::uint32_t> group_of(grid.size());
    std::vector<std::uint32_t> next_grid;
    std::vector<std::uint32_t> next_label;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(label[i]) << 32) | (grid[i] >> 1);
      const auto [it, inserted] =
          ids.try_emplace(key, static_cast<std::uint32_t>(ids.size()));
      group_of[i] = it->second;
      if (inserted) {
        next_grid.push_back(grid[i] >> 1);
        next_label.push_back(label[i]);
      }
    }
    if (next_grid.size() == grid.size()) break;  // no further reduction
    hierarchy.emplace_back(std::move(group_of));
    grid = std::move(next_grid);
    label = std::move(next_label);
  }
  return hierarchy;
}

std::vector<markov::Partition> build_index_pair_hierarchy(
    std::size_t num_states, std::size_t coarsest_size) {
  STOCDR_REQUIRE(num_states >= 1, "hierarchy requires at least one state");
  std::vector<markov::Partition> hierarchy;
  std::size_t n = num_states;
  while (n > coarsest_size && n > 1) {
    hierarchy.push_back(markov::Partition::pairs(n));
    n = hierarchy.back().num_groups();
  }
  return hierarchy;
}

StationaryResult solve_stationary_multilevel(
    const markov::MarkovChain& chain,
    const std::vector<markov::Partition>& hierarchy,
    const MultilevelOptions& options, std::span<const double> initial) {
  const Timer timer;
  obs::Span span("solve.multilevel");
  const par::ThreadScope threads(options.threads);
  if (span.active()) {
    span.attr("states", chain.num_states());
    span.attr("levels", hierarchy.size());
  }
  STOCDR_REQUIRE(hierarchy.empty() ||
                     hierarchy.front().num_states() == chain.num_states(),
                 "hierarchy does not match the chain");
  StationaryResult result;
  result.stats.method = "multilevel";
  ResidualRecorder recorder(result.stats.residual_history);
  std::vector<double> x = detail::make_initial(chain, initial);
  if (obs::mem::enabled()) {
    obs::mem::report_component("solver.iterate",
                               x.capacity() * sizeof(double));
  }

  MultilevelWorker worker(hierarchy, options);
  double previous_residual = 0.0;
  std::size_t slow_cycles = 0;
  for (std::size_t c = 0; c < options.max_cycles; ++c) {
    obs::Span cycle_span("mg.cycle");
    if (cycle_span.active()) {
      cycle_span.attr("cycle", c + 1);
      cycle_span.attr("shape",
                      std::string_view(worker.cycle_shape() == 1 ? "V" : "W"));
    }
    const Timer cycle_timer;
    worker.cycle(0, chain.pt(), x);
    const double res = stationary_residual(chain, x);
    // Health shadow audit: a multilevel iterate is a probability vector and
    // must stay nonnegative through every lump/expand round trip.
    static std::atomic<std::uint64_t> iterate_site{0};
    if (obs::health::should_sample(iterate_site)) {
      obs::health::audit_nonnegativity("mg.iterate", x);
    }
    cycle_seconds_histogram().observe(cycle_timer.seconds());
    result.stats.iterations = c + 1;
    result.stats.residual = res;
    recorder.record(res);
    if (c > 0 && previous_residual > 0.0) {
      cycle_reduction_histogram().observe(res / previous_residual);
    }
    if (cycle_span.active()) {
      cycle_span.attr("residual", res);
      if (c > 0 && previous_residual > 0.0) {
        cycle_span.attr("reduction", res / previous_residual);
      }
    }
    cycle_span.end();
    if (!obs::notify(options.progress, "multilevel", c + 1, res,
                     worker.matvecs(), x)) {
      break;  // observer cancelled; converged stays false
    }
    if (res < options.tolerance) {
      result.stats.converged = true;
      break;
    }
    // Stall escalation: a V-cycle whose residual reduction degrades toward
    // 1 (slowly-mixing chains: the coarse levels are themselves stiff and
    // the recursion error compounds) is upgraded to a W-cycle — the
    // standard multigrid remedy.
    if (c > 0 && worker.cycle_shape() == 1 &&
        res > kStallFactor * previous_residual) {
      if (++slow_cycles >= kStallWindow) {
        worker.set_cycle_shape(2);
        result.stats.method = "multilevel(auto-W)";
      }
    } else {
      slow_cycles = 0;
    }
    previous_residual = res;
  }
  result.stats.matvec_count = worker.matvecs();
  recorder.finish(result.stats.residual);
  multilevel_matvec_counter().add(result.stats.matvec_count);
  result.distribution = std::move(x);
  result.stats.seconds = timer.seconds();
  if (span.active()) {
    span.attr("cycles", result.stats.iterations);
    span.attr("matvecs", result.stats.matvec_count);
    span.attr("residual", result.stats.residual);
    span.attr("converged", result.stats.converged);
    span.attr("method", std::string_view(result.stats.method));
  }
  return result;
}

StationaryResult solve_stationary_two_level(
    const markov::MarkovChain& chain, const markov::Partition& partition,
    const MultilevelOptions& options, std::span<const double> initial) {
  const Timer timer;
  STOCDR_REQUIRE(partition.num_states() == chain.num_states(),
                 "partition does not match the chain");
  STOCDR_REQUIRE(partition.num_groups() <= 4000,
                 "two-level A/D solves the lumped chain with dense GTH; the "
                 "partition must have at most 4000 groups");
  obs::Span span("solve.two-level-ad");
  const par::ThreadScope threads(options.threads);
  StationaryResult result;
  result.stats.method = "two-level-ad";
  ResidualRecorder recorder(result.stats.residual_history);
  std::vector<double> x = detail::make_initial(chain, initial);
  std::vector<double> scratch(x.size());
  std::size_t matvecs = 0;

  for (std::size_t c = 0; c < options.max_cycles; ++c) {
    for (std::size_t s = 0; s < options.pre_smooth; ++s) {
      smooth(chain.pt(), options.smoothing_damping, x, scratch);
    }
    matvecs += options.pre_smooth;

    const sparse::CsrMatrix coarse_pt =
        markov::aggregate_transposed(chain.pt(), partition, x);
    ++matvecs;
    std::vector<double> xc = markov::restrict_sum(partition, x);
    std::vector<double> coarse_scratch(xc.size());
    solve_coarsest(coarse_pt, xc, coarse_scratch, &matvecs);
    markov::disaggregate(partition, xc, x);

    for (std::size_t s = 0; s < options.post_smooth; ++s) {
      smooth(chain.pt(), options.smoothing_damping, x, scratch);
    }
    matvecs += options.post_smooth;
    par::normalize_l1(x);

    const double res = stationary_residual(chain, x);
    result.stats.iterations = c + 1;
    result.stats.residual = res;
    recorder.record(res);
    if (!obs::notify(options.progress, "two-level-ad", c + 1, res, matvecs,
                     x)) {
      break;  // observer cancelled; converged stays false
    }
    if (res < options.tolerance) {
      result.stats.converged = true;
      break;
    }
  }
  result.stats.matvec_count = matvecs;
  recorder.finish(result.stats.residual);
  multilevel_matvec_counter().add(result.stats.matvec_count);
  result.distribution = std::move(x);
  result.stats.seconds = timer.seconds();
  if (span.active()) {
    span.attr("states", chain.num_states());
    span.attr("cycles", result.stats.iterations);
    span.attr("residual", result.stats.residual);
    span.attr("converged", result.stats.converged);
  }
  return result;
}

}  // namespace stocdr::solvers
