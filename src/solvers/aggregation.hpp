// Aggregation/disaggregation and multi-level (multigrid) stationary solvers.
//
// This is the paper's dedicated solver (section 3): a hierarchy of
// recursively lumped chains — for the CDR model, each level lumps the two
// states corresponding to consecutive discretized phase-error values —
// traversed in V-cycles, with lumping/expanding steps interleaved with
// damped Gauss-Jacobi (power) sweeps and the coarsest problem solved exactly
// with a direct method (GTH).  The generalization to multiple levels follows
// Horton & Leutenegger's multi-level algorithm; the two-level variant is the
// classical iterative aggregation/disaggregation method.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "markov/chain.hpp"
#include "markov/lumping.hpp"
#include "solvers/options.hpp"

namespace stocdr::solvers {

/// Options for the aggregation-based solvers.
struct MultilevelOptions {
  /// Convergence threshold on ||P^T x - x||_1, checked after every cycle.
  double tolerance = 1e-12;

  /// Maximum number of outer cycles.
  std::size_t max_cycles = 500;

  /// Damped power (Gauss-Jacobi) sweeps before aggregation at each level.
  std::size_t pre_smooth = 3;

  /// Sweeps after disaggregation at each level.
  std::size_t post_smooth = 3;

  /// Damping factor of the smoothing sweeps.
  double smoothing_damping = 0.95;

  /// Levels at or below this many states are solved exactly with GTH.
  /// Dense GTH costs O(n^3) *per cycle*, so this should stay small; the
  /// convergence rate is insensitive to it once the hierarchy is deep.
  std::size_t coarsest_size = 400;

  /// Recursive coarse visits per cycle: 1 = V-cycle, 2 = W-cycle.
  std::size_t cycle_shape = 1;

  /// Worker threads for smoothing, lump/expand, and residual kernels
  /// (0 = inherit STOCDR_THREADS; see SolverOptions::threads).
  std::size_t threads = 0;

  /// Optional per-cycle callback (see obs/progress.hpp).  Non-owning: the
  /// callable must outlive the solve.
  obs::OptionalProgress progress;
};

/// Builds the paper's coarsening hierarchy for a chain whose states carry a
/// grid coordinate (the discretized phase error) plus a residual label (all
/// remaining FSM coordinates): each level merges states with equal labels
/// and grid coordinates 2k, 2k+1.  Levels are produced until either the
/// level size drops to `coarsest_size` or the grid collapses to one point.
///
/// hierarchy[0] partitions the fine states; hierarchy[l] partitions the
/// groups of hierarchy[l-1].
[[nodiscard]] std::vector<markov::Partition> build_grid_pair_hierarchy(
    std::span<const std::uint32_t> grid_coordinate,
    std::span<const std::uint32_t> other_label, std::size_t coarsest_size);

/// Fallback hierarchy when no structural information is available: states
/// are paired by index at every level.  Useful for generic chains and as a
/// baseline showing the value of the structure-aware coarsening.
[[nodiscard]] std::vector<markov::Partition> build_index_pair_hierarchy(
    std::size_t num_states, std::size_t coarsest_size);

/// The multi-level aggregation solver.  `hierarchy` follows the convention
/// of build_grid_pair_hierarchy; it may be empty, in which case the solve
/// degenerates to smoothing plus a direct solve if the chain is small
/// enough.  Reports cycles in stats.iterations.
[[nodiscard]] StationaryResult solve_stationary_multilevel(
    const markov::MarkovChain& chain,
    const std::vector<markov::Partition>& hierarchy,
    const MultilevelOptions& options = {}, std::span<const double> initial = {});

/// Classical two-level iterative aggregation/disaggregation: smooth,
/// aggregate through `partition`, solve the lumped chain exactly,
/// disaggregate, repeat.  This is the method the multi-level algorithm
/// generalizes; kept as a baseline for the solver comparison benches.
[[nodiscard]] StationaryResult solve_stationary_two_level(
    const markov::MarkovChain& chain, const markov::Partition& partition,
    const MultilevelOptions& options = {}, std::span<const double> initial = {});

}  // namespace stocdr::solvers
