#include "solvers/linear.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/pool.hpp"
#include "parallel/reduce.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"
#include "support/math.hpp"
#include "support/timer.hpp"

namespace stocdr::solvers {

TransientOperator::TransientOperator(const sparse::CsrMatrix& qt)
    : qt_(&qt), scratch_(qt.rows()) {
  STOCDR_REQUIRE(qt.rows() == qt.cols(),
                 "TransientOperator requires a square matrix");
  const std::size_t n = qt.rows();
  diag_.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) diag_[i] -= qt.at(i, i);
}

void TransientOperator::apply(std::span<const double> x,
                              std::span<double> y) const {
  STOCDR_REQUIRE(x.size() == size() && y.size() == size(),
                 "TransientOperator::apply size mismatch");
  // y = x - Q x; Q x is the scatter product of the stored Q^T.
  qt_->multiply_transpose(x, scratch_);
  par::parallel_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) y[i] = x[i] - scratch_[i];
  });
}

namespace {

/// Builds the row-major CSR of A = I - Q from the stored Q^T.
sparse::CsrMatrix build_a_from_qt(const sparse::CsrMatrix& qt) {
  const std::size_t n = qt.rows();
  sparse::CooBuilder builder(n, n);
  builder.reserve(qt.nnz() + n);
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, 1.0);
  qt.for_each([&builder](std::size_t dst, std::size_t src, double v) {
    builder.add(src, dst, -v);
  });
  return builder.to_csr();
}

/// Galerkin sum A_c = P^T A P for a piecewise-constant prolongation.
sparse::CsrMatrix galerkin_aggregate(const sparse::CsrMatrix& a,
                                     const markov::Partition& part) {
  sparse::CooBuilder builder(part.num_groups(), part.num_groups());
  builder.reserve(a.nnz());
  a.for_each([&](std::size_t r, std::size_t c, double v) {
    builder.add(part.group(r), part.group(c), v);
  });
  return builder.to_csr();
}

std::vector<double> extract_diagonal(const sparse::CsrMatrix& a) {
  std::vector<double> d(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) d[i] = a.at(i, i);
  return d;
}

/// x <- x + w D^{-1} (b - A x).
void jacobi_sweep(const sparse::CsrMatrix& a, const std::vector<double>& diag,
                  double w, std::span<const double> b, std::span<double> x,
                  std::vector<double>& scratch) {
  a.multiply(x, scratch);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = diag[i] != 0.0 ? diag[i] : 1.0;
    x[i] += w * (b[i] - scratch[i]) / d;
  }
}

}  // namespace

AggregationPreconditioner::AggregationPreconditioner(
    const sparse::CsrMatrix& qt,
    const std::vector<markov::Partition>& hierarchy, const Options& options)
    : options_(options) {
  sparse::CsrMatrix a = build_a_from_qt(qt);
  std::size_t level = 0;
  for (;;) {
    Level lv{std::move(a), {}, markov::Partition::identity(1), false};
    lv.diag = extract_diagonal(lv.a);
    const std::size_t n = lv.a.rows();
    const bool can_coarsen = level < hierarchy.size() &&
                             hierarchy[level].num_states() == n &&
                             hierarchy[level].num_groups() < n;
    if (n <= options_.coarsest_size || !can_coarsen) {
      levels_.push_back(std::move(lv));
      break;
    }
    lv.partition = hierarchy[level];
    lv.has_partition = true;
    a = galerkin_aggregate(lv.a, lv.partition);
    levels_.push_back(std::move(lv));
    ++level;
  }
  // Direct factorization of the coarsest level when it is small enough;
  // otherwise the V-cycle bottoms out with extra smoothing.
  const Level& bottom = levels_.back();
  if (bottom.a.rows() <= options_.coarsest_size) {
    try {
      coarsest_lu_ = std::make_unique<sparse::LuFactorization>(
          sparse::DenseMatrix::from_csr(bottom.a));
    } catch (const NumericalError&) {
      coarsest_lu_.reset();  // singular coarse operator: smooth instead
    }
  }
}

void AggregationPreconditioner::apply(std::span<const double> r,
                                      std::span<double> z) const {
  STOCDR_REQUIRE(r.size() == levels_.front().a.rows() && z.size() == r.size(),
                 "AggregationPreconditioner::apply size mismatch");
  std::fill(z.begin(), z.end(), 0.0);
  vcycle(0, r, z);
}

void AggregationPreconditioner::vcycle(std::size_t level,
                                       std::span<const double> b,
                                       std::span<double> x) const {
  const Level& lv = levels_[level];
  const std::size_t n = lv.a.rows();
  std::vector<double> scratch(n);

  if (level + 1 == levels_.size()) {
    if (coarsest_lu_) {
      const auto solved = coarsest_lu_->solve(b);
      std::copy(solved.begin(), solved.end(), x.begin());
    } else {
      constexpr std::size_t kBottomSweeps = 30;
      for (std::size_t s = 0; s < kBottomSweeps; ++s) {
        jacobi_sweep(lv.a, lv.diag, options_.smoothing_damping, b, x, scratch);
      }
    }
    return;
  }

  for (std::size_t s = 0; s < options_.pre_smooth; ++s) {
    jacobi_sweep(lv.a, lv.diag, options_.smoothing_damping, b, x, scratch);
  }

  // Residual restriction: r_c = P^T (b - A x).
  lv.a.multiply(x, scratch);
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = b[i] - scratch[i];
  std::vector<double> coarse_b =
      markov::restrict_sum(lv.partition, residual);

  std::vector<double> coarse_x(coarse_b.size(), 0.0);
  vcycle(level + 1, coarse_b, coarse_x);

  // Prolongation: x += P e_c (piecewise-constant injection).
  for (std::size_t i = 0; i < n; ++i) x[i] += coarse_x[lv.partition.group(i)];

  for (std::size_t s = 0; s < options_.post_smooth; ++s) {
    jacobi_sweep(lv.a, lv.diag, options_.smoothing_damping, b, x, scratch);
  }
}

namespace {

double l2_norm(std::span<const double> v) { return par::l2_norm(v); }

obs::Counter& linear_matvec_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::instance().counter("solver.linear.matvec");
  return counter;
}

obs::Counter& breakdown_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::instance().counter("solver.linear.breakdowns");
  return counter;
}

/// Shared epilogue of the linear solvers: history tail, metrics, span attrs.
void finish_linear(LinearResult& result, ResidualRecorder& recorder,
                   obs::Span& span, std::size_t n, const Timer& timer) {
  recorder.finish(result.stats.residual);
  linear_matvec_counter().add(result.stats.matvec_count);
  if (!result.stats.breakdown.empty()) breakdown_counter().add(1);
  result.stats.seconds = timer.seconds();
  if (span.active()) {
    span.attr("method", std::string_view(result.stats.method));
    span.attr("unknowns", n);
    span.attr("iterations", result.stats.iterations);
    span.attr("residual", result.stats.residual);
    span.attr("converged", result.stats.converged);
    if (!result.stats.breakdown.empty()) {
      span.attr("breakdown", std::string_view(result.stats.breakdown));
    }
  }
}

}  // namespace

LinearResult gmres(const LinearOperator& op, std::span<const double> b,
                   const SolverOptions& options, std::size_t restart,
                   const Preconditioner& preconditioner) {
  const Timer timer;
  obs::Span span("solve.linear");
  const par::ThreadScope thread_scope(options.threads);
  const std::size_t n = op.size();
  STOCDR_REQUIRE(b.size() == n, "gmres: rhs size mismatch");
  STOCDR_REQUIRE(restart >= 1, "gmres: restart must be positive");
  const std::size_t m = std::min(restart, n);

  LinearResult result;
  result.stats.method = preconditioner ? "gmres+amg" : "gmres";
  ResidualRecorder recorder(result.stats.residual_history);
  std::vector<double> x(n, 0.0);
  const double bnorm = l2_norm(b);
  if (bnorm == 0.0) {
    result.solution = std::move(x);
    result.stats.converged = true;
    finish_linear(result, recorder, span, n, timer);
    return result;
  }

  // Krylov basis (m+1 vectors) and Hessenberg factor in Givens form.
  std::vector<std::vector<double>> v(m + 1, std::vector<double>(n));
  std::vector<std::vector<double>> h(m + 1, std::vector<double>(m, 0.0));
  std::vector<double> cs(m, 0.0), sn(m, 0.0), g(m + 1, 0.0);
  std::vector<double> scratch(n), precond_out(n);

  const auto apply_preconditioned = [&](std::span<const double> in,
                                        std::span<double> out) {
    if (preconditioner) {
      preconditioner(in, precond_out);
      op.apply(precond_out, out);
    } else {
      op.apply(in, out);
    }
    ++result.stats.matvec_count;
  };

  double true_residual = 1.0;
  for (std::size_t outer = 0; outer < options.max_iterations; ++outer) {
    // r = b - A x.
    op.apply(x, scratch);
    ++result.stats.matvec_count;
    par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) v[0][i] = b[i] - scratch[i];
    });
    const double rnorm = l2_norm(v[0]);
    true_residual = rnorm / bnorm;
    result.stats.residual = true_residual;
    recorder.record(true_residual);
    if (!obs::notify(options.progress, result.stats.method.c_str(), outer + 1,
                     true_residual, result.stats.matvec_count, x)) {
      break;  // observer cancelled; converged stays false
    }
    if (true_residual < options.tolerance) {
      result.stats.converged = true;
      break;
    }
    for (double& vi : v[0]) vi /= rnorm;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = rnorm;

    std::size_t k = 0;
    for (; k < m; ++k) {
      apply_preconditioned(v[k], v[k + 1]);
      // Modified Gram-Schmidt.
      for (std::size_t j = 0; j <= k; ++j) {
        const double dot = par::dot(v[k + 1], v[j]);
        h[j][k] = dot;
        par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            v[k + 1][i] -= dot * v[j][i];
          }
        });
      }
      h[k + 1][k] = l2_norm(v[k + 1]);
      if (h[k + 1][k] > 0.0) {
        for (double& vi : v[k + 1]) vi /= h[k + 1][k];
      }
      // Apply existing Givens rotations to the new column.
      for (std::size_t j = 0; j < k; ++j) {
        const double t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
        h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
        h[j][k] = t;
      }
      // New rotation annihilating h[k+1][k].
      const double denom = std::hypot(h[k][k], h[k + 1][k]);
      cs[k] = denom == 0.0 ? 1.0 : h[k][k] / denom;
      sn[k] = denom == 0.0 ? 0.0 : h[k + 1][k] / denom;
      h[k][k] = denom;
      h[k + 1][k] = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      if (std::abs(g[k + 1]) / bnorm < options.tolerance) {
        ++k;
        break;
      }
    }

    // Back-substitute for the Krylov coefficients.
    std::vector<double> y(k, 0.0);
    for (std::size_t j = k; j-- > 0;) {
      double acc = g[j];
      for (std::size_t l = j + 1; l < k; ++l) acc -= h[j][l] * y[l];
      y[j] = h[j][j] != 0.0 ? acc / h[j][j] : 0.0;
    }
    // Update x (undo right preconditioning on the correction).  Swapping
    // the (j, i) loop nest keeps each element's additions in ascending-j
    // order, so the parallel split over i reproduces the serial result.
    std::vector<double> correction(n, 0.0);
    par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < k; ++j) acc += y[j] * v[j][i];
        correction[i] = acc;
      }
    });
    if (preconditioner) {
      preconditioner(correction, scratch);
      par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) x[i] += scratch[i];
      });
    } else {
      par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) x[i] += correction[i];
      });
    }
    result.stats.iterations = outer + 1;
  }

  result.solution = std::move(x);
  finish_linear(result, recorder, span, n, timer);
  return result;
}

LinearResult bicgstab(const LinearOperator& op, std::span<const double> b,
                      const SolverOptions& options,
                      const Preconditioner& preconditioner) {
  const Timer timer;
  obs::Span span("solve.linear");
  const par::ThreadScope thread_scope(options.threads);
  const std::size_t n = op.size();
  STOCDR_REQUIRE(b.size() == n, "bicgstab: rhs size mismatch");
  LinearResult result;
  result.stats.method = preconditioner ? "bicgstab+amg" : "bicgstab";
  ResidualRecorder recorder(result.stats.residual_history);

  std::vector<double> x(n, 0.0), r(b.begin(), b.end());
  const double bnorm = l2_norm(b);
  if (bnorm == 0.0) {
    result.solution = std::move(x);
    result.stats.converged = true;
    finish_linear(result, recorder, span, n, timer);
    return result;
  }
  const std::vector<double> r0(r);  // shadow residual
  std::vector<double> p(n, 0.0), v(n, 0.0), s(n), t(n), z(n), y(n);
  double rho = 1.0, alpha = 1.0, omega = 1.0;

  const auto precondition = [&](std::span<const double> in,
                                std::span<double> out) {
    if (preconditioner) {
      preconditioner(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };
  const auto dot = [](const std::vector<double>& a,
                      const std::vector<double>& c) {
    return par::dot(a, c);
  };

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double rho_next = dot(r0, r);
    if (rho_next == 0.0) {
      // Lanczos breakdown: the shadow residual became orthogonal to the
      // residual.  Restart is not implemented; surface the condition so the
      // caller sees a structured breakdown, not a silent non-convergence.
      result.stats.breakdown =
          "rho = (r0, r) vanished at iteration " + std::to_string(it + 1);
      break;
    }
    if (it == 0) {
      p = r;
    } else {
      const double beta = (rho_next / rho) * (alpha / omega);
      par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
      });
    }
    rho = rho_next;

    precondition(p, y);
    op.apply(y, v);
    ++result.stats.matvec_count;
    const double r0v = dot(r0, v);
    if (r0v == 0.0) {
      result.stats.breakdown =
          "(r0, A p) vanished at iteration " + std::to_string(it + 1);
      break;
    }
    alpha = rho / r0v;
    par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) s[i] = r[i] - alpha * v[i];
    });

    if (l2_norm(s) / bnorm < options.tolerance) {
      for (std::size_t i = 0; i < n; ++i) x[i] += alpha * y[i];
      result.stats.iterations = it + 1;
      result.stats.residual = l2_norm(s) / bnorm;
      result.stats.converged = true;
      recorder.record(result.stats.residual);
      (void)obs::notify(options.progress, result.stats.method.c_str(), it + 1,
                        result.stats.residual, result.stats.matvec_count, x);
      break;
    }

    precondition(s, z);
    op.apply(z, t);
    ++result.stats.matvec_count;
    const double tt = dot(t, t);
    if (tt == 0.0) {
      result.stats.breakdown =
          "(t, t) vanished at iteration " + std::to_string(it + 1);
      break;
    }
    omega = dot(t, s) / tt;
    par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        x[i] += alpha * y[i] + omega * z[i];
        r[i] = s[i] - omega * t[i];
      }
    });
    result.stats.iterations = it + 1;
    result.stats.residual = l2_norm(r) / bnorm;
    recorder.record(result.stats.residual);
    if (!obs::notify(options.progress, result.stats.method.c_str(), it + 1,
                     result.stats.residual, result.stats.matvec_count, x)) {
      break;  // observer cancelled; converged stays false
    }
    if (result.stats.residual < options.tolerance) {
      result.stats.converged = true;
      break;
    }
    if (omega == 0.0) {
      result.stats.breakdown =
          "stabilizer omega vanished at iteration " + std::to_string(it + 1);
      break;
    }
  }
  result.solution = std::move(x);
  finish_linear(result, recorder, span, n, timer);
  return result;
}

LinearResult jacobi_linear(const TransientOperator& op,
                           std::span<const double> b,
                           const SolverOptions& options) {
  const Timer timer;
  obs::Span span("solve.linear");
  const par::ThreadScope thread_scope(options.threads);
  const std::size_t n = op.size();
  STOCDR_REQUIRE(b.size() == n, "jacobi_linear: rhs size mismatch");
  LinearResult result;
  result.stats.method = "jacobi-linear";
  ResidualRecorder recorder(result.stats.residual_history);
  std::vector<double> x(n, 0.0);
  std::vector<double> ax(n);
  const double bnorm = std::max(par::l1_norm(b), 1e-300);
  const double w = options.relaxation;
  // Fused update + residual-norm reduction: each lane accumulates its own
  // partial rnorm over a contiguous element range; partials merge in lane
  // order (identical to serial when one lane runs).
  std::vector<double> rnorm_partials;
  const auto sweep = [&](std::size_t begin, std::size_t end, double* partial) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double r = b[i] - ax[i];
      acc += std::abs(r);
      const double d = op.diagonal()[i] != 0.0 ? op.diagonal()[i] : 1.0;
      x[i] += w * r / d;
    }
    *partial = acc;
  };
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    op.apply(x, ax);
    ++result.stats.matvec_count;
    const std::size_t lanes = par::lanes_for(n);
    rnorm_partials.assign(lanes, 0.0);
    if (lanes <= 1) {
      sweep(0, n, rnorm_partials.data());
    } else {
      par::run_lanes(lanes, [&](std::size_t lane) {
        const par::Range range = par::even_range(n, lanes, lane);
        sweep(range.begin, range.end, &rnorm_partials[lane]);
      });
    }
    double rnorm = 0.0;
    for (const double partial : rnorm_partials) rnorm += partial;
    result.stats.iterations = it + 1;
    result.stats.residual = rnorm / bnorm;
    recorder.record(result.stats.residual);
    if (!obs::notify(options.progress, "jacobi-linear", it + 1,
                     result.stats.residual, result.stats.matvec_count, x)) {
      break;  // observer cancelled; converged stays false
    }
    if (result.stats.residual < options.tolerance) {
      result.stats.converged = true;
      break;
    }
  }
  result.solution = std::move(x);
  finish_linear(result, recorder, span, n, timer);
  return result;
}

}  // namespace stocdr::solvers
