// First-passage analyses: mean hitting times and hitting probabilities.
//
// These provide the paper's "mean transition times between certain sets of
// MC states" (mean time between cycle slips) via a linear solve with the
// TPM restricted to the complement of the target set.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "markov/chain.hpp"
#include "markov/lumping.hpp"
#include "solvers/options.hpp"

namespace stocdr::solvers {

/// How the restricted linear system is solved.
enum class PassageMethod {
  kGmres,             ///< restarted GMRES, unpreconditioned
  kGmresMultilevel,   ///< GMRES with the aggregation V-cycle preconditioner
  kJacobi,            ///< damped Jacobi (baseline; slow on stiff systems)
};

/// Options for first-passage solves.
struct PassageOptions {
  SolverOptions linear{.tolerance = 1e-10, .max_iterations = 400,
                       .relaxation = 0.9};
  PassageMethod method = PassageMethod::kGmresMultilevel;
  std::size_t gmres_restart = 60;

  /// Optional structural coordinates (indexed by *full-chain* state) used to
  /// build the multigrid hierarchy on the restricted chain; when absent an
  /// index-pair hierarchy is used.
  std::optional<std::vector<std::uint32_t>> grid_coordinate;
  std::optional<std::vector<std::uint32_t>> other_label;
};

/// Result of a mean-hitting-time computation.
struct HittingTimeResult {
  /// Expected number of steps to first reach the target set, per state
  /// (zero on target states).
  std::vector<double> mean_steps;
  SolverStats stats;
};

/// Solves E_i[T_A] for A = {i : target[i]}: t = (I - Q)^{-1} 1 on the
/// complement of A.  Every non-target state must be able to reach A
/// (otherwise the system is singular and the solve fails to converge).
[[nodiscard]] HittingTimeResult mean_hitting_times(
    const markov::MarkovChain& chain, const std::vector<bool>& target,
    const PassageOptions& options = {});

/// Result of a hitting-probability computation.
struct HittingProbabilityResult {
  /// P_i(T_A < T_B) per state: 1 on A, 0 on B.
  std::vector<double> probability;
  SolverStats stats;
};

/// Probability of reaching set A before set B from each state
/// (A and B must be disjoint): h = (I - Q)^{-1} r with r the one-step
/// probability of entering A, Q the chain restricted to the complement of
/// A union B.
[[nodiscard]] HittingProbabilityResult hitting_probability(
    const markov::MarkovChain& chain, const std::vector<bool>& target_a,
    const std::vector<bool>& target_b, const PassageOptions& options = {});

}  // namespace stocdr::solvers
