// Shared option and statistics types for all solvers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stocdr::solvers {

/// Options common to the iterative solvers.
struct SolverOptions {
  /// Convergence threshold on the L1 residual ||P^T x - x||_1 (stationary
  /// solvers, with ||x||_1 = 1) or ||b - A x||_1 / ||b||_1 (linear solvers).
  double tolerance = 1e-12;

  /// Hard iteration cap (sweeps for relaxation methods, cycles for the
  /// multilevel methods, outer iterations for GMRES).
  std::size_t max_iterations = 200000;

  /// Relaxation / damping factor where the method supports one
  /// (power iteration, Jacobi, SOR).  1.0 = undamped.
  double relaxation = 1.0;
};

/// Statistics describing how a solve went.
struct SolverStats {
  std::string method;           ///< human-readable solver name
  std::size_t iterations = 0;   ///< iterations (or cycles) performed
  double residual = 0.0;        ///< final residual (solver's own metric)
  double seconds = 0.0;         ///< wall-clock time of the solve
  bool converged = false;       ///< tolerance reached within the budget
  std::size_t matvec_count = 0; ///< matrix-vector products consumed
};

/// Result of a stationary-distribution solve.
struct StationaryResult {
  std::vector<double> distribution;  ///< eta with eta P = eta, sum = 1
  SolverStats stats;
};

}  // namespace stocdr::solvers
