// Shared option and statistics types for all solvers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/progress.hpp"

namespace stocdr::solvers {

/// Options common to the iterative solvers.
struct SolverOptions {
  /// Convergence threshold on the L1 residual ||P^T x - x||_1 (stationary
  /// solvers, with ||x||_1 = 1) or ||b - A x||_1 / ||b||_1 (linear solvers).
  double tolerance = 1e-12;

  /// Hard iteration cap (sweeps for relaxation methods, cycles for the
  /// multilevel methods, outer iterations for GMRES).
  std::size_t max_iterations = 200000;

  /// Relaxation / damping factor where the method supports one
  /// (power iteration, Jacobi, SOR).  1.0 = undamped.
  double relaxation = 1.0;

  /// Worker threads for the solver's kernels (SpMV, sweeps, reductions).
  /// 0 inherits the ambient context (STOCDR_THREADS environment variable,
  /// default serial); values >= 1 override it for this solve.  Results are
  /// bitwise reproducible at a fixed thread count and agree across thread
  /// counts to rounding (see docs/PARALLELISM.md).
  std::size_t threads = 0;

  /// Optional per-iteration callback (see obs/progress.hpp).  Non-owning:
  /// the callable must outlive the solve.
  obs::OptionalProgress progress;
};

/// Upper bound on SolverStats::residual_history entries.
inline constexpr std::size_t kResidualHistoryCap = 512;

/// Statistics describing how a solve went.
struct SolverStats {
  std::string method;           ///< human-readable solver name
  std::size_t iterations = 0;   ///< iterations (or cycles) performed
  double residual = 0.0;        ///< final residual (solver's own metric)
  double seconds = 0.0;         ///< wall-clock time of the solve
  bool converged = false;       ///< tolerance reached within the budget
  std::size_t matvec_count = 0; ///< matrix-vector products consumed

  /// Non-empty when the method stopped on an *algorithmic breakdown* — a
  /// quantity its recurrence divides by vanished (e.g. BiCGSTAB's rho or
  /// stabilizer omega).  Names the vanished quantity and the iteration, so
  /// the condition surfaces as a structured event instead of a silent
  /// early return with converged == false.
  std::string breakdown;

  /// Residual trajectory, oldest first, at most kResidualHistoryCap entries.
  /// Long runs are decimated (the sampling stride doubles whenever the
  /// buffer fills), so the trajectory keeps its overall shape; the final
  /// entry always equals `residual`.
  std::vector<double> residual_history;
};

/// Records a residual trajectory into SolverStats::residual_history under
/// the cap.  Usage inside a solver loop:
///
///   ResidualRecorder recorder(result.stats.residual_history);
///   for (...) { ...; recorder.record(res); }
///   recorder.finish(result.stats.residual);
class ResidualRecorder {
 public:
  explicit ResidualRecorder(std::vector<double>& history,
                            std::size_t cap = kResidualHistoryCap)
      : history_(history), cap_(cap < 2 ? 2 : cap) {
    history_.clear();
  }

  /// Considers one per-iteration residual for the history.
  void record(double residual) {
    if (++seen_ % stride_ != 0) return;
    history_.push_back(residual);
    if (history_.size() >= cap_) {
      // Buffer full: decimate to every other sample and halve the rate.
      std::size_t write = 0;
      for (std::size_t read = 1; read < history_.size(); read += 2) {
        history_[write++] = history_[read];
      }
      history_.resize(write);
      stride_ *= 2;
    }
  }

  /// Guarantees the history ends with the solver's reported final residual
  /// (relaxation solvers recompute a true residual after the loop).
  void finish(double final_residual) {
    if (history_.empty() || history_.back() != final_residual) {
      history_.push_back(final_residual);
    }
  }

 private:
  std::vector<double>& history_;
  std::size_t cap_;
  std::size_t stride_ = 1;
  std::size_t seen_ = 0;
};

/// Result of a stationary-distribution solve.
struct StationaryResult {
  std::vector<double> distribution;  ///< eta with eta P = eta, sum = 1
  SolverStats stats;
};

}  // namespace stocdr::solvers
