// Stationary solvers over an abstract step operator (matrix-free path).
//
// A StepOperator exposes exactly what the power-family stationary solvers
// need from a Markov chain — y = P^T x, y = P x, and diag(P) — without
// committing to an explicit sparse matrix.  markov::MarkovChain adapts
// trivially (ChainStepOperator); the Kronecker descriptor path
// (kronecker/step_operator.hpp) is the reason this layer exists: it lets
// the robust ladder and the measure code solve 10^6-10^7-state CDR models
// whose transition matrix is never materialized.
//
// Determinism: unlike their explicit-matrix twins (stationary.cpp), which
// use the lane-merged par:: reductions (bitwise reproducible at a FIXED
// thread count), these solvers compute every reduction serially with Kahan
// compensation.  Combined with a step() that is bit-identical at any lane
// count (the Kronecker shuffle guarantees this) the whole solve is bitwise
// reproducible across thread counts — the property the matrix-free CI
// scale job asserts.  The reductions are O(n) against the O(nnz) step, so
// the serial pass is noise in the profile.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "markov/chain.hpp"
#include "solvers/options.hpp"

namespace stocdr::solvers {

/// The minimal chain surface a matrix-free stationary solver needs.
class StepOperator {
 public:
  virtual ~StepOperator() = default;

  /// Number of states (vector length of both step directions).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// One distribution step: y = P^T x.
  virtual void step(std::span<const double> x, std::span<double> y) const = 0;

  /// One backward step: y = P x (stochasticity audits, measures).
  virtual void step_backward(std::span<const double> x,
                             std::span<double> y) const = 0;

  /// diag(P) — what a matrix-free Jacobi sweep divides by.
  [[nodiscard]] virtual std::vector<double> diagonal() const = 0;
};

/// Adapter: an explicit MarkovChain viewed as a StepOperator (tests and
/// cross-validation against the explicit path).
class ChainStepOperator final : public StepOperator {
 public:
  explicit ChainStepOperator(const markov::MarkovChain& chain)
      : chain_(chain) {}

  [[nodiscard]] std::size_t size() const override {
    return chain_.num_states();
  }
  void step(std::span<const double> x, std::span<double> y) const override {
    chain_.step(x, y);
  }
  void step_backward(std::span<const double> x,
                     std::span<double> y) const override {
    chain_.step_backward(x, y);
  }
  [[nodiscard]] std::vector<double> diagonal() const override;

 private:
  const markov::MarkovChain& chain_;
};

/// L1 distance between x and P^T x (the stationary residual).
[[nodiscard]] double stationary_residual(const StepOperator& op,
                                         std::span<const double> x);

/// max_i |(P 1)_i - 1| — how far the operator is from row-stochastic.
[[nodiscard]] double stochasticity_defect(const StepOperator& op);

/// Damped power iteration through the operator; mirrors
/// solve_stationary_power (same damping semantics, progress events, and
/// residual recording) with serial Kahan reductions.
[[nodiscard]] StationaryResult solve_stationary_power(
    const StepOperator& op, const SolverOptions& options = {},
    std::span<const double> initial = {});

/// Damped Jacobi through the operator: one step() per sweep plus an
/// element-wise update dividing by 1 - p_ii.  Throws NumericalError on an
/// absorbing state (p_ii = 1).
[[nodiscard]] StationaryResult solve_stationary_jacobi(
    const StepOperator& op, const SolverOptions& options = {},
    std::span<const double> initial = {});

}  // namespace stocdr::solvers
