// Sparse linear-system solvers for transient Markov-chain analyses.
//
// The paper's second performance measure — mean time between cycle slips —
// "involves solving a linear system with the (modified) TPM": with Q the TPM
// restricted to the non-slip states, mean hitting times solve
//
//   (I - Q) t = 1.
//
// Because slips are rare, ||Q|| is within ~1e-9 of 1 and plain relaxation
// stalls; we therefore provide restarted GMRES with an optional aggregation
// multigrid preconditioner built on the same phase-pair hierarchy as the
// stationary solver (the near-null vector of I - Q is nearly constant, which
// piecewise-constant coarse spaces capture exactly).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "markov/lumping.hpp"
#include "solvers/options.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace stocdr::solvers {

/// Matrix-free square operator y = A x, the interface the Krylov solvers
/// iterate against.  Implementations: TransientOperator (A = I - Q) below
/// and robust::StationaryShiftOperator (the rank-one-deflated stationary
/// system); anything that can apply itself to a vector qualifies.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Number of unknowns (the operator is square).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// y = A x; x and y have size() entries and must not alias.
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;
};

/// y = A x for the operator A = I - Q, with Q given transposed (the
/// library's stored orientation for restricted chains).
class TransientOperator final : public LinearOperator {
 public:
  /// qt is Q^T; rows are destination states.
  explicit TransientOperator(const sparse::CsrMatrix& qt);

  [[nodiscard]] std::size_t size() const override { return qt_->rows(); }

  /// y = (I - Q) x.
  void apply(std::span<const double> x, std::span<double> y) const override;

  /// Diagonal of I - Q (used by Jacobi smoothing).
  [[nodiscard]] const std::vector<double>& diagonal() const { return diag_; }

  [[nodiscard]] const sparse::CsrMatrix& qt() const { return *qt_; }

 private:
  const sparse::CsrMatrix* qt_;
  std::vector<double> diag_;
  mutable std::vector<double> scratch_;
};

/// Preconditioner interface: z <- M^{-1} r (an approximate solve).
using Preconditioner =
    std::function<void(std::span<const double>, std::span<double>)>;

/// Unsmoothed-aggregation multigrid preconditioner for A = I - Q.
///
/// Coarse operators are Galerkin sums A_{l+1} = P^T A_l P over
/// piecewise-constant prolongations defined by a partition hierarchy; one
/// V-cycle with damped-Jacobi smoothing approximates A^{-1}.  All level
/// matrices are built once at construction.
/// Tuning knobs for AggregationPreconditioner.
struct AggregationPreconditionerOptions {
  std::size_t pre_smooth = 2;
  std::size_t post_smooth = 2;
  double smoothing_damping = 0.7;
  std::size_t coarsest_size = 800;  ///< dense LU at or below this size
};

class AggregationPreconditioner {
 public:
  using Options = AggregationPreconditionerOptions;

  /// Builds the level hierarchy for A = I - Q (qt is Q^T).  The partition
  /// hierarchy follows the same convention as the stationary solver:
  /// hierarchy[l] partitions level l's unknowns.
  AggregationPreconditioner(const sparse::CsrMatrix& qt,
                            const std::vector<markov::Partition>& hierarchy,
                            const Options& options = {});

  /// One V-cycle from a zero initial guess: z ~= A^{-1} r.
  void apply(std::span<const double> r, std::span<double> z) const;

  /// Number of levels actually built (including the finest).
  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }

 private:
  struct Level {
    sparse::CsrMatrix a;          ///< row-major A_l
    std::vector<double> diag;     ///< diagonal of A_l
    markov::Partition partition;  ///< maps level l to level l+1 (unused last)
    bool has_partition = false;
  };

  void vcycle(std::size_t level, std::span<const double> b,
              std::span<double> x) const;

  Options options_;
  std::vector<Level> levels_;
  std::unique_ptr<sparse::LuFactorization> coarsest_lu_;
};

/// Result of a linear solve.
struct LinearResult {
  std::vector<double> solution;
  SolverStats stats;
};

/// Restarted GMRES(m) on A x = b with optional right preconditioning.
/// `restart` is the Krylov subspace dimension m.  Convergence is measured on
/// the true relative residual ||b - A x||_2 / ||b||_2 against
/// options.tolerance.
[[nodiscard]] LinearResult gmres(
    const LinearOperator& op, std::span<const double> b,
    const SolverOptions& options = {}, std::size_t restart = 80,
    const Preconditioner& preconditioner = nullptr);

/// Damped-Jacobi iteration on A x = b (baseline; stalls on stiff systems).
[[nodiscard]] LinearResult jacobi_linear(const TransientOperator& op,
                                         std::span<const double> b,
                                         const SolverOptions& options = {});

/// BiCGSTAB on A x = b with optional right preconditioning: the
/// short-recurrence Krylov alternative to GMRES (O(n) memory independent of
/// the iteration count).  Convergence on the true relative 2-norm residual.
[[nodiscard]] LinearResult bicgstab(
    const LinearOperator& op, std::span<const double> b,
    const SolverOptions& options = {},
    const Preconditioner& preconditioner = nullptr);

}  // namespace stocdr::solvers
