#include "solvers/operator_stationary.hpp"

#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/prof/roofline.hpp"
#include "obs/trace.hpp"
#include "parallel/pool.hpp"
#include "solvers/stationary.hpp"
#include "support/error.hpp"
#include "support/math.hpp"
#include "support/timer.hpp"

namespace stocdr::solvers {

namespace {

std::vector<double> make_initial(std::size_t n,
                                 std::span<const double> initial) {
  if (initial.empty()) {
    return std::vector<double>(n, 1.0 / static_cast<double>(n));
  }
  STOCDR_REQUIRE(initial.size() == n,
                 "initial guess size must match the operator");
  std::vector<double> x(initial.begin(), initial.end());
  for (double& v : x) v = std::max(v, 0.0);
  normalize_l1(x);
  return x;
}

/// Serial-sum L1 normalization with a parallel element-wise divide: the sum
/// does not depend on the lane count and the divide is exact per element,
/// so the result is bit-identical at any thread count.
void normalize_l1_deterministic(std::vector<double>& x) {
  const double mass = kahan_sum(x);
  STOCDR_REQUIRE(std::isfinite(mass) && mass > 0.0,
                 "normalize_l1: vector has no positive mass");
  par::parallel_for(x.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) x[i] /= mass;
  });
}

}  // namespace

std::vector<double> ChainStepOperator::diagonal() const {
  const std::size_t n = chain_.num_states();
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = chain_.pt().at(i, i);
  return diag;
}

double stationary_residual(const StepOperator& op,
                           std::span<const double> x) {
  std::vector<double> y(x.size());
  op.step(x, y);
  return l1_distance(x, y);
}

double stochasticity_defect(const StepOperator& op) {
  const std::size_t n = op.size();
  const std::vector<double> ones(n, 1.0);
  std::vector<double> row_sums(n);
  op.step_backward(ones, row_sums);
  double defect = 0.0;
  for (const double s : row_sums) {
    defect = std::max(defect, std::abs(s - 1.0));
  }
  return defect;
}

StationaryResult solve_stationary_power(const StepOperator& op,
                                        const SolverOptions& options,
                                        std::span<const double> initial) {
  const Timer timer;
  obs::Span span("solve.power");
  if (span.active()) span.attr("representation", std::string_view("operator"));
  const par::ThreadScope threads(options.threads);
  StationaryResult result;
  result.stats.method = "power";
  ResidualRecorder recorder(result.stats.residual_history);
  const std::size_t n = op.size();
  std::vector<double> x = make_initial(n, initial);
  std::vector<double> y(n);
  const double w = options.relaxation;
  STOCDR_REQUIRE(w > 0.0 && w <= 1.0,
                 "power iteration damping must be in (0, 1]");
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    op.step(x, y);
    ++result.stats.matvec_count;
    const double res = l1_distance(x, y);
    recorder.record(res);
    // The event carries the pre-update iterate: `res` is *its* residual, so
    // observers checkpoint a (vector, residual) pair that belongs together.
    if (!obs::notify(options.progress, "power", it + 1, res,
                     result.stats.matvec_count, x)) {
      result.stats.iterations = it + 1;
      result.stats.residual = res;
      break;  // observer cancelled (deadline / sentinel); converged stays false
    }
    {
      const obs::prof::KernelScope roofline(
          "power_update", obs::prof::power_update_bytes(n),
          obs::prof::power_update_flops(n));
      if (w == 1.0) {
        x.swap(y);
      } else {
        par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            x[i] = (1.0 - w) * x[i] + w * y[i];
          }
        });
      }
      if (std::isfinite(res)) normalize_l1_deterministic(x);
    }
    if (!std::isfinite(res)) {
      result.stats.residual = std::numeric_limits<double>::infinity();
      result.stats.iterations = it + 1;
      break;  // diverged; report converged = false
    }
    result.stats.iterations = it + 1;
    result.stats.residual = res;
    if (res < options.tolerance) {
      result.stats.converged = true;
      break;
    }
  }
  recorder.finish(result.stats.residual);
  detail::stationary_matvec_counter().add(result.stats.matvec_count);
  result.distribution = std::move(x);
  result.stats.seconds = timer.seconds();
  if (span.active()) {
    span.attr("states", n);
    span.attr("iterations", result.stats.iterations);
    span.attr("residual", result.stats.residual);
    span.attr("converged", result.stats.converged);
  }
  return result;
}

StationaryResult solve_stationary_jacobi(const StepOperator& op,
                                         const SolverOptions& options,
                                         std::span<const double> initial) {
  const Timer timer;
  obs::Span span("solve.relaxation");
  if (span.active()) {
    span.attr("method", std::string_view("jacobi"));
    span.attr("representation", std::string_view("operator"));
  }
  const par::ThreadScope threads(options.threads);
  const double w = options.relaxation;
  STOCDR_REQUIRE(w > 0.0 && w <= 1.0, "Jacobi relaxation must be in (0, 1]");
  StationaryResult result;
  result.stats.method = "jacobi";
  ResidualRecorder recorder(result.stats.residual_history);
  const std::size_t n = op.size();
  std::vector<double> x = make_initial(n, initial);
  std::vector<double> y(n);
  std::vector<double> next(n);

  const std::vector<double> diag = op.diagonal();
  for (const double d : diag) {
    if (!(1.0 - d > 0.0)) {
      throw NumericalError(
          "relaxation solver: absorbing state encountered (p_ii = 1)");
    }
  }

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    op.step(x, y);  // y = P^T x; row i's off-diagonal mass is y_i - p_ii x_i
    ++result.stats.matvec_count;
    {
      const obs::prof::KernelScope roofline(
          "jacobi_update", obs::prof::power_update_bytes(n),
          obs::prof::power_update_flops(n));
      par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const double acc = y[i] - diag[i] * x[i];
          next[i] = (1.0 - w) * x[i] + w * (acc / (1.0 - diag[i]));
        }
      });
    }
    const double delta = l1_distance(x, next);
    x.swap(next);
    const double mass = kahan_sum(x);
    if (!std::isfinite(delta) || !std::isfinite(mass) || !(mass > 0.0)) {
      result.stats.residual = std::numeric_limits<double>::infinity();
      result.stats.iterations = it + 1;
      recorder.finish(result.stats.residual);
      result.distribution = std::move(x);
      result.stats.seconds = timer.seconds();
      return result;
    }
    par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) x[i] /= mass;
    });
    result.stats.iterations = it + 1;
    result.stats.residual = delta;
    recorder.record(delta);
    if (!obs::notify(options.progress, "jacobi", it + 1, delta,
                     result.stats.matvec_count, x)) {
      break;  // observer cancelled; converged stays false
    }
    if (delta < options.tolerance) {
      result.stats.converged = true;
      break;
    }
  }
  // Report the true stationary residual rather than the sweep delta.
  result.stats.residual = stationary_residual(op, x);
  recorder.finish(result.stats.residual);
  detail::stationary_matvec_counter().add(result.stats.matvec_count);
  result.distribution = std::move(x);
  result.stats.seconds = timer.seconds();
  if (span.active()) {
    span.attr("states", n);
    span.attr("iterations", result.stats.iterations);
    span.attr("residual", result.stats.residual);
    span.attr("converged", result.stats.converged);
  }
  return result;
}

}  // namespace stocdr::solvers
