#include "solvers/stationary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/prof/roofline.hpp"
#include "obs/trace.hpp"
#include "parallel/pool.hpp"
#include "parallel/reduce.hpp"
#include "sparse/gth.hpp"
#include "support/error.hpp"
#include "support/math.hpp"
#include "support/timer.hpp"

namespace stocdr::solvers {

namespace detail {

obs::Counter& stationary_matvec_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::instance().counter("solver.stationary.matvec");
  return counter;
}

std::vector<double> make_initial(const markov::MarkovChain& chain,
                                 std::span<const double> initial) {
  if (initial.empty()) return chain.uniform_distribution();
  STOCDR_REQUIRE(initial.size() == chain.num_states(),
                 "initial guess size must match the chain");
  std::vector<double> x(initial.begin(), initial.end());
  for (double& v : x) v = std::max(v, 0.0);
  normalize_l1(x);
  return x;
}

}  // namespace detail

double stationary_residual(const markov::MarkovChain& chain,
                           std::span<const double> x) {
  std::vector<double> y(x.size());
  chain.step(x, y);
  return par::l1_distance(x, y);
}

StationaryResult solve_stationary_power(const markov::MarkovChain& chain,
                                        const SolverOptions& options,
                                        std::span<const double> initial) {
  const Timer timer;
  obs::Span span("solve.power");
  const par::ThreadScope threads(options.threads);
  StationaryResult result;
  result.stats.method = "power";
  ResidualRecorder recorder(result.stats.residual_history);
  std::vector<double> x = detail::make_initial(chain, initial);
  std::vector<double> y(x.size());
  const double w = options.relaxation;
  STOCDR_REQUIRE(w > 0.0 && w <= 1.0,
                 "power iteration damping must be in (0, 1]");
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    chain.step(x, y);
    ++result.stats.matvec_count;
    const double res = par::l1_distance(x, y);
    recorder.record(res);
    // The event carries the pre-update iterate: `res` is *its* residual, so
    // observers checkpoint a (vector, residual) pair that belongs together.
    if (!obs::notify(options.progress, "power", it + 1, res,
                     result.stats.matvec_count, x)) {
      result.stats.iterations = it + 1;
      result.stats.residual = res;
      break;  // observer cancelled (deadline / sentinel); converged stays false
    }
    {
      const obs::prof::KernelScope roofline(
          "power_update", obs::prof::power_update_bytes(x.size()),
          obs::prof::power_update_flops(x.size()));
      if (w == 1.0) {
        x.swap(y);
      } else {
        par::parallel_for(x.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            x[i] = (1.0 - w) * x[i] + w * y[i];
          }
        });
      }
      if (std::isfinite(res)) par::normalize_l1(x);
    }
    if (!std::isfinite(res)) {
      result.stats.residual = std::numeric_limits<double>::infinity();
      result.stats.iterations = it + 1;
      break;  // diverged; report converged = false
    }
    result.stats.iterations = it + 1;
    result.stats.residual = res;
    if (res < options.tolerance) {
      result.stats.converged = true;
      break;
    }
  }
  recorder.finish(result.stats.residual);
  detail::stationary_matvec_counter().add(result.stats.matvec_count);
  result.distribution = std::move(x);
  result.stats.seconds = timer.seconds();
  if (span.active()) {
    span.attr("states", chain.num_states());
    span.attr("iterations", result.stats.iterations);
    span.attr("residual", result.stats.residual);
    span.attr("converged", result.stats.converged);
  }
  return result;
}

namespace {

/// Shared core for Jacobi / Gauss-Seidel / SOR.  `in_place` selects
/// Gauss-Seidel ordering; `w` is the relaxation factor.
StationaryResult relaxation_solve(const markov::MarkovChain& chain,
                                  const SolverOptions& options,
                                  std::span<const double> initial,
                                  bool in_place, double w,
                                  const char* method) {
  const Timer timer;
  obs::Span span("solve.relaxation");
  if (span.active()) span.attr("method", std::string_view(method));
  const par::ThreadScope threads(options.threads);
  StationaryResult result;
  result.stats.method = method;
  ResidualRecorder recorder(result.stats.residual_history);
  const auto& pt = chain.pt();
  const std::size_t n = chain.num_states();
  std::vector<double> x = detail::make_initial(chain, initial);

  // Cache the diagonal of P (p_ii = pt(i, i)).
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = pt.at(i, i);

  std::vector<double> next(in_place ? 0 : n);

  // One Jacobi row update; rows are independent given the previous iterate,
  // so the Jacobi sweep parallelizes over nnz-balanced row ranges.  The
  // Gauss-Seidel / SOR sweep (in_place) consumes values it just wrote and
  // stays serial by construction.
  const auto jacobi_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Incoming probability mass excluding the self-loop.
      double acc = 0.0;
      const auto cols = pt.row_cols(i);
      const auto vals = pt.row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] != i) acc += vals[k] * x[cols[k]];
      }
      const double denom = 1.0 - diag[i];
      if (!(denom > 0.0)) {
        throw NumericalError(
            "relaxation solver: absorbing state encountered (p_ii = 1)");
      }
      next[i] = (1.0 - w) * x[i] + w * (acc / denom);
    }
  };

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    double delta = 0.0;  // L1 change across the sweep
    if (in_place) {
      for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        const auto cols = pt.row_cols(i);
        const auto vals = pt.row_values(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          if (cols[k] != i) acc += vals[k] * x[cols[k]];
        }
        const double denom = 1.0 - diag[i];
        if (!(denom > 0.0)) {
          throw NumericalError(
              "relaxation solver: absorbing state encountered (p_ii = 1)");
        }
        const double xi_new = (1.0 - w) * x[i] + w * (acc / denom);
        delta += std::abs(xi_new - x[i]);
        x[i] = xi_new;
      }
    } else {
      const obs::prof::KernelScope roofline(
          "jacobi_sweep", obs::prof::jacobi_bytes(n, pt.nnz()),
          obs::prof::jacobi_flops(n, pt.nnz()));
      const std::size_t lanes = par::lanes_for(pt.nnz());
      if (lanes <= 1) {
        jacobi_rows(0, n);
      } else {
        const auto bounds = par::balanced_boundaries(pt.row_ptr(), lanes);
        par::run_lanes(lanes, [&](std::size_t lane) {
          jacobi_rows(bounds[lane], bounds[lane + 1]);
        });
      }
    }
    ++result.stats.matvec_count;
    if (!in_place) {
      delta = par::l1_distance(x, next);
      x.swap(next);
    }
    // Divergence (e.g. over-relaxed SOR on a non-dominant chain) shows up
    // as a non-finite sweep delta or an iterate whose total mass is no
    // longer positive (overshoot into negative entries): stop and report
    // non-convergence instead of propagating NaNs.
    const double mass = par::sum(x);
    if (!std::isfinite(delta) || !std::isfinite(mass) || !(mass > 0.0)) {
      result.stats.residual = std::numeric_limits<double>::infinity();
      result.stats.iterations = it + 1;
      recorder.finish(result.stats.residual);
      result.distribution = std::move(x);
      result.stats.seconds = timer.seconds();
      return result;
    }
    par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) x[i] /= mass;
    });
    result.stats.iterations = it + 1;
    result.stats.residual = delta;
    recorder.record(delta);
    if (!obs::notify(options.progress, method, it + 1, delta,
                     result.stats.matvec_count, x)) {
      break;  // observer cancelled; converged stays false
    }
    if (delta < options.tolerance) {
      result.stats.converged = true;
      break;
    }
  }
  // Report the true stationary residual rather than the sweep delta.
  result.stats.residual = stationary_residual(chain, x);
  recorder.finish(result.stats.residual);
  detail::stationary_matvec_counter().add(result.stats.matvec_count);
  result.distribution = std::move(x);
  result.stats.seconds = timer.seconds();
  if (span.active()) {
    span.attr("states", chain.num_states());
    span.attr("iterations", result.stats.iterations);
    span.attr("residual", result.stats.residual);
    span.attr("converged", result.stats.converged);
  }
  return result;
}

}  // namespace

StationaryResult solve_stationary_jacobi(const markov::MarkovChain& chain,
                                         const SolverOptions& options,
                                         std::span<const double> initial) {
  STOCDR_REQUIRE(options.relaxation > 0.0 && options.relaxation <= 1.0,
                 "Jacobi relaxation must be in (0, 1]");
  return relaxation_solve(chain, options, initial, /*in_place=*/false,
                          options.relaxation, "jacobi");
}

StationaryResult solve_stationary_gauss_seidel(
    const markov::MarkovChain& chain, const SolverOptions& options,
    std::span<const double> initial) {
  return relaxation_solve(chain, options, initial, /*in_place=*/true, 1.0,
                          "gauss-seidel");
}

StationaryResult solve_stationary_sor(const markov::MarkovChain& chain,
                                      const SolverOptions& options,
                                      std::span<const double> initial) {
  STOCDR_REQUIRE(options.relaxation > 0.0 && options.relaxation < 2.0,
                 "SOR relaxation must be in (0, 2)");
  return relaxation_solve(chain, options, initial, /*in_place=*/true,
                          options.relaxation, "sor");
}

StationaryResult solve_stationary_direct(const markov::MarkovChain& chain) {
  const Timer timer;
  obs::Span span("solve.gth-direct");
  StationaryResult result;
  result.stats.method = "gth-direct";
  result.distribution = sparse::gth_stationary_transposed(chain.pt());
  result.stats.iterations = 1;
  result.stats.converged = true;
  result.stats.residual = stationary_residual(chain, result.distribution);
  result.stats.residual_history.push_back(result.stats.residual);
  result.stats.seconds = timer.seconds();
  if (span.active()) {
    span.attr("states", chain.num_states());
    span.attr("residual", result.stats.residual);
  }
  return result;
}

}  // namespace stocdr::solvers
