#include "solvers/passage.hpp"

#include <algorithm>

#include "markov/reachability.hpp"
#include "obs/trace.hpp"
#include "solvers/aggregation.hpp"
#include "solvers/linear.hpp"
#include "support/error.hpp"

namespace stocdr::solvers {

namespace {

/// Builds the multigrid hierarchy for the restricted chain: structural
/// (grid-pair) if coordinates were supplied, index-pair otherwise.
std::vector<markov::Partition> restricted_hierarchy(
    const PassageOptions& options, const std::vector<std::size_t>& to_parent,
    std::size_t coarsest_size) {
  if (options.grid_coordinate && options.other_label) {
    std::vector<std::uint32_t> grid(to_parent.size());
    std::vector<std::uint32_t> label(to_parent.size());
    for (std::size_t i = 0; i < to_parent.size(); ++i) {
      grid[i] = options.grid_coordinate->at(to_parent[i]);
      label[i] = options.other_label->at(to_parent[i]);
    }
    return build_grid_pair_hierarchy(grid, label, coarsest_size);
  }
  return build_index_pair_hierarchy(to_parent.size(), coarsest_size);
}

/// Solves (I - Q) x = b with the configured method.
LinearResult solve_restricted(const sparse::CsrMatrix& qt,
                              const std::vector<double>& b,
                              const std::vector<std::size_t>& to_parent,
                              const PassageOptions& options) {
  const TransientOperator op(qt);
  switch (options.method) {
    case PassageMethod::kJacobi:
      return jacobi_linear(op, b, options.linear);
    case PassageMethod::kGmres:
      return gmres(op, b, options.linear, options.gmres_restart);
    case PassageMethod::kGmresMultilevel: {
      AggregationPreconditioner::Options popts;
      const auto hierarchy =
          restricted_hierarchy(options, to_parent, popts.coarsest_size);
      const AggregationPreconditioner precond(qt, hierarchy, popts);
      const Preconditioner apply =
          [&precond](std::span<const double> r, std::span<double> z) {
            precond.apply(r, z);
          };
      return gmres(op, b, options.linear, options.gmres_restart, apply);
    }
  }
  throw InternalError("solve_restricted: unknown method");
}

}  // namespace

HittingTimeResult mean_hitting_times(const markov::MarkovChain& chain,
                                     const std::vector<bool>& target,
                                     const PassageOptions& options) {
  obs::Span span("passage.hitting_times");
  const std::size_t n = chain.num_states();
  if (span.active()) span.attr("states", n);
  STOCDR_REQUIRE(target.size() == n, "mean_hitting_times: mask size mismatch");
  STOCDR_REQUIRE(std::find(target.begin(), target.end(), true) != target.end(),
                 "mean_hitting_times: target set is empty");

  std::vector<bool> keep(n);
  bool any_kept = false;
  for (std::size_t i = 0; i < n; ++i) {
    keep[i] = !target[i];
    any_kept = any_kept || keep[i];
  }
  HittingTimeResult result;
  result.mean_steps.assign(n, 0.0);
  if (!any_kept) {
    result.stats.method = "trivial";
    result.stats.converged = true;
    return result;
  }

  const markov::RestrictedChain restricted =
      markov::restrict_chain(chain, keep);
  const std::vector<double> b(restricted.to_parent.size(), 1.0);
  LinearResult solve =
      solve_restricted(restricted.qt, b, restricted.to_parent, options);
  for (std::size_t i = 0; i < restricted.to_parent.size(); ++i) {
    result.mean_steps[restricted.to_parent[i]] = solve.solution[i];
  }
  result.stats = std::move(solve.stats);
  return result;
}

HittingProbabilityResult hitting_probability(const markov::MarkovChain& chain,
                                             const std::vector<bool>& target_a,
                                             const std::vector<bool>& target_b,
                                             const PassageOptions& options) {
  obs::Span span("passage.hitting_probability");
  const std::size_t n = chain.num_states();
  if (span.active()) span.attr("states", n);
  STOCDR_REQUIRE(
      target_a.size() == n && target_b.size() == n,
      "hitting_probability: mask size mismatch");
  std::vector<bool> keep(n);
  for (std::size_t i = 0; i < n; ++i) {
    STOCDR_REQUIRE(!(target_a[i] && target_b[i]),
                   "hitting_probability: target sets must be disjoint");
    keep[i] = !target_a[i] && !target_b[i];
  }

  HittingProbabilityResult result;
  result.probability.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (target_a[i]) result.probability[i] = 1.0;
  }

  const markov::RestrictedChain restricted =
      markov::restrict_chain(chain, keep);
  if (restricted.to_parent.empty()) {
    result.stats.method = "trivial";
    result.stats.converged = true;
    return result;
  }

  // r_i = one-step probability of entering A from kept state i.
  std::vector<double> rhs(restricted.to_parent.size(), 0.0);
  chain.pt().for_each([&](std::size_t dst, std::size_t src, double v) {
    if (target_a[dst] && restricted.to_child[src] >= 0) {
      rhs[static_cast<std::size_t>(restricted.to_child[src])] += v;
    }
  });

  LinearResult solve =
      solve_restricted(restricted.qt, rhs, restricted.to_parent, options);
  for (std::size_t i = 0; i < restricted.to_parent.size(); ++i) {
    result.probability[restricted.to_parent[i]] = solve.solution[i];
  }
  result.stats = std::move(solve.stats);
  return result;
}

}  // namespace stocdr::solvers
