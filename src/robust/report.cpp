#include "robust/report.hpp"

#include "obs/json.hpp"

namespace stocdr::robust {

const char* to_string(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone: return "none";
    case FailureCause::kIterationBudget: return "iteration-budget";
    case FailureCause::kStalled: return "stalled";
    case FailureCause::kDiverged: return "diverged";
    case FailureCause::kNumericalFault: return "numerical-fault";
    case FailureCause::kBreakdown: return "breakdown";
    case FailureCause::kDeadlineExceeded: return "deadline";
    case FailureCause::kSkipped: return "skipped";
    case FailureCause::kError: return "error";
  }
  return "unknown";
}

std::string RobustSolveReport::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.field("converged", converged);
  w.field("final_method", final_method);
  w.field("residual", residual);
  w.field("seconds", seconds);
  w.field("states", std::uint64_t{states});
  w.field("representation", representation);
  w.field("stochasticity_defect", stochasticity_defect);
  w.field("repaired", repaired);
  w.field("degraded", degraded);
  if (degraded) {
    w.field("degraded_states", std::uint64_t{degraded_states});
    w.field("degradation_residual", degradation_residual);
  }
  if (memory_budget_bytes > 0) {
    w.key("admission");
    w.begin_object();
    w.field("memory_budget_bytes", memory_budget_bytes);
    w.field("predicted_peak_bytes", predicted_peak_bytes);
    w.field("refused", admission_refused);
    w.field("degraded_for_memory", degraded_for_memory);
    w.end_object();
  }
  w.field("deadline_exceeded", deadline_exceeded);
  w.field("checkpoints", std::uint64_t{checkpoints_taken});
  if (checkpoint_restored || checkpoint_rejects > 0 ||
      durable_checkpoints > 0 || checkpoint_write_failures > 0) {
    w.key("durable_checkpoint");
    w.begin_object();
    w.field("restored", checkpoint_restored);
    if (checkpoint_restored) {
      w.field("restore_path", checkpoint_restore_path);
      w.field("restore_iteration", checkpoint_restore_iteration);
      w.field("restore_residual", checkpoint_restore_residual);
    }
    w.field("rejects", std::uint64_t{checkpoint_rejects});
    w.field("written", std::uint64_t{durable_checkpoints});
    w.field("write_failures", std::uint64_t{checkpoint_write_failures});
    w.end_object();
  }
  if (!flight_dump_path.empty()) {
    w.field("flight_dump", flight_dump_path);
  }
  w.key("rungs");
  w.begin_array();
  for (const RungReport& rung : rungs) {
    w.begin_object();
    w.field("method", rung.method);
    w.field("failure", to_string(rung.failure));
    if (!rung.detail.empty()) w.field("detail", rung.detail);
    if (!rung.predecessor_failure.empty()) {
      w.field("predecessor_failure", rung.predecessor_failure);
    }
    w.field("initial_residual", rung.initial_residual);
    w.field("warm_started", rung.warm_started);
    if (!rung.stats.breakdown.empty()) {
      w.field("breakdown", rung.stats.breakdown);
    }
    w.field("checkpoints", std::uint64_t{rung.checkpoints});
    w.field("iterations", std::uint64_t{rung.stats.iterations});
    w.field("matvecs", std::uint64_t{rung.stats.matvec_count});
    w.field("seconds", rung.stats.seconds);
    w.field("residual", rung.stats.residual);
    w.field("converged", rung.stats.converged);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

std::string RobustSolveReport::summary() const {
  std::string line;
  if (admission_refused) {
    return "refused: predicted peak " +
           std::to_string(predicted_peak_bytes) +
           " bytes exceeds memory budget " +
           std::to_string(memory_budget_bytes) + " bytes";
  }
  if (converged) {
    line = "converged via " + final_method;
  } else if (deadline_exceeded) {
    line = "deadline exceeded; best iterate from " +
           (final_method.empty() ? std::string("initial guess") : final_method);
  } else {
    line = "ladder exhausted without convergence";
  }
  std::string failures;
  for (const RungReport& rung : rungs) {
    if (rung.failure == FailureCause::kNone) continue;
    if (!failures.empty()) failures += ", ";
    failures += rung.method + ": " + to_string(rung.failure);
  }
  if (!failures.empty()) line += " (" + failures + ")";
  if (repaired) line += " [input repaired]";
  if (checkpoint_restored) {
    line += " [restored from " + checkpoint_restore_path + " @ iteration " +
            std::to_string(checkpoint_restore_iteration) + "]";
  }
  if (checkpoint_rejects > 0) {
    line += " [" + std::to_string(checkpoint_rejects) +
            " checkpoint generation(s) rejected]";
  }
  if (degraded) {
    line += " [degraded to " + std::to_string(degraded_states) + " states";
    if (degraded_for_memory) line += " for memory budget";
    line += "]";
  }
  if (!flight_dump_path.empty()) {
    line += " [flight dump: " + flight_dump_path + "]";
  }
  return line;
}

}  // namespace stocdr::robust
