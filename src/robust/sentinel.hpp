// Divergence sentinel with checkpointing.
//
// A SolveSentinel rides a solver's progress callback and watches for the
// four ways a long solve goes wrong: NaN/Inf residuals, divergence (the
// residual exploding past the best seen), stall (no meaningful reduction
// over a window of checks), and a blown wall-clock deadline.  On any of
// them it requests cooperative cancellation (obs::ProgressAction::kStop)
// and records a verdict the orchestration harness turns into a
// FailureCause.
//
// Alongside the watchdog role it snapshots the best finite iterate seen —
// the *checkpoint* — so the next rung of the fallback ladder warm-starts
// from real progress instead of a uniform vector.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "obs/progress.hpp"
#include "robust/report.hpp"
#include "support/function_ref.hpp"
#include "support/timer.hpp"

namespace stocdr::robust {

/// Fault-injection hook for robustness tests: called once per progress
/// event, returns the residual the sentinel should believe.  Returning
/// `event.residual` unchanged is a no-op; returning NaN simulates a
/// numerical fault at that point of the solve.
using FaultInjector = FunctionRef<double(const obs::ProgressEvent&)>;

/// Durable-checkpoint sink: called with the iteration, residual, and
/// iterate of a freshly taken in-memory checkpoint so the harness can
/// persist it (robust/checkpoint).  Must not throw — persistence failures
/// are the sink's problem, never the solve's.
using CheckpointSink = FunctionRef<void(
    std::uint64_t iteration, double residual,
    const std::vector<double>& iterate)>;

/// Watchdog + checkpointer installed as a solver's progress observer.
class SolveSentinel {
 public:
  struct Options {
    /// Divergence/stall checks run every `stride` events; the deadline is
    /// checked on every event (a blown budget must stop the solve at the
    /// next tick, not up to stride-1 ticks later).
    std::size_t stride = 4;

    /// Residual above `divergence_factor * best` is divergence.
    double divergence_factor = 1e3;

    /// A check with residual >= stall_factor * previous-check residual
    /// counts as a stalled check; `stall_window` consecutive ones trigger
    /// cancellation.  At stall_factor 1.0 only checks whose residual did
    /// not decrease at all count as stalled (any strict decrease, however
    /// tiny, resets the window), so slow-but-real progress is never
    /// cancelled.  Values <= 0 disable stall detection entirely (the
    /// sentinel then skips the stall check; divergence, NaN, and deadline
    /// watchdogs stay active).
    double stall_factor = 0.98;
    std::size_t stall_window = 12;

    /// Wall-clock budget, measured on `clock` (shared across the ladder so
    /// rungs consume one common deadline).  Infinity = no deadline.
    double deadline_seconds = std::numeric_limits<double>::infinity();
    const Timer* clock = nullptr;  ///< required when deadline_seconds is set

    std::optional<FaultInjector> fault_injector;

    /// When set, every `persist_period`-th in-memory checkpoint is also
    /// handed to this sink (the durable-checkpoint writer).  The first
    /// checkpoint of a solve is always persisted, so even short solves
    /// leave a restart point behind.
    std::optional<CheckpointSink> persist;
    std::size_t persist_period = 16;

    /// The caller's own observer, forwarded after the sentinel's checks
    /// (it may also request a stop).
    obs::OptionalProgress forward;

    /// When false the sentinel never copies iterates (used for rungs whose
    /// progress iterate is not a distribution, e.g. a GMRES correction).
    bool take_checkpoints = true;
  };

  explicit SolveSentinel(const Options& options) : options_(options) {}

  /// The progress callback. Bind via obs::ProgressObserver(sentinel).
  obs::ProgressAction operator()(const obs::ProgressEvent& event);

  /// kNone while healthy; the first failure observed otherwise.
  [[nodiscard]] FailureCause verdict() const { return verdict_; }

  /// Human-readable elaboration of the verdict ("" while healthy).
  [[nodiscard]] const std::string& verdict_detail() const { return detail_; }

  /// Best finite iterate seen (empty if none was ever snapshotted).
  [[nodiscard]] const std::vector<double>& checkpoint() const {
    return checkpoint_;
  }

  /// Residual of checkpoint() (infinity if no checkpoint).
  [[nodiscard]] double checkpoint_residual() const {
    return checkpoint_residual_;
  }

  [[nodiscard]] std::size_t checkpoints_taken() const {
    return checkpoints_taken_;
  }

 private:
  Options options_;
  FailureCause verdict_ = FailureCause::kNone;
  std::string detail_;

  std::vector<double> checkpoint_;
  double checkpoint_residual_ = std::numeric_limits<double>::infinity();
  std::size_t checkpoints_taken_ = 0;

  std::size_t events_seen_ = 0;
  std::size_t persist_countdown_ = 1;  ///< persist the first checkpoint
  double best_residual_ = std::numeric_limits<double>::infinity();
  double last_check_residual_ = std::numeric_limits<double>::infinity();
  std::size_t stalled_checks_ = 0;
};

}  // namespace stocdr::robust
