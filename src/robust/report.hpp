// Structured reporting for fault-tolerant solve orchestration.
//
// A robust solve is a sequence of rung attempts down a fallback ladder; the
// report records every attempt (why it was tried, how it ended), the
// checkpoints taken, any input repair or grid degradation applied, and the
// budgets consumed — the paper's 1e-12-tail measures are only trustworthy
// when the solve that produced them can show its work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "solvers/options.hpp"

namespace stocdr::robust {

/// Why a rung (or the whole solve) stopped short of convergence.
enum class FailureCause {
  kNone,              ///< the rung converged
  kIterationBudget,   ///< per-rung max_iterations exhausted
  kStalled,           ///< sentinel: residual reduction below the stall bound
  kDiverged,          ///< sentinel: residual grew far beyond the best seen
  kNumericalFault,    ///< sentinel: NaN/Inf residual observed mid-solve
  kBreakdown,         ///< algorithmic breakdown (SolverStats::breakdown set)
  kDeadlineExceeded,  ///< global wall-clock budget expired
  kSkipped,           ///< rung not applicable (e.g. chain too large for GTH)
  kError,             ///< the solver threw (message in RungReport::detail)
};

/// Stable lowercase identifier ("stalled", "deadline", ...), used in JSON
/// artifacts and trace attributes.
[[nodiscard]] const char* to_string(FailureCause cause);

/// One attempt on one rung of the ladder.
struct RungReport {
  std::string method;  ///< solver name as reported by its SolverStats
  FailureCause failure = FailureCause::kNone;
  std::string detail;  ///< human-readable failure description ("" if none)
  /// Why the ladder reached this rung: the failure of the rung above it
  /// ("" for the first rung attempted).
  std::string predecessor_failure;
  /// Stationary residual of the vector this rung started from.
  double initial_residual = 0.0;
  /// True when the rung warm-started from a predecessor's checkpoint
  /// instead of the caller's initial guess / uniform vector.
  bool warm_started = false;
  /// Checkpoints the sentinel snapshotted while this rung ran.
  std::size_t checkpoints = 0;
  solvers::SolverStats stats;
};

/// The full account of a robust solve.
struct RobustSolveReport {
  bool converged = false;
  std::string final_method;  ///< rung that produced the returned vector
  double residual = 0.0;     ///< L1 stationary residual of the returned vector
  double seconds = 0.0;      ///< wall-clock of the whole orchestration
  std::size_t states = 0;    ///< fine-chain state count
  /// How the chain was represented during the solve: "csr" for the
  /// explicit sparse matrix, "kronecker" for the matrix-free descriptor
  /// operator (generic StepOperator callers report "operator").
  std::string representation = "csr";

  // Input validation gate.
  double stochasticity_defect = 0.0;  ///< defect of the chain as received
  bool repaired = false;  ///< rows were renormalized before solving

  // Graceful degradation (state-count ceiling hit).
  bool degraded = false;
  std::size_t degraded_states = 0;  ///< coarse chain actually solved
  /// Fine-grid stationary residual of the expanded coarse solution: the
  /// accuracy loss the degradation traded for feasibility.
  double degradation_residual = 0.0;

  // Memory admission gate (active only when RobustOptions::
  // memory_budget_bytes is set).  `predicted_peak_bytes` is the analytic
  // capacity-model estimate for the fine chain; when it exceeds the budget
  // the solve either degrades to a coarse grid that fits
  // (`degraded_for_memory`, the degradation fields above describe the
  // grid used) or is refused outright (`admission_refused`: no solver
  // allocation happened, the distribution is empty).
  std::uint64_t memory_budget_bytes = 0;   ///< 0 = gate inactive
  std::uint64_t predicted_peak_bytes = 0;  ///< capacity-model estimate
  bool admission_refused = false;
  bool degraded_for_memory = false;

  bool deadline_exceeded = false;
  std::size_t checkpoints_taken = 0;
  std::vector<RungReport> rungs;  ///< in attempt order, fine ladder last

  // Durable checkpointing (robust/checkpoint; active only when
  // RobustOptions::checkpoint_path is set).
  bool checkpoint_restored = false;  ///< warm-started from an on-disk file
  std::string checkpoint_restore_path;       ///< generation restored from
  std::uint64_t checkpoint_restore_iteration = 0;
  double checkpoint_restore_residual = 0.0;  ///< as recorded in the file
  /// Generations rejected at restore time (torn / corrupt / version-skewed
  /// / config-mismatched files) — each one also counted in the
  /// `robust.checkpoint_rejects` metric and degraded to the next generation
  /// or a cold start, never a crash.
  std::size_t checkpoint_rejects = 0;
  std::size_t durable_checkpoints = 0;       ///< files persisted this solve
  std::size_t checkpoint_write_failures = 0; ///< persists that failed (logged)

  /// Path of the flight-recorder dump written when a sentinel tripped
  /// (divergence/NaN/stall) while a ring was active ("" = no dump: no trip,
  /// or no STOCDR_TRACE_RING).  The dump holds the spans leading up to the
  /// fault; read it with `stocdr-obsctl summarize`.
  std::string flight_dump_path;

  /// One JSON object (same dialect as the BENCH artifacts).
  [[nodiscard]] std::string to_json() const;

  /// One human-readable line, e.g.
  /// "converged via sor after 2 escalations (multilevel: stalled, ...)".
  [[nodiscard]] std::string summary() const;
};

/// What a robust solve returns: the best distribution available (which is
/// the converged one on success, and the last-good checkpoint on a timeout
/// or total ladder failure) plus the report.
struct RobustResult {
  std::vector<double> distribution;
  RobustSolveReport report;
};

}  // namespace stocdr::robust
