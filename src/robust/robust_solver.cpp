#include "robust/robust_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "obs/dist/event_log.hpp"
#include "obs/live/flight_recorder.hpp"
#include "obs/mem/capacity.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/pool.hpp"
#include "robust/checkpoint/checkpoint.hpp"
#include "solvers/linear.hpp"
#include "solvers/operator_stationary.hpp"
#include "solvers/stationary.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"
#include "support/math.hpp"
#include "support/text.hpp"

namespace stocdr::robust {

namespace {

obs::Counter& solve_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.solves");
  return c;
}

obs::Counter& rung_failure_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.rung_failures");
  return c;
}

obs::Counter& repair_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.repairs");
  return c;
}

obs::Counter& degradation_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.degradations");
  return c;
}

obs::Counter& admission_reject_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.admission_rejects");
  return c;
}

obs::Counter& admission_degrade_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.admission_degrades");
  return c;
}

obs::Counter& deadline_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.deadline_exceeded");
  return c;
}

obs::Counter& flight_dump_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.flight_dumps");
  return c;
}

obs::Counter& durable_checkpoint_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.durable_checkpoints");
  return c;
}

obs::Counter& checkpoint_reject_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.checkpoint_rejects");
  return c;
}

obs::Counter& checkpoint_write_failure_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter(
      "robust.checkpoint_write_failures");
  return c;
}

obs::Counter& checkpoint_restore_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("robust.checkpoint_restores");
  return c;
}

/// A sentinel trip means the spans leading up to the fault are exactly what
/// the flight-recorder ring holds right now — dump them before further
/// rungs overwrite the evidence.  First trip of a solve wins; no-op when no
/// ring is installed (STOCDR_TRACE_RING unset).
void dump_flight_recording(const std::string& configured,
                           RobustSolveReport& report) {
  if (!report.flight_dump_path.empty()) return;
  const obs::FlightRecorder* recorder = obs::FlightRecorder::active();
  if (recorder == nullptr) return;
  std::string path = configured;
  if (path.empty()) {
    if (const char* env = std::getenv("STOCDR_FLIGHT_DUMP")) path = env;
  }
  if (path.empty()) path = "stocdr_flight.jsonl";
  try {
    recorder->dump(path);
  } catch (const Error& e) {
    std::fprintf(stderr, "stocdr: flight-recorder dump failed: %s\n",
                 e.what());
    return;
  }
  report.flight_dump_path = path;
  flight_dump_counter().add(1);
  obs::evt::emit("flight.dump", obs::evt::Severity::kWarning,
                 {{"path", path}});
}

/// The deflated stationary operator B = I - P^T + (1/n) e e^T.  B is
/// nonsingular for an irreducible chain (e spans the left null space of
/// I - P^T and e^T (e/n) = 1 != 0), and B x = e/n has the stationary
/// vector as its unique solution: left-multiplying by e^T forces
/// e^T x = 1, which in turn forces (I - P^T) x = 0.  This turns the
/// singular eigenproblem into a plain linear system GMRES can attack.
class StationaryShiftOperator final : public solvers::LinearOperator {
 public:
  explicit StationaryShiftOperator(const markov::MarkovChain& chain)
      : chain_(&chain), scratch_(chain.num_states()) {}

  [[nodiscard]] std::size_t size() const override {
    return chain_->num_states();
  }

  void apply(std::span<const double> x, std::span<double> y) const override {
    chain_->step(x, scratch_);  // P^T x
    const double mean =
        kahan_sum(x) / static_cast<double>(chain_->num_states());
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = x[i] - scratch_[i] + mean;
    }
  }

 private:
  const markov::MarkovChain* chain_;
  mutable std::vector<double> scratch_;
};

/// GMRES rung: solve B (x0 + d) = e/n as B d = e/n - B x0 so the rung
/// warm-starts from the ladder's checkpoint, then clamp/normalize the
/// update back onto the probability simplex.
solvers::StationaryResult run_gmres_rung(const markov::MarkovChain& chain,
                                         const RungSpec& spec,
                                         double tolerance,
                                         SolveSentinel& sentinel,
                                         std::span<const double> x0) {
  const Timer timer;
  const std::size_t n = chain.num_states();
  solvers::StationaryResult out;
  out.stats.method = "gmres-stationary";

  const StationaryShiftOperator op(chain);
  std::vector<double> rhs(n, 1.0 / static_cast<double>(n));
  std::vector<double> bx0(n);
  op.apply(x0, bx0);
  for (std::size_t i = 0; i < n; ++i) rhs[i] -= bx0[i];

  solvers::SolverOptions lopts;
  lopts.tolerance = tolerance;
  lopts.max_iterations = spec.max_iterations;
  const obs::ProgressObserver observer(sentinel);
  lopts.progress = observer;
  solvers::LinearResult lin = solvers::gmres(op, rhs, lopts);

  out.stats.iterations = lin.stats.iterations;
  out.stats.matvec_count = lin.stats.matvec_count;
  out.stats.residual_history = std::move(lin.stats.residual_history);

  std::vector<double> x(x0.begin(), x0.end());
  bool finite = true;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += lin.solution[i];
    if (!std::isfinite(x[i])) finite = false;
    if (x[i] < 0.0) x[i] = 0.0;
  }
  const double mass = finite ? kahan_sum(x) : 0.0;
  if (!finite || !(mass > 0.0)) {
    out.stats.residual = std::numeric_limits<double>::infinity();
    out.distribution = std::move(x);
    out.stats.seconds = timer.seconds();
    return out;
  }
  for (double& v : x) v /= mass;
  out.stats.residual = solvers::stationary_residual(chain, x);
  // Convergence is judged on the harness metric (L1 stationary residual),
  // not GMRES's relative 2-norm; a near-miss escalates warm-started.
  out.stats.converged = out.stats.residual < tolerance;
  out.distribution = std::move(x);
  out.stats.seconds = timer.seconds();
  return out;
}

/// The deflated stationary operator B = I - P^T + (1/n) e e^T over an
/// abstract StepOperator — the matrix-free twin of StationaryShiftOperator.
class OperatorShiftOperator final : public solvers::LinearOperator {
 public:
  explicit OperatorShiftOperator(const solvers::StepOperator& op)
      : op_(&op), scratch_(op.size()) {}

  [[nodiscard]] std::size_t size() const override { return op_->size(); }

  void apply(std::span<const double> x, std::span<double> y) const override {
    op_->step(x, scratch_);  // P^T x
    const double mean = kahan_sum(x) / static_cast<double>(op_->size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = x[i] - scratch_[i] + mean;
    }
  }

 private:
  const solvers::StepOperator* op_;
  mutable std::vector<double> scratch_;
};

/// Matrix-free GMRES rung; identical to run_gmres_rung except that the
/// shifted system applies through the StepOperator and the Krylov restart
/// is budget-sized by the caller.
solvers::StationaryResult run_operator_gmres_rung(
    const solvers::StepOperator& sop, const RungSpec& spec, double tolerance,
    SolveSentinel& sentinel, std::span<const double> x0,
    std::size_t restart) {
  const Timer timer;
  const std::size_t n = sop.size();
  solvers::StationaryResult out;
  out.stats.method = "gmres-stationary";

  const OperatorShiftOperator op(sop);
  std::vector<double> rhs(n, 1.0 / static_cast<double>(n));
  std::vector<double> bx0(n);
  op.apply(x0, bx0);
  for (std::size_t i = 0; i < n; ++i) rhs[i] -= bx0[i];

  solvers::SolverOptions lopts;
  lopts.tolerance = tolerance;
  lopts.max_iterations = spec.max_iterations;
  const obs::ProgressObserver observer(sentinel);
  lopts.progress = observer;
  solvers::LinearResult lin = solvers::gmres(op, rhs, lopts, restart);

  out.stats.iterations = lin.stats.iterations;
  out.stats.matvec_count = lin.stats.matvec_count;
  out.stats.residual_history = std::move(lin.stats.residual_history);

  std::vector<double> x(x0.begin(), x0.end());
  bool finite = true;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += lin.solution[i];
    if (!std::isfinite(x[i])) finite = false;
    if (x[i] < 0.0) x[i] = 0.0;
  }
  const double mass = finite ? kahan_sum(x) : 0.0;
  if (!finite || !(mass > 0.0)) {
    out.stats.residual = std::numeric_limits<double>::infinity();
    out.distribution = std::move(x);
    out.stats.seconds = timer.seconds();
    return out;
  }
  for (double& v : x) v /= mass;
  out.stats.residual = solvers::stationary_residual(sop, x);
  out.stats.converged = out.stats.residual < tolerance;
  out.distribution = std::move(x);
  out.stats.seconds = timer.seconds();
  return out;
}

std::vector<double> make_operator_initial(std::size_t n,
                                          std::span<const double> initial) {
  if (initial.empty()) {
    return std::vector<double>(n, 1.0 / static_cast<double>(n));
  }
  STOCDR_REQUIRE(initial.size() == n,
                 "robust: initial guess size must match the operator");
  std::vector<double> x(initial.begin(), initial.end());
  for (double& v : x) v = std::max(v, 0.0);
  normalize_l1(x);
  return x;
}

/// The matrix-free ladder loop.  Mirrors RobustSolver::run_ladder rung for
/// rung (sentinels, warm starts, durable persists, flight dumps, failure
/// classification) but dispatches only to operator-capable methods; the
/// explicit-matrix rungs report kSkipped so a caller handing the default
/// explicit ladder to an operator sees *why* the ladder thinned out.
std::vector<double> run_operator_ladder(const solvers::StepOperator& op,
                                        const RobustOptions& options,
                                        std::span<const double> initial,
                                        const Timer& clock,
                                        std::size_t gmres_restart,
                                        RobustSolveReport& report) {
  const std::size_t n = op.size();
  std::vector<double> best = make_operator_initial(n, initial);
  double best_residual = solvers::stationary_residual(op, best);
  bool warm = false;
  std::string predecessor;

  std::vector<RungSpec> ladder = options.ladder;
  if (ladder.empty()) ladder = default_matrix_free_ladder();

  const bool durable = !options.checkpoint_path.empty();
  auto persist_sink = [&](std::uint64_t iteration, double res,
                          const std::vector<double>& iterate) {
    ckpt::Checkpoint snapshot;
    snapshot.config_hash = options.checkpoint_config_hash;
    snapshot.iteration = iteration;
    snapshot.residual = res;
    snapshot.iterate = iterate;
    try {
      ckpt::write_checkpoint(options.checkpoint_path, snapshot,
                             options.checkpoint_keep);
      ++report.durable_checkpoints;
      durable_checkpoint_counter().add(1);
      obs::evt::emit("checkpoint.write", obs::evt::Severity::kInfo,
                     {{"iteration", iteration}, {"residual", res}});
    } catch (const Error& e) {
      ++report.checkpoint_write_failures;
      checkpoint_write_failure_counter().add(1);
      obs::evt::emit("checkpoint.write_failure", obs::evt::Severity::kWarning,
                     {{"error", std::string(e.what())}});
      std::fprintf(stderr, "stocdr: durable checkpoint write failed: %s\n",
                   e.what());
    }
  };

  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const RungSpec& spec = ladder[r];
    RungReport rung;
    rung.method = to_string(spec.kind);
    rung.predecessor_failure = predecessor;
    rung.initial_residual = best_residual;
    rung.warm_started = warm;

    if (clock.seconds() > options.time_budget_seconds) {
      rung.failure = FailureCause::kDeadlineExceeded;
      rung.detail = "budget exhausted before the rung started";
      report.deadline_exceeded = true;
      report.rungs.push_back(std::move(rung));
      break;
    }

    // Rungs that need a materialized matrix cannot run here; the skip is
    // reported (with the predecessor preserved) rather than silent.
    const char* skip_reason = nullptr;
    switch (spec.kind) {
      case RungKind::kMultilevel:
        skip_reason =
            "no explicit matrix: multilevel aggregation needs CSR rows; "
            "power-family rungs cover the fallback";
        break;
      case RungKind::kSor:
        skip_reason = "no explicit matrix: SOR's in-place sweep needs row "
                      "access";
        break;
      case RungKind::kGthDirect:
        skip_reason = "no explicit matrix: dense GTH needs materialized rows";
        break;
      default: break;
    }
    if (spec.kind == RungKind::kGmresStationary && gmres_restart == 0) {
      skip_reason = "Krylov basis cannot fit the memory budget";
    }
    if (skip_reason != nullptr) {
      rung.failure = FailureCause::kSkipped;
      rung.detail = skip_reason;
      report.rungs.push_back(std::move(rung));
      continue;  // predecessor stays: the *real* failure above this rung
    }

    SolveSentinel::Options sopt;
    sopt.stride = options.sentinel_stride;
    sopt.divergence_factor = options.divergence_factor;
    sopt.stall_factor = options.stall_factor;
    sopt.stall_window = options.stall_window;
    sopt.deadline_seconds = options.time_budget_seconds;
    sopt.clock = &clock;
    sopt.fault_injector = options.fault_injector;
    sopt.forward = options.progress;
    sopt.take_checkpoints = spec.kind != RungKind::kGmresStationary;
    if (durable && sopt.take_checkpoints) {
      sopt.persist = CheckpointSink(persist_sink);
      sopt.persist_period = options.checkpoint_period;
    }
    SolveSentinel sentinel(sopt);
    const obs::ProgressObserver observer(sentinel);

    obs::Span span("robust.rung");
    if (span.active()) {
      span.attr("kind", std::string_view(to_string(spec.kind)));
      span.attr("rung", r);
      span.attr("warm_started", rung.warm_started);
    }

    solvers::StationaryResult result;
    bool threw = false;
    try {
      switch (spec.kind) {
        case RungKind::kGmresStationary:
          result = run_operator_gmres_rung(op, spec, options.tolerance,
                                           sentinel, best, gmres_restart);
          break;
        case RungKind::kJacobi: {
          solvers::SolverOptions o;
          o.tolerance = options.tolerance;
          o.max_iterations = spec.max_iterations;
          o.relaxation = spec.relaxation;
          o.progress = observer;
          result = solvers::solve_stationary_jacobi(op, o, best);
          break;
        }
        case RungKind::kPower: {
          solvers::SolverOptions o;
          o.tolerance = options.tolerance;
          o.max_iterations = spec.max_iterations;
          o.relaxation = spec.relaxation;
          o.progress = observer;
          result = solvers::solve_stationary_power(op, o, best);
          break;
        }
        default: break;  // unreachable: skipped above
      }
    } catch (const Error& e) {
      threw = true;
      rung.failure = FailureCause::kError;
      rung.detail = e.what();
      result.stats.method = to_string(spec.kind);
      result.stats.converged = false;
    }

    if (!result.stats.method.empty()) rung.method = result.stats.method;
    rung.stats = result.stats;
    rung.checkpoints = sentinel.checkpoints_taken();
    report.checkpoints_taken += sentinel.checkpoints_taken();

    const bool success = !threw && result.stats.converged &&
                         std::isfinite(result.stats.residual);
    if (success) {
      rung.failure = FailureCause::kNone;
      report.converged = true;
      report.final_method = rung.method;
      obs::evt::emit("rung.success", obs::evt::Severity::kInfo,
                     {{"method", rung.method},
                      {"residual", result.stats.residual},
                      {"iterations",
                       std::uint64_t{result.stats.iterations}}});
      best = std::move(result.distribution);
      best_residual = result.stats.residual;
      if (span.active()) {
        span.attr("outcome", std::string_view("converged"));
        span.attr("residual", best_residual);
      }
      report.rungs.push_back(std::move(rung));
      break;
    }

    if (!threw) {
      if (sentinel.verdict() != FailureCause::kNone) {
        rung.failure = sentinel.verdict();
        rung.detail = sentinel.verdict_detail();
      } else if (!result.stats.breakdown.empty()) {
        rung.failure = FailureCause::kBreakdown;
        rung.detail = result.stats.breakdown;
      } else if (!std::isfinite(result.stats.residual)) {
        rung.failure = FailureCause::kNumericalFault;
        rung.detail = "solver reported a non-finite residual";
      } else {
        rung.failure = FailureCause::kIterationBudget;
        rung.detail = "no convergence within " +
                      std::to_string(spec.max_iterations) + " iterations";
      }
    }
    rung_failure_counter().add(1);
    obs::evt::emit("rung.failure", obs::evt::Severity::kWarning,
                   {{"method", rung.method},
                    {"cause", std::string(to_string(rung.failure))},
                    {"detail", rung.detail},
                    {"residual", result.stats.residual}});
    if (rung.failure == FailureCause::kDiverged ||
        rung.failure == FailureCause::kStalled ||
        rung.failure == FailureCause::kNumericalFault) {
      dump_flight_recording(options.flight_dump_path, report);
    }
    if (span.active()) {
      span.attr("outcome", std::string_view(to_string(rung.failure)));
      span.attr("residual", result.stats.residual);
    }

    if (sentinel.checkpoint_residual() < best_residual) {
      best = sentinel.checkpoint();
      best_residual = sentinel.checkpoint_residual();
      warm = true;
      report.final_method = rung.method;
    }
    if (!threw && std::isfinite(result.stats.residual) &&
        result.stats.residual < best_residual &&
        result.distribution.size() == n) {
      best = std::move(result.distribution);
      best_residual = result.stats.residual;
      warm = true;
      report.final_method = rung.method;
    }

    const bool deadline = rung.failure == FailureCause::kDeadlineExceeded;
    predecessor = to_string(rung.failure);
    report.rungs.push_back(std::move(rung));
    if (deadline) {
      report.deadline_exceeded = true;
      break;
    }
  }
  report.residual = best_residual;
  return best;
}

}  // namespace

const char* to_string(RungKind kind) {
  switch (kind) {
    case RungKind::kMultilevel: return "multilevel";
    case RungKind::kGmresStationary: return "gmres-stationary";
    case RungKind::kSor: return "sor";
    case RungKind::kJacobi: return "jacobi";
    case RungKind::kPower: return "power";
    case RungKind::kGthDirect: return "gth-direct";
  }
  return "unknown";
}

std::vector<RungSpec> default_ladder() {
  return {
      {RungKind::kMultilevel, 500, 1.0},
      {RungKind::kGmresStationary, 300, 1.0},
      {RungKind::kSor, 10000, 1.0},
      {RungKind::kPower, 50000, 0.9},
      {RungKind::kGthDirect, 1, 1.0},
  };
}

std::vector<RungSpec> default_matrix_free_ladder() {
  return {
      {RungKind::kGmresStationary, 300, 1.0},
      {RungKind::kJacobi, 20000, 1.0},
      {RungKind::kPower, 50000, 0.9},
  };
}

RobustSolver::RobustSolver(const markov::MarkovChain& chain,
                           std::vector<markov::Partition> hierarchy,
                           RobustOptions options)
    : chain_(&chain),
      hierarchy_(std::move(hierarchy)),
      options_(std::move(options)) {
  STOCDR_REQUIRE(options_.tolerance > 0.0,
                 "robust: tolerance must be positive");
  STOCDR_REQUIRE(
      hierarchy_.empty() || hierarchy_.front().num_states() == chain.num_states(),
      "robust: hierarchy does not match the chain");

  // Input validation gate.  kStochasticTol matches MarkovChain's strict
  // validation: chains below it are exactly what a strict construction
  // would accept and pass through untouched.
  constexpr double kStochasticTol = 1e-10;
  input_defect_ = chain.stochasticity_defect();
  if (input_defect_ > kStochasticTol) {
    if (input_defect_ > options_.repair_tolerance) {
      throw PreconditionError(
          "robust: row-stochasticity defect " + sci(input_defect_, 2) +
          " exceeds the repair tolerance " +
          sci(options_.repair_tolerance, 2) + "; rejecting the chain");
    }
    // Repair: renormalize every source state's outgoing mass to 1.
    const std::vector<double> sums = chain.pt().col_sums();
    for (std::size_t s = 0; s < sums.size(); ++s) {
      if (!(sums[s] > 0.0)) {
        throw PreconditionError(
            "robust: state " + std::to_string(s) +
            " has no outgoing probability; cannot renormalize");
      }
    }
    sparse::CooBuilder builder(chain.num_states(), chain.num_states());
    builder.reserve(chain.pt().nnz());
    chain.pt().for_each([&](std::size_t dst, std::size_t src, double v) {
      builder.add(dst, src, v / sums[src]);
    });
    repaired_ = std::make_unique<markov::MarkovChain>(
        builder.to_csr(), markov::Validation::kStrict);
    repair_counter().add(1);
  }
}

std::vector<double> RobustSolver::run_ladder(
    const markov::MarkovChain& chain,
    const std::vector<markov::Partition>& hierarchy,
    std::span<const double> initial, const Timer& clock,
    RobustSolveReport& report) const {
  const std::size_t n = chain.num_states();
  std::vector<double> best = solvers::detail::make_initial(chain, initial);
  double best_residual = solvers::stationary_residual(chain, best);
  bool warm = false;
  std::string predecessor;

  std::vector<RungSpec> ladder = options_.ladder;
  if (ladder.empty()) ladder = default_ladder();

  // Durable-checkpoint sink: persists sentinel snapshots so a killed
  // process restarts warm.  A failed persist is counted and logged but
  // never takes down the solve it exists to protect.
  const bool durable = !options_.checkpoint_path.empty();
  auto persist_sink = [&](std::uint64_t iteration, double res,
                          const std::vector<double>& iterate) {
    ckpt::Checkpoint snapshot;
    snapshot.config_hash = options_.checkpoint_config_hash;
    snapshot.iteration = iteration;
    snapshot.residual = res;
    snapshot.iterate = iterate;
    try {
      ckpt::write_checkpoint(options_.checkpoint_path, snapshot,
                             options_.checkpoint_keep);
      ++report.durable_checkpoints;
      durable_checkpoint_counter().add(1);
      obs::evt::emit("checkpoint.write", obs::evt::Severity::kInfo,
                     {{"iteration", iteration}, {"residual", res}});
    } catch (const Error& e) {
      ++report.checkpoint_write_failures;
      checkpoint_write_failure_counter().add(1);
      obs::evt::emit("checkpoint.write_failure", obs::evt::Severity::kWarning,
                     {{"error", std::string(e.what())}});
      std::fprintf(stderr, "stocdr: durable checkpoint write failed: %s\n",
                   e.what());
    }
  };

  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const RungSpec& spec = ladder[r];
    RungReport rung;
    rung.method = to_string(spec.kind);
    rung.predecessor_failure = predecessor;
    rung.initial_residual = best_residual;
    rung.warm_started = warm;

    // Global deadline gate between rungs (sentinels cover the inside).
    if (clock.seconds() > options_.time_budget_seconds) {
      rung.failure = FailureCause::kDeadlineExceeded;
      rung.detail = "budget exhausted before the rung started";
      report.deadline_exceeded = true;
      report.rungs.push_back(std::move(rung));
      break;
    }
    if (spec.kind == RungKind::kGthDirect && n > options_.gth_size_limit) {
      rung.failure = FailureCause::kSkipped;
      rung.detail = std::to_string(n) + " states exceed the dense-GTH limit " +
                    std::to_string(options_.gth_size_limit);
      report.rungs.push_back(std::move(rung));
      continue;  // predecessor stays: the *real* failure above this rung
    }

    SolveSentinel::Options sopt;
    sopt.stride = options_.sentinel_stride;
    sopt.divergence_factor = options_.divergence_factor;
    sopt.stall_factor = options_.stall_factor;
    sopt.stall_window = options_.stall_window;
    sopt.deadline_seconds = options_.time_budget_seconds;
    sopt.clock = &clock;
    sopt.fault_injector = options_.fault_injector;
    sopt.forward = options_.progress;
    // A GMRES progress iterate is the correction of the shifted system, not
    // a distribution — never checkpoint it.
    sopt.take_checkpoints = spec.kind != RungKind::kGmresStationary;
    if (durable && sopt.take_checkpoints) {
      sopt.persist = CheckpointSink(persist_sink);
      sopt.persist_period = options_.checkpoint_period;
    }
    SolveSentinel sentinel(sopt);
    const obs::ProgressObserver observer(sentinel);

    obs::Span span("robust.rung");
    if (span.active()) {
      span.attr("kind", std::string_view(to_string(spec.kind)));
      span.attr("rung", r);
      span.attr("warm_started", rung.warm_started);
    }

    solvers::StationaryResult result;
    bool threw = false;
    try {
      switch (spec.kind) {
        case RungKind::kMultilevel: {
          solvers::MultilevelOptions mopts = options_.multilevel;
          mopts.tolerance = options_.tolerance;
          mopts.max_cycles = spec.max_iterations;
          mopts.progress = observer;
          result =
              solvers::solve_stationary_multilevel(chain, hierarchy, mopts,
                                                   best);
          break;
        }
        case RungKind::kGmresStationary:
          result = run_gmres_rung(chain, spec, options_.tolerance, sentinel,
                                  best);
          break;
        case RungKind::kSor: {
          solvers::SolverOptions o;
          o.tolerance = options_.tolerance;
          o.max_iterations = spec.max_iterations;
          o.relaxation = spec.relaxation;
          o.progress = observer;
          result = solvers::solve_stationary_sor(chain, o, best);
          break;
        }
        case RungKind::kJacobi: {
          solvers::SolverOptions o;
          o.tolerance = options_.tolerance;
          o.max_iterations = spec.max_iterations;
          o.relaxation = spec.relaxation;
          o.progress = observer;
          const solvers::ChainStepOperator op(chain);
          result = solvers::solve_stationary_jacobi(op, o, best);
          break;
        }
        case RungKind::kPower: {
          solvers::SolverOptions o;
          o.tolerance = options_.tolerance;
          o.max_iterations = spec.max_iterations;
          o.relaxation = spec.relaxation;
          o.progress = observer;
          result = solvers::solve_stationary_power(chain, o, best);
          break;
        }
        case RungKind::kGthDirect:
          result = solvers::solve_stationary_direct(chain);
          // GTH is direct and subtraction-free: any finite answer is final.
          result.stats.converged = std::isfinite(result.stats.residual);
          break;
      }
    } catch (const Error& e) {
      threw = true;
      rung.failure = FailureCause::kError;
      rung.detail = e.what();
      result.stats.method = to_string(spec.kind);
      result.stats.converged = false;
    }

    if (!result.stats.method.empty()) rung.method = result.stats.method;
    rung.stats = result.stats;
    rung.checkpoints = sentinel.checkpoints_taken();
    report.checkpoints_taken += sentinel.checkpoints_taken();

    const bool success = !threw && result.stats.converged &&
                         std::isfinite(result.stats.residual);
    if (success) {
      rung.failure = FailureCause::kNone;
      report.converged = true;
      report.final_method = rung.method;
      obs::evt::emit("rung.success", obs::evt::Severity::kInfo,
                     {{"method", rung.method},
                      {"residual", result.stats.residual},
                      {"iterations",
                       std::uint64_t{result.stats.iterations}}});
      best = std::move(result.distribution);
      best_residual = result.stats.residual;
      if (span.active()) {
        span.attr("outcome", std::string_view("converged"));
        span.attr("residual", best_residual);
      }
      report.rungs.push_back(std::move(rung));
      break;
    }

    // Classify the failure: the sentinel's verdict wins (it saw the fault
    // live), then non-finite residuals, then the iteration budget.
    if (!threw) {
      if (sentinel.verdict() != FailureCause::kNone) {
        rung.failure = sentinel.verdict();
        rung.detail = sentinel.verdict_detail();
      } else if (!result.stats.breakdown.empty()) {
        rung.failure = FailureCause::kBreakdown;
        rung.detail = result.stats.breakdown;
      } else if (!std::isfinite(result.stats.residual)) {
        rung.failure = FailureCause::kNumericalFault;
        rung.detail = "solver reported a non-finite residual";
      } else {
        rung.failure = FailureCause::kIterationBudget;
        rung.detail = "no convergence within " +
                      std::to_string(spec.max_iterations) + " iterations";
      }
    }
    rung_failure_counter().add(1);
    obs::evt::emit("rung.failure", obs::evt::Severity::kWarning,
                   {{"method", rung.method},
                    {"cause", std::string(to_string(rung.failure))},
                    {"detail", rung.detail},
                    {"residual", result.stats.residual}});
    if (rung.failure == FailureCause::kDiverged ||
        rung.failure == FailureCause::kStalled ||
        rung.failure == FailureCause::kNumericalFault) {
      dump_flight_recording(options_.flight_dump_path, report);
    }
    if (span.active()) {
      span.attr("outcome", std::string_view(to_string(rung.failure)));
      span.attr("residual", result.stats.residual);
    }

    // Checkpoint/restart: the next rung starts from the best vector any
    // predecessor reached — the sentinel's snapshot or the rung's final
    // iterate, whichever is better — never from scratch.
    if (sentinel.checkpoint_residual() < best_residual) {
      best = sentinel.checkpoint();
      best_residual = sentinel.checkpoint_residual();
      warm = true;
      report.final_method = rung.method;
    }
    if (!threw && std::isfinite(result.stats.residual) &&
        result.stats.residual < best_residual &&
        result.distribution.size() == n) {
      best = std::move(result.distribution);
      best_residual = result.stats.residual;
      warm = true;
      report.final_method = rung.method;
    }

    const bool deadline = rung.failure == FailureCause::kDeadlineExceeded;
    predecessor = to_string(rung.failure);
    report.rungs.push_back(std::move(rung));
    if (deadline) {
      report.deadline_exceeded = true;
      break;  // the budget is global: no rung below can run either
    }
  }
  report.residual = best_residual;
  return best;
}

std::vector<double> RobustSolver::run_degraded(std::size_t max_states,
                                               std::span<const double> initial,
                                               const Timer& clock,
                                               RobustSolveReport& report) const {
  const markov::MarkovChain& fine = chain();
  if (!initial.empty()) {
    STOCDR_REQUIRE(initial.size() == fine.num_states(),
                   "robust: initial guess size must match the chain");
  }

  // Compose hierarchy levels until the coarse chain fits the ceiling (or
  // the hierarchy runs out — then we solve the coarsest we can reach).
  markov::Partition composed = hierarchy_.front();
  std::size_t levels_used = 1;
  while (composed.num_groups() > max_states &&
         levels_used < hierarchy_.size()) {
    composed = composed.compose(hierarchy_[levels_used]);
    ++levels_used;
  }

  const std::vector<double> weights(fine.num_states(), 1.0);
  markov::MarkovChain coarse(
      markov::aggregate_transposed(fine.pt(), composed, weights),
      markov::Validation::kNone);
  const std::vector<markov::Partition> coarse_hierarchy(
      hierarchy_.begin() + static_cast<std::ptrdiff_t>(levels_used),
      hierarchy_.end());

  report.degraded = true;
  report.degraded_states = coarse.num_states();
  degradation_counter().add(1);
  obs::evt::emit("degrade.lump", obs::evt::Severity::kWarning,
                 {{"states", std::uint64_t{coarse.num_states()}}});

  std::vector<double> coarse_initial;
  if (!initial.empty()) {
    coarse_initial = markov::restrict_sum(composed, initial);
  }
  std::vector<double> coarse_x =
      run_ladder(coarse, coarse_hierarchy, coarse_initial, clock, report);

  // Expand: spread each group's stationary mass uniformly over its fine
  // states, then polish with damped power sweeps (deadline permitting).
  std::vector<double> x(fine.num_states(), 1.0);
  markov::disaggregate(composed, coarse_x, x);
  std::vector<double> scratch(x.size());
  const double w = options_.multilevel.smoothing_damping;
  for (std::size_t s = 0; s < options_.degrade_smooth_sweeps; ++s) {
    if (clock.seconds() > options_.time_budget_seconds) break;
    fine.step(x, scratch);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = (1.0 - w) * x[i] + w * scratch[i];
    }
    normalize_l1(x);
  }
  // The accuracy loss of the coarser grid, measured where it matters: on
  // the fine chain.
  report.degradation_residual = solvers::stationary_residual(fine, x);
  report.residual = report.degradation_residual;
  return x;
}

RobustResult RobustSolver::solve(std::span<const double> initial) const {
  const Timer clock;
  obs::Span span("robust.solve");
  // One scope around the entire ladder: every rung (its options leave
  // threads at 0) inherits it, so fallbacks run at the same width.
  const par::ThreadScope thread_scope(options_.threads);
  const markov::MarkovChain& c = chain();
  solve_counter().add(1);

  RobustResult out;
  out.report.states = c.num_states();
  out.report.stochasticity_defect = input_defect_;
  out.report.repaired = repaired_ != nullptr;
  if (span.active()) {
    span.attr("states", c.num_states());
    span.attr("repaired", out.report.repaired);
  }

  // Memory admission gate: predict the solve's peak footprint with the
  // analytic capacity model *before* any solver allocation.  A prediction
  // over budget first tightens the degradation ceiling to the coarsest
  // hierarchy level whose prediction fits; when nothing fits the solve is
  // refused with a structured report — never an OOM kill mid-ladder.
  std::size_t admission_max_states = options_.max_states;
  if (options_.memory_budget_bytes > 0) {
    const auto predict = [](std::uint64_t states, std::uint64_t transitions) {
      obs::mem::CapacityInputs in;
      in.states = states;
      in.transitions = transitions;
      return obs::mem::estimate_capacity(in).peak_bytes();
    };
    const std::uint64_t fine_states = c.num_states();
    const std::uint64_t fine_nnz = c.num_transitions();
    out.report.memory_budget_bytes = options_.memory_budget_bytes;
    out.report.predicted_peak_bytes = predict(fine_states, fine_nnz);
    if (out.report.predicted_peak_bytes > options_.memory_budget_bytes) {
      // Coarse nnz is unknown before aggregation; scale the fine nnz by
      // the state ratio (floor: one transition per state).  Lumping keeps
      // the relative density, so this is the right order of magnitude.
      std::size_t fit_states = 0;
      if (!hierarchy_.empty()) {
        markov::Partition composed = hierarchy_.front();
        for (std::size_t level = 1;; ++level) {
          const std::uint64_t groups = composed.num_groups();
          const std::uint64_t nnz = std::max<std::uint64_t>(
              groups,
              fine_nnz * groups / std::max<std::uint64_t>(fine_states, 1));
          if (predict(groups, nnz) <= options_.memory_budget_bytes) {
            fit_states = groups;
            break;
          }
          if (level >= hierarchy_.size()) break;
          composed = composed.compose(hierarchy_[level]);
        }
      }
      if (fit_states > 0) {
        admission_max_states = std::min(admission_max_states, fit_states);
        out.report.degraded_for_memory = true;
        admission_degrade_counter().add(1);
        obs::evt::emit(
            "admission.degrade", obs::evt::Severity::kWarning,
            {{"predicted_peak_bytes", out.report.predicted_peak_bytes},
             {"memory_budget_bytes", out.report.memory_budget_bytes}});
      } else {
        out.report.admission_refused = true;
        admission_reject_counter().add(1);
        obs::evt::emit(
            "admission.refuse", obs::evt::Severity::kWarning,
            {{"predicted_peak_bytes", out.report.predicted_peak_bytes},
             {"memory_budget_bytes", out.report.memory_budget_bytes}});
        out.report.seconds = clock.seconds();
        if (span.active()) {
          span.attr("admission_refused", true);
          span.attr("predicted_peak_bytes", out.report.predicted_peak_bytes);
          span.attr("memory_budget_bytes", out.report.memory_budget_bytes);
        }
        return out;
      }
    }
  }

  // Durable-checkpoint restore: warm-start from the newest on-disk
  // generation that validates for this configuration.  Every rejected
  // generation is counted, noted on the trace, and degraded past — a bad
  // checkpoint costs warmth, never correctness.
  std::span<const double> start = initial;
  std::vector<double> restored;
  if (!options_.checkpoint_path.empty()) {
    ckpt::RestoreScan scan = ckpt::load_latest(
        options_.checkpoint_path, options_.checkpoint_keep,
        options_.checkpoint_config_hash, c.num_states());
    out.report.checkpoint_rejects = scan.rejected;
    if (scan.rejected > 0) {
      checkpoint_reject_counter().add(scan.rejected);
      obs::evt::emit("checkpoint.reject", obs::evt::Severity::kWarning,
                     {{"rejected", std::uint64_t{scan.rejected}},
                      {"detail", scan.reject_details.front()}});
      obs::Span note("robust.checkpoint_reject");
      if (note.active()) {
        note.attr("rejected", scan.rejected);
        note.attr("detail", std::string_view(scan.reject_details.front()));
      }
      for (const std::string& line : scan.reject_details) {
        std::fprintf(stderr, "stocdr: checkpoint rejected: %s\n",
                     line.c_str());
      }
    }
    if (scan.best.status == ckpt::LoadStatus::kOk && initial.empty()) {
      out.report.checkpoint_restored = true;
      out.report.checkpoint_restore_path = scan.restored_path;
      out.report.checkpoint_restore_iteration = scan.best.checkpoint.iteration;
      out.report.checkpoint_restore_residual = scan.best.checkpoint.residual;
      checkpoint_restore_counter().add(1);
      obs::evt::emit(
          "checkpoint.restore", obs::evt::Severity::kInfo,
          {{"iteration",
            std::uint64_t{scan.best.checkpoint.iteration}},
           {"residual", scan.best.checkpoint.residual}});
      restored = std::move(scan.best.checkpoint.iterate);
      start = restored;
    }
  }

  if (c.num_states() > admission_max_states && !hierarchy_.empty()) {
    out.distribution =
        run_degraded(admission_max_states, start, clock, out.report);
  } else {
    out.distribution = run_ladder(c, hierarchy_, start, clock, out.report);
  }
  out.report.seconds = clock.seconds();
  if (out.report.deadline_exceeded) {
    deadline_counter().add(1);
    obs::evt::emit("deadline.exceeded", obs::evt::Severity::kWarning,
                   {{"seconds", out.report.seconds}});
  }
  if (span.active()) {
    span.attr("converged", out.report.converged);
    span.attr("residual", out.report.residual);
    span.attr("rungs", out.report.rungs.size());
    span.attr("deadline_exceeded", out.report.deadline_exceeded);
    span.attr("degraded", out.report.degraded);
    span.attr("degraded_for_memory", out.report.degraded_for_memory);
    span.attr("checkpoint_restored", out.report.checkpoint_restored);
    span.attr("method", std::string_view(out.report.final_method));
  }
  return out;
}

RobustResult solve_stationary_robust(
    const markov::MarkovChain& chain,
    const std::vector<markov::Partition>& hierarchy,
    const RobustOptions& options, std::span<const double> initial) {
  const RobustSolver solver(chain, hierarchy, options);
  return solver.solve(initial);
}

RobustResult solve_stationary_robust(const solvers::StepOperator& op,
                                     const RobustOptions& options,
                                     std::span<const double> initial,
                                     std::uint64_t operator_storage_bytes,
                                     std::string_view representation) {
  STOCDR_REQUIRE(options.tolerance > 0.0,
                 "robust: tolerance must be positive");
  const Timer clock;
  obs::Span span("robust.solve");
  const par::ThreadScope thread_scope(options.threads);
  solve_counter().add(1);

  RobustResult out;
  const std::size_t n = op.size();
  out.report.states = n;
  out.report.representation = std::string(representation);
  if (span.active()) {
    span.attr("states", n);
    span.attr("representation", representation);
  }

  // Validation gate.  A matrix-free operator cannot be renormalized in
  // place, so anything beyond the repair tolerance is a rejection rather
  // than a repair; sub-tolerance defects are recorded and tolerated (the
  // power-family rungs re-normalize every iterate).
  out.report.stochasticity_defect = solvers::stochasticity_defect(op);
  if (out.report.stochasticity_defect > options.repair_tolerance) {
    throw PreconditionError(
        "robust: row-stochasticity defect " +
        sci(out.report.stochasticity_defect, 2) +
        " exceeds the repair tolerance " + sci(options.repair_tolerance, 2) +
        "; matrix-free operators cannot be renormalized in place");
  }

  // Memory admission gate: the matrix-free capacity model prices the
  // operator's own storage plus the iterate/shuffle workspace.  No grid
  // degradation exists on this path (there is no lumping hierarchy), so an
  // over-budget prediction refuses outright.  When the base footprint
  // fits, the GMRES restart is shrunk until its Krylov basis fits too —
  // the rung is skipped (never the solve refused) when no useful basis
  // does.
  std::size_t gmres_restart = 80;
  if (options.memory_budget_bytes > 0) {
    obs::mem::OperatorCapacityInputs cin;
    cin.states = n;
    cin.operator_bytes = operator_storage_bytes;
    out.report.memory_budget_bytes = options.memory_budget_bytes;
    out.report.predicted_peak_bytes =
        obs::mem::estimate_operator_capacity(cin).peak_bytes();
    if (out.report.predicted_peak_bytes > options.memory_budget_bytes) {
      out.report.admission_refused = true;
      admission_reject_counter().add(1);
      obs::evt::emit(
          "admission.refuse", obs::evt::Severity::kWarning,
          {{"predicted_peak_bytes", out.report.predicted_peak_bytes},
           {"memory_budget_bytes", out.report.memory_budget_bytes}});
      out.report.seconds = clock.seconds();
      if (span.active()) {
        span.attr("admission_refused", true);
        span.attr("predicted_peak_bytes", out.report.predicted_peak_bytes);
        span.attr("memory_budget_bytes", out.report.memory_budget_bytes);
      }
      return out;
    }
    const auto peak_with_basis = [&](std::size_t m) {
      obs::mem::OperatorCapacityInputs basis = cin;
      // Basis vectors plus the rhs / B x0 / update temporaries of the rung.
      basis.workspace_vectors += static_cast<double>(m + 4);
      return obs::mem::estimate_operator_capacity(basis).peak_bytes();
    };
    while (gmres_restart > 0 &&
           peak_with_basis(gmres_restart) > options.memory_budget_bytes) {
      gmres_restart = gmres_restart >= 20 ? gmres_restart / 2 : 0;
    }
  }

  // Durable-checkpoint restore, as on the explicit path.
  std::span<const double> start = initial;
  std::vector<double> restored;
  if (!options.checkpoint_path.empty()) {
    ckpt::RestoreScan scan =
        ckpt::load_latest(options.checkpoint_path, options.checkpoint_keep,
                          options.checkpoint_config_hash, n);
    out.report.checkpoint_rejects = scan.rejected;
    if (scan.rejected > 0) {
      checkpoint_reject_counter().add(scan.rejected);
      obs::evt::emit("checkpoint.reject", obs::evt::Severity::kWarning,
                     {{"rejected", std::uint64_t{scan.rejected}},
                      {"detail", scan.reject_details.front()}});
      obs::Span note("robust.checkpoint_reject");
      if (note.active()) {
        note.attr("rejected", scan.rejected);
        note.attr("detail", std::string_view(scan.reject_details.front()));
      }
      for (const std::string& line : scan.reject_details) {
        std::fprintf(stderr, "stocdr: checkpoint rejected: %s\n",
                     line.c_str());
      }
    }
    if (scan.best.status == ckpt::LoadStatus::kOk && initial.empty()) {
      out.report.checkpoint_restored = true;
      out.report.checkpoint_restore_path = scan.restored_path;
      out.report.checkpoint_restore_iteration = scan.best.checkpoint.iteration;
      out.report.checkpoint_restore_residual = scan.best.checkpoint.residual;
      checkpoint_restore_counter().add(1);
      obs::evt::emit(
          "checkpoint.restore", obs::evt::Severity::kInfo,
          {{"iteration",
            std::uint64_t{scan.best.checkpoint.iteration}},
           {"residual", scan.best.checkpoint.residual}});
      restored = std::move(scan.best.checkpoint.iterate);
      start = restored;
    }
  }

  out.distribution =
      run_operator_ladder(op, options, start, clock, gmres_restart,
                          out.report);
  out.report.seconds = clock.seconds();
  if (out.report.deadline_exceeded) {
    deadline_counter().add(1);
    obs::evt::emit("deadline.exceeded", obs::evt::Severity::kWarning,
                   {{"seconds", out.report.seconds}});
  }
  if (span.active()) {
    span.attr("converged", out.report.converged);
    span.attr("residual", out.report.residual);
    span.attr("rungs", out.report.rungs.size());
    span.attr("deadline_exceeded", out.report.deadline_exceeded);
    span.attr("checkpoint_restored", out.report.checkpoint_restored);
    span.attr("method", std::string_view(out.report.final_method));
  }
  return out;
}

}  // namespace stocdr::robust
