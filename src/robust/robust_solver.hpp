// Fault-tolerant solve orchestration: the fallback ladder.
//
// The paper's measures hinge on one stationary solve of a 1e5+-state chain;
// if that solve silently stalls or diverges, the reported BER is garbage.
// Stewart's numerical-Markov-chain treatment prescribes the remedy this
// harness implements: a ladder of methods ordered fast-but-fragile to
// slow-but-certain —
//
//   multilevel (auto-W)  ->  GMRES on the deflated stationary system
//                        ->  SOR sweeps  ->  damped power iteration
//                        ->  GTH direct (when the chain is small enough)
//
// — with each rung warm-started from the best checkpoint its predecessors
// reached, divergence sentinels cancelling rungs that go numerically wrong,
// wall-clock/iteration/state budgets bounding the worst case, and graceful
// degradation to a coarser phase grid (via the existing lumping machinery)
// when the chain exceeds the state ceiling.  Every decision is recorded in
// a RobustSolveReport and mirrored to the obs layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "markov/chain.hpp"
#include "markov/lumping.hpp"
#include "robust/report.hpp"
#include "robust/sentinel.hpp"
#include "solvers/aggregation.hpp"
#include "solvers/operator_stationary.hpp"
#include "solvers/options.hpp"

namespace stocdr::robust {

/// The methods a ladder rung can dispatch to.
enum class RungKind {
  kMultilevel,       ///< the paper's aggregation multigrid (auto V->W)
  kGmresStationary,  ///< GMRES on (I - P^T + (1/n) e e^T) x = e/n
  kSor,              ///< successive over-relaxation sweeps
  kJacobi,           ///< damped Jacobi sweeps (diagonal-only; matrix-free OK)
  kPower,            ///< damped power iteration (slow, unconditionally safe)
  kGthDirect,        ///< dense GTH; exact, O(n^3), gated by gth_size_limit
};

[[nodiscard]] const char* to_string(RungKind kind);

/// One rung of the ladder: a method plus its per-rung budgets.
struct RungSpec {
  RungKind kind = RungKind::kPower;
  /// Per-rung iteration budget (cycles / outer iterations / sweeps).
  std::size_t max_iterations = 200;
  /// Relaxation / damping where the method has one (SOR, power).
  double relaxation = 1.0;
};

/// Options of the robust orchestration harness.
struct RobustOptions {
  /// Convergence target on the L1 stationary residual ||P^T x - x||_1.
  double tolerance = 1e-12;

  /// Wall-clock budget across the *whole* ladder (validation, every rung,
  /// degradation).  When it expires the harness stops cooperatively and
  /// returns the last-good iterate with a structured timeout report — no
  /// exception.  Infinity = no deadline.
  double time_budget_seconds = std::numeric_limits<double>::infinity();

  /// The ladder, tried in order; empty selects default_ladder().
  std::vector<RungSpec> ladder;

  // Sentinel knobs (see SolveSentinel::Options).
  std::size_t sentinel_stride = 4;
  double divergence_factor = 1e3;
  double stall_factor = 0.98;
  std::size_t stall_window = 12;

  /// Input validation gate: a row-stochasticity defect at or below this is
  /// repaired (rows renormalized, counted in `robust.repairs`); beyond it
  /// the chain is rejected with a PreconditionError.
  double repair_tolerance = 1e-6;

  /// State-count ceiling: a chain larger than this is lumped down through
  /// the hierarchy until it fits (graceful degradation to a coarser phase
  /// grid), the coarse chain is solved, and the solution is expanded and
  /// re-smoothed — with the accuracy loss reported.  SIZE_MAX = no ceiling.
  std::size_t max_states = std::numeric_limits<std::size_t>::max();

  /// Damped power sweeps polishing the expanded coarse solution.
  std::size_t degrade_smooth_sweeps = 20;

  /// Heap budget for the solve, in bytes (0 = unlimited).  Before any
  /// solver allocation the harness predicts the peak footprint with the
  /// analytic capacity model (obs/mem/capacity.hpp); a prediction over
  /// budget first tries to degrade through the lumping hierarchy to a
  /// coarse size that fits, and refuses with a structured report (never an
  /// OOM) when even the coarsest level will not.  Refusals bump the
  /// `robust.admission_rejects` metric.
  std::size_t memory_budget_bytes = 0;

  /// Largest chain the GTH rung will accept (dense O(n^3)).
  std::size_t gth_size_limit = 4000;

  /// Worker threads for every rung's kernels, opened once around the whole
  /// ladder (0 = inherit STOCDR_THREADS; see solvers::SolverOptions).
  /// Rungs whose own options leave threads at 0 inherit this value.
  std::size_t threads = 0;

  /// Base options of the multilevel rung (tolerance/max_cycles/progress are
  /// overridden by the harness).
  solvers::MultilevelOptions multilevel;

  /// Caller's progress observer, forwarded from inside every rung.
  obs::OptionalProgress progress;

  /// Fault-injection hook for robustness tests (see robust/sentinel.hpp).
  std::optional<FaultInjector> fault_injector;

  // Durable checkpointing (robust/checkpoint).  When checkpoint_path is
  // non-empty the harness (a) warm-starts solve() from the newest valid
  // on-disk generation — unless the caller passed an explicit initial
  // guess — and (b) persists every checkpoint_period-th sentinel snapshot
  // back to that path with an fsync'd atomic write, keeping
  // checkpoint_keep generations.  Torn, corrupted, version-skewed, or
  // config-mismatched files degrade to the next generation or a cold
  // start (counted in `robust.checkpoint_rejects` and the report), never
  // a crash.  Note: while solving a *degraded* (coarsened) chain the
  // persisted iterates are coarse-sized and will be size-rejected by a
  // later full-size restore — an accepted cold start, not corruption.
  std::string checkpoint_path;
  std::size_t checkpoint_period = 16;  ///< snapshots per durable write
  std::size_t checkpoint_keep = 2;     ///< on-disk generations retained
  /// Stamps written files and gates restores; use the experiment manifest's
  /// config_hash so a checkpoint never leaks across configurations.  Empty
  /// disables the hash check on restore (files are still CRC-validated).
  std::string checkpoint_config_hash;

  /// Where the flight-recorder ring is dumped when a sentinel trips
  /// (divergence/NaN/stall) while STOCDR_TRACE_RING is active.  Empty
  /// defers to STOCDR_FLIGHT_DUMP, then "stocdr_flight.jsonl".  Only the
  /// first trip of a solve dumps; the path lands in
  /// RobustSolveReport::flight_dump_path.
  std::string flight_dump_path;
};

/// The default ladder: multilevel -> GMRES -> SOR -> damped power -> GTH.
[[nodiscard]] std::vector<RungSpec> default_ladder();

/// The default matrix-free ladder: GMRES -> Jacobi -> damped power.  The
/// rungs that require a materialized matrix (multilevel aggregation, SOR's
/// row sweeps, dense GTH) are absent; when an explicit-path ladder is run
/// through an operator those rungs are reported as skipped, not silently
/// dropped.
[[nodiscard]] std::vector<RungSpec> default_matrix_free_ladder();

/// The orchestration harness.  Holds a validated (possibly repaired) copy
/// of the chain when repair was needed, otherwise references the caller's.
class RobustSolver {
 public:
  /// Validates (and, within repair_tolerance, repairs) the chain.  The
  /// hierarchy follows solvers::build_grid_pair_hierarchy conventions and
  /// may be empty (the multilevel rung then degenerates; the rest of the
  /// ladder is unaffected, but no degradation is possible).
  /// Throws PreconditionError when the stochasticity defect exceeds
  /// options.repair_tolerance.
  RobustSolver(const markov::MarkovChain& chain,
               std::vector<markov::Partition> hierarchy,
               RobustOptions options = {});

  /// Runs the ladder.  Never throws for convergence failures, timeouts, or
  /// numerical faults — those come back as a structured report with the
  /// best iterate attached.  (Precondition violations still throw.)
  [[nodiscard]] RobustResult solve(std::span<const double> initial = {}) const;

  /// The chain the ladder actually iterates on (the repaired copy when the
  /// input had a defect).
  [[nodiscard]] const markov::MarkovChain& chain() const {
    return repaired_ ? *repaired_ : *chain_;
  }

  [[nodiscard]] bool repaired() const { return repaired_ != nullptr; }

 private:
  /// Runs the ladder on `chain` with `hierarchy`, appending to `report`.
  [[nodiscard]] std::vector<double> run_ladder(
      const markov::MarkovChain& chain,
      const std::vector<markov::Partition>& hierarchy,
      std::span<const double> initial, const Timer& clock,
      RobustSolveReport& report) const;

  /// Degraded path: lump below `max_states` (the options ceiling, possibly
  /// tightened by the memory admission gate), ladder the coarse chain,
  /// expand.
  [[nodiscard]] std::vector<double> run_degraded(
      std::size_t max_states, std::span<const double> initial,
      const Timer& clock, RobustSolveReport& report) const;

  const markov::MarkovChain* chain_;
  std::unique_ptr<markov::MarkovChain> repaired_;
  std::vector<markov::Partition> hierarchy_;
  RobustOptions options_;
  double input_defect_ = 0.0;
};

/// One-call form: construct a RobustSolver and solve.
[[nodiscard]] RobustResult solve_stationary_robust(
    const markov::MarkovChain& chain,
    const std::vector<markov::Partition>& hierarchy = {},
    const RobustOptions& options = {}, std::span<const double> initial = {});

/// Matrix-free form: runs the ladder through an abstract StepOperator (the
/// Kronecker descriptor path).  Rungs that need an explicit matrix
/// (multilevel, SOR, GTH) report FailureCause::kSkipped with an explanatory
/// detail; an empty options.ladder selects default_matrix_free_ladder().
/// No repair (a defect beyond repair_tolerance throws — the operator cannot
/// be renormalized in place) and no grid degradation (there is no lumping
/// hierarchy); the memory admission gate prices `operator_storage_bytes`
/// plus the iterate workspace via estimate_operator_capacity, and shrinks
/// the GMRES restart until the Krylov basis fits the budget (skipping the
/// rung when even a minimal basis will not).  `representation` lands in
/// RobustSolveReport::representation ("kronecker" for descriptor callers).
[[nodiscard]] RobustResult solve_stationary_robust(
    const solvers::StepOperator& op, const RobustOptions& options = {},
    std::span<const double> initial = {},
    std::uint64_t operator_storage_bytes = 0,
    std::string_view representation = "operator");

}  // namespace stocdr::robust
