// Durable on-disk checkpoints for solver iterates.
//
// The paper's corner sweeps iterate 1e5+-state chains for seconds to
// minutes per point; a killed process must restart warm from its last good
// iterate, not from a uniform vector.  PR 2's sentinel checkpoints are
// in-memory and die with the process — this module is their durable twin: a
// versioned binary file, written fsync'd-atomically (temp + rename via
// AtomicFileWriter), validated end to end on load, and *never* trusted
// blindly: a torn, bit-flipped, version-skewed, or configuration-mismatched
// file is rejected with a structured status (counted by the caller as
// `robust.checkpoint_rejects`) and the solve cold-starts.
//
// On-disk layout (native endianness — a checkpoint is a same-machine
// restart artifact, not an interchange format):
//
//   offset 0   magic           8 bytes  "STOCDRCP"
//              format_version  u32      kFormatVersion
//              hash_length     u32      bytes of config_hash that follow
//              iteration       u64      solver iteration of the iterate
//              residual        f64      L1 stationary residual of the iterate
//              vector_length   u64      number of f64 payload entries
//              config_hash     hash_length bytes (manifest config_hash)
//              payload         vector_length f64
//   trailer    crc32           u32      CRC-32 of every byte above
//              end marker      4 bytes  "CKPT"
//
// Generations: write_checkpoint(path, ..., keep) rotates path -> path.1 ->
// ... -> path.<keep-1> before committing the new file, and
// load_latest() scans newest to oldest, so one bad generation degrades to
// the next-best instead of to a cold start.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stocdr::robust::ckpt {

inline constexpr std::uint32_t kFormatVersion = 1;

/// One checkpointed iterate plus the facts needed to trust it.
struct Checkpoint {
  std::string config_hash;      ///< manifest config_hash of the experiment
  std::uint64_t iteration = 0;  ///< solver iteration the iterate came from
  double residual = 0.0;        ///< residual of the iterate when snapshotted
  std::vector<double> iterate;
};

/// Why a load did (or did not) produce a usable checkpoint.
enum class LoadStatus {
  kOk,              ///< validated end to end
  kMissing,         ///< no file at the path (a normal cold start)
  kTorn,            ///< file shorter than its own layout promises
  kCorrupt,         ///< bad magic / CRC mismatch / nonsense lengths
  kVersionSkew,     ///< valid magic, format_version != kFormatVersion
  kConfigMismatch,  ///< config_hash differs from the expected one
  kSizeMismatch,    ///< vector length differs from the expected state count
};

[[nodiscard]] const char* to_string(LoadStatus status);

/// True for every status that must count as a rejection (everything between
/// "usable" and "simply absent").
[[nodiscard]] inline bool is_reject(LoadStatus status) {
  return status != LoadStatus::kOk && status != LoadStatus::kMissing;
}

struct LoadResult {
  LoadStatus status = LoadStatus::kMissing;
  Checkpoint checkpoint;  ///< populated only when status == kOk
  std::string detail;     ///< human-readable rejection reason ("" when kOk)
};

/// Serializes `checkpoint` to the on-disk byte layout (header + payload +
/// CRC trailer).
[[nodiscard]] std::string serialize(const Checkpoint& checkpoint);

/// Validates and decodes one serialized checkpoint.  `expected_hash` and
/// `expected_size` gate config/shape compatibility; pass "" / 0 to skip
/// either check (the corruption checks always run).
[[nodiscard]] LoadResult deserialize(std::string_view bytes,
                                     std::string_view expected_hash,
                                     std::size_t expected_size);

/// The file backing generation `generation` of `path` (0 = path itself,
/// g >= 1 = "<path>.<g>").
[[nodiscard]] std::string generation_path(const std::string& path,
                                          std::size_t generation);

/// Writes `checkpoint` to `path` via an fsync'd atomic temp+rename,
/// rotating existing generations so the newest `keep_generations` files
/// survive.  Fault-injection sites: "checkpoint_write" (fail/corrupt/torn)
/// and the writer's own "io_write".  Throws stocdr::IoError on failure
/// (injected or real); the previous generations are untouched by a failed
/// write.
void write_checkpoint(const std::string& path, const Checkpoint& checkpoint,
                      std::size_t keep_generations = 1);

/// Loads and validates the checkpoint at exactly `path` (no generation
/// scan).  Fault-injection site: "checkpoint_load" (fail/corrupt).
[[nodiscard]] LoadResult load_checkpoint(const std::string& path,
                                         std::string_view expected_hash,
                                         std::size_t expected_size);

/// What a newest-to-oldest generation scan found.
struct RestoreScan {
  LoadResult best;            ///< first kOk generation, or the last failure
  std::string restored_path;  ///< file behind `best` when it is kOk
  std::size_t rejected = 0;   ///< generations rejected before (or without) kOk
  std::vector<std::string> reject_details;  ///< one line per rejection
};

/// Scans path, path.1, ..., path.<keep_generations-1> newest to oldest and
/// returns the first generation that validates, counting every rejection on
/// the way.  All generations missing => best.status == kMissing.
[[nodiscard]] RestoreScan load_latest(const std::string& path,
                                      std::size_t keep_generations,
                                      std::string_view expected_hash,
                                      std::size_t expected_size);

}  // namespace stocdr::robust::ckpt
