#include "robust/checkpoint/checkpoint.hpp"

#include <cstdio>
#include <cstring>

#include "robust/faultinject/faultinject.hpp"
#include "support/atomic_file.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace stocdr::robust::ckpt {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'O', 'C', 'D', 'R', 'C', 'P'};
constexpr char kEndMarker[4] = {'C', 'K', 'P', 'T'};
/// Layout bytes before the variable-length hash: magic + version +
/// hash_length + iteration + residual + vector_length.
constexpr std::size_t kFixedHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kTrailerBytes = 4 + 4;  // crc32 + end marker
/// A config_hash is 16 hex chars today; anything past this bound is not a
/// checkpoint we wrote.
constexpr std::uint32_t kMaxHashBytes = 256;

template <typename T>
void append_raw(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_raw(const char* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof value);
  return value;
}

LoadResult reject(LoadStatus status, std::string detail) {
  LoadResult result;
  result.status = status;
  result.detail = std::move(detail);
  return result;
}

}  // namespace

const char* to_string(LoadStatus status) {
  switch (status) {
    case LoadStatus::kOk: return "ok";
    case LoadStatus::kMissing: return "missing";
    case LoadStatus::kTorn: return "torn";
    case LoadStatus::kCorrupt: return "corrupt";
    case LoadStatus::kVersionSkew: return "version-skew";
    case LoadStatus::kConfigMismatch: return "config-mismatch";
    case LoadStatus::kSizeMismatch: return "size-mismatch";
  }
  return "unknown";
}

std::string serialize(const Checkpoint& checkpoint) {
  STOCDR_REQUIRE(checkpoint.config_hash.size() <= kMaxHashBytes,
                 "checkpoint: config_hash is implausibly long");
  std::string out;
  out.reserve(kFixedHeaderBytes + checkpoint.config_hash.size() +
              checkpoint.iterate.size() * sizeof(double) + kTrailerBytes);
  out.append(kMagic, sizeof kMagic);
  append_raw(out, kFormatVersion);
  append_raw(out, static_cast<std::uint32_t>(checkpoint.config_hash.size()));
  append_raw(out, checkpoint.iteration);
  append_raw(out, checkpoint.residual);
  append_raw(out, static_cast<std::uint64_t>(checkpoint.iterate.size()));
  out.append(checkpoint.config_hash);
  out.append(reinterpret_cast<const char*>(checkpoint.iterate.data()),
             checkpoint.iterate.size() * sizeof(double));
  const std::uint32_t crc = crc32(out);
  append_raw(out, crc);
  out.append(kEndMarker, sizeof kEndMarker);
  return out;
}

LoadResult deserialize(std::string_view bytes, std::string_view expected_hash,
                       std::size_t expected_size) {
  if (bytes.size() < kFixedHeaderBytes + kTrailerBytes) {
    return reject(LoadStatus::kTorn,
                  "file holds " + std::to_string(bytes.size()) +
                      " bytes, below the minimum checkpoint layout");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return reject(LoadStatus::kCorrupt, "bad magic (not a stocdr checkpoint)");
  }
  const auto version = read_raw<std::uint32_t>(bytes.data() + 8);
  if (version != kFormatVersion) {
    return reject(LoadStatus::kVersionSkew,
                  "format version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(kFormatVersion) + ")");
  }
  const auto hash_length = read_raw<std::uint32_t>(bytes.data() + 12);
  if (hash_length > kMaxHashBytes) {
    return reject(LoadStatus::kCorrupt,
                  "hash length " + std::to_string(hash_length) +
                      " exceeds the format bound");
  }
  const auto iteration = read_raw<std::uint64_t>(bytes.data() + 16);
  const auto residual = read_raw<double>(bytes.data() + 24);
  const auto vector_length = read_raw<std::uint64_t>(bytes.data() + 32);

  const std::size_t payload_bytes =
      static_cast<std::size_t>(vector_length) * sizeof(double);
  const std::size_t expected_bytes =
      kFixedHeaderBytes + hash_length + payload_bytes + kTrailerBytes;
  if (vector_length > (std::size_t{1} << 40) ||
      expected_bytes < kFixedHeaderBytes) {  // overflow guard
    return reject(LoadStatus::kCorrupt, "nonsense vector length");
  }
  if (bytes.size() < expected_bytes) {
    return reject(LoadStatus::kTorn,
                  "file holds " + std::to_string(bytes.size()) + " of " +
                      std::to_string(expected_bytes) + " promised bytes");
  }
  if (bytes.size() > expected_bytes) {
    return reject(LoadStatus::kCorrupt, "trailing bytes after the trailer");
  }

  const std::size_t crc_offset = expected_bytes - kTrailerBytes;
  if (std::memcmp(bytes.data() + crc_offset + 4, kEndMarker,
                  sizeof kEndMarker) != 0) {
    return reject(LoadStatus::kCorrupt, "end marker missing");
  }
  const auto stored_crc = read_raw<std::uint32_t>(bytes.data() + crc_offset);
  const std::uint32_t actual_crc = crc32(bytes.substr(0, crc_offset));
  if (stored_crc != actual_crc) {
    return reject(LoadStatus::kCorrupt, "CRC mismatch (bit rot or torn write)");
  }

  LoadResult result;
  result.checkpoint.config_hash =
      std::string(bytes.substr(kFixedHeaderBytes, hash_length));
  result.checkpoint.iteration = iteration;
  result.checkpoint.residual = residual;

  if (!expected_hash.empty() &&
      result.checkpoint.config_hash != expected_hash) {
    return reject(LoadStatus::kConfigMismatch,
                  "config_hash " + result.checkpoint.config_hash +
                      " does not match expected " + std::string(expected_hash));
  }
  if (expected_size != 0 && vector_length != expected_size) {
    return reject(LoadStatus::kSizeMismatch,
                  "iterate holds " + std::to_string(vector_length) +
                      " states, expected " + std::to_string(expected_size));
  }

  result.checkpoint.iterate.resize(static_cast<std::size_t>(vector_length));
  std::memcpy(result.checkpoint.iterate.data(),
              bytes.data() + kFixedHeaderBytes + hash_length, payload_bytes);
  result.status = LoadStatus::kOk;
  return result;
}

std::string generation_path(const std::string& path, std::size_t generation) {
  return generation == 0 ? path : path + "." + std::to_string(generation);
}

void write_checkpoint(const std::string& path, const Checkpoint& checkpoint,
                      std::size_t keep_generations) {
  if (keep_generations == 0) keep_generations = 1;

  std::string bytes;
  switch (fi::arm("checkpoint_write")) {
    case fi::Action::kFail:
      throw IoError("checkpoint: injected write failure for " + path);
    case fi::Action::kCorrupt:
      bytes = serialize(checkpoint);
      // Flip one payload byte: the CRC in the (already-computed) trailer no
      // longer matches, exactly like bit rot under the file.
      if (bytes.size() > kFixedHeaderBytes + kTrailerBytes) {
        bytes[kFixedHeaderBytes + checkpoint.config_hash.size()] ^= 0x40;
      }
      break;
    case fi::Action::kTorn:
      // Keep only half the file, as a crash mid-write on a non-atomic
      // filesystem would.
      bytes = serialize(checkpoint);
      bytes.resize(bytes.size() / 2);
      break;
    default:
      bytes = serialize(checkpoint);
      break;
  }

  // Rotate the surviving generations oldest-first, newest (path itself)
  // last: path.<k> -> path.<k+1>, then path -> path.1.  rename() of a
  // missing source simply fails, which is fine — gaps heal as new
  // checkpoints arrive.  Rotation is not atomic as a whole, but every file
  // it moves is individually complete, so a crash mid-rotation costs at
  // most one generation of history, never integrity.
  for (std::size_t g = keep_generations - 1; g >= 1; --g) {
    (void)std::rename(generation_path(path, g - 1).c_str(),
                      generation_path(path, g).c_str());
  }

  AtomicFileWriter writer(path);
  writer.write(bytes);
  writer.commit();
}

LoadResult load_checkpoint(const std::string& path,
                           std::string_view expected_hash,
                           std::size_t expected_size) {
  switch (fi::arm("checkpoint_load")) {
    case fi::Action::kFail:
      throw IoError("checkpoint: injected load failure for " + path);
    case fi::Action::kCorrupt:
      return reject(LoadStatus::kCorrupt,
                    "injected corruption loading " + path);
    default:
      break;
  }

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return reject(LoadStatus::kMissing, "no file at " + path);
  }
  std::string bytes;
  char buf[1 << 15];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, file)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(file);
  return deserialize(bytes, expected_hash, expected_size);
}

RestoreScan load_latest(const std::string& path, std::size_t keep_generations,
                        std::string_view expected_hash,
                        std::size_t expected_size) {
  if (keep_generations == 0) keep_generations = 1;
  RestoreScan scan;
  scan.best.status = LoadStatus::kMissing;
  for (std::size_t g = 0; g < keep_generations; ++g) {
    const std::string file = generation_path(path, g);
    LoadResult result;
    try {
      result = load_checkpoint(file, expected_hash, expected_size);
    } catch (const Error& e) {
      // An I/O failure (real or injected) reading one generation must not
      // abort the scan: count it and fall through to the next generation.
      result = reject(LoadStatus::kCorrupt, e.what());
    }
    if (result.status == LoadStatus::kOk) {
      scan.best = std::move(result);
      scan.restored_path = file;
      return scan;
    }
    if (is_reject(result.status)) {
      ++scan.rejected;
      scan.reject_details.push_back(file + ": " + to_string(result.status) +
                                    " — " + result.detail);
      scan.best = std::move(result);  // remember the most recent failure
    }
  }
  return scan;
}

}  // namespace stocdr::robust::ckpt
