#include "robust/sentinel.hpp"

#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "robust/faultinject/faultinject.hpp"
#include "support/text.hpp"

namespace stocdr::robust {

namespace {

obs::Counter& checkpoint_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::instance().counter("robust.checkpoints");
  return counter;
}

}  // namespace

obs::ProgressAction SolveSentinel::operator()(
    const obs::ProgressEvent& event) {
  ++events_seen_;
  double residual = event.residual;
  if (options_.fault_injector) {
    residual = (*options_.fault_injector)(event);
  }
  // The generic "solver" fault site: one arming per progress event, so
  // `solver:nan@120` corrupts exactly the 120th event of the solve.  This
  // is the plan-driven twin of the ad-hoc fault_injector above.
  switch (fi::arm("solver")) {
    case fi::Action::kNan:
      residual = std::numeric_limits<double>::quiet_NaN();
      break;
    case fi::Action::kStall:
      residual = 1.0;  // never improves: trips the stall watchdog
      break;
    default:
      break;
  }

  // Deadline: checked on every event so a blown budget stops the solve at
  // the very next tick.
  if (options_.clock != nullptr &&
      options_.clock->seconds() > options_.deadline_seconds) {
    verdict_ = FailureCause::kDeadlineExceeded;
    detail_ = "wall-clock budget of " + format_duration(
                  options_.deadline_seconds) + " exhausted at iteration " +
              std::to_string(event.iteration);
    return obs::ProgressAction::kStop;
  }

  // NaN/Inf: a numerical fault, never a candidate for checkpointing.
  if (!std::isfinite(residual)) {
    verdict_ = FailureCause::kNumericalFault;
    detail_ = "non-finite residual at iteration " +
              std::to_string(event.iteration);
    return obs::ProgressAction::kStop;
  }

  const bool check_now = events_seen_ % options_.stride == 0;
  if (check_now) {
    // Checkpoint: snapshot the iterate whenever it is the best seen.  The
    // event contract guarantees `residual` is the residual *of* the carried
    // iterate, so the pair stays consistent.
    if (options_.take_checkpoints && !event.iterate.empty() &&
        residual < checkpoint_residual_) {
      checkpoint_.assign(event.iterate.begin(), event.iterate.end());
      checkpoint_residual_ = residual;
      ++checkpoints_taken_;
      checkpoint_counter().add(1);
      if (options_.persist && --persist_countdown_ == 0) {
        persist_countdown_ =
            options_.persist_period == 0 ? 1 : options_.persist_period;
        (*options_.persist)(event.iteration, residual, checkpoint_);
      }
    }

    if (residual > options_.divergence_factor * best_residual_) {
      verdict_ = FailureCause::kDiverged;
      detail_ = "residual " + sci(residual, 2) + " exceeds " +
                sci(options_.divergence_factor, 1) + "x the best seen (" +
                sci(best_residual_, 2) + ")";
      return obs::ProgressAction::kStop;
    }

    if (options_.stall_factor > 0.0 &&
        residual >= options_.stall_factor * last_check_residual_) {
      if (++stalled_checks_ >= options_.stall_window) {
        verdict_ = FailureCause::kStalled;
        detail_ = std::to_string(stalled_checks_) +
                  " consecutive checks with residual reduction above " +
                  sci(options_.stall_factor, 2) + " (residual " +
                  sci(residual, 2) + ")";
        return obs::ProgressAction::kStop;
      }
    } else {
      stalled_checks_ = 0;
    }
    last_check_residual_ = residual;
  }
  if (residual < best_residual_) best_residual_ = residual;

  if (options_.forward) {
    return (*options_.forward)(event);
  }
  return obs::ProgressAction::kContinue;
}

}  // namespace stocdr::robust
