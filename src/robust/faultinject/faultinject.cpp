#include "robust/faultinject/faultinject.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/dist/event_log.hpp"
#include "obs/metrics.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"

namespace stocdr::robust::fi {

namespace {

obs::Counter& fired_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("faultinject.fired");
  return c;
}

std::mutex g_mutex;
std::unique_ptr<FaultPlan> g_plan;             // guarded by g_mutex
std::atomic<bool> g_active{false};             // fast no-plan path
std::once_flag g_env_once;

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

Action parse_action(std::string_view text) {
  if (text == "fail") return Action::kFail;
  if (text == "corrupt") return Action::kCorrupt;
  if (text == "torn") return Action::kTorn;
  if (text == "nan") return Action::kNan;
  if (text == "stall") return Action::kStall;
  if (text == "kill") return Action::kKill;
  throw PreconditionError("fault plan: unknown action \"" +
                          std::string(text) +
                          "\" (fail|corrupt|torn|nan|stall|kill)");
}

/// The support-layer seam: AtomicFileWriter cannot call up into this
/// library, so commits consult a function pointer we install whenever a
/// plan is active.  Returns the integer contract of stocdr::IoFaultHook.
int io_write_hook(const char* site) {
  switch (arm(site)) {
    case Action::kFail: return 1;
    case Action::kTorn: return 2;
    default: return 0;  // corrupt/nan/stall are meaningless for a commit
  }
}

void init_env_plan_locked() {
  const char* spec = std::getenv("STOCDR_FAULT_PLAN");
  if (spec == nullptr || spec[0] == '\0') return;
  try {
    g_plan = std::make_unique<FaultPlan>(FaultPlan::parse(spec));
  } catch (const Error& e) {
    // A malformed plan must not take the host process down — chaos tooling
    // stays opt-in and fail-safe.  Announce and run un-faulted.
    std::fprintf(stderr, "stocdr: ignoring malformed STOCDR_FAULT_PLAN: %s\n",
                 e.what());
    g_plan = nullptr;
    return;
  }
  if (!g_plan->empty()) {
    g_active.store(true, std::memory_order_release);
    set_io_fault_hook(&io_write_hook);
    std::fprintf(stderr, "stocdr: fault plan active: %s\n", spec);
  }
}

void ensure_env_plan() {
  std::call_once(g_env_once, [] {
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (g_plan == nullptr) init_env_plan_locked();
  });
}

/// Pulls the environment plan up at static-initialization time so sites
/// that fire before any robust-layer call (e.g. an AtomicFileWriter commit
/// in a bench) still see STOCDR_FAULT_PLAN.  This object lives in the same
/// translation unit as arm(), so any binary whose code can arm a site also
/// runs this initializer.
const bool g_eager_env_init = [] {
  ensure_env_plan();
  return true;
}();

}  // namespace

const char* to_string(Action action) {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kFail: return "fail";
    case Action::kCorrupt: return "corrupt";
    case Action::kTorn: return "torn";
    case Action::kNan: return "nan";
    case Action::kStall: return "stall";
    case Action::kKill: return "kill";
  }
  return "unknown";
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string_view clause =
        trim(spec.substr(start, semi == std::string_view::npos
                                    ? std::string_view::npos
                                    : semi - start));
    start = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw PreconditionError("fault plan: clause \"" + std::string(clause) +
                              "\" is not site:action[@N[+]]");
    }
    Directive d;
    d.site = std::string(trim(clause.substr(0, colon)));

    std::string_view rest = trim(clause.substr(colon + 1));
    const std::size_t at = rest.find('@');
    if (at == std::string_view::npos) {
      d.action = parse_action(rest);
      d.at = 1;
      d.sticky = true;  // bare form: fire on every arming
    } else {
      d.action = parse_action(trim(rest.substr(0, at)));
      std::string_view count = trim(rest.substr(at + 1));
      if (!count.empty() && count.back() == '+') {
        d.sticky = true;
        count = count.substr(0, count.size() - 1);
      }
      if (count.empty()) {
        throw PreconditionError("fault plan: \"" + std::string(clause) +
                                "\" has an empty @count");
      }
      std::uint64_t value = 0;
      for (const char c : count) {
        if (c < '0' || c > '9') {
          throw PreconditionError("fault plan: \"" + std::string(clause) +
                                  "\" has a non-numeric @count");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (value == 0) {
        throw PreconditionError("fault plan: @count is 1-based; \"" +
                                std::string(clause) + "\" uses @0");
      }
      d.at = value;
    }
    plan.directives_.push_back(std::move(d));
  }
  return plan;
}

Action FaultPlan::arm(std::string_view site) {
  SiteCount* count = nullptr;
  for (SiteCount& c : counts_) {
    if (c.site == site) {
      count = &c;
      break;
    }
  }
  if (count == nullptr) {
    counts_.push_back({std::string(site), 0});
    count = &counts_.back();
  }
  const std::uint64_t hit = ++count->hits;
  for (const Directive& d : directives_) {
    if (d.site != site) continue;
    if (d.sticky ? hit >= d.at : hit == d.at) {
      ++fired_;
      return d.action;
    }
  }
  return Action::kNone;
}

std::uint64_t FaultPlan::hits(std::string_view site) const {
  for (const SiteCount& c : counts_) {
    if (c.site == site) return c.hits;
  }
  return 0;
}

Action arm(std::string_view site) {
  if (!g_active.load(std::memory_order_acquire)) return Action::kNone;
  Action action = Action::kNone;
  std::uint64_t hit = 0;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (g_plan == nullptr) return Action::kNone;
    action = g_plan->arm(site);
    hit = g_plan->hits(site);
  }
  if (action == Action::kNone) return action;
  fired_counter().add(1);
  std::fprintf(stderr, "stocdr: fault injected: site=%.*s action=%s hit=%llu\n",
               static_cast<int>(site.size()), site.data(), to_string(action),
               static_cast<unsigned long long>(hit));
  // Site "event_append" is the event log's own write path: publishing a
  // fault.fired record for it would re-arm the site from inside the log
  // (the log's reentrancy guard would drop it anyway — skip the noise).
  if (site != "event_append") {
    obs::evt::emit("fault.fired", obs::evt::Severity::kWarning,
                   {{"site", std::string(site)},
                    {"action", std::string(to_string(action))},
                    {"hit", hit}});
  }
  if (action == Action::kKill) {
    std::fflush(nullptr);  // a deterministic chaos kill, not a real crash:
    std::raise(SIGKILL);   // flush stdio so logs up to the kill survive
  }
  return action;
}

void install_plan(std::optional<FaultPlan> plan) {
  // Pin the env lookup first so a later lazy init cannot overwrite an
  // explicitly installed (or explicitly cleared) plan.
  ensure_env_plan();
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (plan.has_value() && !plan->empty()) {
    g_plan = std::make_unique<FaultPlan>(std::move(*plan));
    g_active.store(true, std::memory_order_release);
    set_io_fault_hook(&io_write_hook);
  } else {
    g_plan = nullptr;
    g_active.store(false, std::memory_order_release);
  }
}

bool plan_active() {
  ensure_env_plan();
  return g_active.load(std::memory_order_acquire);
}

}  // namespace stocdr::robust::fi
