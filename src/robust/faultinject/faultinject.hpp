// Deterministic fault injection: one seeded plan, many sites.
//
// Chaos testing a crash-consistent substrate (checkpoints, journals,
// fsync'd artifact writes) needs faults that fire at *exactly* the same
// point on every run — a flaky kill proves nothing, a seeded one proves
// resume is bit-identical.  A FaultPlan is a parsed list of directives
//
//   STOCDR_FAULT_PLAN="io_write:fail@3;checkpoint_load:corrupt@1;solver:nan@120"
//
// where each directive is `site:action[@N | @N+]`:
//
//   site    a named injection point the code arms as it runs; the sites
//           registered today are
//             io_write         AtomicFileWriter::commit (every artifact)
//             checkpoint_write durable checkpoint serialization
//             checkpoint_load  durable checkpoint deserialization
//             journal_append   one sweep-journal line append
//             solver           one solver progress event (via SolveSentinel)
//             sweep_point      start of one uncached sweep-runner point
//   action  fail | corrupt | torn | nan | stall | kill — how the site
//           misbehaves (sites document which actions they honor; `kill`
//           raises SIGKILL from any site and is handled by the engine)
//   @N      fire on exactly the Nth arming of that site (1-based)
//   @N+     fire on the Nth arming and every one after it
//   (none)  shorthand for @1+ — fire on every arming
//
// The same plan grammar backs `cdr_analyzer --inject-fault`, the chaos CI
// job, the corruption-matrix tests, and (future) stocdr-serve admission
// tests: one source of truth for how faults enter the system.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stocdr::robust::fi {

/// What a firing directive asks the armed site to do.
enum class Action {
  kNone,     ///< no directive fired at this arming
  kFail,     ///< fail the operation (throw its natural IoError)
  kCorrupt,  ///< flip bits in the payload and carry on
  kTorn,     ///< persist only a prefix, as a mid-write crash would
  kNan,      ///< report a NaN residual (solver site)
  kStall,    ///< report a never-improving residual (solver site)
  kKill,     ///< raise SIGKILL (engine-handled; any site)
};

[[nodiscard]] const char* to_string(Action action);

/// One parsed `site:action@N[+]` clause.
struct Directive {
  std::string site;
  Action action = Action::kNone;
  std::uint64_t at = 1;  ///< 1-based arming count the directive fires on
  bool sticky = false;   ///< true for `@N+` and the bare-`site:action` form
};

/// A parsed fault plan plus its per-site arming counters.  Deterministic by
/// construction: counters advance only when a site is armed, so the same
/// binary + plan fires at the same operation on every run.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the STOCDR_FAULT_PLAN grammar above.  Throws
  /// stocdr::PreconditionError on malformed specs (unknown action, bad
  /// count, empty site); an empty/blank spec parses to an empty plan.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// Arms `site`: advances its counter and returns the action of the first
  /// directive that fires at this count (kNone otherwise).
  [[nodiscard]] Action arm(std::string_view site);

  [[nodiscard]] bool empty() const { return directives_.empty(); }
  [[nodiscard]] const std::vector<Directive>& directives() const {
    return directives_;
  }

  /// Total armings observed for `site` so far.
  [[nodiscard]] std::uint64_t hits(std::string_view site) const;

  /// Total directives fired so far.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

 private:
  struct SiteCount {
    std::string site;
    std::uint64_t hits = 0;
  };

  std::vector<Directive> directives_;
  std::vector<SiteCount> counts_;
  std::uint64_t fired_ = 0;
};

/// Arms `site` against the process-global plan.  The first call initializes
/// the plan from STOCDR_FAULT_PLAN (unset/empty = no plan; the no-plan fast
/// path is one atomic load).  A firing directive is announced on stderr and
/// counted in the `faultinject.fired` metric; Action::kKill is executed
/// here (SIGKILL) and never returned.
[[nodiscard]] Action arm(std::string_view site);

/// Installs `plan` as the process-global plan (std::nullopt uninstalls and
/// re-arms nothing).  Replaces any environment-selected plan; used by tests
/// and by `cdr_analyzer --inject-fault`.  Not thread-safe against
/// concurrent arm() — install before starting work, as the env init does.
void install_plan(std::optional<FaultPlan> plan);

/// True when a plan (environment or installed) is active.
[[nodiscard]] bool plan_active();

}  // namespace stocdr::robust::fi
