#include "robust/journal/journal.hpp"

#include <unistd.h>

#include <cstdio>

#include "obs/analyze/json_parse.hpp"
#include "obs/dist/event_log.hpp"
#include "obs/json.hpp"
#include "robust/faultinject/faultinject.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"

namespace stocdr::robust::jnl {

namespace {

/// Reads the whole file at `path` ("" when absent/unreadable — both mean a
/// fresh journal).
std::string slurp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string bytes;
  char buf[1 << 15];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, file)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(file);
  return bytes;
}

std::string header_line(std::string_view config_hash,
                        std::size_t points_total) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("journal", "stocdr-sweep");
  w.field("version", std::uint64_t{kJournalVersion});
  w.field("config_hash", config_hash);
  if (points_total > 0) {
    w.field("points_total", static_cast<std::uint64_t>(points_total));
  }
  w.end_object();
  return std::move(w).str();
}

}  // namespace

SweepJournal::SweepJournal(std::string path, std::string config_hash,
                           std::size_t points_total)
    : path_(std::move(path)),
      config_hash_(std::move(config_hash)),
      points_total_(points_total) {
  STOCDR_REQUIRE(!path_.empty(), "SweepJournal: path must not be empty");
  recover();
  const bool need_header = stats_.fresh;
  if (need_header) points_total_ = points_total;  // recover() may have reset
  file_ = std::fopen(path_.c_str(), need_header ? "wb" : "ab");
  if (file_ == nullptr) {
    throw IoError("SweepJournal: cannot open " + path_);
  }
  if (need_header) {
    append_line(header_line(config_hash_, points_total_), "journal header");
  } else if (stats_.resumed > 0 || stats_.torn_tail_bytes > 0 ||
             stats_.malformed_lines > 0) {
    obs::evt::emit(
        "journal.recovered", obs::evt::Severity::kInfo,
        {{"path", path_},
         {"resumed", std::uint64_t{stats_.resumed}},
         {"torn_tail_bytes", std::uint64_t{stats_.torn_tail_bytes}},
         {"malformed_lines", std::uint64_t{stats_.malformed_lines}}});
  }
}

SweepJournal::~SweepJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void SweepJournal::recover() {
  const std::string bytes = slurp(path_);
  if (bytes.empty()) {
    stats_.fresh = true;
    return;
  }

  // Split into lines, remembering the byte offset just past each good
  // line's newline so a torn tail can be truncated away precisely.
  std::size_t good_end = 0;   // file offset after the last good line
  std::size_t line_no = 0;
  bool header_ok = false;
  std::size_t start = 0;
  while (start < bytes.size()) {
    const std::size_t newline = bytes.find('\n', start);
    const bool terminated = newline != std::string::npos;
    const std::string_view line(bytes.data() + start,
                                (terminated ? newline : bytes.size()) - start);
    const std::size_t line_end = terminated ? newline + 1 : bytes.size();
    const bool is_tail = !terminated || line_end == bytes.size();
    ++line_no;

    const auto parsed = obs::analyze::parse_json(line);
    bool good = false;
    if (parsed.has_value() && parsed->is_object()) {
      if (line_no == 1) {
        // Header line: must be ours, right version, right config.
        const auto* kind = parsed->find("journal");
        const auto* version = parsed->find("version");
        const auto* hash = parsed->find("config_hash");
        const std::uint64_t v =
            version != nullptr ? version->uint_or(0) : 0;
        if (kind != nullptr && kind->string_or("") == "stocdr-sweep" &&
            v >= kOldestReplayableVersion && v <= kJournalVersion &&
            hash != nullptr && hash->string_or("") == config_hash_) {
          good = terminated;
          header_ok = good;
          if (good) {
            if (const auto* total = parsed->find("points_total")) {
              points_total_ = static_cast<std::size_t>(total->uint_or(0));
            }
          }
        } else {
          // A well-formed header for some *other* sweep: the whole journal
          // is for a different configuration.  Start fresh rather than
          // replaying foreign results.
          stats_ = JournalStats{};
          stats_.fresh = true;
          stats_.config_mismatch = true;
          return;
        }
      } else {
        const auto* point = parsed->find("point");
        const auto* result = parsed->find("result");
        if (point != nullptr && point->type ==
                obs::analyze::JsonValue::Type::kString &&
            result != nullptr) {
          good = terminated;
          if (good) {
            Record record;
            record.point = point->string;
            record.result = obs::analyze::to_json_text(*result);
            // v2 ledger entry; absent (v1) leaves stats.valid false.
            if (const auto* stats = parsed->find("stats");
                stats != nullptr && stats->is_object()) {
              record.stats.valid = true;
              if (const auto* f = stats->find("wall_seconds")) {
                record.stats.wall_seconds = f->number_or(0.0);
              }
              if (const auto* f = stats->find("iterations")) {
                record.stats.iterations = f->uint_or(0);
              }
              if (const auto* f = stats->find("residual")) {
                record.stats.residual = f->number_or(0.0);
              }
              if (const auto* f = stats->find("peak_bytes")) {
                record.stats.peak_bytes = f->uint_or(0);
              }
            }
            records_.push_back(std::move(record));
          }
        }
      }
    }

    if (good) {
      good_end = line_end;
    } else if (is_tail) {
      // Torn tail: exactly what a crash mid-append leaves behind.  Truncate
      // back to the last good boundary so future appends stay well-formed.
      stats_.torn_tail_bytes = bytes.size() - good_end;
      if (::truncate(path_.c_str(), static_cast<off_t>(good_end)) != 0) {
        throw IoError("SweepJournal: cannot truncate torn tail of " + path_);
      }
    } else if (line_no == 1) {
      // First line malformed with more lines after it: not a journal we can
      // trust at all.  Start fresh.
      stats_ = JournalStats{};
      stats_.fresh = true;
      stats_.config_mismatch = true;
      return;
    } else {
      ++stats_.malformed_lines;  // interior bit rot: count, skip, keep going
    }
    start = line_end;
  }

  if (!header_ok) {
    // Keep the damage counters (they describe real on-disk damage) but
    // nothing is replayable without a validated header.
    records_.clear();
    stats_.resumed = 0;
    stats_.fresh = true;
    return;
  }
  stats_.resumed = records_.size();
}

const std::string* SweepJournal::result(std::string_view point_key) const {
  for (const Record& record : records_) {
    if (record.point == point_key) return &record.result;
  }
  return nullptr;
}

const PointStats* SweepJournal::point_stats(
    std::string_view point_key) const {
  for (const Record& record : records_) {
    if (record.point == point_key) {
      return record.stats.valid ? &record.stats : nullptr;
    }
  }
  return nullptr;
}

void SweepJournal::append_line(const std::string& line, const char* what) {
  std::size_t persist = line.size();
  bool torn = false;
  switch (fi::arm("journal_append")) {
    case fi::Action::kFail:
      throw IoError("SweepJournal: injected append failure for " + path_);
    case fi::Action::kTorn:
      persist = line.size() / 2;  // no newline: a mid-append crash
      torn = true;
      break;
    default:
      break;
  }
  if (std::fwrite(line.data(), 1, persist, file_) != persist ||
      (!torn && std::fputc('\n', file_) == EOF)) {
    throw IoError("SweepJournal: short write appending to " + path_);
  }
  flush_and_sync(file_, std::string(what) + " in " + path_);
  if (torn) {
    // The prefix is durably on disk, exactly as a crash would leave it; the
    // in-memory record must NOT be kept, so surface the failure.
    throw IoError("SweepJournal: injected torn append for " + path_);
  }
}

void SweepJournal::append(std::string_view point_key,
                          std::string_view result_json,
                          const PointStats& stats) {
  STOCDR_REQUIRE(!has(point_key),
                 "SweepJournal: point appended twice: " +
                     std::string(point_key));
  obs::JsonWriter w;
  w.begin_object();
  w.field("point", point_key);
  w.key("result");
  w.raw_value(result_json);
  if (stats.valid) {
    w.key("stats");
    w.begin_object();
    w.field("wall_seconds", stats.wall_seconds);
    w.field("iterations", stats.iterations);
    w.field("residual", stats.residual);
    w.field("peak_bytes", stats.peak_bytes);
    w.end_object();
  }
  w.end_object();
  append_line(std::move(w).str(), "point record");
  Record record;
  record.point = std::string(point_key);
  record.result = std::string(result_json);
  record.stats = stats;
  records_.push_back(std::move(record));
}

}  // namespace stocdr::robust::jnl
