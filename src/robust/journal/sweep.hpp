// Resumable sweep runner on top of SweepJournal.
//
// Drives an ordered list of named sweep points through a caller-supplied
// solve function, journaling each completed point before moving to the
// next.  Killed at any moment (including by the `sweep_point:kill@N` fault
// directive), a rerun with the same journal path and config_hash skips the
// completed prefix — and because the journal records only deterministic
// result JSON, the artifact assembled afterwards is byte-identical to an
// uninterrupted run's.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "robust/journal/journal.hpp"
#include "support/function_ref.hpp"

namespace stocdr::robust::jnl {

struct SweepOutcome {
  std::vector<std::string> results;  ///< result JSON per point, sweep order
  std::size_t computed = 0;          ///< points solved this run
  std::size_t skipped = 0;           ///< points replayed from the journal
  JournalStats journal;              ///< what recovery found at open
};

/// Runs every point of `point_keys` in order: journaled points are replayed
/// without solving; the rest are solved via `solve_point` (which must
/// return a complete, deterministic JSON value) and journaled fsync'd
/// before the next point starts.  Fault-injection site "sweep_point" is
/// armed once per *solved* point (fail throws; kill is engine-handled).
///
/// Progress/ETA ledger: each solved point is timed (wall seconds, peak RSS,
/// and iterations/residual parsed from the result JSON) and recorded as the
/// journal's v2 stats.  Live gauges `sweep.points_total`,
/// `sweep.points_done`, and `sweep.eta_seconds` plus the
/// `sweep.point_seconds` histogram track the run; a `sweep.progress` event
/// follows every point.  The ETA prices remaining points from
/// `predicted_costs` (one relative cost per point — e.g. the capacity
/// model's predicted transition count; empty = uniform), calibrated
/// against the measured seconds-per-cost of the points solved so far
/// (including replayed points whose recovered stats carry wall seconds).
/// The measurements live strictly OUTSIDE the result JSON, so resumed and
/// uninterrupted runs still assemble byte-identical artifacts.
[[nodiscard]] SweepOutcome run_sweep(
    const std::string& journal_path, const std::string& config_hash,
    const std::vector<std::string>& point_keys,
    FunctionRef<std::string(const std::string&)> solve_point,
    const std::vector<double>& predicted_costs = {});

/// Serializes a finished sweep to `path` via an fsync'd atomic write.  The
/// bytes depend only on (bench_name, config_hash, point_keys, results) — no
/// timestamps, no host facts — so resumed and uninterrupted runs of the
/// same sweep produce identical artifacts.
void write_sweep_artifact(const std::string& path, std::string_view bench_name,
                          std::string_view config_hash,
                          const std::vector<std::string>& point_keys,
                          const std::vector<std::string>& results);

}  // namespace stocdr::robust::jnl
