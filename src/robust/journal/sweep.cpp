#include "robust/journal/sweep.hpp"

#include "obs/json.hpp"
#include "robust/faultinject/faultinject.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"

namespace stocdr::robust::jnl {

SweepOutcome run_sweep(const std::string& journal_path,
                       const std::string& config_hash,
                       const std::vector<std::string>& point_keys,
                       FunctionRef<std::string(const std::string&)>
                           solve_point) {
  SweepJournal journal(journal_path, config_hash);
  SweepOutcome outcome;
  outcome.journal = journal.stats();
  outcome.results.reserve(point_keys.size());
  for (const std::string& key : point_keys) {
    if (const std::string* cached = journal.result(key)) {
      outcome.results.push_back(*cached);
      ++outcome.skipped;
      continue;
    }
    if (fi::arm("sweep_point") == fi::Action::kFail) {
      throw IoError("sweep: injected failure at point " + key);
    }
    std::string result = solve_point(key);
    journal.append(key, result);
    outcome.results.push_back(std::move(result));
    ++outcome.computed;
  }
  return outcome;
}

void write_sweep_artifact(const std::string& path, std::string_view bench_name,
                          std::string_view config_hash,
                          const std::vector<std::string>& point_keys,
                          const std::vector<std::string>& results) {
  STOCDR_REQUIRE(point_keys.size() == results.size(),
                 "write_sweep_artifact: one result per point required");
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "stocdr-sweep-artifact-v1");
  w.field("bench", bench_name);
  w.field("config_hash", config_hash);
  w.field("points_total", static_cast<std::uint64_t>(point_keys.size()));
  w.key("points");
  w.begin_array();
  for (std::size_t i = 0; i < point_keys.size(); ++i) {
    w.begin_object();
    w.field("key", point_keys[i]);
    w.key("result");
    w.raw_value(results[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  AtomicFileWriter writer(path);
  writer.write(std::move(w).str());
  writer.write("\n");
  writer.commit();
}

}  // namespace stocdr::robust::jnl
