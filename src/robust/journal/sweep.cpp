#include "robust/journal/sweep.hpp"

#include <chrono>

#include "obs/analyze/json_parse.hpp"
#include "obs/dist/event_log.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "robust/faultinject/faultinject.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"

namespace stocdr::robust::jnl {

namespace {

/// Iterations/residual are conventions of this repo's deterministic point
/// JSON; a result without them just leaves the ledger fields zero.
void harvest_result_fields(const std::string& result_json, PointStats& stats) {
  const auto parsed = obs::analyze::parse_json(result_json);
  if (!parsed.has_value() || !parsed->is_object()) return;
  if (const auto* v = parsed->find("iterations")) {
    stats.iterations = v->uint_or(0);
  }
  if (const auto* v = parsed->find("residual")) {
    stats.residual = v->number_or(0.0);
  }
}

}  // namespace

SweepOutcome run_sweep(const std::string& journal_path,
                       const std::string& config_hash,
                       const std::vector<std::string>& point_keys,
                       FunctionRef<std::string(const std::string&)>
                           solve_point,
                       const std::vector<double>& predicted_costs) {
  SweepJournal journal(journal_path, config_hash, point_keys.size());
  SweepOutcome outcome;
  outcome.journal = journal.stats();
  outcome.results.reserve(point_keys.size());

  // Progress/ETA bookkeeping.  Costs are relative units (uniform when the
  // caller has no model); the calibration seconds-per-cost rate comes from
  // every point with a measured duration — this run's, or a resumed v2
  // record's.
  auto cost_of = [&](std::size_t i) {
    return predicted_costs.size() == point_keys.size() &&
                   predicted_costs[i] > 0.0
               ? predicted_costs[i]
               : 1.0;
  };
  double total_cost = 0.0;
  for (std::size_t i = 0; i < point_keys.size(); ++i) total_cost += cost_of(i);
  double done_cost = 0.0;
  double calibrated_cost = 0.0;     ///< cost of points with known seconds
  double calibrated_seconds = 0.0;  ///< their summed wall seconds

  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  obs::Gauge& points_total_gauge = registry.gauge("sweep.points_total");
  obs::Gauge& points_done_gauge = registry.gauge("sweep.points_done");
  obs::Gauge& eta_gauge = registry.gauge("sweep.eta_seconds");
  obs::Histogram& point_seconds = registry.histogram("sweep.point_seconds");
  points_total_gauge.set(static_cast<double>(point_keys.size()));
  points_done_gauge.set(0.0);

  auto eta_seconds = [&]() {
    const double remaining = total_cost - done_cost;
    if (remaining <= 0.0) return 0.0;
    if (calibrated_cost <= 0.0 || calibrated_seconds <= 0.0) return 0.0;
    return remaining * (calibrated_seconds / calibrated_cost);
  };

  obs::evt::emit("sweep.start", obs::evt::Severity::kInfo,
                 {{"journal", journal_path},
                  {"points_total", std::uint64_t{point_keys.size()}},
                  {"resumed", std::uint64_t{outcome.journal.resumed}}});

  std::size_t done = 0;
  for (std::size_t i = 0; i < point_keys.size(); ++i) {
    const std::string& key = point_keys[i];
    bool replayed = false;
    double wall = 0.0;
    if (const std::string* cached = journal.result(key)) {
      outcome.results.push_back(*cached);
      ++outcome.skipped;
      replayed = true;
      if (const PointStats* stats = journal.point_stats(key)) {
        wall = stats->wall_seconds;
      }
    } else {
      if (fi::arm("sweep_point") == fi::Action::kFail) {
        throw IoError("sweep: injected failure at point " + key);
      }
      obs::PeakRssSampler rss;
      rss.begin();
      const auto start = std::chrono::steady_clock::now();
      std::string result = solve_point(key);
      PointStats stats;
      stats.valid = true;
      stats.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      stats.peak_bytes = rss.peak();
      harvest_result_fields(result, stats);
      wall = stats.wall_seconds;
      journal.append(key, result, stats);
      outcome.results.push_back(std::move(result));
      ++outcome.computed;
      point_seconds.observe(wall);
    }
    ++done;
    done_cost += cost_of(i);
    if (wall > 0.0) {
      calibrated_cost += cost_of(i);
      calibrated_seconds += wall;
    }
    // Reasserted per point, not just set once up front: a solve_point that
    // resets the process-global registry for per-case isolation (the bench
    // harness does) would otherwise zero the total while done kept counting.
    points_total_gauge.set(static_cast<double>(point_keys.size()));
    points_done_gauge.set(static_cast<double>(done));
    const double eta = eta_seconds();
    eta_gauge.set(eta);
    obs::evt::emit("sweep.progress", obs::evt::Severity::kInfo,
                   {{"point", key},
                    {"points_done", std::uint64_t{done}},
                    {"points_total", std::uint64_t{point_keys.size()}},
                    {"replayed", std::uint64_t{replayed ? 1u : 0u}},
                    {"wall_seconds", wall},
                    {"eta_seconds", eta}});
  }

  eta_gauge.set(0.0);
  obs::evt::emit("sweep.done", obs::evt::Severity::kInfo,
                 {{"journal", journal_path},
                  {"computed", std::uint64_t{outcome.computed}},
                  {"replayed", std::uint64_t{outcome.skipped}}});
  return outcome;
}

void write_sweep_artifact(const std::string& path, std::string_view bench_name,
                          std::string_view config_hash,
                          const std::vector<std::string>& point_keys,
                          const std::vector<std::string>& results) {
  STOCDR_REQUIRE(point_keys.size() == results.size(),
                 "write_sweep_artifact: one result per point required");
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "stocdr-sweep-artifact-v1");
  w.field("bench", bench_name);
  w.field("config_hash", config_hash);
  w.field("points_total", static_cast<std::uint64_t>(point_keys.size()));
  w.key("points");
  w.begin_array();
  for (std::size_t i = 0; i < point_keys.size(); ++i) {
    w.begin_object();
    w.field("key", point_keys[i]);
    w.key("result");
    w.raw_value(results[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  AtomicFileWriter writer(path);
  writer.write(std::move(w).str());
  writer.write("\n");
  writer.commit();
}

}  // namespace stocdr::robust::jnl
