// Append-only, crash-recoverable sweep journal.
//
// A parameter sweep (fig4's noise ladder, fig5's counter-length ladder, a
// cdr_analyzer batch) is a list of independent points, each seconds to
// minutes of solve time.  The journal makes a killed sweep resumable: every
// completed point appends one JSONL record — fsync'd before the runner
// moves on — and a restarted run skips every point whose record survived.
//
// File format (JSONL, one JSON object per '\n'-terminated line):
//
//   line 1   {"journal":"stocdr-sweep","version":1,"config_hash":"<hash>"}
//   line 2+  {"point":"<point key>","result":<deterministic result JSON>}
//
// The header's config_hash keys the journal to one sweep configuration: a
// journal written under a different configuration is discarded (counted as
// config_mismatch), never silently replayed.  Recovery tolerates exactly
// the damage a crash can cause: a torn *trailing* line (no newline, or
// malformed JSON on the final line) is counted and truncated away so later
// appends start on a clean boundary; a malformed *interior* line (bit rot)
// is counted and skipped.  Every record is fsync'd at append time, so the
// journal never promises a point the filesystem might still lose.
//
// Resume is bit-identical by construction: records hold only deterministic
// result JSON (no wall-clock, no manifest), so an artifact assembled from
// journal records in point order is byte-equal whether the sweep ran
// straight through or died and resumed ten times.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stocdr::robust::jnl {

inline constexpr std::uint32_t kJournalVersion = 1;

/// What journal recovery found (and repaired) at open time.
struct JournalStats {
  std::size_t resumed = 0;          ///< usable point records loaded
  std::size_t torn_tail_bytes = 0;  ///< bytes truncated off a torn tail
  std::size_t malformed_lines = 0;  ///< interior lines counted and skipped
  bool fresh = false;               ///< started empty (no usable journal)
  bool config_mismatch = false;     ///< prior journal keyed to another config
};

/// One open journal: recovers on construction, then appends fsync'd records.
class SweepJournal {
 public:
  /// Opens (or creates) the journal at `path`, keyed to `config_hash`.
  /// Recovers any prior records per the rules above.  Fault-injection site
  /// "journal_append" covers every append, including the header.  Throws
  /// stocdr::IoError when the file cannot be opened or written.
  SweepJournal(std::string path, std::string config_hash);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  [[nodiscard]] const JournalStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& config_hash() const { return config_hash_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// The recorded result JSON for `point_key`, or nullptr if the point has
  /// not completed.
  [[nodiscard]] const std::string* result(std::string_view point_key) const;

  [[nodiscard]] bool has(std::string_view point_key) const {
    return result(point_key) != nullptr;
  }

  /// Appends one completed point (flushed and fsync'd before returning) and
  /// remembers it for result()/has().  `result_json` must be a complete
  /// JSON value and should be deterministic — it is replayed verbatim on
  /// resume.  Fault site "journal_append": fail throws IoError; torn
  /// persists a prefix of the line and then throws (modelling a crash
  /// mid-append).
  void append(std::string_view point_key, std::string_view result_json);

 private:
  void recover();
  void append_line(const std::string& line, const char* what);

  std::string path_;
  std::string config_hash_;
  std::FILE* file_ = nullptr;
  std::vector<std::pair<std::string, std::string>> records_;
  JournalStats stats_;
};

}  // namespace stocdr::robust::jnl
