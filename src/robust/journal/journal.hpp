// Append-only, crash-recoverable sweep journal.
//
// A parameter sweep (fig4's noise ladder, fig5's counter-length ladder, a
// cdr_analyzer batch) is a list of independent points, each seconds to
// minutes of solve time.  The journal makes a killed sweep resumable: every
// completed point appends one JSONL record — fsync'd before the runner
// moves on — and a restarted run skips every point whose record survived.
//
// File format (JSONL, one JSON object per '\n'-terminated line):
//
//   line 1   {"journal":"stocdr-sweep","version":2,"config_hash":"<hash>"
//             [,"points_total":<n>]}
//   line 2+  {"point":"<point key>","result":<deterministic result JSON>
//             [,"stats":{"wall_seconds":...,"iterations":...,
//                        "residual":...,"peak_bytes":...}]}
//
// Version 2 adds the optional per-point "stats" object (the progress/ETA
// ledger: wall seconds, solver iterations, final residual, peak RSS) and
// the optional header points_total.  Both ride OUTSIDE "result", so
// artifact assembly — which replays result JSON verbatim — stays
// byte-identical whether stats were recorded or not.  Version-1 journals
// (no stats) remain fully replayable.
//
// The header's config_hash keys the journal to one sweep configuration: a
// journal written under a different configuration is discarded (counted as
// config_mismatch), never silently replayed.  Recovery tolerates exactly
// the damage a crash can cause: a torn *trailing* line (no newline, or
// malformed JSON on the final line) is counted and truncated away so later
// appends start on a clean boundary; a malformed *interior* line (bit rot)
// is counted and skipped.  Every record is fsync'd at append time, so the
// journal never promises a point the filesystem might still lose.
//
// Resume is bit-identical by construction: records hold only deterministic
// result JSON (no wall-clock, no manifest), so an artifact assembled from
// journal records in point order is byte-equal whether the sweep ran
// straight through or died and resumed ten times.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stocdr::robust::jnl {

inline constexpr std::uint32_t kJournalVersion = 2;

/// The oldest journal version recover() still replays (version-1 journals
/// simply lack per-point stats).
inline constexpr std::uint32_t kOldestReplayableVersion = 1;

/// Per-point execution stats (journal v2): the sweep progress/ETA ledger.
/// `valid` false means "not recorded" (a replayed v1 record, or a caller
/// that declined to measure) — such stats are never serialized.
struct PointStats {
  double wall_seconds = 0.0;
  std::uint64_t iterations = 0;
  double residual = 0.0;
  std::uint64_t peak_bytes = 0;
  bool valid = false;
};

/// What journal recovery found (and repaired) at open time.
struct JournalStats {
  std::size_t resumed = 0;          ///< usable point records loaded
  std::size_t torn_tail_bytes = 0;  ///< bytes truncated off a torn tail
  std::size_t malformed_lines = 0;  ///< interior lines counted and skipped
  bool fresh = false;               ///< started empty (no usable journal)
  bool config_mismatch = false;     ///< prior journal keyed to another config
};

/// One open journal: recovers on construction, then appends fsync'd records.
class SweepJournal {
 public:
  /// One recovered or appended point record.
  struct Record {
    std::string point;
    std::string result;
    PointStats stats;  ///< stats.valid false for v1 records / unmeasured
  };

  /// Opens (or creates) the journal at `path`, keyed to `config_hash`.
  /// Recovers any prior records per the rules above.  `points_total`
  /// (0 = unknown) is stamped into a fresh journal's header so progress
  /// tooling can price a partially-run sweep without the sweep definition.
  /// Fault-injection site "journal_append" covers every append, including
  /// the header.  Throws stocdr::IoError when the file cannot be opened or
  /// written.
  SweepJournal(std::string path, std::string config_hash,
               std::size_t points_total = 0);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  [[nodiscard]] const JournalStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& config_hash() const { return config_hash_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// The recorded result JSON for `point_key`, or nullptr if the point has
  /// not completed.
  [[nodiscard]] const std::string* result(std::string_view point_key) const;

  /// The recorded execution stats for `point_key`; nullptr when the point
  /// has not completed or carries no stats (v1 record).
  [[nodiscard]] const PointStats* point_stats(
      std::string_view point_key) const;

  [[nodiscard]] bool has(std::string_view point_key) const {
    return result(point_key) != nullptr;
  }

  /// All recovered + appended records, in journal order.
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

  /// The header's points_total: the fresh-journal constructor argument, or
  /// the recovered header's value on resume (0 = unknown / v1 header).
  [[nodiscard]] std::size_t points_total() const { return points_total_; }

  /// Appends one completed point (flushed and fsync'd before returning) and
  /// remembers it for result()/has().  `result_json` must be a complete
  /// JSON value and should be deterministic — it is replayed verbatim on
  /// resume.  `stats` (when valid) rides outside the result as the
  /// progress/ETA ledger entry.  Fault site "journal_append": fail throws
  /// IoError; torn persists a prefix of the line and then throws
  /// (modelling a crash mid-append).
  void append(std::string_view point_key, std::string_view result_json,
              const PointStats& stats = {});

 private:
  void recover();
  void append_line(const std::string& line, const char* what);

  std::string path_;
  std::string config_hash_;
  std::size_t points_total_ = 0;
  std::FILE* file_ = nullptr;
  std::vector<Record> records_;
  JournalStats stats_;
};

}  // namespace stocdr::robust::jnl
