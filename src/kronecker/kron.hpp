// Kronecker products of sparse matrices.
//
// The paper stores its TPM in explicit sparse form but points at
// "hierarchical generalized Kronecker-algebra" (Plateau's stochastic
// automata networks, Buchholz's hierarchical Markovian models) as the way to
// scale beyond ~1e5 states: the TPM of a network of independent components
// is a Kronecker product of the component matrices, and never needs to be
// formed.  This header provides the explicit product (for small matrices /
// validation) and the descriptor machinery lives in descriptor.hpp.
#pragma once

#include "sparse/csr.hpp"

namespace stocdr::kron {

/// Explicit Kronecker product C = A (x) B, with
/// C[i1*rowsB + i2][j1*colsB + j2] = A[i1][j1] * B[i2][j2].
[[nodiscard]] sparse::CsrMatrix kronecker_product(const sparse::CsrMatrix& a,
                                                  const sparse::CsrMatrix& b);

/// Kronecker sum A (+) B = A (x) I + I (x) B (square inputs) — the
/// generator composition for independent continuous-time components; kept
/// for completeness of the algebra.
[[nodiscard]] sparse::CsrMatrix kronecker_sum(const sparse::CsrMatrix& a,
                                              const sparse::CsrMatrix& b);

}  // namespace stocdr::kron
