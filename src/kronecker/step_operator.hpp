// The Kronecker descriptor viewed as a solvers::StepOperator.
//
// By convention the wrapped descriptor stores P^T (one factor transpose per
// component matrix: (A (x) B)^T = A^T (x) B^T), so apply() is the
// distribution step y = P^T x and apply_transpose() is the backward step
// y = P x — matching markov::MarkovChain, whose CSR also stores P^T.
// A persistent shuffle workspace rides along, so a solver iteration costs
// zero heap allocations after the first.
#pragma once

#include "kronecker/descriptor.hpp"
#include "solvers/operator_stationary.hpp"

namespace stocdr::kron {

class KroneckerStepOperator final : public solvers::StepOperator {
 public:
  /// `descriptor` must store the TRANSPOSED transition matrix P^T and
  /// outlive this operator.
  explicit KroneckerStepOperator(const KroneckerDescriptor& descriptor)
      : descriptor_(descriptor) {}

  [[nodiscard]] std::size_t size() const override {
    return descriptor_.dimension();
  }
  void step(std::span<const double> x, std::span<double> y) const override {
    descriptor_.apply(x, y, workspace_);
  }
  void step_backward(std::span<const double> x,
                     std::span<double> y) const override {
    descriptor_.apply_transpose(x, y, workspace_);
  }
  /// diag(P) = diag(P^T), so the descriptor's diagonal is returned as-is.
  [[nodiscard]] std::vector<double> diagonal() const override {
    return descriptor_.diagonal();
  }

  [[nodiscard]] const KroneckerDescriptor& descriptor() const {
    return descriptor_;
  }

 private:
  const KroneckerDescriptor& descriptor_;
  mutable KroneckerDescriptor::Workspace workspace_;
};

}  // namespace stocdr::kron
