#include "kronecker/kron.hpp"

#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::kron {

sparse::CsrMatrix kronecker_product(const sparse::CsrMatrix& a,
                                    const sparse::CsrMatrix& b) {
  const std::size_t rows = a.rows() * b.rows();
  const std::size_t cols = a.cols() * b.cols();
  STOCDR_REQUIRE(rows > 0 && cols > 0, "kronecker_product: empty operand");
  sparse::CooBuilder builder(rows, cols);
  builder.reserve(a.nnz() * b.nnz());
  a.for_each([&](std::size_t i1, std::size_t j1, double va) {
    b.for_each([&](std::size_t i2, std::size_t j2, double vb) {
      builder.add(i1 * b.rows() + i2, j1 * b.cols() + j2, va * vb);
    });
  });
  return builder.to_csr();
}

sparse::CsrMatrix kronecker_sum(const sparse::CsrMatrix& a,
                                const sparse::CsrMatrix& b) {
  STOCDR_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols(),
                 "kronecker_sum requires square operands");
  const std::size_t n = a.rows() * b.rows();
  sparse::CooBuilder builder(n, n);
  builder.reserve(a.nnz() * b.rows() + b.nnz() * a.rows());
  a.for_each([&](std::size_t i1, std::size_t j1, double va) {
    for (std::size_t k = 0; k < b.rows(); ++k) {
      builder.add(i1 * b.rows() + k, j1 * b.rows() + k, va);
    }
  });
  b.for_each([&](std::size_t i2, std::size_t j2, double vb) {
    for (std::size_t k = 0; k < a.rows(); ++k) {
      builder.add(k * b.rows() + i2, k * b.rows() + j2, vb);
    }
  });
  return builder.to_csr();
}

}  // namespace stocdr::kron
