#include "kronecker/descriptor.hpp"

#include <algorithm>

#include "kronecker/kron.hpp"

#include "obs/prof/roofline.hpp"
#include "parallel/pool.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::kron {

namespace {

/// Right-index tile width (doubles): one output slice plus one input slice
/// per active factor row stay cache-resident across the factor's entries.
constexpr std::size_t kRightTile = 2048;

/// Cheap structural identity check used to skip no-op modes.
bool is_identity(const sparse::CsrMatrix& m) {
  if (m.rows() != m.cols() || m.nnz() != m.rows()) return false;
  const auto cols = m.col_idx();
  const auto vals = m.values();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (cols[i] != i || vals[i] != 1.0) return false;
  }
  return true;
}

/// One base block of (I_L (x) M (x) I_R), restricted to the right-index
/// slice [r0, r1).  Gather form: out(i, r) = sum_k v_k * in(col_k, r) —
/// each output element is owned by exactly one (i, r) pair and accumulates
/// its factor entries in the serial row order, so any partition over
/// (l, r0..r1) blocks reproduces the serial result bit for bit.
void gather_block(const sparse::CsrMatrix& m, const double* in, double* out,
                  std::size_t right, std::size_t r0, std::size_t r1) {
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double* dst = out + i * right;
    std::fill(dst + r0, dst + r1, 0.0);
    const auto cols = m.row_cols(i);
    const auto vals = m.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double v = vals[k];
      const double* src = in + cols[k] * right;
      for (std::size_t r = r0; r < r1; ++r) dst[r] += v * src[r];
    }
  }
}

/// Scatter (transpose) form: out(col_k, r) += v_k * in(i, r).  An output
/// element can receive several (i, k) contributions; they arrive in the
/// serial lexicographic (i, k) order within the block, and blocks own
/// disjoint output slices — the PR-4 lane-merge discipline extended to the
/// per-factor scatter stage.
void scatter_block(const sparse::CsrMatrix& m, const double* in, double* out,
                   std::size_t right, std::size_t r0, std::size_t r1) {
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double* z = out + i * right;
    std::fill(z + r0, z + r1, 0.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = in + i * right;
    const auto cols = m.row_cols(i);
    const auto vals = m.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double v = vals[k];
      double* dst = out + cols[k] * right;
      for (std::size_t r = r0; r < r1; ++r) dst[r] += v * src[r];
    }
  }
}

void mode_block(const sparse::CsrMatrix& m, bool transpose, const double* in,
                double* out, std::size_t right, std::size_t r0,
                std::size_t r1) {
  if (transpose) {
    scatter_block(m, in, out, right, r0, r1);
  } else {
    gather_block(m, in, out, right, r0, r1);
  }
}

/// All base blocks of one lane's [l0, l1) x [r0, r1) region, r-tiled.
void mode_region(const sparse::CsrMatrix& m, bool transpose,
                 std::span<const double> in, std::span<double> out,
                 std::size_t right, std::size_t l0, std::size_t l1,
                 std::size_t r0, std::size_t r1) {
  const std::size_t block = m.rows() * right;
  for (std::size_t l = l0; l < l1; ++l) {
    const double* src = in.data() + l * block;
    double* dst = out.data() + l * block;
    for (std::size_t t0 = r0; t0 < r1; t0 += kRightTile) {
      const std::size_t t1 = std::min(t0 + kRightTile, r1);
      mode_block(m, transpose, src, dst, right, t0, t1);
    }
  }
}

/// z <- (I_L (x) M (x) I_R) z' (or M^T), parallelized with deterministic
/// partitions: lanes split the left index (disjoint contiguous blocks) when
/// it is wide enough, else the right index (disjoint slices).  Both keep
/// every output element's accumulation order equal to the serial order, so
/// the result is bitwise identical at any lane count.
void mode_multiply(const sparse::CsrMatrix& m, bool transpose,
                   std::size_t left, std::size_t right,
                   std::span<const double> in, std::span<double> out) {
  const std::size_t work = left * (m.nnz() + m.rows()) * right;
  const std::size_t lanes = par::lanes_for(work);
  if (lanes > 1 && left >= lanes) {
    par::run_lanes(lanes, [&](std::size_t lane) {
      const par::Range range = par::even_range(left, lanes, lane);
      mode_region(m, transpose, in, out, right, range.begin, range.end, 0,
                  right);
    });
  } else if (lanes > 1 && right >= lanes) {
    par::run_lanes(lanes, [&](std::size_t lane) {
      const par::Range range = par::even_range(right, lanes, lane);
      mode_region(m, transpose, in, out, right, 0, left, range.begin,
                  range.end);
    });
  } else {
    mode_region(m, transpose, in, out, right, 0, left, 0, right);
  }
}

}  // namespace

KroneckerDescriptor::KroneckerDescriptor(std::vector<std::size_t> dims)
    : dims_(std::move(dims)) {
  STOCDR_REQUIRE(!dims_.empty(), "KroneckerDescriptor: no dimensions");
  for (const std::size_t d : dims_) {
    STOCDR_REQUIRE(d >= 1, "KroneckerDescriptor: dimensions must be >= 1");
    total_ *= d;
  }
}

void KroneckerDescriptor::add_term(KroneckerTerm term) {
  STOCDR_REQUIRE(term.factors.size() == dims_.size(),
                 "KroneckerDescriptor: term must have one factor per "
                 "dimension");
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    STOCDR_REQUIRE(term.factors[k].rows() == dims_[k] &&
                       term.factors[k].cols() == dims_[k],
                   "KroneckerDescriptor: factor shape mismatch");
  }
  // Identity flags and the apply() roofline model are precomputed here so
  // the hot path never rescans factor structure.
  std::vector<char> flags(dims_.size(), 0);
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    flags[k] = is_identity(term.factors[k]) ? 1 : 0;
    if (flags[k] != 0) continue;
    const auto& m = term.factors[k];
    apply_bytes_ += obs::prof::kron_mode_bytes(total_, m.rows(), m.nnz());
    apply_flops_ += obs::prof::kron_mode_flops(total_, m.rows(), m.nnz());
  }
  apply_bytes_ += obs::prof::kron_accumulate_bytes(total_);
  apply_flops_ += obs::prof::kron_accumulate_flops(total_);
  identity_.push_back(std::move(flags));
  terms_.push_back(std::move(term));
}

void KroneckerDescriptor::add_single_factor_term(double coefficient,
                                                 std::size_t slot,
                                                 sparse::CsrMatrix m) {
  STOCDR_REQUIRE(slot < dims_.size(),
                 "KroneckerDescriptor: slot out of range");
  KroneckerTerm term;
  term.coefficient = coefficient;
  term.factors.reserve(dims_.size());
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    if (k == slot) {
      term.factors.push_back(std::move(m));
    } else {
      term.factors.push_back(sparse::CsrMatrix::identity(dims_[k]));
    }
  }
  add_term(std::move(term));
}

void KroneckerDescriptor::apply_term(const KroneckerTerm& term,
                                     const std::vector<char>& identity,
                                     bool transpose,
                                     std::span<const double> x,
                                     std::span<double> y,
                                     Workspace& workspace) const {
  // Shuffle algorithm: apply one mode at a time.  The first non-identity
  // mode reads x directly; later modes ping-pong between the workspace
  // buffers, so no initial copy of x is ever made.
  const double* src = x.data();
  std::size_t left = 1;
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    const std::size_t n = dims_[k];
    const std::size_t right = total_ / (left * n);
    if (identity[k] == 0) {
      double* out = src == workspace.ping.data() ? workspace.pong.data()
                                                 : workspace.ping.data();
      mode_multiply(term.factors[k], transpose, left, right,
                    std::span<const double>(src, total_),
                    std::span<double>(out, total_));
      src = out;
    }
    left *= n;
  }
  const double c = term.coefficient;
  par::parallel_for(total_, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) y[i] += c * src[i];
  });
}

void KroneckerDescriptor::apply_impl(bool transpose, std::span<const double> x,
                                     std::span<double> y,
                                     Workspace& workspace) const {
  STOCDR_REQUIRE(x.size() == total_ && y.size() == total_,
                 "KroneckerDescriptor::apply size mismatch");
  const obs::prof::KernelScope kernel("kron.apply", apply_bytes_,
                                      apply_flops_);
  workspace.ping.resize(total_);
  workspace.pong.resize(total_);
  par::parallel_for(total_, [&](std::size_t begin, std::size_t end) {
    std::fill(y.begin() + static_cast<std::ptrdiff_t>(begin),
              y.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
  });
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    apply_term(terms_[t], identity_[t], transpose, x, y, workspace);
  }
}

void KroneckerDescriptor::apply(std::span<const double> x,
                                std::span<double> y) const {
  Workspace workspace;
  apply_impl(/*transpose=*/false, x, y, workspace);
}

void KroneckerDescriptor::apply(std::span<const double> x,
                                std::span<double> y,
                                Workspace& workspace) const {
  apply_impl(/*transpose=*/false, x, y, workspace);
}

void KroneckerDescriptor::apply_transpose(std::span<const double> x,
                                          std::span<double> y) const {
  Workspace workspace;
  apply_impl(/*transpose=*/true, x, y, workspace);
}

void KroneckerDescriptor::apply_transpose(std::span<const double> x,
                                          std::span<double> y,
                                          Workspace& workspace) const {
  apply_impl(/*transpose=*/true, x, y, workspace);
}

std::vector<double> KroneckerDescriptor::diagonal() const {
  std::vector<double> result(total_, 0.0);
  std::vector<double> current;
  std::vector<double> next;
  for (const KroneckerTerm& term : terms_) {
    current.assign(1, term.coefficient);
    for (std::size_t k = 0; k < dims_.size(); ++k) {
      const std::size_t n = dims_[k];
      const sparse::CsrMatrix& m = term.factors[k];
      std::vector<double> diag(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const auto cols = m.row_cols(i);
        const auto vals = m.row_values(i);
        for (std::size_t j = 0; j < cols.size(); ++j) {
          if (cols[j] == i) diag[i] = vals[j];
        }
      }
      next.resize(current.size() * n);
      for (std::size_t p = 0; p < current.size(); ++p) {
        for (std::size_t j = 0; j < n; ++j) {
          next[p * n + j] = current[p] * diag[j];
        }
      }
      current.swap(next);
    }
    for (std::size_t i = 0; i < total_; ++i) result[i] += current[i];
  }
  return result;
}

sparse::CsrMatrix KroneckerDescriptor::to_csr() const {
  STOCDR_REQUIRE(!terms_.empty(), "KroneckerDescriptor::to_csr: no terms");
  sparse::CooBuilder builder(total_, total_);
  for (const KroneckerTerm& term : terms_) {
    sparse::CsrMatrix product = term.factors[0];
    for (std::size_t k = 1; k < term.factors.size(); ++k) {
      product = kronecker_product(product, term.factors[k]);
    }
    product.for_each([&](std::size_t r, std::size_t c, double v) {
      builder.add(r, c, term.coefficient * v);
    });
  }
  return builder.to_csr();
}

std::size_t KroneckerDescriptor::storage_bytes() const {
  std::size_t bytes = 0;
  for (const KroneckerTerm& term : terms_) {
    for (const sparse::CsrMatrix& m : term.factors) {
      bytes += m.footprint_bytes();
    }
  }
  return bytes;
}

}  // namespace stocdr::kron
