#include "kronecker/descriptor.hpp"

#include <algorithm>

#include "kronecker/kron.hpp"

#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::kron {

namespace {

/// Cheap structural identity check used to skip no-op modes.
bool is_identity(const sparse::CsrMatrix& m) {
  if (m.rows() != m.cols() || m.nnz() != m.rows()) return false;
  const auto cols = m.col_idx();
  const auto vals = m.values();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (cols[i] != i || vals[i] != 1.0) return false;
  }
  return true;
}

/// z <- (I_L (x) M (x) I_R) z' where z' is `in`; writes to `out`.
void mode_multiply(const sparse::CsrMatrix& m, std::size_t left,
                   std::size_t right, std::span<const double> in,
                   std::span<double> out) {
  const std::size_t n = m.rows();
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t l = 0; l < left; ++l) {
    const std::size_t base = l * n * right;
    for (std::size_t i = 0; i < n; ++i) {
      const auto cols = m.row_cols(i);
      const auto vals = m.row_values(i);
      double* dst = out.data() + base + i * right;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const double v = vals[k];
        const double* src = in.data() + base + cols[k] * right;
        for (std::size_t r = 0; r < right; ++r) dst[r] += v * src[r];
      }
    }
  }
}

/// z <- (I_L (x) M^T (x) I_R) z'.
void mode_multiply_transpose(const sparse::CsrMatrix& m, std::size_t left,
                             std::size_t right, std::span<const double> in,
                             std::span<double> out) {
  const std::size_t n = m.rows();
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t l = 0; l < left; ++l) {
    const std::size_t base = l * n * right;
    for (std::size_t i = 0; i < n; ++i) {
      const auto cols = m.row_cols(i);
      const auto vals = m.row_values(i);
      const double* src = in.data() + base + i * right;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const double v = vals[k];
        double* dst = out.data() + base + cols[k] * right;
        for (std::size_t r = 0; r < right; ++r) dst[r] += v * src[r];
      }
    }
  }
}

}  // namespace

KroneckerDescriptor::KroneckerDescriptor(std::vector<std::size_t> dims)
    : dims_(std::move(dims)) {
  STOCDR_REQUIRE(!dims_.empty(), "KroneckerDescriptor: no dimensions");
  for (const std::size_t d : dims_) {
    STOCDR_REQUIRE(d >= 1, "KroneckerDescriptor: dimensions must be >= 1");
    total_ *= d;
  }
}

void KroneckerDescriptor::add_term(KroneckerTerm term) {
  STOCDR_REQUIRE(term.factors.size() == dims_.size(),
                 "KroneckerDescriptor: term must have one factor per "
                 "dimension");
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    STOCDR_REQUIRE(term.factors[k].rows() == dims_[k] &&
                       term.factors[k].cols() == dims_[k],
                   "KroneckerDescriptor: factor shape mismatch");
  }
  terms_.push_back(std::move(term));
}

void KroneckerDescriptor::add_single_factor_term(double coefficient,
                                                 std::size_t slot,
                                                 sparse::CsrMatrix m) {
  STOCDR_REQUIRE(slot < dims_.size(),
                 "KroneckerDescriptor: slot out of range");
  KroneckerTerm term;
  term.coefficient = coefficient;
  term.factors.reserve(dims_.size());
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    if (k == slot) {
      term.factors.push_back(std::move(m));
    } else {
      term.factors.push_back(sparse::CsrMatrix::identity(dims_[k]));
    }
  }
  add_term(std::move(term));
}

void KroneckerDescriptor::apply_term(const KroneckerTerm& term, bool transpose,
                                     std::span<const double> x,
                                     std::span<double> y,
                                     std::vector<double>& scratch) const {
  // Shuffle algorithm: apply one mode at a time, ping-ponging between the
  // scratch buffer and an accumulator.  Identity factors are skipped.
  std::vector<double> current(x.begin(), x.end());
  scratch.resize(total_);
  std::size_t left = 1;
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    const std::size_t n = dims_[k];
    const std::size_t right = total_ / (left * n);
    const sparse::CsrMatrix& m = term.factors[k];
    if (!is_identity(m)) {
      if (transpose) {
        mode_multiply_transpose(m, left, right, current, scratch);
      } else {
        mode_multiply(m, left, right, current, scratch);
      }
      current.swap(scratch);
    }
    left *= n;
  }
  for (std::size_t i = 0; i < total_; ++i) {
    y[i] += term.coefficient * current[i];
  }
}

void KroneckerDescriptor::apply(std::span<const double> x,
                                std::span<double> y) const {
  STOCDR_REQUIRE(x.size() == total_ && y.size() == total_,
                 "KroneckerDescriptor::apply size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  std::vector<double> scratch;
  for (const KroneckerTerm& term : terms_) {
    apply_term(term, /*transpose=*/false, x, y, scratch);
  }
}

void KroneckerDescriptor::apply_transpose(std::span<const double> x,
                                          std::span<double> y) const {
  STOCDR_REQUIRE(x.size() == total_ && y.size() == total_,
                 "KroneckerDescriptor::apply_transpose size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  std::vector<double> scratch;
  for (const KroneckerTerm& term : terms_) {
    apply_term(term, /*transpose=*/true, x, y, scratch);
  }
}

sparse::CsrMatrix KroneckerDescriptor::to_csr() const {
  STOCDR_REQUIRE(!terms_.empty(), "KroneckerDescriptor::to_csr: no terms");
  sparse::CooBuilder builder(total_, total_);
  for (const KroneckerTerm& term : terms_) {
    sparse::CsrMatrix product = term.factors[0];
    for (std::size_t k = 1; k < term.factors.size(); ++k) {
      product = kronecker_product(product, term.factors[k]);
    }
    product.for_each([&](std::size_t r, std::size_t c, double v) {
      builder.add(r, c, term.coefficient * v);
    });
  }
  return builder.to_csr();
}

std::size_t KroneckerDescriptor::storage_bytes() const {
  std::size_t bytes = 0;
  for (const KroneckerTerm& term : terms_) {
    for (const sparse::CsrMatrix& m : term.factors) {
      bytes += m.nnz() * (sizeof(double) + sizeof(std::uint32_t)) +
               (m.rows() + 1) * sizeof(std::uint32_t);
    }
  }
  return bytes;
}

}  // namespace stocdr::kron
