// Matrix-free Kronecker descriptors (stochastic-automata-network style).
//
// A descriptor represents D = sum_e c_e * (M_{e,1} (x) ... (x) M_{e,K})
// over K square factor spaces, and can apply D (or D^T) to a vector with
// the shuffle algorithm in O(sum_k nnz(M_k) * prod_{j!=k} n_j) work and
// O(prod n_k) memory — without ever materializing the product matrix.
// This is the paper's stated path to models beyond explicit sparse storage.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace stocdr::kron {

/// One additive term: coefficient * (factors[0] (x) ... (x) factors[K-1]).
struct KroneckerTerm {
  double coefficient = 1.0;
  std::vector<sparse::CsrMatrix> factors;  ///< all square, sizes = dims
};

/// A sum of Kronecker-product terms over fixed per-component dimensions.
class KroneckerDescriptor {
 public:
  /// `dims` are the component state-space sizes (all >= 1).
  explicit KroneckerDescriptor(std::vector<std::size_t> dims);

  /// Adds a term.  Every factor must be square with the matching dimension;
  /// an empty factor list is rejected.
  void add_term(KroneckerTerm term);

  /// Identity-factor helper: adds coefficient * (I (x) ... (x) M at `slot`
  /// (x) ... (x) I).
  void add_single_factor_term(double coefficient, std::size_t slot,
                              sparse::CsrMatrix m);

  [[nodiscard]] std::size_t num_terms() const { return terms_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& dims() const { return dims_; }

  /// Product of the component dimensions.
  [[nodiscard]] std::size_t dimension() const { return total_; }

  /// y = D x via the shuffle algorithm.
  void apply(std::span<const double> x, std::span<double> y) const;

  /// y = D^T x.
  void apply_transpose(std::span<const double> x, std::span<double> y) const;

  /// Materializes D as an explicit sparse matrix (validation / small cases).
  [[nodiscard]] sparse::CsrMatrix to_csr() const;

  /// Bytes of factor storage held by the descriptor (compare against
  /// ~12 bytes/nnz for the explicit product).
  [[nodiscard]] std::size_t storage_bytes() const;

 private:
  void apply_term(const KroneckerTerm& term, bool transpose,
                  std::span<const double> x, std::span<double> y,
                  std::vector<double>& scratch) const;

  std::vector<std::size_t> dims_;
  std::size_t total_ = 1;
  std::vector<KroneckerTerm> terms_;
};

}  // namespace stocdr::kron
