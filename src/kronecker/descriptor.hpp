// Matrix-free Kronecker descriptors (stochastic-automata-network style).
//
// A descriptor represents D = sum_e c_e * (M_{e,1} (x) ... (x) M_{e,K})
// over K square factor spaces, and can apply D (or D^T) to a vector with
// the shuffle algorithm in O(sum_k nnz(M_k) * prod_{j!=k} n_j) work and
// O(prod n_k) memory — without ever materializing the product matrix.
// This is the paper's stated path to models beyond explicit sparse storage.
//
// The shuffle passes are parallelized over the thread pool with the same
// determinism discipline as sparse/csr.hpp: lanes own disjoint contiguous
// output blocks (split over the left index) or disjoint right-index slices
// (split over the right index), and within a lane every output element
// accumulates its factor entries in exactly the serial order — so results
// are bitwise identical at ANY thread count, not merely at a fixed one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace stocdr::kron {

/// One additive term: coefficient * (factors[0] (x) ... (x) factors[K-1]).
struct KroneckerTerm {
  double coefficient = 1.0;
  std::vector<sparse::CsrMatrix> factors;  ///< all square, sizes = dims
};

/// A sum of Kronecker-product terms over fixed per-component dimensions.
class KroneckerDescriptor {
 public:
  /// Reusable apply scratch (two product-space vectors).  Passing one to
  /// apply() lets a solver avoid two heap allocations per matvec; the
  /// buffers grow on first use and are content-agnostic between calls.
  struct Workspace {
    std::vector<double> ping;
    std::vector<double> pong;
  };

  /// `dims` are the component state-space sizes (all >= 1).
  explicit KroneckerDescriptor(std::vector<std::size_t> dims);

  /// Adds a term.  Every factor must be square with the matching dimension;
  /// an empty factor list is rejected.
  void add_term(KroneckerTerm term);

  /// Identity-factor helper: adds coefficient * (I (x) ... (x) M at `slot`
  /// (x) ... (x) I).
  void add_single_factor_term(double coefficient, std::size_t slot,
                              sparse::CsrMatrix m);

  [[nodiscard]] std::size_t num_terms() const { return terms_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& dims() const { return dims_; }

  /// Product of the component dimensions.
  [[nodiscard]] std::size_t dimension() const { return total_; }

  /// y = D x via the shuffle algorithm.
  void apply(std::span<const double> x, std::span<double> y) const;
  void apply(std::span<const double> x, std::span<double> y,
             Workspace& workspace) const;

  /// y = D^T x.
  void apply_transpose(std::span<const double> x, std::span<double> y) const;
  void apply_transpose(std::span<const double> x, std::span<double> y,
                       Workspace& workspace) const;

  /// The product matrix's diagonal, diag(D)[i] = sum_e c_e prod_k
  /// diag(M_{e,k})[i_k] — what a matrix-free Jacobi sweep needs.
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Materializes D as an explicit sparse matrix (validation / small cases).
  [[nodiscard]] sparse::CsrMatrix to_csr() const;

  /// Bytes of factor storage held by the descriptor — values, column
  /// indices, and row pointers at allocated capacity (compare against
  /// ~12 bytes/nnz for the explicit product).
  [[nodiscard]] std::size_t storage_bytes() const;

  /// Modelled compulsory memory traffic / flops of one apply() call (the
  /// roofline inputs of the "kron.apply" kernel).
  [[nodiscard]] std::uint64_t apply_bytes() const { return apply_bytes_; }
  [[nodiscard]] std::uint64_t apply_flops() const { return apply_flops_; }

 private:
  void apply_impl(bool transpose, std::span<const double> x,
                  std::span<double> y, Workspace& workspace) const;
  void apply_term(const KroneckerTerm& term,
                  const std::vector<char>& identity, bool transpose,
                  std::span<const double> x, std::span<double> y,
                  Workspace& workspace) const;

  std::vector<std::size_t> dims_;
  std::size_t total_ = 1;
  std::vector<KroneckerTerm> terms_;
  /// Per-term, per-factor structural-identity flags (identity factors are
  /// skipped by the shuffle), computed once at add_term time.
  std::vector<std::vector<char>> identity_;
  std::uint64_t apply_bytes_ = 0;
  std::uint64_t apply_flops_ = 0;
};

}  // namespace stocdr::kron
