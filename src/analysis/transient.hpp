// Transient (time-domain) analysis of a Markov chain: distribution
// evolution, mixing, and lock-acquisition trajectories.
//
// Besides steady-state measures, a CDR designer cares about how fast the
// loop acquires lock from a frequency/phase offset.  These routines evolve
// x_{k+1} = P^T x_k explicitly and report distances to the stationary
// distribution and expectations of state functions along the way.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "markov/chain.hpp"

namespace stocdr::analysis {

/// Distribution after `steps` steps from `initial` (returns the full
/// trajectory endpoint only).
[[nodiscard]] std::vector<double> evolve(const markov::MarkovChain& chain,
                                         std::span<const double> initial,
                                         std::size_t steps);

/// L1 distance to `reference` after each of `steps` steps (element k is the
/// distance after k+1 steps).  Monotone non-increasing for an exact
/// stationary reference.
[[nodiscard]] std::vector<double> convergence_profile(
    const markov::MarkovChain& chain, std::span<const double> initial,
    std::span<const double> reference, std::size_t steps);

/// E[f(X_k)] for k = 0..steps (inclusive) starting from `initial` — e.g.
/// the mean phase error during lock acquisition.
[[nodiscard]] std::vector<double> expectation_trajectory(
    const markov::MarkovChain& chain, std::span<const double> initial,
    std::span<const double> f, std::size_t steps);

/// Smallest k <= max_steps with L1(x_k, reference) <= threshold, or
/// max_steps + 1 if never reached: a mixing-time estimate.
[[nodiscard]] std::size_t mixing_steps(const markov::MarkovChain& chain,
                                       std::span<const double> initial,
                                       std::span<const double> reference,
                                       double threshold,
                                       std::size_t max_steps);

}  // namespace stocdr::analysis
