// Expectations of functions defined on Markov-chain states.
//
// Once the stationary vector eta is available, every steady-state measure is
// an expectation E[f(X)] = sum_i eta_i f(x_i); this header provides those
// plus tail probabilities of state functions (the paper's BER is exactly
// such a tail).
#pragma once

#include <span>
#include <vector>

namespace stocdr::analysis {

/// E[f(X)] under the distribution eta.
[[nodiscard]] double expectation(std::span<const double> eta,
                                 std::span<const double> f);

/// Var[f(X)] under eta.
[[nodiscard]] double variance(std::span<const double> eta,
                              std::span<const double> f);

/// P(f(X) > threshold) under eta.
[[nodiscard]] double tail_probability(std::span<const double> eta,
                                      std::span<const double> f,
                                      double threshold);

/// P(|f(X)| > threshold) under eta.
[[nodiscard]] double two_sided_tail_probability(std::span<const double> eta,
                                                std::span<const double> f,
                                                double threshold);

/// Quantile of f(X) under eta: smallest v among the attained values with
/// P(f(X) <= v) >= q, for q in (0, 1].
[[nodiscard]] double quantile(std::span<const double> eta,
                              std::span<const double> f, double q);

}  // namespace stocdr::analysis
