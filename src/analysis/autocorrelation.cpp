#include "analysis/autocorrelation.hpp"

#include "analysis/statistics.hpp"
#include "support/error.hpp"

namespace stocdr::analysis {

std::vector<double> autocorrelation(const markov::MarkovChain& chain,
                                    std::span<const double> eta,
                                    std::span<const double> f,
                                    std::size_t max_lag) {
  const std::size_t n = chain.num_states();
  STOCDR_REQUIRE(eta.size() == n && f.size() == n,
                 "autocorrelation: size mismatch");
  std::vector<double> r(max_lag + 1, 0.0);
  // g_k = P^k f, advanced in place with the backward (row-major) product.
  std::vector<double> g(f.begin(), f.end());
  std::vector<double> next(n);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += eta[i] * f[i] * g[i];
    r[k] = acc;
    if (k < max_lag) {
      chain.step_backward(g, next);
      g.swap(next);
    }
  }
  return r;
}

std::vector<double> autocovariance(const markov::MarkovChain& chain,
                                   std::span<const double> eta,
                                   std::span<const double> f,
                                   std::size_t max_lag) {
  std::vector<double> c = autocorrelation(chain, eta, f, max_lag);
  const double mean = expectation(eta, f);
  for (double& v : c) v -= mean * mean;
  return c;
}

double integrated_autocorrelation_time(
    std::span<const double> autocovariance_sequence) {
  STOCDR_REQUIRE(!autocovariance_sequence.empty(),
                 "integrated_autocorrelation_time: empty sequence");
  const double c0 = autocovariance_sequence[0];
  if (!(c0 > 0.0)) return 1.0;
  double tau = 1.0;
  for (std::size_t k = 1; k < autocovariance_sequence.size(); ++k) {
    const double rho = autocovariance_sequence[k] / c0;
    if (rho <= 0.0) break;
    tau += 2.0 * rho;
  }
  return tau;
}

}  // namespace stocdr::analysis
