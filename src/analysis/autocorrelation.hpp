// Autocorrelation of functions on Markov-chain states.
//
// The paper (section 3): "computation of eta is the prerequisite for
// computing other performance quantities such as the autocorrelation of a
// function defined on the states of the MC".  For a stationary chain and a
// state function f,
//
//   R_f(k) = E[f(X_0) f(X_k)] = sum_i eta_i f_i (P^k f)_i,
//
// computed with k sparse backward matvecs (no matrix powers are formed).
// The autocovariance subtracts the stationary mean; it is what feeds the
// recovered-clock jitter spectrum.
#pragma once

#include <span>
#include <vector>

#include "markov/chain.hpp"

namespace stocdr::analysis {

/// R_f(k) for k = 0..max_lag (inclusive); eta must be the stationary
/// distribution of `chain`.
[[nodiscard]] std::vector<double> autocorrelation(
    const markov::MarkovChain& chain, std::span<const double> eta,
    std::span<const double> f, std::size_t max_lag);

/// C_f(k) = R_f(k) - E[f]^2 for k = 0..max_lag.
[[nodiscard]] std::vector<double> autocovariance(
    const markov::MarkovChain& chain, std::span<const double> eta,
    std::span<const double> f, std::size_t max_lag);

/// Integrated autocorrelation time: 1 + 2 sum_{k>=1} C(k)/C(0), truncated at
/// the first nonpositive term (standard initial-positive-sequence cutoff).
/// Measures how slowly the loop forgets its state; diverges as the loop
/// bandwidth shrinks.
[[nodiscard]] double integrated_autocorrelation_time(
    std::span<const double> autocovariance_sequence);

}  // namespace stocdr::analysis
