// Spectral analysis of the transition matrix: the subdominant eigenvalue.
//
// |lambda_2| of P sets the chain's asymptotic mixing rate — for the CDR
// model it is the loop's analytic "bandwidth": the phase error forgets its
// past at rate -ln|lambda_2| per bit.  Computed by power iteration deflated
// against the known dominant pair (right eigenvector 1, left eigenvector
// eta), which requires the stationary distribution first — another of the
// "other performance quantities" the paper derives from eta.
#pragma once

#include <cstddef>
#include <span>

#include "markov/chain.hpp"

namespace stocdr::analysis {

/// Result of the deflated power iteration.
struct SubdominantEigenvalue {
  double magnitude = 0.0;   ///< |lambda_2| estimate
  double residual = 0.0;    ///< relative change of the estimate at the end
  std::size_t iterations = 0;
  bool converged = false;

  /// Mixing (correlation) time in steps: -1 / ln|lambda_2|.
  [[nodiscard]] double mixing_steps() const;
};

/// Estimates |lambda_2(P)| given the stationary distribution eta.
/// `tolerance` bounds the relative change of the magnitude estimate between
/// iterations.  Complex subdominant pairs are handled by tracking the
/// two-step growth ratio (the magnitude is still well defined); the phase
/// is not reported.
[[nodiscard]] SubdominantEigenvalue subdominant_eigenvalue(
    const markov::MarkovChain& chain, std::span<const double> eta,
    double tolerance = 1e-8, std::size_t max_iterations = 20000);

}  // namespace stocdr::analysis
