#include "analysis/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace stocdr::analysis {

double expectation(std::span<const double> eta, std::span<const double> f) {
  STOCDR_REQUIRE(eta.size() == f.size(), "expectation: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < eta.size(); ++i) acc += eta[i] * f[i];
  return acc;
}

double variance(std::span<const double> eta, std::span<const double> f) {
  const double m = expectation(eta, f);
  double acc = 0.0;
  for (std::size_t i = 0; i < eta.size(); ++i) {
    const double d = f[i] - m;
    acc += eta[i] * d * d;
  }
  return acc;
}

double tail_probability(std::span<const double> eta, std::span<const double> f,
                        double threshold) {
  STOCDR_REQUIRE(eta.size() == f.size(), "tail_probability: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < eta.size(); ++i) {
    if (f[i] > threshold) acc += eta[i];
  }
  return acc;
}

double two_sided_tail_probability(std::span<const double> eta,
                                  std::span<const double> f,
                                  double threshold) {
  STOCDR_REQUIRE(eta.size() == f.size(),
                 "two_sided_tail_probability: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < eta.size(); ++i) {
    if (std::abs(f[i]) > threshold) acc += eta[i];
  }
  return acc;
}

double quantile(std::span<const double> eta, std::span<const double> f,
                double q) {
  STOCDR_REQUIRE(eta.size() == f.size() && !eta.empty(),
                 "quantile: size mismatch");
  STOCDR_REQUIRE(q > 0.0 && q <= 1.0, "quantile: q must be in (0, 1]");
  std::vector<std::size_t> order(eta.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&f](std::size_t a, std::size_t b) { return f[a] < f[b]; });
  double cum = 0.0;
  for (const std::size_t i : order) {
    cum += eta[i];
    if (cum >= q - 1e-15) return f[i];
  }
  return f[order.back()];
}

}  // namespace stocdr::analysis
