#include "analysis/transient.hpp"

#include "analysis/statistics.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::analysis {

std::vector<double> evolve(const markov::MarkovChain& chain,
                           std::span<const double> initial,
                           std::size_t steps) {
  STOCDR_REQUIRE(initial.size() == chain.num_states(),
                 "evolve: initial size mismatch");
  std::vector<double> x(initial.begin(), initial.end());
  std::vector<double> y(x.size());
  for (std::size_t k = 0; k < steps; ++k) {
    chain.step(x, y);
    x.swap(y);
  }
  return x;
}

std::vector<double> convergence_profile(const markov::MarkovChain& chain,
                                        std::span<const double> initial,
                                        std::span<const double> reference,
                                        std::size_t steps) {
  STOCDR_REQUIRE(initial.size() == chain.num_states() &&
                     reference.size() == chain.num_states(),
                 "convergence_profile: size mismatch");
  std::vector<double> x(initial.begin(), initial.end());
  std::vector<double> y(x.size());
  std::vector<double> profile(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    chain.step(x, y);
    x.swap(y);
    profile[k] = l1_distance(x, reference);
  }
  return profile;
}

std::vector<double> expectation_trajectory(const markov::MarkovChain& chain,
                                           std::span<const double> initial,
                                           std::span<const double> f,
                                           std::size_t steps) {
  STOCDR_REQUIRE(initial.size() == chain.num_states() &&
                     f.size() == chain.num_states(),
                 "expectation_trajectory: size mismatch");
  std::vector<double> x(initial.begin(), initial.end());
  std::vector<double> y(x.size());
  std::vector<double> traj(steps + 1);
  traj[0] = expectation(x, f);
  for (std::size_t k = 1; k <= steps; ++k) {
    chain.step(x, y);
    x.swap(y);
    traj[k] = expectation(x, f);
  }
  return traj;
}

std::size_t mixing_steps(const markov::MarkovChain& chain,
                         std::span<const double> initial,
                         std::span<const double> reference, double threshold,
                         std::size_t max_steps) {
  STOCDR_REQUIRE(threshold > 0.0, "mixing_steps: threshold must be positive");
  std::vector<double> x(initial.begin(), initial.end());
  std::vector<double> y(x.size());
  if (l1_distance(x, reference) <= threshold) return 0;
  for (std::size_t k = 1; k <= max_steps; ++k) {
    chain.step(x, y);
    x.swap(y);
    if (l1_distance(x, reference) <= threshold) return k;
  }
  return max_steps + 1;
}

}  // namespace stocdr::analysis
