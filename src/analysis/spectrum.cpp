#include "analysis/spectrum.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::analysis {

std::vector<double> power_spectral_density(
    std::span<const double> autocovariance, std::span<const double> freqs,
    SpectralWindow window) {
  STOCDR_REQUIRE(!autocovariance.empty(),
                 "power_spectral_density: empty autocovariance");
  const std::size_t kmax = autocovariance.size() - 1;
  std::vector<double> psd(freqs.size(), 0.0);
  for (std::size_t q = 0; q < freqs.size(); ++q) {
    const double f = freqs[q];
    STOCDR_REQUIRE(f >= 0.0 && f <= 0.5,
                   "power_spectral_density: frequency out of [0, 1/2]");
    double acc = autocovariance[0];
    for (std::size_t k = 1; k <= kmax; ++k) {
      double w = 1.0;
      if (window == SpectralWindow::kBartlett) {
        w = 1.0 - static_cast<double>(k) / static_cast<double>(kmax + 1);
      }
      acc += 2.0 * w * autocovariance[k] * std::cos(2.0 * kPi * f *
                                                    static_cast<double>(k));
    }
    psd[q] = acc;
  }
  return psd;
}

}  // namespace stocdr::analysis
