// Power spectral density of stationary state functions.
//
// The recovered-clock jitter spectrum follows from the phase-error
// autocovariance by the Wiener-Khinchine relation; for a discrete-time
// process sampled at the bit rate,
//
//   S(f) = C(0) + 2 sum_{k=1..K} w_k C(k) cos(2 pi f k),   f in [0, 1/2],
//
// evaluated directly (K is small; no FFT machinery needed).  A Bartlett
// window tapers the truncation.
#pragma once

#include <span>
#include <vector>

namespace stocdr::analysis {

/// Window applied to the truncated autocovariance.
enum class SpectralWindow {
  kRectangular,  ///< no taper (raw truncation)
  kBartlett,     ///< triangular taper, guarantees a nonnegative estimate
};

/// Evaluates the PSD at the normalized frequencies `freqs` (cycles/sample,
/// in [0, 1/2]) from an autocovariance sequence C(0..K).
[[nodiscard]] std::vector<double> power_spectral_density(
    std::span<const double> autocovariance, std::span<const double> freqs,
    SpectralWindow window = SpectralWindow::kBartlett);

}  // namespace stocdr::analysis
