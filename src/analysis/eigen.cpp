#include "analysis/eigen.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace stocdr::analysis {

double SubdominantEigenvalue::mixing_steps() const {
  if (!(magnitude > 0.0) || magnitude >= 1.0) return 0.0;
  return -1.0 / std::log(magnitude);
}

SubdominantEigenvalue subdominant_eigenvalue(const markov::MarkovChain& chain,
                                             std::span<const double> eta,
                                             double tolerance,
                                             std::size_t max_iterations) {
  const std::size_t n = chain.num_states();
  STOCDR_REQUIRE(eta.size() == n, "subdominant_eigenvalue: eta size mismatch");
  STOCDR_REQUIRE(tolerance > 0.0, "subdominant_eigenvalue: bad tolerance");
  SubdominantEigenvalue result;
  if (n < 2) {
    result.converged = true;
    return result;
  }

  // Deflated operator B x = P^T x - eta (1^T x): the dominant pair
  // (eigenvalue 1, right vector eta) is projected out exactly; all other
  // eigenvalues of P^T are preserved.
  std::vector<double> x(n), y(n);
  Rng rng(0x5eed);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);

  const auto deflated_step = [&](std::vector<double>& in,
                                 std::vector<double>& out) {
    chain.step(in, out);
    double mass = 0.0;
    for (const double v : in) mass += v;
    for (std::size_t i = 0; i < n; ++i) out[i] -= eta[i] * mass;
  };
  const auto norm2 = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double e : v) s += e * e;
    return std::sqrt(s);
  };

  // Normalize and iterate, tracking the geometric mean of two consecutive
  // growth ratios (stable for complex-conjugate subdominant pairs).
  double nx = norm2(x);
  if (nx == 0.0) {
    x[0] = 1.0;
    nx = 1.0;
  }
  for (double& v : x) v /= nx;

  double previous_ratio = 0.0;
  double previous_estimate = -1.0;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    deflated_step(x, y);
    const double ratio = norm2(y);
    if (ratio == 0.0) {
      // x fell into the kernel: the subdominant eigenvalue is 0.
      result.magnitude = 0.0;
      result.converged = true;
      result.iterations = it + 1;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / ratio;

    if (it > 0) {
      const double estimate = std::sqrt(ratio * previous_ratio);
      result.magnitude = estimate;
      result.iterations = it + 1;
      if (previous_estimate > 0.0) {
        const double change =
            std::abs(estimate - previous_estimate) / estimate;
        result.residual = change;
        if (change < tolerance) {
          result.converged = true;
          return result;
        }
      }
      previous_estimate = estimate;
    }
    previous_ratio = ratio;
  }
  return result;
}

}  // namespace stocdr::analysis
