// Discrete probability distributions on the real line.
//
// The paper's stochastic inputs (data jitter n_w, drift noise n_r) enter the
// Markov model as discretized amplitude distributions: "Almost all jitter
// specifications on the incoming data can be represented together by n_w and
// n_r by assigning appropriate amplitude distributions".  This type carries
// (value, probability) atoms with exact moment computation, sampling,
// convolution, and quantization onto a phase grid.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace stocdr::noise {

/// A finite discrete distribution: atoms (value_i, prob_i), values strictly
/// increasing, probabilities summing to 1.
class DiscreteDistribution {
 public:
  /// Constructs from parallel arrays.  Values need not be sorted (they are
  /// sorted and merged); probabilities must be nonnegative and are
  /// renormalized (their sum must be positive).
  DiscreteDistribution(std::vector<double> values,
                       std::vector<double> probabilities);

  /// The deterministic distribution concentrated at `value`.
  [[nodiscard]] static DiscreteDistribution point(double value);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::span<const double> probabilities() const {
    return probs_;
  }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return values_.front(); }
  [[nodiscard]] double max() const { return values_.back(); }

  /// P(X <= x).
  [[nodiscard]] double cdf(double x) const;

  /// Draws one sample (inverse-CDF over the atom list).
  [[nodiscard]] double sample(Rng& rng) const;

  /// Distribution of X + Y for independent X, Y.
  [[nodiscard]] DiscreteDistribution convolve(
      const DiscreteDistribution& other) const;

  /// Distribution of a*X + b.
  [[nodiscard]] DiscreteDistribution affine(double a, double b) const;

 private:
  std::vector<double> values_;
  std::vector<double> probs_;
  std::vector<double> cumulative_;  ///< inclusive prefix sums for sampling
};

/// An integer-offset noise PMF: the quantized form used when assembling the
/// TPM (offsets are multiples of the phase-grid spacing).
struct GridNoise {
  std::vector<std::int32_t> offsets;  ///< strictly increasing grid offsets
  std::vector<double> probabilities;  ///< matching probabilities, sum 1
};

/// Quantizes a distribution onto a grid of spacing `step`: each atom's value
/// is rounded to the nearest multiple of step and colliding atoms merge.
[[nodiscard]] GridNoise quantize_to_grid(const DiscreteDistribution& dist,
                                         double step);

}  // namespace stocdr::noise
