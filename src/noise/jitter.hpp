// Jitter amplitude-distribution builders.
//
// Constructors for the concrete noise models used in the paper's CDR
// analysis:
//
//   n_w — "a zero-mean white ... noise process that is usually Gaussian.
//          n_w models the eye opening of the data."
//   n_r — "usually a nonzero mean white noise process" whose random part
//          accumulates (random walk with drift); the examples use "a
//          non-zero mean, non-Gaussian distribution with probability density
//          function chosen to reflect SONET system specifications".
//
// The paper also notes "one can even mimic deterministic sinusoidally
// varying jitter by assigning the amplitude distribution of n_r
// appropriately" — sinusoidal_jitter() builds that arcsine amplitude law.
#pragma once

#include <cstddef>

#include "noise/discrete.hpp"

namespace stocdr::noise {

/// Discretizes a Gaussian N(mean, sigma^2) onto atoms at multiples of `step`
/// covering +-support_sigmas standard deviations; each atom receives the
/// exact probability of its half-open quantization interval, so the PMF
/// sums to 1 and the first two moments match closely for fine steps.
[[nodiscard]] DiscreteDistribution discretize_gaussian(
    double mean, double sigma, double step, double support_sigmas = 6.0);

/// The SONET-style drift noise n_r: a bounded, biased, non-Gaussian PMF.
/// The shape is a discrete triangular distribution on [-max_amplitude,
/// +max_amplitude] shifted to the requested mean (a frequency-offset drift
/// term); `atoms` is the number of grid points (>= 3, odd recommended).
[[nodiscard]] DiscreteDistribution sonet_drift_noise(double mean,
                                                     double max_amplitude,
                                                     std::size_t atoms = 7);

/// Amplitude distribution of a sinusoid of the given amplitude sampled at a
/// uniformly random phase (the arcsine law): used to mimic deterministic
/// sinusoidal jitter in the white-noise framework.  `atoms` quantization
/// cells each receive their exact arcsine probability.
[[nodiscard]] DiscreteDistribution sinusoidal_jitter(double amplitude,
                                                     std::size_t atoms = 15);

/// Uniform amplitude distribution on [-max_amplitude, +max_amplitude]
/// (bounded uncorrelated jitter; the conservative eye-closure model).
[[nodiscard]] DiscreteDistribution uniform_jitter(double max_amplitude,
                                                  std::size_t atoms = 15);

/// Two-point "dual-Dirac" jitter model (deterministic jitter of peak
/// separation dj_pp): atoms at +-dj_pp/2 with equal mass.  Combine with
/// discretize_gaussian via convolve() for the classical DJ+RJ model.
[[nodiscard]] DiscreteDistribution dual_dirac_jitter(double dj_pp);

}  // namespace stocdr::noise
