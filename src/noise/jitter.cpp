#include "noise/jitter.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::noise {

DiscreteDistribution discretize_gaussian(double mean, double sigma,
                                         double step,
                                         double support_sigmas) {
  STOCDR_REQUIRE(sigma >= 0.0, "discretize_gaussian: sigma must be >= 0");
  STOCDR_REQUIRE(step > 0.0, "discretize_gaussian: step must be positive");
  STOCDR_REQUIRE(support_sigmas > 0.0,
                 "discretize_gaussian: support must be positive");
  if (sigma == 0.0) return DiscreteDistribution::point(mean);

  // Atoms at k*step nearest the mean, spanning mean +- support_sigmas*sigma.
  const double lo = mean - support_sigmas * sigma;
  const double hi = mean + support_sigmas * sigma;
  const auto k_lo = static_cast<long long>(std::floor(lo / step));
  const auto k_hi = static_cast<long long>(std::ceil(hi / step));
  STOCDR_REQUIRE(k_hi - k_lo + 1 <= 2'000'000,
                 "discretize_gaussian: too many atoms; increase step");

  std::vector<double> values, probs;
  values.reserve(static_cast<std::size_t>(k_hi - k_lo + 1));
  probs.reserve(values.capacity());
  for (long long k = k_lo; k <= k_hi; ++k) {
    const double v = static_cast<double>(k) * step;
    // Quantization cell [v - step/2, v + step/2); tail cells absorb the
    // remainder so the PMF sums to exactly 1.
    const double a =
        k == k_lo ? -1e300 : (v - 0.5 * step - mean) / sigma;
    const double b = k == k_hi ? 1e300 : (v + 0.5 * step - mean) / sigma;
    const double p = (k == k_lo)   ? gaussian_cdf(b)
                     : (k == k_hi) ? gaussian_tail(a)
                                   : gaussian_interval(a, b);
    values.push_back(v);
    probs.push_back(p);
  }
  return DiscreteDistribution(std::move(values), std::move(probs));
}

DiscreteDistribution sonet_drift_noise(double mean, double max_amplitude,
                                       std::size_t atoms) {
  STOCDR_REQUIRE(max_amplitude >= 0.0,
                 "sonet_drift_noise: max amplitude must be >= 0");
  STOCDR_REQUIRE(atoms >= 3, "sonet_drift_noise: need at least 3 atoms");
  if (max_amplitude == 0.0) return DiscreteDistribution::point(mean);

  // Symmetric triangular weights on the zero-mean part, then shift: the
  // bounded support and central concentration mirror the SONET frequency
  // drift spec without assuming Gaussianity.
  std::vector<double> values(atoms), probs(atoms);
  const double half = static_cast<double>(atoms - 1) / 2.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    const double t = (static_cast<double>(i) - half) / half;  // in [-1, 1]
    values[i] = mean + t * max_amplitude;
    probs[i] = 1.0 - std::abs(t) + 1.0 / static_cast<double>(atoms);
  }
  return DiscreteDistribution(std::move(values), std::move(probs));
}

DiscreteDistribution sinusoidal_jitter(double amplitude, std::size_t atoms) {
  STOCDR_REQUIRE(amplitude > 0.0,
                 "sinusoidal_jitter: amplitude must be positive");
  STOCDR_REQUIRE(atoms >= 2, "sinusoidal_jitter: need at least 2 atoms");
  // P(X in [a,b]) for X = A sin(U), U uniform phase, is
  // (asin(b/A) - asin(a/A)) / pi; atoms at the cell centers.
  std::vector<double> values(atoms), probs(atoms);
  const double cell = 2.0 * amplitude / static_cast<double>(atoms);
  for (std::size_t i = 0; i < atoms; ++i) {
    const double a = -amplitude + cell * static_cast<double>(i);
    const double b = a + cell;
    values[i] = 0.5 * (a + b);
    const double sa = std::asin(std::clamp(a / amplitude, -1.0, 1.0));
    const double sb = std::asin(std::clamp(b / amplitude, -1.0, 1.0));
    probs[i] = (sb - sa) / kPi;
  }
  return DiscreteDistribution(std::move(values), std::move(probs));
}

DiscreteDistribution uniform_jitter(double max_amplitude, std::size_t atoms) {
  STOCDR_REQUIRE(max_amplitude > 0.0,
                 "uniform_jitter: amplitude must be positive");
  STOCDR_REQUIRE(atoms >= 2, "uniform_jitter: need at least 2 atoms");
  std::vector<double> values(atoms);
  const double cell = 2.0 * max_amplitude / static_cast<double>(atoms);
  for (std::size_t i = 0; i < atoms; ++i) {
    values[i] = -max_amplitude + cell * (static_cast<double>(i) + 0.5);
  }
  return DiscreteDistribution(std::move(values),
                              std::vector<double>(atoms, 1.0));
}

DiscreteDistribution dual_dirac_jitter(double dj_pp) {
  STOCDR_REQUIRE(dj_pp >= 0.0, "dual_dirac_jitter: dj_pp must be >= 0");
  if (dj_pp == 0.0) return DiscreteDistribution::point(0.0);
  return DiscreteDistribution({-0.5 * dj_pp, 0.5 * dj_pp}, {0.5, 0.5});
}

}  // namespace stocdr::noise
