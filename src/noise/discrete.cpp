#include "noise/discrete.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::noise {

DiscreteDistribution::DiscreteDistribution(std::vector<double> values,
                                           std::vector<double> probabilities) {
  STOCDR_REQUIRE(values.size() == probabilities.size() && !values.empty(),
                 "DiscreteDistribution: parallel arrays required");
  // Sort by value and merge duplicates.
  std::vector<std::size_t> index(values.size());
  std::iota(index.begin(), index.end(), 0);
  std::sort(index.begin(), index.end(), [&values](std::size_t a,
                                                  std::size_t b) {
    return values[a] < values[b];
  });
  double total = 0.0;
  for (const std::size_t i : index) {
    const double v = values[i];
    const double p = probabilities[i];
    STOCDR_REQUIRE(std::isfinite(v), "DiscreteDistribution: non-finite value");
    STOCDR_REQUIRE(p >= 0.0,
                   "DiscreteDistribution: negative probability");
    if (p == 0.0) continue;
    if (!values_.empty() && values_.back() == v) {
      probs_.back() += p;
    } else {
      values_.push_back(v);
      probs_.push_back(p);
    }
    total += p;
  }
  STOCDR_REQUIRE(total > 0.0,
                 "DiscreteDistribution: total probability must be positive");
  for (double& p : probs_) p /= total;
  cumulative_.resize(probs_.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    cum += probs_[i];
    cumulative_[i] = cum;
  }
  cumulative_.back() = 1.0;
}

DiscreteDistribution DiscreteDistribution::point(double value) {
  return DiscreteDistribution({value}, {1.0});
}

double DiscreteDistribution::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) m += values_[i] * probs_[i];
  return m;
}

double DiscreteDistribution::variance() const {
  const double m = mean();
  double v = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double d = values_[i] - m;
    v += d * d * probs_[i];
  }
  return v;
}

double DiscreteDistribution::stddev() const { return std::sqrt(variance()); }

double DiscreteDistribution::cdf(double x) const {
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  if (it == values_.begin()) return 0.0;
  return cumulative_[static_cast<std::size_t>(it - values_.begin()) - 1];
}

double DiscreteDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t i = it == cumulative_.end()
                            ? cumulative_.size() - 1
                            : static_cast<std::size_t>(
                                  it - cumulative_.begin());
  return values_[i];
}

DiscreteDistribution DiscreteDistribution::convolve(
    const DiscreteDistribution& other) const {
  std::map<double, double> atoms;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    for (std::size_t j = 0; j < other.values_.size(); ++j) {
      atoms[values_[i] + other.values_[j]] += probs_[i] * other.probs_[j];
    }
  }
  std::vector<double> v, p;
  v.reserve(atoms.size());
  p.reserve(atoms.size());
  for (const auto& [value, prob] : atoms) {
    v.push_back(value);
    p.push_back(prob);
  }
  return DiscreteDistribution(std::move(v), std::move(p));
}

DiscreteDistribution DiscreteDistribution::affine(double a, double b) const {
  std::vector<double> v(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) v[i] = a * values_[i] + b;
  return DiscreteDistribution(std::move(v), probs_);
}

GridNoise quantize_to_grid(const DiscreteDistribution& dist, double step) {
  STOCDR_REQUIRE(step > 0.0, "quantize_to_grid: step must be positive");
  std::map<std::int32_t, double> atoms;
  const auto values = dist.values();
  const auto probs = dist.probabilities();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double q = values[i] / step;
    STOCDR_REQUIRE(std::abs(q) < 2e9, "quantize_to_grid: offset overflow");
    atoms[static_cast<std::int32_t>(std::llround(q))] += probs[i];
  }
  GridNoise noise;
  noise.offsets.reserve(atoms.size());
  noise.probabilities.reserve(atoms.size());
  for (const auto& [offset, prob] : atoms) {
    noise.offsets.push_back(offset);
    noise.probabilities.push_back(prob);
  }
  return noise;
}

}  // namespace stocdr::noise
