// Fault-tolerant solve orchestration: fallback ladder, divergence
// sentinels, checkpoint/restart, budgets, input repair, and graceful
// degradation (src/robust/).
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "markov/chain.hpp"
#include "robust/robust_solver.hpp"
#include "robust/sentinel.hpp"
#include "solvers/aggregation.hpp"
#include "solvers/stationary.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace stocdr::robust {
namespace {

using markov::MarkovChain;

std::vector<double> gth_reference(const MarkovChain& chain) {
  return solvers::solve_stationary_direct(chain).distribution;
}

// --- happy path -------------------------------------------------------------

TEST(RobustSolverTest, HealthyChainConvergesOnFirstRung) {
  const MarkovChain chain(test::random_sparse_stochastic_pt(200, 6, 11));
  const auto hierarchy =
      solvers::build_index_pair_hierarchy(chain.num_states(), 20);
  RobustOptions options;
  options.multilevel.coarsest_size = 20;
  const RobustResult result =
      solve_stationary_robust(chain, hierarchy, options);

  EXPECT_TRUE(result.report.converged);
  EXPECT_EQ(result.report.rungs.size(), 1u);
  EXPECT_EQ(result.report.rungs[0].failure, FailureCause::kNone);
  EXPECT_FALSE(result.report.repaired);
  EXPECT_FALSE(result.report.degraded);
  EXPECT_LT(result.report.residual, 1e-11);
  EXPECT_LT(test::l1(result.distribution, gth_reference(chain)), 1e-8);
}

TEST(RobustSolverTest, ReportSummaryAndJsonAreStructured) {
  const MarkovChain chain(test::birth_death_pt(40, 0.3, 0.2));
  const RobustResult result = solve_stationary_robust(chain);
  EXPECT_NE(result.report.summary().find("converged via"), std::string::npos);
  const std::string json = result.report.to_json();
  for (const char* key :
       {"\"converged\":", "\"rungs\":", "\"residual\":", "\"states\":",
        "\"checkpoints\":", "\"final_method\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

// --- acceptance (a): escalation past a failing first rung -------------------

TEST(RobustSolverTest, StalledMultilevelEscalatesToLowerRung) {
  // An index-pair hierarchy does not match this random chain's structure,
  // and the multilevel rung is starved to a single cycle — it cannot reach
  // tolerance, so the ladder must escalate to a lower rung.
  const MarkovChain chain(test::random_sparse_stochastic_pt(200, 6, 11));
  const auto hierarchy =
      solvers::build_index_pair_hierarchy(chain.num_states(), 4);
  RobustOptions options;
  options.ladder = {
      {RungKind::kMultilevel, 1, 1.0},
      {RungKind::kGmresStationary, 300, 1.0},
      {RungKind::kSor, 20000, 1.0},
      {RungKind::kGthDirect, 1, 1.0},
  };
  options.multilevel.coarsest_size = 4;  // forbid the internal direct solve
  const RobustResult result =
      solve_stationary_robust(chain, hierarchy, options);

  EXPECT_TRUE(result.report.converged);
  ASSERT_GE(result.report.rungs.size(), 2u);
  EXPECT_NE(result.report.rungs[0].failure, FailureCause::kNone);
  // Every later rung records why its predecessor failed.
  EXPECT_EQ(result.report.rungs[1].predecessor_failure,
            to_string(result.report.rungs[0].failure));
  EXPECT_EQ(result.report.rungs.back().failure, FailureCause::kNone);
  EXPECT_LT(test::l1(result.distribution, gth_reference(chain)), 1e-8);
}

TEST(RobustSolverTest, PeriodicChainTriggersStallSentinel) {
  // The two-state swap chain is periodic: undamped power iteration orbits
  // forever with a constant residual, which is exactly what the stall
  // sentinel exists to catch.
  sparse::CooBuilder builder(2, 2);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  const MarkovChain chain(builder.to_csr());

  RobustOptions options;
  options.ladder = {
      {RungKind::kPower, 100000, 1.0},  // undamped on purpose
      {RungKind::kGthDirect, 1, 1.0},
  };
  const std::vector<double> initial = {0.75, 0.25};
  const RobustResult result =
      solve_stationary_robust(chain, {}, options, initial);

  ASSERT_EQ(result.report.rungs.size(), 2u);
  EXPECT_EQ(result.report.rungs[0].failure, FailureCause::kStalled);
  EXPECT_NE(result.report.rungs[0].detail.find("consecutive"),
            std::string::npos);
  EXPECT_TRUE(result.report.converged);
  EXPECT_EQ(result.report.final_method, "gth-direct");
  EXPECT_NEAR(result.distribution[0], 0.5, 1e-12);
  EXPECT_NEAR(result.distribution[1], 0.5, 1e-12);
}

// --- acceptance (b): NaN mid-solve -> checkpoint/restart --------------------

TEST(RobustSolverTest, InjectedNanTriggersCheckpointRestart) {
  const MarkovChain chain(test::birth_death_pt(80, 0.3, 0.2));
  bool injected = false;
  auto inject = [&](const obs::ProgressEvent& event) -> double {
    if (!injected && event.iteration == 60 &&
        std::string_view(event.method) == "power") {
      injected = true;
      return std::numeric_limits<double>::quiet_NaN();
    }
    return event.residual;
  };
  RobustOptions options;
  options.ladder = {
      {RungKind::kPower, 5000, 0.9},
      {RungKind::kSor, 20000, 1.0},
      {RungKind::kGthDirect, 1, 1.0},
  };
  options.fault_injector = FaultInjector(inject);
  // The early damped-power transient reduces the residual slowly; keep the
  // stall sentinel out of the way so the injected fault is what fires.
  options.stall_window = 1000;
  const RobustResult result = solve_stationary_robust(chain, {}, options);

  EXPECT_TRUE(injected);
  ASSERT_GE(result.report.rungs.size(), 2u);
  EXPECT_EQ(result.report.rungs[0].failure, FailureCause::kNumericalFault);
  EXPECT_NE(result.report.rungs[0].detail.find("non-finite"),
            std::string::npos);
  // The fault hit after several sentinel checks, so a checkpoint exists and
  // the next rung restarts from it instead of from scratch.
  EXPECT_GE(result.report.rungs[0].checkpoints, 1u);
  EXPECT_GE(result.report.checkpoints_taken, 1u);
  EXPECT_TRUE(result.report.rungs[1].warm_started);
  EXPECT_LT(result.report.rungs[1].initial_residual, 1.0);
  EXPECT_TRUE(result.report.converged);
  EXPECT_LT(test::l1(result.distribution, gth_reference(chain)), 1e-8);
}

// --- acceptance (c): zero deadline -> structured timeout --------------------

TEST(RobustSolverTest, ZeroDeadlineYieldsStructuredTimeout) {
  const MarkovChain chain(test::birth_death_pt(60, 0.3, 0.2));
  RobustOptions options;
  options.time_budget_seconds = 0.0;
  RobustResult result;
  ASSERT_NO_THROW(result = solve_stationary_robust(chain, {}, options));

  EXPECT_TRUE(result.report.deadline_exceeded);
  EXPECT_FALSE(result.report.converged);
  ASSERT_FALSE(result.report.rungs.empty());
  EXPECT_EQ(result.report.rungs[0].failure, FailureCause::kDeadlineExceeded);
  // The last-good iterate is attached: a normalized distribution with the
  // residual the report claims for it.
  ASSERT_EQ(result.distribution.size(), chain.num_states());
  double sum = 0.0;
  for (const double v : result.distribution) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_TRUE(std::isfinite(result.report.residual));
  EXPECT_NE(result.report.summary().find("deadline"), std::string::npos);
}

// --- input validation gate --------------------------------------------------

MarkovChain defective_chain(std::size_t n, double scale) {
  // birth_death_pt with one state's outgoing mass scaled by `scale`.
  sparse::CooBuilder builder(n, n);
  const double p = 0.3, q = 0.2;
  for (std::size_t i = 0; i < n; ++i) {
    const double s = i == n / 2 ? scale : 1.0;
    double stay = 1.0 - p - q;
    if (i == 0) stay += q; else builder.add(i - 1, i, q * s);
    if (i + 1 == n) stay += p; else builder.add(i + 1, i, p * s);
    builder.add(i, i, stay * s);
  }
  return MarkovChain(builder.to_csr(), markov::Validation::kNone);
}

TEST(RobustSolverTest, SmallStochasticityDefectIsRepaired) {
  const MarkovChain chain = defective_chain(50, 1.0 + 1e-8);
  const RobustSolver solver(chain, {}, {});
  EXPECT_TRUE(solver.repaired());
  EXPECT_LT(solver.chain().stochasticity_defect(), 1e-12);

  const RobustResult result = solver.solve();
  EXPECT_TRUE(result.report.repaired);
  EXPECT_GT(result.report.stochasticity_defect, 1e-9);
  EXPECT_TRUE(result.report.converged);
  EXPECT_NE(result.report.summary().find("[input repaired]"),
            std::string::npos);
  // The repaired chain is plain birth-death: match its closed form.
  EXPECT_LT(test::l1(result.distribution,
                     test::birth_death_stationary(50, 0.3, 0.2)),
            1e-8);
}

TEST(RobustSolverTest, LargeDefectIsRejected) {
  const MarkovChain chain = defective_chain(50, 1.01);  // defect ~1e-2
  EXPECT_THROW((void)RobustSolver(chain, {}, {}), PreconditionError);
}

TEST(RobustSolverTest, CleanChainIsNotCopied) {
  const MarkovChain chain(test::birth_death_pt(30, 0.3, 0.2));
  const RobustSolver solver(chain, {}, {});
  EXPECT_FALSE(solver.repaired());
  EXPECT_EQ(&solver.chain(), &chain);
}

// --- graceful degradation ---------------------------------------------------

TEST(RobustSolverTest, StateCeilingDegradesThroughHierarchy) {
  // Fast-mixing chain: the coarse solution plus smoothing must land close.
  const MarkovChain chain(test::random_sparse_stochastic_pt(128, 6, 5));
  const auto hierarchy =
      solvers::build_index_pair_hierarchy(chain.num_states(), 8);
  RobustOptions options;
  options.max_states = 40;  // force lumping 128 -> 64 -> 32
  options.degrade_smooth_sweeps = 50;
  const RobustResult result =
      solve_stationary_robust(chain, hierarchy, options);

  EXPECT_TRUE(result.report.degraded);
  EXPECT_LE(result.report.degraded_states, 40u);
  EXPECT_GE(result.report.degraded_states, 16u);
  ASSERT_EQ(result.distribution.size(), chain.num_states());
  // The accuracy loss is measured on the fine chain and reported.
  EXPECT_TRUE(std::isfinite(result.report.degradation_residual));
  EXPECT_GT(result.report.degradation_residual, 0.0);
  EXPECT_EQ(result.report.residual, result.report.degradation_residual);
  EXPECT_NE(result.report.summary().find("[degraded to"), std::string::npos);
  // Coarse + smoothing is approximate but must stay in the right ballpark.
  EXPECT_LT(test::l1(result.distribution, gth_reference(chain)), 0.2);
}

// --- sentinel unit behaviour ------------------------------------------------

obs::ProgressEvent event_at(std::size_t iteration, double residual,
                            std::span<const double> iterate = {}) {
  obs::ProgressEvent event;
  event.method = "test";
  event.iteration = iteration;
  event.residual = residual;
  event.iterate = iterate;
  return event;
}

TEST(SolveSentinelTest, DivergenceStopsTheSolve) {
  SolveSentinel::Options options;
  options.stride = 1;
  options.divergence_factor = 10.0;
  SolveSentinel sentinel(options);
  EXPECT_EQ(sentinel(event_at(1, 1.0)), obs::ProgressAction::kContinue);
  EXPECT_EQ(sentinel(event_at(2, 0.5)), obs::ProgressAction::kContinue);
  EXPECT_EQ(sentinel(event_at(3, 50.0)), obs::ProgressAction::kStop);
  EXPECT_EQ(sentinel.verdict(), FailureCause::kDiverged);
}

TEST(SolveSentinelTest, CheckpointsTrackTheBestIterate) {
  SolveSentinel::Options options;
  options.stride = 1;
  SolveSentinel sentinel(options);
  const std::vector<double> a = {0.9, 0.1};
  const std::vector<double> b = {0.6, 0.4};
  const std::vector<double> worse = {0.99, 0.01};
  EXPECT_EQ(sentinel(event_at(1, 0.5, a)), obs::ProgressAction::kContinue);
  EXPECT_EQ(sentinel(event_at(2, 0.1, b)), obs::ProgressAction::kContinue);
  EXPECT_EQ(sentinel(event_at(3, 0.4, worse)),
            obs::ProgressAction::kContinue);
  EXPECT_EQ(sentinel.checkpoint(), b);
  EXPECT_EQ(sentinel.checkpoint_residual(), 0.1);
  EXPECT_EQ(sentinel.checkpoints_taken(), 2u);
}

TEST(SolveSentinelTest, ForwardsToTheUserObserver) {
  std::size_t forwarded = 0;
  auto user = [&](const obs::ProgressEvent&) {
    ++forwarded;
    return obs::ProgressAction::kContinue;
  };
  SolveSentinel::Options options;
  options.forward = obs::ProgressObserver(user);
  SolveSentinel sentinel(options);
  EXPECT_EQ(sentinel(event_at(1, 1.0)), obs::ProgressAction::kContinue);
  EXPECT_EQ(sentinel(event_at(2, 0.9)), obs::ProgressAction::kContinue);
  EXPECT_EQ(forwarded, 2u);
}

}  // namespace
}  // namespace stocdr::robust
