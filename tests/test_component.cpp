#include "fsm/component.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace stocdr::fsm {
namespace {

/// Collects branches emitted by enumerate() for inspection.
struct BranchLog {
  struct Entry {
    double probability;
    std::vector<std::uint32_t> outputs;
    std::uint32_t next_state;
  };
  std::vector<Entry> entries;

  void collect(const Component& comp, std::uint32_t state,
               std::vector<std::uint32_t> inputs = {}) {
    entries.clear();
    auto sink = [this](double p, std::span<const std::uint32_t> outs,
                       std::uint32_t next) {
      entries.push_back({p, {outs.begin(), outs.end()}, next});
    };
    comp.enumerate(state, inputs, sink);
  }

  [[nodiscard]] double total_probability() const {
    double sum = 0.0;
    for (const auto& e : entries) sum += e.probability;
    return sum;
  }
};

TEST(IidSourceTest, EnumeratesPmf) {
  const IidSource source("noise", {0.2, 0.5, 0.3});
  BranchLog log;
  log.collect(source, 0);
  ASSERT_EQ(log.entries.size(), 3u);
  EXPECT_DOUBLE_EQ(log.entries[0].probability, 0.2);
  EXPECT_EQ(log.entries[1].outputs[0], 1u);
  EXPECT_DOUBLE_EQ(log.total_probability(), 1.0);
  // Single-state machine: next state always 0.
  for (const auto& e : log.entries) EXPECT_EQ(e.next_state, 0u);
}

TEST(IidSourceTest, SkipsZeroAtoms) {
  const IidSource source("noise", {0.5, 0.0, 0.5});
  BranchLog log;
  log.collect(source, 0);
  EXPECT_EQ(log.entries.size(), 2u);
}

TEST(IidSourceTest, RenormalizesNearOne) {
  const IidSource source("noise", {0.3 + 1e-12, 0.7});
  double sum = 0.0;
  for (const double p : source.pmf()) sum += p;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(IidSourceTest, RejectsBadPmf) {
  EXPECT_THROW(IidSource("x", {}), PreconditionError);
  EXPECT_THROW(IidSource("x", {0.5, -0.1, 0.6}), PreconditionError);
  EXPECT_THROW(IidSource("x", {0.5, 0.2}), PreconditionError);
}

TEST(MarkovSourceTest, MooreOutputIsState) {
  const MarkovSource source("mc", {{0.9, 0.1}, {0.4, 0.6}}, 1);
  EXPECT_TRUE(source.is_moore());
  EXPECT_EQ(source.initial_state(), 1u);
  std::uint32_t out = 99;
  source.moore_outputs(1, std::span<std::uint32_t>(&out, 1));
  EXPECT_EQ(out, 1u);
}

TEST(MarkovSourceTest, BranchesFollowRow) {
  const MarkovSource source("mc", {{0.9, 0.1}, {0.4, 0.6}});
  BranchLog log;
  log.collect(source, 1);
  ASSERT_EQ(log.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(log.entries[0].probability, 0.4);
  EXPECT_EQ(log.entries[0].next_state, 0u);
  EXPECT_DOUBLE_EQ(log.entries[1].probability, 0.6);
  EXPECT_EQ(log.entries[1].next_state, 1u);
}

TEST(MarkovSourceTest, RejectsBadRows) {
  EXPECT_THROW(MarkovSource("x", {}), PreconditionError);
  EXPECT_THROW(MarkovSource("x", {{0.5}}, 2), PreconditionError);
  EXPECT_THROW(MarkovSource("x", {{0.5, 0.2}, {0.5, 0.5}}),
               PreconditionError);
  EXPECT_THROW(MarkovSource("x", {{1.0, 0.0}, {1.0}}), PreconditionError);
}

/// A 2-state toggle with one output echoing its input.
class Echo final : public DeterministicComponent {
 public:
  Echo() : DeterministicComponent("echo") {}
  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] std::uint32_t initial_state() const override { return 0; }
  [[nodiscard]] std::size_t num_input_ports() const override { return 1; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }
  [[nodiscard]] std::uint32_t next_state(
      std::uint32_t state,
      std::span<const std::uint32_t> /*in*/) const override {
    return state ^ 1u;
  }
  void outputs(std::uint32_t /*state*/, std::span<const std::uint32_t> in,
               std::span<std::uint32_t> out) const override {
    out[0] = in[0] + 1;
  }
};

TEST(DeterministicComponentTest, SingleUnitBranch) {
  const Echo echo;
  BranchLog log;
  log.collect(echo, 0, {41});
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(log.entries[0].probability, 1.0);
  EXPECT_EQ(log.entries[0].outputs[0], 42u);
  EXPECT_EQ(log.entries[0].next_state, 1u);
}

TEST(DelayLineTest, DelaysInputByDepth) {
  const DelayLine line("d", 3, 2, 0);
  EXPECT_EQ(line.num_states(), 9u);
  EXPECT_TRUE(line.is_moore());
  std::uint32_t state = line.initial_state();
  std::vector<std::uint32_t> outputs;
  const std::vector<std::uint32_t> inputs{1, 2, 0, 2, 1};
  for (const std::uint32_t in : inputs) {
    std::uint32_t out = 99;
    line.moore_outputs(state, std::span<std::uint32_t>(&out, 1));
    outputs.push_back(out);
    state = line.next_state(state, std::span<const std::uint32_t>(&in, 1));
  }
  // Depth 2, initially filled with 0: outputs are 0, 0, then the inputs
  // delayed by two cycles.
  EXPECT_EQ(outputs, (std::vector<std::uint32_t>{0, 0, 1, 2, 0}));
}

TEST(DelayLineTest, DepthOneIsPrevValue) {
  const DelayLine line("d", 2, 1, 1);
  std::uint32_t out = 9;
  line.moore_outputs(line.initial_state(), std::span<std::uint32_t>(&out, 1));
  EXPECT_EQ(out, 1u);
  const std::uint32_t zero = 0;
  const std::uint32_t next = line.next_state(
      line.initial_state(), std::span<const std::uint32_t>(&zero, 1));
  line.moore_outputs(next, std::span<std::uint32_t>(&out, 1));
  EXPECT_EQ(out, 0u);
}

TEST(DelayLineTest, Validation) {
  EXPECT_THROW(DelayLine("d", 1, 2), PreconditionError);
  EXPECT_THROW(DelayLine("d", 2, 0), PreconditionError);
  EXPECT_THROW(DelayLine("d", 2, 2, 5), PreconditionError);
  EXPECT_THROW(DelayLine("d", 16, 10), PreconditionError);  // 16^10 states
}

TEST(ComponentTest, MooreOutputsOnNonMooreThrows) {
  const IidSource source("x", {1.0});
  std::uint32_t out;
  EXPECT_THROW(source.moore_outputs(0, std::span<std::uint32_t>(&out, 1)),
               InternalError);
}

}  // namespace
}  // namespace stocdr::fsm
