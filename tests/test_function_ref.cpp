#include "support/function_ref.hpp"

#include <string>

#include <gtest/gtest.h>

namespace stocdr {
namespace {

int free_function(int x) { return x * 2; }

TEST(FunctionRefTest, CallsLambda) {
  const auto f = [](int x) { return x + 1; };
  FunctionRef<int(int)> ref = f;
  EXPECT_EQ(ref(41), 42);
}

TEST(FunctionRefTest, CallsFreeFunction) {
  FunctionRef<int(int)> ref = free_function;
  EXPECT_EQ(ref(21), 42);
}

TEST(FunctionRefTest, MutatesCapturedState) {
  int counter = 0;
  auto f = [&counter](int delta) { counter += delta; };
  FunctionRef<void(int)> ref = f;
  ref(5);
  ref(7);
  EXPECT_EQ(counter, 12);
}

TEST(FunctionRefTest, PassesReferencesThrough) {
  auto f = [](std::string& s) { s += "!"; };
  FunctionRef<void(std::string&)> ref = f;
  std::string s = "hi";
  ref(s);
  EXPECT_EQ(s, "hi!");
}

TEST(FunctionRefTest, IsTriviallyCopyable) {
  static_assert(std::is_trivially_copyable_v<FunctionRef<void()>>);
  const auto f = [] { return 3; };
  FunctionRef<int()> a = f;
  FunctionRef<int()> b = a;
  EXPECT_EQ(b(), 3);
}

}  // namespace
}  // namespace stocdr
