// Observability primitives: JSON emission, metrics, and trace sinks.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/live/openmetrics.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace stocdr::obs {
namespace {

// --- JSON emission ----------------------------------------------------------

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("mg.level"), "mg.level");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape(std::string("a\x7f") + "b"), "a\\u007fb");
}

TEST(JsonEscapeTest, PassesWellFormedUtf8Through) {
  EXPECT_EQ(json_escape("\xc2\xb5s"), "\xc2\xb5s");              // µs
  EXPECT_EQ(json_escape("\xe2\x86\x92"), "\xe2\x86\x92");        // →
  EXPECT_EQ(json_escape("\xf0\x9f\x98\x80"), "\xf0\x9f\x98\x80");  // 😀
}

TEST(JsonEscapeTest, ReplacesIllFormedUtf8Bytes) {
  // Stray continuation byte, truncated lead, overlong encoding, lone
  // surrogate: every bad byte becomes an escaped U+FFFD, never raw output.
  EXPECT_EQ(json_escape("a\x80""b"), "a\\ufffdb");
  EXPECT_EQ(json_escape("a\xc2"), "a\\ufffd");                // truncated
  EXPECT_EQ(json_escape("\xc0\xaf"), "\\ufffd\\ufffd");       // overlong '/'
  EXPECT_EQ(json_escape("\xed\xa0\x80"),
            "\\ufffd\\ufffd\\ufffd");                         // surrogate
  EXPECT_EQ(json_escape("\xff"), "\\ufffd");
}

TEST(JsonNumberTest, FiniteAndNonFinite) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "\"inf\"");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()),
            "\"nan\"");
}

TEST(JsonWriterTest, NestedObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "solve");
  w.field("states", std::uint64_t{1024});
  w.field("residual", 0.5);
  w.field("converged", true);
  w.key("history");
  w.begin_array();
  w.value(1.0);
  w.value(0.25);
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"name\":\"solve\",\"states\":1024,\"residual\":0.5,"
            "\"converged\":true,\"history\":[1,0.25],\"nested\":{}}");
}

// --- metrics ----------------------------------------------------------------

TEST(MetricsPrimitivesTest, CounterAddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add(5);
  counter.add(2);
  EXPECT_EQ(counter.value(), 7u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsPrimitivesTest, HistogramTracksExtremaAndMean) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0.0);  // defined zero before any observation
  EXPECT_EQ(histogram.max(), 0.0);
  histogram.observe(2.0);
  histogram.observe(-1.0);
  histogram.observe(5.0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.min(), -1.0);
  EXPECT_EQ(histogram.max(), 5.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 2.0);
}

// The log-bucket quantile estimate is within one bucket width of the truth:
// a factor of 10^(1/kBucketsPerDecade) ~ 1.334.
constexpr double kBucketFactor = 1.3336;

TEST(MetricsPrimitivesTest, HistogramQuantilesOnUniformValues) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.observe(static_cast<double>(i));
  EXPECT_EQ(histogram.quantile(0.0), 1.0);      // clamped to exact min
  EXPECT_EQ(histogram.quantile(1.0), 1000.0);   // clamped to exact max
  const double p50 = histogram.quantile(0.50);
  const double p90 = histogram.quantile(0.90);
  const double p99 = histogram.quantile(0.99);
  EXPECT_GE(p50, 500.0 / kBucketFactor);
  EXPECT_LE(p50, 500.0 * kBucketFactor);
  EXPECT_GE(p90, 900.0 / kBucketFactor);
  EXPECT_LE(p90, 900.0 * kBucketFactor);
  EXPECT_GE(p99, 990.0 / kBucketFactor);
  EXPECT_LE(p99, 1000.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
}

TEST(MetricsPrimitivesTest, HistogramQuantilesOnLogSpreadValues) {
  // Residual-reduction style data spanning many decades.
  Histogram histogram;
  const double values[] = {1e-9, 1e-6, 1e-3, 0.1, 0.5, 0.9, 2.0, 1e3};
  for (const double v : values) histogram.observe(v);
  const double p50 = histogram.quantile(0.5);
  // True median is between 0.1 and 0.5.
  EXPECT_GE(p50, 0.1 / kBucketFactor);
  EXPECT_LE(p50, 0.5 * kBucketFactor);
}

TEST(MetricsPrimitivesTest, HistogramSingleValueQuantilesAreExact) {
  Histogram histogram;
  histogram.observe(0.37);
  // Clamping to the exact extrema makes every quantile exact here.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.37);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 0.37);
}

TEST(MetricsPrimitivesTest, HistogramTerminalBucketInterpolatesWithinExtrema) {
  // All observations land in one log bucket.  Before the hit-bucket bounds
  // were tightened to the exact extrema, the p99 estimate collapsed onto
  // the bucket's upper edge (then clamped to max), so tail quantiles of
  // tightly clustered data were pinned to 10^(k/kBucketsPerDecade) values.
  Histogram histogram;
  for (int i = 0; i < 100; ++i) {
    histogram.observe(0.025 + 0.00005 * i);  // [0.025, 0.03), one bucket
  }
  const double p50 = histogram.quantile(0.50);
  const double p99 = histogram.quantile(0.99);
  EXPECT_GT(p50, 0.025);
  EXPECT_LT(p50, 0.030);
  EXPECT_GT(p99, p50);
  EXPECT_LT(p99, histogram.max());  // not pinned to the bucket edge or max
}

TEST(MetricsPrimitivesTest, HistogramHandlesNonPositiveAndExtremeValues) {
  Histogram histogram;
  histogram.observe(0.0);
  histogram.observe(-3.0);
  histogram.observe(1e20);  // overflow bucket
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.quantile(0.0), -3.0);   // underflow resolves to min
  EXPECT_EQ(histogram.quantile(1.0), 1e20);   // overflow resolves to max
}

TEST(MetricsPrimitivesTest, HistogramResetClearsEverything) {
  Histogram histogram;
  histogram.observe(4.0);
  histogram.observe(7.0);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0.0);
  EXPECT_EQ(histogram.min(), 0.0);
  EXPECT_EQ(histogram.max(), 0.0);
  EXPECT_EQ(histogram.quantile(0.5), 0.0);
  histogram.observe(2.0);  // usable again after reset
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 2.0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("obs.test.zzz").add(1);
  registry.gauge("obs.test.aaa").set(1.0);
  registry.histogram("obs.test.mmm").observe(1.0);
  const auto samples = registry.snapshot();
  ASSERT_GE(samples.size(), 3u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].name, samples[i].name);
  }
}

TEST(MetricsRegistryTest, SnapshotCarriesHistogramQuantiles) {
  auto& registry = MetricsRegistry::instance();
  auto& histogram = registry.histogram("obs.test.quantiles");
  histogram.reset();
  for (int i = 1; i <= 100; ++i) histogram.observe(static_cast<double>(i));
  const auto samples = registry.snapshot();
  const auto it = std::find_if(samples.begin(), samples.end(),
                               [](const MetricSample& sample) {
                                 return sample.name == "obs.test.quantiles";
                               });
  ASSERT_NE(it, samples.end());
  EXPECT_EQ(it->count, 100u);
  EXPECT_DOUBLE_EQ(it->min, 1.0);
  EXPECT_DOUBLE_EQ(it->max, 100.0);
  EXPECT_GT(it->p50, 0.0);
  EXPECT_LE(it->p50, it->p90);
  EXPECT_LE(it->p90, it->p99);
  EXPECT_LE(it->p99, 100.0);
}

TEST(MetricsRegistryTest, ResetAllClearsCountersGaugesAndHistograms) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("obs.test.reset.counter").add(5);
  registry.gauge("obs.test.reset.gauge").set(2.5);
  registry.histogram("obs.test.reset.histogram").observe(1.5);
  registry.reset_all();
  EXPECT_EQ(registry.counter("obs.test.reset.counter").value(), 0u);
  EXPECT_EQ(registry.gauge("obs.test.reset.gauge").value(), 0.0);
  EXPECT_EQ(registry.histogram("obs.test.reset.histogram").count(), 0u);
}

TEST(MetricsJsonTest, SerializesEveryKindAndParsesBack) {
  std::vector<MetricSample> samples;
  MetricSample counter;
  counter.name = "a.counter";
  counter.kind = MetricSample::Kind::kCounter;
  counter.value = 7.0;
  samples.push_back(counter);
  MetricSample histogram;
  histogram.name = "b.histogram";
  histogram.kind = MetricSample::Kind::kHistogram;
  histogram.count = 3;
  histogram.value = 2.0;
  histogram.sum = 6.0;
  histogram.min = 1.0;
  histogram.max = 3.0;
  histogram.p50 = 2.0;
  histogram.p90 = 3.0;
  histogram.p99 = 3.0;
  samples.push_back(histogram);
  const std::string json = metrics_to_json(samples);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\":3"), std::string::npos);
}

// --- histogram merge (fleet aggregation) ------------------------------------

TEST(HistogramMergeTest, MergingTwoHalvesEqualsObservingEverything) {
  // The fleet-dashboard contract: because every process shares the fixed
  // bucket layout, merging worker states is EXACT — count, sum, extrema,
  // bucket counts, and therefore the quantile estimates, all match a
  // single histogram that observed the union.
  Histogram whole;
  Histogram half_a;
  Histogram half_b;
  for (int i = 1; i <= 1000; ++i) {
    const double v = 0.001 * static_cast<double>(i * i);
    whole.observe(v);
    (i % 2 == 0 ? half_a : half_b).observe(v);
  }
  half_a.merge(half_b);
  const Histogram::State merged = half_a.state();
  const Histogram::State expected = whole.state();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_DOUBLE_EQ(merged.sum, expected.sum);
  EXPECT_DOUBLE_EQ(merged.min, expected.min);
  EXPECT_DOUBLE_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.underflow, expected.underflow);
  EXPECT_EQ(merged.overflow, expected.overflow);
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_DOUBLE_EQ(half_a.quantile(0.5), whole.quantile(0.5));
  EXPECT_DOUBLE_EQ(half_a.quantile(0.9), whole.quantile(0.9));
  EXPECT_DOUBLE_EQ(half_a.quantile(0.99), whole.quantile(0.99));
}

TEST(HistogramMergeTest, MergingAnEmptyStateIsANoOp) {
  Histogram histogram;
  histogram.observe(2.0);
  histogram.observe(8.0);
  histogram.merge(Histogram::State{});  // count 0: must not touch extrema
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_DOUBLE_EQ(histogram.min(), 2.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 8.0);
}

TEST(MetricsRegistryTest, MergeSnapshotAddsCountersSetsGaugesMergesHistograms) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("obs.test.fleet.counter").reset();
  registry.counter("obs.test.fleet.counter").add(3);
  registry.gauge("obs.test.fleet.gauge").set(1.0);
  registry.histogram("obs.test.fleet.histogram").reset();
  registry.histogram("obs.test.fleet.histogram").observe(1.0);

  // A "worker snapshot" as openmetrics_to_samples would reconstruct it.
  Histogram worker_histogram;
  worker_histogram.observe(100.0);
  worker_histogram.observe(400.0);
  const Histogram::State worker = worker_histogram.state();
  std::vector<MetricSample> samples(3);
  samples[0].name = "obs.test.fleet.counter";
  samples[0].kind = MetricSample::Kind::kCounter;
  samples[0].value = 5.0;
  samples[1].name = "obs.test.fleet.gauge";
  samples[1].kind = MetricSample::Kind::kGauge;
  samples[1].value = 9.0;
  samples[2].name = "obs.test.fleet.histogram";
  samples[2].kind = MetricSample::Kind::kHistogram;
  samples[2].count = worker.count;
  samples[2].sum = worker.sum;
  samples[2].min = worker.min;
  samples[2].max = worker.max;
  samples[2].underflow = worker.underflow;
  samples[2].overflow = worker.overflow;
  samples[2].buckets.assign(worker.buckets.begin(), worker.buckets.end());
  registry.merge_snapshot(samples);

  EXPECT_EQ(registry.counter("obs.test.fleet.counter").value(), 8u);
  EXPECT_DOUBLE_EQ(registry.gauge("obs.test.fleet.gauge").value(), 9.0);
  auto& merged = registry.histogram("obs.test.fleet.histogram");
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 400.0);
}

TEST(OpenMetricsRoundtripTest, HistogramBucketStateSurvivesExportAndParse) {
  // to_openmetrics -> parse_openmetrics -> openmetrics_to_samples must
  // regain the raw bucket state, or cross-worker merges would stop being
  // exact.  (Names come back with '_' where the original had '.'.)
  auto& registry = MetricsRegistry::instance();
  auto& histogram = registry.histogram("obs.test.om.roundtrip");
  histogram.reset();
  for (int i = 1; i <= 50; ++i) histogram.observe(0.01 * i);
  histogram.observe(1e-15);  // underflow bucket
  histogram.observe(1e15);   // overflow bucket

  const std::string text = to_openmetrics(registry.snapshot());
  const OpenMetricsDocument doc = parse_openmetrics(text);
  ASSERT_TRUE(doc.complete);
  const std::vector<MetricSample> samples = openmetrics_to_samples(doc);
  const auto it = std::find_if(samples.begin(), samples.end(),
                               [](const MetricSample& sample) {
                                 return sample.name ==
                                        "obs_test_om_roundtrip";
                               });
  ASSERT_NE(it, samples.end());
  EXPECT_EQ(it->kind, MetricSample::Kind::kHistogram);
  const Histogram::State expected = histogram.state();
  EXPECT_EQ(it->count, expected.count);
  EXPECT_DOUBLE_EQ(it->min, expected.min);
  EXPECT_DOUBLE_EQ(it->max, expected.max);
  EXPECT_EQ(it->underflow, expected.underflow);
  EXPECT_EQ(it->overflow, expected.overflow);
  ASSERT_EQ(it->buckets.size(), expected.buckets.size());
  for (std::size_t i = 0; i < expected.buckets.size(); ++i) {
    EXPECT_EQ(it->buckets[i], expected.buckets[i]) << "bucket " << i;
  }
}

// --- sinks ------------------------------------------------------------------

SpanRecord make_record() {
  SpanRecord record;
  record.name = "test.span";
  record.id = 42;
  record.parent_id = 7;
  record.depth = 1;
  record.tid = 3;
  record.start_ns = 1000;
  record.duration_ns = 2500;
  record.attrs.emplace_back("states", AttrValue{std::uint64_t{64}});
  record.attrs.emplace_back("residual", AttrValue{0.5});
  record.attrs.emplace_back("method", AttrValue{std::string("power")});
  return record;
}

TEST(AttrToStringTest, AllVariantAlternatives) {
  EXPECT_EQ(attr_to_string(AttrValue{std::uint64_t{9}}), "9");
  EXPECT_EQ(attr_to_string(AttrValue{std::string("x")}), "x");
  EXPECT_FALSE(attr_to_string(AttrValue{0.25}).empty());
}

TEST(JsonlFileSinkTest, WritesManifestThenOneParseableObjectPerLine) {
  const std::string path =
      ::testing::TempDir() + "/stocdr_test_trace.jsonl";
  std::remove(path.c_str());
  {
    JsonlFileSink sink(path);
    sink.on_span(make_record());
    sink.on_span(make_record());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (lines == 1) {
      // Run-provenance manifest precedes the first span.
      EXPECT_NE(line.find("\"manifest\":{"), std::string::npos);
      EXPECT_NE(line.find("\"git_sha\""), std::string::npos);
      EXPECT_NE(line.find("\"compiler\""), std::string::npos);
      continue;
    }
    EXPECT_NE(line.find("\"name\":\"test.span\""), std::string::npos);
    EXPECT_NE(line.find("\"tid\":3"), std::string::npos);
    EXPECT_NE(line.find("\"dur_ns\":2500"), std::string::npos);
    EXPECT_NE(line.find("\"method\":\"power\""), std::string::npos);
  }
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

TEST(JsonlFileSinkTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(JsonlFileSink("/nonexistent-dir/trace.jsonl"), IoError);
}

TEST(CollectingSinkTest, CountsWithoutKeepingWhenAsked) {
  CollectingSink sink(/*keep_records=*/false);
  sink.on_span(make_record());
  sink.on_span(make_record());
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_TRUE(sink.records().empty());
  sink.clear();
  EXPECT_EQ(sink.count(), 0u);
}

// --- tracer clock -----------------------------------------------------------

TEST(TracerTest, ClockIsMonotone) {
  const auto a = Tracer::now_ns();
  const auto b = Tracer::now_ns();
  EXPECT_LE(a, b);
}

// --- span LIFO discipline ---------------------------------------------------

// Ending a span that is not the innermost on its thread corrupts the
// parent/depth bookkeeping; debug builds refuse via assert().
TEST(SpanLifoDeathTest, OutOfOrderEndAssertsInDebugBuilds) {
#ifdef NDEBUG
  GTEST_SKIP() << "assert() is compiled out of NDEBUG builds";
#else
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Tracer::install(std::make_unique<CollectingSink>(false));
        auto outer = std::make_unique<Span>("outer");
        auto inner = std::make_unique<Span>("inner");
        outer->end();  // not the innermost open span on this thread
        inner->end();
      },
      "LIFO");
#endif
}

TEST(SpanLifoTest, InOrderHeapSpansAreFine) {
  Tracer::install(std::make_unique<CollectingSink>(false));
  auto outer = std::make_unique<Span>("outer");
  auto inner = std::make_unique<Span>("inner");
  inner->end();
  outer->end();
  Tracer::install(nullptr);
}

}  // namespace
}  // namespace stocdr::obs
