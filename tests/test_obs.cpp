// Observability primitives: JSON emission, metrics, and trace sinks.
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace stocdr::obs {
namespace {

// --- JSON emission ----------------------------------------------------------

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("mg.level"), "mg.level");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonNumberTest, FiniteAndNonFinite) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "\"inf\"");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()),
            "\"nan\"");
}

TEST(JsonWriterTest, NestedObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "solve");
  w.field("states", std::uint64_t{1024});
  w.field("residual", 0.5);
  w.field("converged", true);
  w.key("history");
  w.begin_array();
  w.value(1.0);
  w.value(0.25);
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"name\":\"solve\",\"states\":1024,\"residual\":0.5,"
            "\"converged\":true,\"history\":[1,0.25],\"nested\":{}}");
}

// --- metrics ----------------------------------------------------------------

TEST(MetricsPrimitivesTest, CounterAddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add(5);
  counter.add(2);
  EXPECT_EQ(counter.value(), 7u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsPrimitivesTest, HistogramTracksExtremaAndMean) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0.0);  // defined zero before any observation
  EXPECT_EQ(histogram.max(), 0.0);
  histogram.observe(2.0);
  histogram.observe(-1.0);
  histogram.observe(5.0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.min(), -1.0);
  EXPECT_EQ(histogram.max(), 5.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 2.0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("obs.test.zzz").add(1);
  registry.gauge("obs.test.aaa").set(1.0);
  registry.histogram("obs.test.mmm").observe(1.0);
  const auto samples = registry.snapshot();
  ASSERT_GE(samples.size(), 3u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].name, samples[i].name);
  }
}

// --- sinks ------------------------------------------------------------------

SpanRecord make_record() {
  SpanRecord record;
  record.name = "test.span";
  record.id = 42;
  record.parent_id = 7;
  record.depth = 1;
  record.start_ns = 1000;
  record.duration_ns = 2500;
  record.attrs.emplace_back("states", AttrValue{std::uint64_t{64}});
  record.attrs.emplace_back("residual", AttrValue{0.5});
  record.attrs.emplace_back("method", AttrValue{std::string("power")});
  return record;
}

TEST(AttrToStringTest, AllVariantAlternatives) {
  EXPECT_EQ(attr_to_string(AttrValue{std::uint64_t{9}}), "9");
  EXPECT_EQ(attr_to_string(AttrValue{std::string("x")}), "x");
  EXPECT_FALSE(attr_to_string(AttrValue{0.25}).empty());
}

TEST(JsonlFileSinkTest, WritesOneParseableObjectPerLine) {
  const std::string path =
      ::testing::TempDir() + "/stocdr_test_trace.jsonl";
  std::remove(path.c_str());
  {
    JsonlFileSink sink(path);
    sink.on_span(make_record());
    sink.on_span(make_record());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\":\"test.span\""), std::string::npos);
    EXPECT_NE(line.find("\"dur_ns\":2500"), std::string::npos);
    EXPECT_NE(line.find("\"method\":\"power\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(JsonlFileSinkTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(JsonlFileSink("/nonexistent-dir/trace.jsonl"), IoError);
}

TEST(CollectingSinkTest, CountsWithoutKeepingWhenAsked) {
  CollectingSink sink(/*keep_records=*/false);
  sink.on_span(make_record());
  sink.on_span(make_record());
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_TRUE(sink.records().empty());
  sink.clear();
  EXPECT_EQ(sink.count(), 0u);
}

// --- tracer clock -----------------------------------------------------------

TEST(TracerTest, ClockIsMonotone) {
  const auto a = Tracer::now_ns();
  const auto b = Tracer::now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace stocdr::obs
