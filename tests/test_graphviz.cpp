#include "fsm/graphviz.hpp"

#include <gtest/gtest.h>

#include "../tests/test_util.hpp"
#include "cdr/model.hpp"
#include "support/error.hpp"

namespace stocdr::fsm {
namespace {

TEST(GraphvizTest, NetworkDiagramListsComponentsAndWires) {
  cdr::CdrConfig config;
  config.phase_points = 64;
  config.vco_phases = 8;
  config.counter_length = 3;
  config.sigma_nw = 0.05;
  config.nr_mean = 0.01;
  config.nr_max = 0.03;
  const cdr::CdrModel model(config);
  const std::string dot = network_to_dot(model.network());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("data"), std::string::npos);
  EXPECT_NE(dot.find("pd"), std::string::npos);
  EXPECT_NE(dot.find("counter"), std::string::npos);
  EXPECT_NE(dot.find("phase"), std::string::npos);
  EXPECT_NE(dot.find("Moore"), std::string::npos);
  EXPECT_NE(dot.find("Mealy"), std::string::npos);
  // The paper's Figure 2 wiring: 5 wires in the exact-Gaussian model
  // (data->pd, phase->pd, pd->counter, counter->phase, nr->phase).
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 2)) {
    ++arrows;
  }
  // "out0->in0" labels also contain "->": 2 per wire.
  EXPECT_EQ(arrows, 10u);
}

TEST(GraphvizTest, ChainGraphHasProbabilities) {
  const markov::MarkovChain chain(test::birth_death_pt(3, 0.25, 0.5));
  const std::string dot = chain_to_dot(chain);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
  EXPECT_NE(dot.find("0.250"), std::string::npos);
  EXPECT_NE(dot.find("0.500"), std::string::npos);
}

TEST(GraphvizTest, LargeChainRejected) {
  const markov::MarkovChain chain(test::birth_death_pt(100, 0.3, 0.3));
  EXPECT_THROW((void)chain_to_dot(chain), PreconditionError);
  EXPECT_NO_THROW((void)chain_to_dot(chain, 100));
}

}  // namespace
}  // namespace stocdr::fsm
