#include "markov/lumping.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "../tests/test_util.hpp"
#include "sparse/coo.hpp"
#include "sparse/gth.hpp"
#include "support/error.hpp"

namespace stocdr::markov {
namespace {

TEST(PartitionTest, BasicProperties) {
  const Partition p({0, 0, 1, 2, 1});
  EXPECT_EQ(p.num_states(), 5u);
  EXPECT_EQ(p.num_groups(), 3u);
  EXPECT_EQ(p.group(4), 1u);
  const auto sizes = p.group_sizes();
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 1u);
}

TEST(PartitionTest, RejectsGappyGroups) {
  EXPECT_THROW(Partition({0, 2}), PreconditionError);
  EXPECT_THROW(Partition({1}), PreconditionError);
  EXPECT_THROW(Partition(std::vector<std::uint32_t>{}), PreconditionError);
}

TEST(PartitionTest, IdentityAndPairs) {
  const Partition id = Partition::identity(4);
  EXPECT_EQ(id.num_groups(), 4u);
  const Partition pairs = Partition::pairs(5);
  EXPECT_EQ(pairs.num_groups(), 3u);
  EXPECT_EQ(pairs.group(0), pairs.group(1));
  EXPECT_EQ(pairs.group(4), 2u);
}

TEST(PartitionTest, Compose) {
  const Partition fine = Partition::pairs(8);   // 8 -> 4
  const Partition coarse = Partition::pairs(4); // 4 -> 2
  const Partition both = fine.compose(coarse);
  EXPECT_EQ(both.num_groups(), 2u);
  EXPECT_EQ(both.group(0), both.group(3));
  EXPECT_NE(both.group(0), both.group(4));
  EXPECT_THROW(fine.compose(Partition::pairs(6)), PreconditionError);
}

/// A chain built to be exactly lumpable w.r.t. pairs: a 4-state chain where
/// states {0,1} and {2,3} behave identically toward the blocks.
sparse::CsrMatrix lumpable_pt() {
  sparse::CooBuilder b(4, 4);
  // From block A = {0,1}: 0.7 to block A, 0.3 to block B, split arbitrarily
  // *within* the destination block (lumpability only constrains block sums).
  b.add(0, 0, 0.5);
  b.add(1, 0, 0.2);
  b.add(2, 0, 0.1);
  b.add(3, 0, 0.2);
  b.add(0, 1, 0.3);
  b.add(1, 1, 0.4);
  b.add(2, 1, 0.3);
  // From block B = {2,3}: 0.4 to A, 0.6 to B.
  b.add(0, 2, 0.4);
  b.add(2, 2, 0.6);
  b.add(1, 3, 0.4);
  b.add(2, 3, 0.1);
  b.add(3, 3, 0.5);
  return b.to_csr();
}

TEST(LumpabilityTest, DetectsExactLumpability) {
  const Partition pairs = Partition::pairs(4);
  EXPECT_TRUE(is_exactly_lumpable(lumpable_pt(), pairs));
}

TEST(LumpabilityTest, DetectsNonLumpability) {
  const sparse::CsrMatrix pt = test::random_dense_stochastic_pt(4, 77);
  EXPECT_FALSE(is_exactly_lumpable(pt, Partition::pairs(4)));
}

TEST(LumpabilityTest, IdentityPartitionAlwaysLumpable) {
  const sparse::CsrMatrix pt = test::random_dense_stochastic_pt(5, 3);
  EXPECT_TRUE(is_exactly_lumpable(pt, Partition::identity(5)));
}

TEST(LumpabilityTest, SingleGroupAlwaysLumpable) {
  const sparse::CsrMatrix pt = test::random_dense_stochastic_pt(5, 3);
  EXPECT_TRUE(
      is_exactly_lumpable(pt, Partition(std::vector<std::uint32_t>(5, 0))));
}

TEST(LumpExactTest, MatchesHandComputation) {
  const sparse::CsrMatrix coarse =
      lump_exact(lumpable_pt(), Partition::pairs(4));
  // Block chain: A->A 0.7, A->B 0.3, B->A 0.4, B->B 0.6 (transposed store).
  EXPECT_NEAR(coarse.at(0, 0), 0.7, 1e-14);
  EXPECT_NEAR(coarse.at(1, 0), 0.3, 1e-14);
  EXPECT_NEAR(coarse.at(0, 1), 0.4, 1e-14);
  EXPECT_NEAR(coarse.at(1, 1), 0.6, 1e-14);
}

TEST(AggregateTest, PreservesStochasticity) {
  const sparse::CsrMatrix pt = test::random_dense_stochastic_pt(10, 21);
  std::vector<double> w(10);
  Rng rng(5);
  for (double& v : w) v = rng.uniform();
  const sparse::CsrMatrix coarse =
      aggregate_transposed(pt, Partition::pairs(10), w);
  const auto sums = coarse.col_sums();  // outgoing mass per coarse state
  for (const double s : sums) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(AggregateTest, ExactWeightsReproduceLumpedStationary) {
  // Aggregating with the *exact* stationary weights yields a coarse chain
  // whose stationary distribution is the restriction of the fine one —
  // the core identity behind aggregation/disaggregation methods.
  const sparse::CsrMatrix pt = test::random_dense_stochastic_pt(12, 8);
  const auto eta = sparse::gth_stationary_transposed(pt);
  const Partition part = Partition::pairs(12);
  const sparse::CsrMatrix coarse = aggregate_transposed(pt, part, eta);
  const auto eta_coarse = sparse::gth_stationary_transposed(coarse);
  const auto restricted = restrict_sum(part, eta);
  for (std::size_t g = 0; g < part.num_groups(); ++g) {
    EXPECT_NEAR(eta_coarse[g], restricted[g], 1e-12);
  }
}

TEST(AggregateTest, UniformWeightsForMasslessGroups) {
  const sparse::CsrMatrix pt = test::random_dense_stochastic_pt(4, 2);
  const std::vector<double> w{0.0, 0.0, 1.0, 1.0};  // group 0 massless
  const sparse::CsrMatrix coarse =
      aggregate_transposed(pt, Partition::pairs(4), w);
  const auto sums = coarse.col_sums();
  EXPECT_NEAR(sums[0], 1.0, 1e-12);
}

TEST(AggregationPlanTest, MatchesDirectAggregation) {
  const sparse::CsrMatrix pt = test::random_sparse_stochastic_pt(40, 3, 13);
  const Partition part = Partition::pairs(40);
  const AggregationPlan plan(pt, part);
  Rng rng(9);
  for (int round = 0; round < 3; ++round) {
    std::vector<double> w(40);
    for (double& v : w) v = rng.uniform(0.0, 1.0);
    const sparse::CsrMatrix direct = aggregate_transposed(pt, part, w);
    const sparse::CsrMatrix planned = plan.aggregate(pt, w);
    // Same values everywhere (the plan may keep extra explicit zeros).
    direct.for_each([&planned](std::size_t r, std::size_t c, double v) {
      EXPECT_NEAR(planned.at(r, c), v, 1e-14);
    });
    planned.for_each([&direct](std::size_t r, std::size_t c, double v) {
      EXPECT_NEAR(direct.at(r, c), v, 1e-14);
    });
  }
}

TEST(AggregationPlanTest, HandlesZeroWeightsAndExplicitZeros) {
  const sparse::CsrMatrix pt = test::random_dense_stochastic_pt(6, 3);
  const Partition part = Partition::pairs(6);
  const AggregationPlan plan(pt, part);
  // Zero out one whole pair: its scaled weights fall back to uniform; the
  // coarse matrix stays stochastic and the pattern intact.
  std::vector<double> w{0.0, 0.0, 1.0, 2.0, 3.0, 4.0};
  const sparse::CsrMatrix coarse = plan.aggregate(pt, w);
  for (const double sum : coarse.col_sums()) EXPECT_NEAR(sum, 1.0, 1e-12);
  // A second-level plan over the (possibly explicit-zero-bearing) coarse
  // matrix must construct and apply cleanly.
  const Partition coarse_part = Partition::pairs(coarse.rows());
  const AggregationPlan second(coarse, coarse_part);
  const std::vector<double> cw(coarse.rows(), 1.0);
  const sparse::CsrMatrix coarser = second.aggregate(coarse, cw);
  for (const double sum : coarser.col_sums()) EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AggregationPlanTest, RejectsMismatchedMatrix) {
  const sparse::CsrMatrix pt = test::random_dense_stochastic_pt(6, 3);
  const AggregationPlan plan(pt, Partition::pairs(6));
  const sparse::CsrMatrix other = test::random_sparse_stochastic_pt(6, 1, 5);
  const std::vector<double> w(6, 1.0);
  EXPECT_THROW((void)plan.aggregate(other, w), PreconditionError);
}

TEST(RestrictDisaggregateTest, RoundTrip) {
  const Partition part = Partition::pairs(6);
  std::vector<double> x{0.1, 0.2, 0.3, 0.1, 0.2, 0.1};
  const auto coarse = restrict_sum(part, x);
  EXPECT_NEAR(coarse[0], 0.3, 1e-15);
  EXPECT_NEAR(coarse[1], 0.4, 1e-15);
  EXPECT_NEAR(coarse[2], 0.3, 1e-15);
  // Disaggregating the restriction leaves x unchanged.
  std::vector<double> y = x;
  disaggregate(part, coarse, y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-15);
}

TEST(RestrictDisaggregateTest, ScalesWithinGroups) {
  const Partition part = Partition::pairs(4);
  std::vector<double> x{1.0, 3.0, 1.0, 1.0};
  const std::vector<double> target{1.0, 1.0};
  disaggregate(part, target, x);
  EXPECT_NEAR(x[0], 0.25, 1e-15);
  EXPECT_NEAR(x[1], 0.75, 1e-15);
  EXPECT_NEAR(x[2], 0.5, 1e-15);
}

TEST(RestrictDisaggregateTest, MasslessGroupSpreadUniformly) {
  const Partition part = Partition::pairs(4);
  std::vector<double> x{0.0, 0.0, 1.0, 1.0};
  const std::vector<double> target{0.6, 0.4};
  disaggregate(part, target, x);
  EXPECT_NEAR(x[0], 0.3, 1e-15);
  EXPECT_NEAR(x[1], 0.3, 1e-15);
}

}  // namespace
}  // namespace stocdr::markov
