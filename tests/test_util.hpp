// Shared fixtures and generators for the stocdr test suite.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/chain.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace stocdr::test {

/// A dense random row-stochastic matrix with strictly positive entries
/// (hence irreducible and aperiodic), returned in the library's transposed
/// CSR orientation.
inline sparse::CsrMatrix random_dense_stochastic_pt(std::size_t n,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  sparse::CooBuilder builder(n, n);
  std::vector<double> row(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = 0.05 + rng.uniform();  // bounded away from zero
      sum += row[j];
    }
    for (std::size_t j = 0; j < n; ++j) {
      builder.add(j, i, row[j] / sum);  // transposed: (dst, src)
    }
  }
  return builder.to_csr();
}

/// A sparse random stochastic matrix: each state has `fanout` random
/// successors plus a guaranteed edge to (i+1) mod n, making it irreducible.
inline sparse::CsrMatrix random_sparse_stochastic_pt(std::size_t n,
                                                     std::size_t fanout,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  sparse::CooBuilder builder(n, n);
  std::vector<std::size_t> dst(fanout + 1);
  std::vector<double> w(fanout + 1);
  for (std::size_t i = 0; i < n; ++i) {
    dst[0] = (i + 1) % n;  // ring edge guarantees irreducibility
    for (std::size_t k = 1; k <= fanout; ++k) dst[k] = rng.below(n);
    double sum = 0.0;
    for (std::size_t k = 0; k <= fanout; ++k) {
      w[k] = 0.1 + rng.uniform();
      sum += w[k];
    }
    for (std::size_t k = 0; k <= fanout; ++k) {
      builder.add(dst[k], i, w[k] / sum);
    }
  }
  return builder.to_csr();
}

/// Birth-death chain on {0..n-1}: up probability p, down probability q,
/// stay 1-p-q (boundaries stay instead of leaving).  The stationary
/// distribution is geometric with ratio p/q.
inline sparse::CsrMatrix birth_death_pt(std::size_t n, double p, double q) {
  sparse::CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double stay = 1.0 - p - q;
    if (i == 0) {
      stay += q;
    } else {
      builder.add(i - 1, i, q);
    }
    if (i + 1 == n) {
      stay += p;
    } else {
      builder.add(i + 1, i, p);
    }
    builder.add(i, i, stay);
  }
  return builder.to_csr();
}

/// The closed-form stationary distribution of birth_death_pt.
inline std::vector<double> birth_death_stationary(std::size_t n, double p,
                                                  double q) {
  std::vector<double> eta(n);
  const double r = p / q;
  double v = 1.0, sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    eta[i] = v;
    sum += v;
    v *= r;
  }
  for (double& e : eta) e /= sum;
  return eta;
}

/// L1 distance between two vectors.
inline double l1(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
  }
  return s;
}

}  // namespace stocdr::test
