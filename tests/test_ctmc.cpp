#include "markov/ctmc.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "solvers/stationary.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::markov {
namespace {

/// Two-state CTMC with rates a (0->1) and b (1->0): stationary (b, a)/(a+b)
/// and transient p_01(t) = a/(a+b) (1 - exp(-(a+b) t)).
Ctmc two_state(double a, double b) {
  return Ctmc::from_rates(2, {{0, 1, a}, {1, 0, b}});
}

TEST(CtmcTest, ValidatesGenerator) {
  // Row sums must be zero.
  sparse::CooBuilder b(2, 2);
  b.add(0, 0, -1.0);
  b.add(1, 0, 0.5);  // leaks
  b.add(1, 1, 0.0);
  EXPECT_THROW(Ctmc{b.to_csr()}, PreconditionError);

  // Negative off-diagonal rejected.
  sparse::CooBuilder c(2, 2);
  c.add(0, 0, 1.0);
  c.add(1, 0, -1.0);
  c.add(0, 1, 1.0);
  c.add(1, 1, -1.0);
  EXPECT_THROW(Ctmc{c.to_csr()}, PreconditionError);
}

TEST(CtmcTest, FromRatesBuildsGenerator) {
  const Ctmc ctmc = two_state(2.0, 3.0);
  EXPECT_EQ(ctmc.num_states(), 2u);
  EXPECT_DOUBLE_EQ(ctmc.max_exit_rate(), 3.0);
  EXPECT_DOUBLE_EQ(ctmc.qt().at(1, 0), 2.0);   // rate 0 -> 1
  EXPECT_DOUBLE_EQ(ctmc.qt().at(0, 0), -2.0);  // diagonal
  EXPECT_THROW(Ctmc::from_rates(2, {{0, 0, 1.0}}), PreconditionError);
  EXPECT_THROW(Ctmc::from_rates(2, {{0, 1, -1.0}}), PreconditionError);
  EXPECT_THROW(Ctmc::from_rates(2, {{0, 3, 1.0}}), PreconditionError);
}

TEST(CtmcTest, UniformizedChainIsStochasticAndAperiodic) {
  const Ctmc ctmc = two_state(2.0, 3.0);
  const MarkovChain p = ctmc.uniformize();
  EXPECT_LT(p.stochasticity_defect(), 1e-12);
  // Default lambda leaves self-loops.
  EXPECT_GT(p.probability(1, 1), 0.0);
  EXPECT_THROW(ctmc.uniformize(1.0), PreconditionError);  // below exit rate
}

TEST(CtmcTest, StationaryViaUniformization) {
  const double a = 2.0, b = 3.0;
  const Ctmc ctmc = two_state(a, b);
  const auto result = solvers::solve_stationary_direct(ctmc.uniformize());
  EXPECT_NEAR(result.distribution[0], b / (a + b), 1e-12);
  EXPECT_NEAR(result.distribution[1], a / (a + b), 1e-12);
}

TEST(CtmcTest, TransientMatchesClosedForm) {
  const double a = 2.0, b = 3.0;
  const Ctmc ctmc = two_state(a, b);
  const std::vector<double> initial{1.0, 0.0};
  for (const double t : {0.0, 0.05, 0.2, 1.0, 5.0}) {
    const auto pi = ctmc.transient(initial, t);
    const double expected1 =
        a / (a + b) * (1.0 - std::exp(-(a + b) * t));
    EXPECT_NEAR(pi[1], expected1, 1e-9) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
  }
}

TEST(CtmcTest, TransientConvergesToStationary) {
  // M/M/1/K-style birth-death CTMC.
  std::vector<std::tuple<std::size_t, std::size_t, double>> rates;
  const std::size_t k = 8;
  for (std::size_t i = 0; i + 1 < k; ++i) {
    rates.emplace_back(i, i + 1, 1.0);      // arrivals
    rates.emplace_back(i + 1, i, 1.5);      // services
  }
  const Ctmc ctmc = Ctmc::from_rates(k, rates);
  std::vector<double> initial(k, 0.0);
  initial[0] = 1.0;
  const auto late = ctmc.transient(initial, 200.0);
  const auto eta =
      solvers::solve_stationary_direct(ctmc.uniformize()).distribution;
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(late[i], eta[i], 1e-8) << i;
  }
  // Geometric stationary with ratio 2/3.
  EXPECT_NEAR(eta[1] / eta[0], 2.0 / 3.0, 1e-10);
}

TEST(CtmcTest, TransientHandlesLargeTimeArgument) {
  // lambda t ~ 1e4: the k=0 Poisson weight underflows; the log-domain
  // recursion must still deliver a normalized distribution.
  const Ctmc ctmc = two_state(20.0, 30.0);
  const auto pi = ctmc.transient(std::vector<double>{1.0, 0.0}, 300.0);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-9);
  EXPECT_NEAR(pi[0], 0.6, 1e-6);
}

}  // namespace
}  // namespace stocdr::markov
