#include "analysis/transient.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "../tests/test_util.hpp"
#include "sparse/coo.hpp"
#include "sparse/gth.hpp"
#include "support/math.hpp"

namespace stocdr::analysis {
namespace {

using markov::MarkovChain;

TEST(EvolveTest, ConservesProbabilityMass) {
  const MarkovChain chain(test::random_dense_stochastic_pt(12, 9));
  std::vector<double> x(12, 0.0);
  x[3] = 1.0;
  const auto y = evolve(chain, x, 25);
  EXPECT_NEAR(kahan_sum(y), 1.0, 1e-12);
  for (const double v : y) EXPECT_GE(v, 0.0);
}

TEST(EvolveTest, ZeroStepsIsIdentity) {
  const MarkovChain chain(test::birth_death_pt(5, 0.3, 0.2));
  std::vector<double> x{0.2, 0.2, 0.2, 0.2, 0.2};
  EXPECT_EQ(evolve(chain, x, 0), x);
}

TEST(EvolveTest, ConvergesToStationary) {
  const MarkovChain chain(test::random_dense_stochastic_pt(10, 11));
  const auto eta = sparse::gth_stationary_transposed(chain.pt());
  std::vector<double> x(10, 0.0);
  x[0] = 1.0;
  const auto y = evolve(chain, x, 200);
  EXPECT_LT(test::l1(y, eta), 1e-10);
}

TEST(ConvergenceProfileTest, MonotoneForExactReference) {
  const MarkovChain chain(test::random_dense_stochastic_pt(8, 21));
  const auto eta = sparse::gth_stationary_transposed(chain.pt());
  std::vector<double> x(8, 0.0);
  x[7] = 1.0;
  const auto profile = convergence_profile(chain, x, eta, 50);
  ASSERT_EQ(profile.size(), 50u);
  for (std::size_t k = 1; k < profile.size(); ++k) {
    EXPECT_LE(profile[k], profile[k - 1] + 1e-14) << k;
  }
  EXPECT_LT(profile.back(), 1e-8);
}

TEST(ExpectationTrajectoryTest, TracksMeanPosition) {
  // Biased walk starting at the bottom: the mean position rises toward the
  // stationary mean.
  const std::size_t n = 20;
  const MarkovChain chain(test::birth_death_pt(n, 0.4, 0.2));
  std::vector<double> x(n, 0.0);
  x[0] = 1.0;
  std::vector<double> f(n);
  for (std::size_t i = 0; i < n; ++i) f[i] = static_cast<double>(i);
  const auto traj = expectation_trajectory(chain, x, f, 100);
  ASSERT_EQ(traj.size(), 101u);
  EXPECT_DOUBLE_EQ(traj[0], 0.0);
  EXPECT_GT(traj[10], traj[0]);
  EXPECT_GT(traj[100], traj[10]);
  // Stationary mean of the geometric distribution with ratio 2 on 20 states
  // is close to n-2 (top-heavy).
  EXPECT_GT(traj[100], 15.0);
}

TEST(MixingStepsTest, FindsThresholdCrossing) {
  const MarkovChain chain(test::random_dense_stochastic_pt(6, 2));
  const auto eta = sparse::gth_stationary_transposed(chain.pt());
  std::vector<double> x(6, 0.0);
  x[0] = 1.0;
  const std::size_t k = mixing_steps(chain, x, eta, 1e-6, 1000);
  EXPECT_GT(k, 0u);
  EXPECT_LT(k, 1000u);
  // Verify: evolving k steps is inside, k-1 steps outside the threshold.
  EXPECT_LE(test::l1(evolve(chain, x, k), eta), 1e-6);
  if (k > 1) {
    EXPECT_GT(test::l1(evolve(chain, x, k - 1), eta), 1e-6);
  }
}

TEST(MixingStepsTest, ImmediateWhenAlreadyMixed) {
  const MarkovChain chain(test::random_dense_stochastic_pt(6, 2));
  const auto eta = sparse::gth_stationary_transposed(chain.pt());
  EXPECT_EQ(mixing_steps(chain, eta, eta, 1e-9, 10), 0u);
}

TEST(MixingStepsTest, ReportsFailureAsMaxPlusOne) {
  // Periodic 2-cycle never mixes from a point mass.
  sparse::CooBuilder b(2, 2);
  b.add(1, 0, 1.0);
  b.add(0, 1, 1.0);
  const MarkovChain chain(b.to_csr());
  std::vector<double> x{1.0, 0.0};
  const std::vector<double> eta{0.5, 0.5};
  EXPECT_EQ(mixing_steps(chain, x, eta, 1e-3, 50), 51u);
}

}  // namespace
}  // namespace stocdr::analysis
