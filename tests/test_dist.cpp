// Distributed trace context: traceparent format/parse, the fork/exec
// helper, and the end-to-end cross-process stitch — a parent span spawns
// this very test binary as a worker, both write JSONL traces, and
// merge_traces reconstructs the cross-process chain.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/analyze/reader.hpp"
#include "obs/dist/context.hpp"
#include "obs/trace.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace stocdr::obs::dist {
namespace {

// --- traceparent format -----------------------------------------------------

TEST(TraceparentTest, FormatParseRoundTrip) {
  TraceContext ctx;
  ctx.trace_id = 0x00c2f1d4a9e37b58ULL;
  ctx.pid = 0x4e21;
  ctx.span_id = 7;
  const std::string text = format_traceparent(ctx);
  EXPECT_EQ(text.size(), 42u);
  EXPECT_EQ(text, "00c2f1d4a9e37b58-00004e21-0000000000000007");
  const auto parsed = parse_traceparent(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ctx);
}

TEST(TraceparentTest, ParseRejectsMalformedText) {
  const char* good = "00c2f1d4a9e37b58-00004e21-0000000000000007";
  ASSERT_TRUE(parse_traceparent(good).has_value());
  // Wrong length.
  EXPECT_FALSE(parse_traceparent("").has_value());
  EXPECT_FALSE(parse_traceparent("abc").has_value());
  EXPECT_FALSE(
      parse_traceparent(std::string(good) + "0").has_value());
  // Dashes in the wrong place.
  EXPECT_FALSE(parse_traceparent(
                   "00c2f1d4a9e37b580-0004e21-0000000000000007")
                   .has_value());
  // Uppercase hex: the format is lowercase-only.
  EXPECT_FALSE(parse_traceparent(
                   "00C2F1D4A9E37B58-00004e21-0000000000000007")
                   .has_value());
  // Non-hex digit.
  EXPECT_FALSE(parse_traceparent(
                   "00c2f1d4a9e37g58-00004e21-0000000000000007")
                   .has_value());
  // Zero trace_id never identifies a run.
  EXPECT_FALSE(parse_traceparent(
                   "0000000000000000-00004e21-0000000000000007")
                   .has_value());
}

TEST(TraceContextTest, ProcessIdentityIsStable) {
  EXPECT_NE(process_trace_id(), 0u);
  EXPECT_EQ(process_trace_id(), process_trace_id());
  EXPECT_NE(process_pid(), 0u);
  const TraceContext ctx = current_context();
  EXPECT_EQ(ctx.trace_id, process_trace_id());
  EXPECT_EQ(ctx.pid, process_pid());
  EXPECT_EQ(current_traceparent(), format_traceparent(ctx));
}

// --- fork/exec helper -------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

TEST(SpawnChildTest, WaitChildReturnsExitStatus) {
  const int pid = spawn_child({"/bin/sh", "-c", "exit 7"});
  EXPECT_EQ(wait_child(pid), 7);
}

TEST(SpawnChildTest, PropagatesTraceparentIntoChildEnvironment) {
  const int pid = spawn_child(
      {"/bin/sh", "-c", "test \"$STOCDR_TRACE_PARENT\" = \"$1\"", "sh",
       current_traceparent()});
  EXPECT_EQ(wait_child(pid), 0);
}

TEST(SpawnChildTest, ExtraEnvOverridesInheritedAndLaterEntriesWin) {
  const int pid = spawn_child(
      {"/bin/sh", "-c", "test \"$STOCDR_DIST_TEST_VAR\" = override"},
      {"STOCDR_DIST_TEST_VAR=first", "STOCDR_DIST_TEST_VAR=override"});
  EXPECT_EQ(wait_child(pid), 0);
}

TEST(SpawnChildTest, FailedExecExitsWith127) {
  const int pid = spawn_child({"/nonexistent-binary-for-stocdr-test"});
  EXPECT_EQ(wait_child(pid), 127);
}

#endif  // __unix__ || __APPLE__

// --- cross-process stitch ---------------------------------------------------

/// The worker half of the fork/exec test below: only does real work when
/// re-executed with STOCDR_DIST_CHILD=1 (the spawner also injects
/// STOCDR_TRACE_FILE, so the spans land in the worker's own JSONL file and
/// the root picks up its remote parent from STOCDR_TRACE_PARENT).  The
/// env-selected file sink commits when the process exits.
TEST(DistChildTest, ChildEmitsSpans) {
  if (std::getenv("STOCDR_DIST_CHILD") == nullptr) {
    GTEST_SKIP() << "worker half of ForkExecStitchesTraces";
  }
  Span root("child.root");
  Span work("child.work");
  work.end();
  root.end();
}

#if defined(__linux__)

/// The spawning half: trace files only materialise at process exit
/// (installed sinks are retired, never destroyed mid-run), so the
/// spawning span must live in its own process too.  Gated on
/// STOCDR_DIST_PARENT; STOCDR_TRACE_FILE is already set by the outer
/// test and STOCDR_DIST_CHILD_TRACE names the worker's trace file.
TEST(DistChildTest, ParentSpawnsWorker) {
  const char* child_trace = std::getenv("STOCDR_DIST_CHILD_TRACE");
  if (std::getenv("STOCDR_DIST_PARENT") == nullptr ||
      child_trace == nullptr) {
    GTEST_SKIP() << "spawning half of ForkExecStitchesTraces";
  }
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  ASSERT_GT(n, 0);
  exe[n] = '\0';

  int status = -1;
  {
    Span spawner("dist.test.spawn");
    const int pid = spawn_child(
        {exe, "--gtest_filter=DistChildTest.ChildEmitsSpans"},
        {"STOCDR_DIST_CHILD=1",
         std::string("STOCDR_TRACE_FILE=") + child_trace});
    status = wait_child(pid);
    spawner.end();
  }
  ASSERT_EQ(status, 0);
}

TEST(DistSpawnTest, ForkExecStitchesTraces) {
  namespace analyze = stocdr::obs::analyze;
  const std::string tag = std::to_string(::getpid());
  const std::string parent_path =
      ::testing::TempDir() + "/stocdr_dist_parent." + tag + ".jsonl";
  const std::string child_path =
      ::testing::TempDir() + "/stocdr_dist_child." + tag + ".jsonl";
  std::remove(parent_path.c_str());
  std::remove(child_path.c_str());

  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  ASSERT_GT(n, 0);
  exe[n] = '\0';

  const int pid = spawn_child(
      {exe, "--gtest_filter=DistChildTest.ParentSpawnsWorker"},
      {"STOCDR_DIST_PARENT=1", "STOCDR_TRACE_FILE=" + parent_path,
       "STOCDR_DIST_CHILD_TRACE=" + child_path});
  ASSERT_EQ(wait_child(pid), 0);

  analyze::TraceFile parent_trace = analyze::read_trace_file(parent_path);
  analyze::TraceFile child_trace = analyze::read_trace_file(child_path);
  ASSERT_EQ(parent_trace.spans.size(), 1u);
  ASSERT_EQ(child_trace.spans.size(), 2u);

  // Every span carries its emitter's real pid, and the two halves ran in
  // distinct processes (neither of them this one).
  const std::uint32_t spawner_pid = parent_trace.spans[0].pid;
  EXPECT_NE(spawner_pid, 0u);
  EXPECT_NE(spawner_pid, process_pid());
  EXPECT_NE(child_trace.spans[0].pid, spawner_pid);
  EXPECT_NE(child_trace.spans[0].pid, 0u);

  // The child root recorded the spawning span as its cross-process parent.
  const analyze::TraceSpan* child_root = nullptr;
  for (const analyze::TraceSpan& span : child_trace.spans) {
    if (span.name == "child.root") child_root = &span;
  }
  ASSERT_NE(child_root, nullptr);
  EXPECT_EQ(child_root->remote_parent_pid, spawner_pid);
  EXPECT_EQ(child_root->remote_parent_id, parent_trace.spans[0].id);

  std::vector<analyze::TraceFile> files;
  files.push_back(std::move(parent_trace));
  files.push_back(std::move(child_trace));
  const analyze::TraceFile merged = analyze::merge_traces(std::move(files));
  ASSERT_EQ(merged.spans.size(), 3u);

  const analyze::TraceSpan* spawn = nullptr;
  const analyze::TraceSpan* root = nullptr;
  const analyze::TraceSpan* work = nullptr;
  for (const analyze::TraceSpan& span : merged.spans) {
    if (span.name == "dist.test.spawn") spawn = &span;
    if (span.name == "child.root") root = &span;
    if (span.name == "child.work") work = &span;
  }
  ASSERT_NE(spawn, nullptr);
  ASSERT_NE(root, nullptr);
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(root->parent, spawn->id);
  EXPECT_EQ(root->depth, spawn->depth + 1);
  EXPECT_EQ(work->parent, root->id);
  EXPECT_EQ(work->depth, root->depth + 1);
  ASSERT_EQ(merged.flows.size(), 1u);
  EXPECT_EQ(merged.spans[merged.flows[0].from_index].name,
            "dist.test.spawn");
  EXPECT_EQ(merged.spans[merged.flows[0].to_index].name, "child.root");

  std::remove(parent_path.c_str());
  std::remove(child_path.c_str());
}

#endif  // __linux__

}  // namespace
}  // namespace stocdr::obs::dist
