#include "solvers/stationary.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "../tests/test_util.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::solvers {
namespace {

using markov::MarkovChain;

/// All four iterative solvers, exercised identically.
using SolverFn = StationaryResult (*)(const MarkovChain&,
                                      const SolverOptions&,
                                      std::span<const double>);

struct NamedSolver {
  const char* name;
  SolverFn solve;
  double relaxation;
  /// Relaxation used on the birth-death chain: undamped Jacobi oscillates
  /// on near-bipartite structures (period-2 iteration modes), which is
  /// expected behaviour, so those entries damp there.
  double birth_death_relaxation;
};

class IterativeSolverTest : public ::testing::TestWithParam<NamedSolver> {};

TEST_P(IterativeSolverTest, MatchesGthOnRandomDenseChains) {
  const NamedSolver& solver = GetParam();
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const MarkovChain chain(test::random_dense_stochastic_pt(25, seed));
    const auto oracle = solve_stationary_direct(chain);
    SolverOptions options;
    options.tolerance = 1e-13;
    options.relaxation = solver.relaxation;
    const auto result = solver.solve(chain, options, {});
    EXPECT_TRUE(result.stats.converged) << solver.name;
    EXPECT_LT(test::l1(result.distribution, oracle.distribution), 1e-9)
        << solver.name << " seed " << seed;
  }
}

TEST_P(IterativeSolverTest, MatchesClosedFormOnBirthDeath) {
  const NamedSolver& solver = GetParam();
  const MarkovChain chain(test::birth_death_pt(20, 0.25, 0.35));
  const auto expected = test::birth_death_stationary(20, 0.25, 0.35);
  SolverOptions options;
  options.tolerance = 1e-13;
  options.max_iterations = 500000;
  options.relaxation = solver.birth_death_relaxation;
  const auto result = solver.solve(chain, options, {});
  EXPECT_TRUE(result.stats.converged) << solver.name;
  EXPECT_LT(test::l1(result.distribution, expected), 1e-8) << solver.name;
}

TEST_P(IterativeSolverTest, RespectsInitialGuess) {
  const NamedSolver& solver = GetParam();
  const MarkovChain chain(test::random_dense_stochastic_pt(10, 44));
  const auto oracle = solve_stationary_direct(chain);
  SolverOptions options;
  options.tolerance = 1e-13;
  options.relaxation = solver.relaxation;
  // Starting from the exact answer must converge immediately (few sweeps).
  const auto result = solver.solve(chain, options, oracle.distribution);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_LE(result.stats.iterations, 3u) << solver.name;
}

TEST_P(IterativeSolverTest, IterationCapReported) {
  const NamedSolver& solver = GetParam();
  const MarkovChain chain(test::random_dense_stochastic_pt(30, 5));
  SolverOptions options;
  options.tolerance = 1e-30;  // unreachable
  options.max_iterations = 5;
  options.relaxation = solver.relaxation;
  const auto result = solver.solve(chain, options, {});
  EXPECT_FALSE(result.stats.converged);
  EXPECT_EQ(result.stats.iterations, 5u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, IterativeSolverTest,
    ::testing::Values(
        NamedSolver{"power", &solve_stationary_power, 1.0, 1.0},
        NamedSolver{"power-damped", &solve_stationary_power, 0.8, 0.8},
        NamedSolver{"jacobi", &solve_stationary_jacobi, 1.0, 0.9},
        NamedSolver{"jacobi-damped", &solve_stationary_jacobi, 0.7, 0.7},
        NamedSolver{"gauss-seidel", &solve_stationary_gauss_seidel, 1.0, 1.0},
        NamedSolver{"sor", &solve_stationary_sor, 1.2, 1.2}),
    [](const ::testing::TestParamInfo<NamedSolver>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PowerIterationTest, DampingHandlesPeriodicChain) {
  // 2-cycle: undamped power iteration oscillates forever; damping fixes it.
  sparse::CooBuilder b(2, 2);
  b.add(1, 0, 1.0);
  b.add(0, 1, 1.0);
  const MarkovChain chain(b.to_csr());
  SolverOptions undamped;
  undamped.max_iterations = 1000;
  std::vector<double> skew{0.9, 0.1};
  const auto fail = solve_stationary_power(chain, undamped, skew);
  EXPECT_FALSE(fail.stats.converged);

  SolverOptions damped = undamped;
  damped.relaxation = 0.5;
  const auto ok = solve_stationary_power(chain, damped, skew);
  EXPECT_TRUE(ok.stats.converged);
  EXPECT_NEAR(ok.distribution[0], 0.5, 1e-9);
}

TEST(RelaxationSolverTest, AbsorbingDiagonalThrows) {
  sparse::CooBuilder b(2, 2);
  b.add(0, 0, 1.0);  // absorbing
  b.add(0, 1, 0.5);
  b.add(1, 1, 0.5);
  const MarkovChain chain(b.to_csr());
  EXPECT_THROW((void)solve_stationary_jacobi(chain), NumericalError);
}

TEST(SolverOptionsTest, InvalidRelaxationRejected) {
  const MarkovChain chain(test::birth_death_pt(4, 0.3, 0.3));
  SolverOptions bad;
  bad.relaxation = 0.0;
  EXPECT_THROW((void)solve_stationary_power(chain, bad), PreconditionError);
  bad.relaxation = 1.5;
  EXPECT_THROW((void)solve_stationary_jacobi(chain, bad), PreconditionError);
  bad.relaxation = 2.5;
  EXPECT_THROW((void)solve_stationary_sor(chain, bad), PreconditionError);
}

TEST(DirectSolverTest, ReportsZeroResidual) {
  const MarkovChain chain(test::random_dense_stochastic_pt(12, 3));
  const auto result = solve_stationary_direct(chain);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_LT(result.stats.residual, 1e-13);
  EXPECT_EQ(result.stats.method, "gth-direct");
}

TEST(ResidualTest, ZeroAtFixedPoint) {
  const MarkovChain chain(test::birth_death_pt(8, 0.2, 0.4));
  const auto eta = test::birth_death_stationary(8, 0.2, 0.4);
  EXPECT_LT(stationary_residual(chain, eta), 1e-14);
  const auto uniform = chain.uniform_distribution();
  EXPECT_GT(stationary_residual(chain, uniform), 1e-3);
}

}  // namespace
}  // namespace stocdr::solvers
