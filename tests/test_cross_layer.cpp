// Cross-layer integration checks: pieces from different subsystems composed
// the way a downstream user would combine them.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "../tests/test_util.hpp"
#include "analysis/autocorrelation.hpp"
#include "analysis/eigen.hpp"
#include "cdr/measures.hpp"
#include "cdr/model.hpp"
#include "markov/classify.hpp"
#include "markov/ctmc.hpp"
#include "solvers/aggregation.hpp"
#include "solvers/stationary.hpp"

namespace stocdr {
namespace {

TEST(CrossLayerTest, CtmcUniformizationSolvedByMultilevel) {
  // A 512-state birth-death CTMC (M/M/1/K-like), uniformized and handed to
  // the multigrid stationary solver with a grid hierarchy: the result must
  // match the closed-form geometric distribution of the embedded rates.
  const std::size_t n = 512;
  std::vector<std::tuple<std::size_t, std::size_t, double>> rates;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    rates.emplace_back(i, i + 1, 2.0);
    rates.emplace_back(i + 1, i, 2.2);
  }
  const markov::Ctmc ctmc = markov::Ctmc::from_rates(n, rates);
  const markov::MarkovChain chain = ctmc.uniformize();

  std::vector<std::uint32_t> grid(n), label(n, 0);
  for (std::size_t i = 0; i < n; ++i) grid[i] = static_cast<std::uint32_t>(i);
  const auto hierarchy = solvers::build_grid_pair_hierarchy(grid, label, 8);
  solvers::MultilevelOptions options;
  options.tolerance = 1e-12;
  options.coarsest_size = 8;
  const auto result =
      solvers::solve_stationary_multilevel(chain, hierarchy, options);
  EXPECT_TRUE(result.stats.converged);

  // Stationary: geometric with ratio lambda/mu = 2.0/2.2.
  const double r = 2.0 / 2.2;
  EXPECT_NEAR(result.distribution[1] / result.distribution[0], r, 1e-9);
  EXPECT_NEAR(result.distribution[100] / result.distribution[99], r, 1e-9);
}

TEST(CrossLayerTest, SaturatingCdrChainRecurrentClassIsSolvable) {
  // With a saturating boundary and a drift, some reachable lock-in states
  // can be transient; classify + restrict_to_recurrent must produce a
  // proper stochastic chain whose stationary distribution matches solving
  // the full reachable chain.
  cdr::CdrConfig config;
  config.phase_points = 64;
  config.vco_phases = 8;
  config.counter_length = 3;
  config.sigma_nw = 0.05;
  config.nr_mean = 0.01;
  config.nr_max = 0.03;
  config.max_run_length = 3;
  config.boundary = cdr::BoundaryMode::kSaturate;
  const cdr::CdrModel model(config);
  const cdr::CdrChain chain = model.build();

  const markov::ChainStructure structure = markov::classify(chain.chain());
  ASSERT_EQ(structure.num_recurrent_classes, 1u);
  const markov::RestrictedChain recurrent =
      markov::restrict_to_recurrent(chain.chain());
  const markov::MarkovChain closed(recurrent.qt);
  EXPECT_LT(closed.stochasticity_defect(), 1e-12);

  // Solve both; the full chain's stationary mass lives entirely on the
  // recurrent class and agrees state-by-state.
  const auto eta_full = cdr::solve_stationary(chain).distribution;
  const auto eta_rec = solvers::solve_stationary_power(
                           closed, {.tolerance = 1e-12,
                                    .max_iterations = 500000,
                                    .relaxation = 1.0})
                           .distribution;
  double l1 = 0.0;
  for (std::size_t i = 0; i < recurrent.to_parent.size(); ++i) {
    l1 += std::abs(eta_full[recurrent.to_parent[i]] - eta_rec[i]);
  }
  EXPECT_LT(l1, 1e-8);
  // Transient states carry no stationary mass.
  for (std::size_t i = 0; i < chain.num_states(); ++i) {
    if (!structure.recurrent[i]) EXPECT_LT(eta_full[i], 1e-10);
  }
}

TEST(CrossLayerTest, MixingStepsConsistentWithLambda2) {
  // The subdominant eigenvalue's implied memory and the empirical slip of
  // the autocovariance must agree in order of magnitude on a CDR chain.
  cdr::CdrConfig config;
  config.phase_points = 64;
  config.vco_phases = 8;
  config.counter_length = 4;
  config.sigma_nw = 0.08;
  config.nr_mean = 0.005;
  config.nr_max = 0.015;
  config.max_run_length = 3;
  const cdr::CdrModel model(config);
  const cdr::CdrChain chain = model.build();
  const auto eta = cdr::solve_stationary(chain).distribution;

  // Near-degenerate |lambda_2| ~ |lambda_3| pairs make the magnitude
  // estimate beat slowly; a modest tolerance converges robustly.
  const auto lambda2 = analysis::subdominant_eigenvalue(
      chain.chain(), eta, 1e-5, 200000);
  ASSERT_TRUE(lambda2.converged);
  ASSERT_GT(lambda2.magnitude, 0.0);
  ASSERT_LT(lambda2.magnitude, 1.0);

  std::vector<double> f(chain.num_states());
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = model.grid().value(chain.phase_coordinate()[i]);
  }
  const auto cov =
      analysis::autocovariance(chain.chain(), eta, f, 200);
  // Asymptotically the autocovariance decays at |lambda_2|^k; compare the
  // decay over lags 100 -> 150 (deep enough for the dominant mode).
  ASSERT_GT(cov[100], 0.0);
  ASSERT_GT(cov[150], 0.0);
  const double measured = std::pow(cov[150] / cov[100], 1.0 / 50.0);
  EXPECT_NEAR(measured, lambda2.magnitude, 0.05);
}

}  // namespace
}  // namespace stocdr
