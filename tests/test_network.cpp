#include "fsm/network.hpp"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "../tests/test_util.hpp"
#include "solvers/stationary.hpp"
#include "support/error.hpp"

namespace stocdr::fsm {
namespace {

std::unique_ptr<MarkovSource> two_state_source(const std::string& name,
                                               double a, double b) {
  return std::make_unique<MarkovSource>(
      name, std::vector<std::vector<double>>{{1 - a, a}, {b, 1 - b}});
}

/// A deterministic XOR of two inputs feeding its own state.
class XorAccumulator final : public DeterministicComponent {
 public:
  XorAccumulator() : DeterministicComponent("xor") {}
  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] std::uint32_t initial_state() const override { return 0; }
  [[nodiscard]] std::size_t num_input_ports() const override { return 2; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 0; }
  [[nodiscard]] std::uint32_t next_state(
      std::uint32_t state, std::span<const std::uint32_t> in) const override {
    return state ^ in[0] ^ in[1];
  }
};

TEST(NetworkTest, WiringValidation) {
  Network net;
  const std::size_t src = net.add_component(two_state_source("s", 0.5, 0.5));
  const std::size_t acc =
      net.add_component(std::make_unique<XorAccumulator>());
  // Unwired inputs detected.
  EXPECT_THROW(net.validate(), PreconditionError);
  net.connect({src, 0}, acc, 0);
  net.connect({src, 0}, acc, 1);
  EXPECT_NO_THROW(net.validate());
  // Double wiring rejected.
  EXPECT_THROW(net.connect({src, 0}, acc, 0), PreconditionError);
  // Out-of-range references rejected.
  EXPECT_THROW(net.connect({5, 0}, acc, 0), PreconditionError);
  EXPECT_THROW(net.connect({src, 3}, acc, 0), PreconditionError);
}

TEST(NetworkTest, ComponentLookupByName) {
  Network net;
  net.add_component(two_state_source("alpha", 0.5, 0.5));
  net.add_component(two_state_source("beta", 0.5, 0.5));
  EXPECT_EQ(net.component_index("beta"), 1u);
  EXPECT_EQ(net.component(0).name(), "alpha");
  EXPECT_THROW((void)net.component_index("gamma"), PreconditionError);
}

/// A Mealy pass-through used to build combinational cycles.
class PassThrough final : public DeterministicComponent {
 public:
  explicit PassThrough(std::string name)
      : DeterministicComponent(std::move(name)) {}
  [[nodiscard]] std::size_t num_states() const override { return 1; }
  [[nodiscard]] std::uint32_t initial_state() const override { return 0; }
  [[nodiscard]] std::size_t num_input_ports() const override { return 1; }
  [[nodiscard]] std::size_t num_output_ports() const override { return 1; }
  [[nodiscard]] std::uint32_t next_state(
      std::uint32_t, std::span<const std::uint32_t>) const override {
    return 0;
  }
  void outputs(std::uint32_t, std::span<const std::uint32_t> in,
               std::span<std::uint32_t> out) const override {
    out[0] = in[0];
  }
};

TEST(NetworkTest, CombinationalCycleRejected) {
  Network net;
  const std::size_t a = net.add_component(std::make_unique<PassThrough>("a"));
  const std::size_t b = net.add_component(std::make_unique<PassThrough>("b"));
  net.connect({a, 0}, b, 0);
  net.connect({b, 0}, a, 0);
  EXPECT_THROW(net.validate(), PreconditionError);
}

TEST(NetworkTest, MooreComponentBreaksCycle) {
  // Same loop but with a Moore machine in it: legal.
  Network net;
  const std::size_t moore = net.add_component(std::make_unique<MarkovSource>(
      "m", std::vector<std::vector<double>>{{1.0}}));
  const std::size_t pass =
      net.add_component(std::make_unique<PassThrough>("p"));
  net.connect({moore, 0}, pass, 0);
  // The Moore machine has no inputs here, so wire pass's output nowhere;
  // the loop case is covered by the CDR model itself.  Just validate.
  EXPECT_NO_THROW(net.validate());
}

TEST(ComposeTest, IndependentSourcesGiveProductChain) {
  Network net;
  net.add_component(two_state_source("a", 0.3, 0.2));
  net.add_component(two_state_source("b", 0.4, 0.1));
  const ComposedChain composed = net.compose();
  EXPECT_EQ(composed.num_states(), 4u);
  // Transition probability factorizes.
  const auto& chain = composed.chain();
  const std::size_t s00 = *composed.dense_index(composed.space().encode(
      {0, 0}));
  const std::size_t s11 = *composed.dense_index(composed.space().encode(
      {1, 1}));
  EXPECT_NEAR(chain.probability(s00, s11), 0.3 * 0.4, 1e-14);
  // Stationary distribution is the product of the component stationaries:
  // pi_a = (b, a)/(a+b) = (0.4, 0.6), pi_b = (0.2, 0.8).
  const auto eta = solvers::solve_stationary_direct(chain).distribution;
  EXPECT_NEAR(eta[s00], 0.4 * 0.2, 1e-12);
  EXPECT_NEAR(eta[s11], 0.6 * 0.8, 1e-12);
}

TEST(ComposeTest, OnlyReachableStatesKept) {
  // XOR of two copies of the same source value is always 0 -> the xor
  // state 1 with even parity combinations is unreachable... in fact
  // in0 == in1 always, so xor never flips: states with xor=1 unreachable.
  Network net;
  const std::size_t src = net.add_component(two_state_source("s", 0.5, 0.5));
  const std::size_t acc =
      net.add_component(std::make_unique<XorAccumulator>());
  net.connect({src, 0}, acc, 0);
  net.connect({src, 0}, acc, 1);
  const ComposedChain composed = net.compose();
  EXPECT_EQ(composed.num_states(), 2u);  // full space is 4
  for (std::size_t i = 0; i < composed.num_states(); ++i) {
    EXPECT_EQ(composed.coordinate(i, 1), 0u);  // xor stays 0
  }
}

TEST(ComposeTest, ProbabilitySumsValidated) {
  Network net;
  net.add_component(two_state_source("s", 0.3, 0.3));
  EXPECT_NO_THROW(net.compose());
}

TEST(ComposeTest, MaxStatesGuard) {
  Network net;
  for (int i = 0; i < 4; ++i) {
    net.add_component(two_state_source("s" + std::to_string(i), 0.5, 0.5));
  }
  ComposeOptions options;
  options.max_states = 8;  // 16 reachable
  EXPECT_THROW(net.compose(options), PreconditionError);
}

TEST(ComposeTest, DescribeAndIndexing) {
  Network net;
  net.add_component(two_state_source("a", 0.5, 0.5));
  net.add_component(two_state_source("b", 0.5, 0.5));
  const ComposedChain composed = net.compose();
  const auto idx = composed.dense_index(composed.space().encode({1, 0}));
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(composed.describe(*idx), "a=1 b=0");
  EXPECT_EQ(composed.coordinates(*idx), (std::vector<std::uint32_t>{1, 0}));
  EXPECT_EQ(composed.full_index(*idx), composed.space().encode({1, 0}));
}

TEST(SimulatorTest, EmpiricalDistributionMatchesStationary) {
  Network net;
  net.add_component(two_state_source("a", 0.3, 0.2));
  net.add_component(two_state_source("b", 0.4, 0.1));
  const ComposedChain composed = net.compose();
  const auto eta = solvers::solve_stationary_direct(composed.chain())
                       .distribution;

  NetworkSimulator sim(net);
  Rng rng(2024);
  std::vector<double> occupancy(composed.num_states(), 0.0);
  const int burn = 1000, steps = 400000;
  for (int i = 0; i < burn; ++i) sim.step(rng);
  for (int i = 0; i < steps; ++i) {
    sim.step(rng);
    const auto s = sim.states();
    const auto idx = composed.dense_index(
        composed.space().encode({s[0], s[1]}));
    ASSERT_TRUE(idx.has_value());
    occupancy[*idx] += 1.0 / steps;
  }
  EXPECT_LT(test::l1(occupancy, eta), 0.01);
}

TEST(ComposeTest, DelayLineGivesJointLagDistribution) {
  // A Markov source feeding a depth-1 delay line: the composite stationary
  // distribution of (source_now = j, delayed = i) is eta_i p_ij — the
  // stationary edge-flow of the source chain.  Closed-form check of the
  // Moore-delay semantics ("Prev Data D" in the paper's Figure 2).
  const double a = 0.3, b = 0.2;  // toggle rates
  Network net;
  const std::size_t src = net.add_component(two_state_source("s", a, b));
  const std::size_t dly = net.add_component(
      std::make_unique<DelayLine>("prev", 2, 1, 0));
  net.connect({src, 0}, dly, 0);
  const ComposedChain composed = net.compose();
  const auto eta =
      solvers::solve_stationary_direct(composed.chain()).distribution;

  const std::vector<double> pi{b / (a + b), a / (a + b)};
  const double p[2][2] = {{1 - a, a}, {b, 1 - b}};
  for (std::uint32_t j = 0; j < 2; ++j) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      const auto idx = composed.dense_index(composed.space().encode({j, i}));
      ASSERT_TRUE(idx.has_value());
      EXPECT_NEAR(eta[*idx], pi[i] * p[i][j], 1e-12)
          << "source=" << j << " prev=" << i;
    }
  }
}

TEST(SimulatorTest, OutputsVisibleAfterStep) {
  Network net;
  const std::size_t src = net.add_component(two_state_source("s", 0.5, 0.5));
  NetworkSimulator sim(net);
  Rng rng(7);
  sim.step(rng);
  // Moore output equals the pre-step state (initial state 0).
  EXPECT_EQ(sim.output(src, 0), 0u);
  EXPECT_THROW((void)sim.output(src, 1), PreconditionError);
  EXPECT_THROW((void)sim.output(9, 0), PreconditionError);
}

TEST(SimulatorTest, SetStatesAndReset) {
  Network net;
  net.add_component(two_state_source("s", 0.0, 0.0));  // frozen chain
  NetworkSimulator sim(net);
  const std::vector<std::uint32_t> target{1};
  sim.set_states(target);
  EXPECT_EQ(sim.states()[0], 1u);
  Rng rng(3);
  sim.step(rng);
  EXPECT_EQ(sim.states()[0], 1u);  // frozen: stays
  sim.reset();
  EXPECT_EQ(sim.states()[0], 0u);
  EXPECT_THROW(sim.set_states(std::vector<std::uint32_t>{7}),
               PreconditionError);
}

}  // namespace
}  // namespace stocdr::fsm
