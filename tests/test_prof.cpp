// Perf-counter profiling layer: delta/mask algebra, the rusage fallback
// (counters unavailable must never change results or exit paths), kernel
// roofline models, the embedded perf JSON section, and peak_rss_bytes
// monotonicity.
#include "obs/prof/perf.hpp"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../tests/test_util.hpp"
#include "obs/analyze/json_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/roofline.hpp"
#include "obs/trace.hpp"
#include "solvers/stationary.hpp"

namespace stocdr::obs::prof {
namespace {

/// Every test in this file manipulates process-global profiling state, so
/// each one starts and ends from the same clean slate.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    detail::set_enabled_for_test(false);
    detail::set_force_unavailable_for_test(false);
    reset();
  }
  void TearDown() override {
    detail::set_enabled_for_test(false);
    detail::set_force_unavailable_for_test(false);
    reset();
  }
};

CounterReading make_reading(std::uint64_t mask,
                            std::uint64_t base) {
  CounterReading r;
  r.mask = mask;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    r.values[i] = base + i;
  }
  return r;
}

TEST_F(ProfTest, CounterNamesAreStableJsonKeys) {
  EXPECT_STREQ(counter_name(kCycles), "cycles");
  EXPECT_STREQ(counter_name(kInstructions), "instructions");
  EXPECT_STREQ(counter_name(kCacheReferences), "cache_references");
  EXPECT_STREQ(counter_name(kCacheMisses), "cache_misses");
  EXPECT_STREQ(counter_name(kBranchMisses), "branch_misses");
  EXPECT_STREQ(counter_name(kStalledCyclesBackend), "stalled_cycles_backend");
  EXPECT_STREQ(counter_name(kTaskClockNs), "task_clock_ns");
  EXPECT_STREQ(counter_name(kPageFaults), "page_faults");
}

TEST_F(ProfTest, ReadingDeltaIntersectsMasksAndSaturates) {
  CounterReading start = make_reading(/*mask=*/0b011, /*base=*/100);
  CounterReading end = make_reading(/*mask=*/0b110, /*base=*/150);
  // Slot 0 resets mid-flight: end below start must clamp to 0, not wrap.
  end.values[1] = 10;

  const CounterReading delta = reading_delta(start, end);
  EXPECT_EQ(delta.mask, 0b010u);  // only slots carried by BOTH readings
  EXPECT_TRUE(delta.has(1));
  EXPECT_FALSE(delta.has(0));
  EXPECT_FALSE(delta.has(2));
  EXPECT_EQ(delta.values[1], 0u);  // saturated, 10 - 101 < 0

  end.values[1] = 173;
  const CounterReading forward = reading_delta(start, end);
  EXPECT_EQ(forward.values[1], 72u);  // 173 - 101
}

TEST_F(ProfTest, AccumulateBuildsNamedAndTotalAggregates) {
  CounterReading delta;
  delta.mask = (1u << kInstructions) | (1u << kCycles);
  delta.values[kInstructions] = 2000;
  delta.values[kCycles] = 1000;
  accumulate("solve", delta, /*wall_ns=*/500, /*top_level=*/true);
  accumulate("solve", delta, /*wall_ns=*/700, /*top_level=*/false);

  const std::vector<PerfAggregate> named = snapshot();
  ASSERT_EQ(named.size(), 1u);
  EXPECT_EQ(named[0].name, "solve");
  EXPECT_EQ(named[0].regions, 2u);
  EXPECT_EQ(named[0].wall_ns, 1200u);
  EXPECT_EQ(named[0].values[kInstructions], 4000u);
  EXPECT_DOUBLE_EQ(named[0].ipc(), 2.0);
  EXPECT_DOUBLE_EQ(named[0].cache_miss_rate(), 0.0);  // refs not carried

  // Only the top_level region feeds the process total.
  const PerfAggregate whole = total();
  EXPECT_EQ(whole.regions, 1u);
  EXPECT_EQ(whole.wall_ns, 500u);
  EXPECT_EQ(whole.values[kInstructions], 2000u);
}

TEST_F(ProfTest, AggregateMaskIsIntersectionOfContributions) {
  CounterReading rich;
  rich.mask = (1u << kInstructions) | (1u << kTaskClockNs);
  rich.values[kInstructions] = 10;
  CounterReading poor;
  poor.mask = 1u << kTaskClockNs;
  accumulate("mixed", rich, 1, /*top_level=*/true);
  accumulate("mixed", poor, 1, /*top_level=*/true);

  const std::vector<PerfAggregate> named = snapshot();
  ASSERT_EQ(named.size(), 1u);
  EXPECT_TRUE(named[0].has(kTaskClockNs));
  // Instructions were absent from one contribution, so the aggregate must
  // not report them (a partial sum would look like a real, smaller count).
  EXPECT_FALSE(named[0].has(kInstructions));
}

TEST_F(ProfTest, RusageFallbackStillProducesReadings) {
  detail::set_force_unavailable_for_test(true);
  detail::set_enabled_for_test(true);

  EXPECT_TRUE(enabled());
  EXPECT_EQ(source(), Source::kRusage);
  EXPECT_FALSE(counters_available());

  const CounterReading reading = read_current_thread();
  // rusage carries cpu time and fault counts; the hardware slots must be
  // reported absent, not zero.
  EXPECT_TRUE(reading.has(kTaskClockNs));
  EXPECT_TRUE(reading.has(kPageFaults));
  EXPECT_FALSE(reading.has(kInstructions));
  EXPECT_FALSE(reading.has(kCycles));
}

TEST_F(ProfTest, SolveIsBitIdenticalWithCountersUnavailable) {
  const markov::MarkovChain chain(test::random_dense_stochastic_pt(30, 7));
  solvers::SolverOptions options;
  options.tolerance = 1e-12;

  const auto plain = solvers::solve_stationary_power(chain, options, {});
  ASSERT_TRUE(plain.stats.converged);

  detail::set_force_unavailable_for_test(true);
  detail::set_enabled_for_test(true);
  const auto profiled = solvers::solve_stationary_power(chain, options, {});

  ASSERT_TRUE(profiled.stats.converged);
  EXPECT_EQ(profiled.stats.iterations, plain.stats.iterations);
  ASSERT_EQ(profiled.distribution.size(), plain.distribution.size());
  for (std::size_t i = 0; i < plain.distribution.size(); ++i) {
    // Bit-identical, not approximately equal: profiling must observe the
    // numerics, never perturb them.
    EXPECT_EQ(std::memcmp(&profiled.distribution[i], &plain.distribution[i],
                          sizeof(double)),
              0)
        << "state " << i;
  }
}

TEST_F(ProfTest, SpanAccumulatesUnderFallback) {
  detail::set_force_unavailable_for_test(true);
  detail::set_enabled_for_test(true);
  reset();
  {
    obs::Span span("prof_test_region");
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0 / (i + 1);
  }
  const std::vector<PerfAggregate> named = snapshot();
  ASSERT_EQ(named.size(), 1u);
  EXPECT_EQ(named[0].name, "prof_test_region");
  EXPECT_EQ(named[0].regions, 1u);
  EXPECT_GT(named[0].wall_ns, 0u);
  EXPECT_TRUE(named[0].has(kTaskClockNs));
  EXPECT_FALSE(named[0].has(kInstructions));
  EXPECT_EQ(total().regions, 1u);
}

TEST_F(ProfTest, KernelModelsCountCompulsoryTraffic) {
  // CSR SpMV, 10x10 with 40 entries: values+colidx once, rowptr, x, y.
  EXPECT_EQ(spmv_bytes(10, 10, 40), 40u * 12 + 11 * 4 + 10 * 8 + 10 * 8);
  EXPECT_EQ(spmv_flops(40), 80u);
  EXPECT_EQ(jacobi_bytes(10, 40), 40u * 12 + 11 * 4 + 4 * 10 * 8);
  EXPECT_EQ(jacobi_flops(10, 40), 2u * 40 + 2 * 10);
  EXPECT_EQ(power_update_bytes(10), 320u);
  EXPECT_EQ(power_update_flops(10), 40u);
  EXPECT_EQ(aggregation_bytes(100, 10), 100u * 12 + 10 * 8);
  EXPECT_EQ(aggregation_flops(100), 100u);
}

TEST_F(ProfTest, KernelScopeIsNoOpWhenDisabled) {
  ASSERT_FALSE(enabled());
  { const KernelScope scope("noop_kernel", 100, 100); }
  EXPECT_TRUE(kernel_snapshot().empty());
}

TEST_F(ProfTest, KernelAggregatesDeriveRooflineQuantities) {
  detail::set_enabled_for_test(true);
  record_kernel("k", /*bytes=*/1000, /*flops=*/500, /*seconds=*/1e-6);
  record_kernel("k", /*bytes=*/1000, /*flops=*/500, /*seconds=*/1e-6);

  const std::vector<KernelAggregate> kernels = kernel_snapshot();
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].calls, 2u);
  EXPECT_EQ(kernels[0].bytes, 2000u);
  EXPECT_EQ(kernels[0].flops, 1000u);
  EXPECT_DOUBLE_EQ(kernels[0].arithmetic_intensity(), 0.5);
  EXPECT_DOUBLE_EQ(kernels[0].achieved_gbps(), 2000.0 / 2e-6 / 1e9);
  EXPECT_DOUBLE_EQ(kernels[0].gflops(), 1000.0 / 2e-6 / 1e9);
}

TEST_F(ProfTest, PerfSectionJsonCarriesFallbackShape) {
  detail::set_force_unavailable_for_test(true);
  detail::set_enabled_for_test(true);
  reset();
  CounterReading delta;
  delta.mask = 1u << kTaskClockNs;
  delta.values[kTaskClockNs] = 123456;
  accumulate("solve", delta, /*wall_ns=*/200000, /*top_level=*/true);
  record_kernel("spmv", spmv_bytes(100, 100, 400), spmv_flops(400), 1e-5);

  const std::string json = perf_section_json();
  const auto doc = analyze::parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;

  EXPECT_TRUE(doc->find("enabled")->boolean);
  // Counters unavailable: the section says so instead of faking zeros.
  EXPECT_FALSE(doc->find("available")->boolean);
  EXPECT_EQ(doc->find("source")->string_or(""), "rusage");

  const analyze::JsonValue* total = doc->find("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->find("regions")->number_or(0), 1.0);
  EXPECT_EQ(total->find("task_clock_ns")->number_or(0), 123456.0);
  EXPECT_EQ(total->find("instructions"), nullptr);  // absent, not zero

  const analyze::JsonValue* spans = doc->find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_NE(spans->find("solve"), nullptr);

  const analyze::JsonValue* kernels = doc->find("kernels");
  ASSERT_NE(kernels, nullptr);
  const analyze::JsonValue* spmv = kernels->find("spmv");
  ASSERT_NE(spmv, nullptr);
  EXPECT_EQ(spmv->find("calls")->number_or(0), 1.0);
  EXPECT_GT(spmv->find("achieved_gbps")->number_or(0), 0.0);
}

TEST_F(ProfTest, PublishToMetricsEmitsGauges) {
  detail::set_force_unavailable_for_test(true);
  detail::set_enabled_for_test(true);
  reset();
  obs::MetricsRegistry::instance().reset_all();
  CounterReading delta;
  delta.mask = 1u << kTaskClockNs;
  delta.values[kTaskClockNs] = 1000000;
  accumulate("solve", delta, 1000000, /*top_level=*/true);
  publish_to_metrics();
  bool found = false;
  for (const MetricSample& sample :
       obs::MetricsRegistry::instance().snapshot()) {
    if (sample.name == "perf.solve.task_clock_seconds") {
      found = true;
      EXPECT_EQ(sample.kind, MetricSample::Kind::kGauge);
      EXPECT_DOUBLE_EQ(sample.value, 1e-3);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PeakRssTest, PositiveAndMonotonic) {
  const std::uint64_t before = obs::peak_rss_bytes();
  EXPECT_GT(before, 0u);

  // Touch 32 MiB so the high-water mark provably moves (or at least holds).
  std::vector<char> ballast(32u << 20);
  for (std::size_t i = 0; i < ballast.size(); i += 4096) {
    ballast[i] = static_cast<char>(i);
  }
  const std::uint64_t during = obs::peak_rss_bytes();
  EXPECT_GE(during, before);

  ballast.clear();
  ballast.shrink_to_fit();
  // Peak RSS is a high-water mark: freeing memory must never lower it.
  const std::uint64_t after = obs::peak_rss_bytes();
  EXPECT_GE(after, during);
}

}  // namespace
}  // namespace stocdr::obs::prof
