#include "solvers/linear.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "../tests/test_util.hpp"
#include "markov/reachability.hpp"
#include "solvers/aggregation.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace stocdr::solvers {
namespace {

/// A restricted (sub-stochastic) Q^T from a birth-death chain with the top
/// state removed: every state leaks toward the absorbing top.
sparse::CsrMatrix leaky_qt(std::size_t n, double p, double q) {
  const markov::MarkovChain chain(test::birth_death_pt(n + 1, p, q));
  std::vector<bool> keep(n + 1, true);
  keep[n] = false;
  return markov::restrict_chain(chain, keep).qt;
}

TEST(TransientOperatorTest, AppliesIMinusQ) {
  const sparse::CsrMatrix qt = leaky_qt(5, 0.3, 0.2);
  const TransientOperator op(qt);
  EXPECT_EQ(op.size(), 5u);
  // x = e_0: (I - Q) e_0 = e_0 - Q e_0; column 0 of Q is row 0 of Q...
  std::vector<double> x(5, 0.0), y(5);
  x[0] = 1.0;
  op.apply(x, y);
  // Row-major semantics: y_i = x_i - sum_j Q[i][j] x_j = e0_i - Q[i][0].
  // Q[0][0] = stay at 0 = 1 - p - q + q = 0.7 and Q[1][0] = q = 0.2.
  EXPECT_NEAR(y[0], 0.3, 1e-14);
  EXPECT_NEAR(y[1], -0.2, 1e-14);
}

TEST(TransientOperatorTest, DiagonalMatchesMatrix) {
  const sparse::CsrMatrix qt = leaky_qt(6, 0.25, 0.3);
  const TransientOperator op(qt);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(op.diagonal()[i], 1.0 - qt.at(i, i), 1e-15);
  }
}

TEST(GmresTest, SolvesRestrictedSystemToTolerance) {
  const sparse::CsrMatrix qt = leaky_qt(40, 0.3, 0.25);
  const TransientOperator op(qt);
  const std::vector<double> b(40, 1.0);
  SolverOptions options;
  options.tolerance = 1e-12;
  const auto result = gmres(op, b, options, 50);
  EXPECT_TRUE(result.stats.converged);
  // Verify the residual independently.
  std::vector<double> ax(40);
  op.apply(result.solution, ax);
  double rnorm = 0.0;
  for (std::size_t i = 0; i < 40; ++i) {
    rnorm += (b[i] - ax[i]) * (b[i] - ax[i]);
  }
  EXPECT_LT(std::sqrt(rnorm / 40.0), 1e-10);
}

TEST(GmresTest, ZeroRhsGivesZeroSolution) {
  const sparse::CsrMatrix qt = leaky_qt(10, 0.3, 0.2);
  const TransientOperator op(qt);
  const std::vector<double> b(10, 0.0);
  const auto result = gmres(op, b);
  EXPECT_TRUE(result.stats.converged);
  for (const double v : result.solution) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(GmresTest, RestartSmallerThanProblemStillConverges) {
  const sparse::CsrMatrix qt = leaky_qt(100, 0.3, 0.25);
  const TransientOperator op(qt);
  const std::vector<double> b(100, 1.0);
  SolverOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 200;
  const auto result = gmres(op, b, options, 10);
  EXPECT_TRUE(result.stats.converged);
}

TEST(JacobiLinearTest, MatchesGmresOnEasySystem) {
  // Drift toward the absorbing target keeps rho(Q) well below 1, so plain
  // Jacobi converges.
  const sparse::CsrMatrix qt = leaky_qt(20, 0.4, 0.2);
  const TransientOperator op(qt);
  const std::vector<double> b(20, 1.0);
  SolverOptions options;
  options.tolerance = 1e-11;
  options.max_iterations = 100000;
  options.relaxation = 1.0;
  const auto jac = jacobi_linear(op, b, options);
  const auto gm = gmres(op, b, options);
  EXPECT_TRUE(jac.stats.converged);
  EXPECT_TRUE(gm.stats.converged);
  EXPECT_LT(test::l1(jac.solution, gm.solution), 1e-6);
}

TEST(PreconditionerTest, MakesShortGmresSufficient) {
  // Unsmoothed aggregation is not a convergent standalone iteration (the
  // piecewise-constant correction over/under-shoots), but wrapped in even a
  // very short GMRES it solves the system quickly — which is how the
  // library uses it.
  const sparse::CsrMatrix qt = leaky_qt(128, 0.3, 0.29);
  std::vector<std::uint32_t> grid(128), label(128, 0);
  for (std::size_t i = 0; i < 128; ++i) {
    grid[i] = static_cast<std::uint32_t>(i);
  }
  const auto hierarchy = build_grid_pair_hierarchy(grid, label, 8);
  AggregationPreconditioner::Options popts;
  popts.coarsest_size = 8;
  const AggregationPreconditioner precond(qt, hierarchy, popts);
  EXPECT_GT(precond.num_levels(), 2u);

  const TransientOperator op(qt);
  const std::vector<double> b(128, 1.0);
  const Preconditioner apply = [&precond](std::span<const double> r,
                                          std::span<double> z) {
    precond.apply(r, z);
  };
  SolverOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 10;
  const auto result = gmres(op, b, options, 8, apply);
  EXPECT_TRUE(result.stats.converged);
  std::vector<double> az(128);
  op.apply(result.solution, az);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_NEAR(az[i], b[i], 1e-7);
}

TEST(PreconditionerTest, AcceleratesGmresOnStiffSystem) {
  // Nearly balanced random walk with a tiny leak: kappa(I - Q) is large and
  // unpreconditioned GMRES(20) needs many restarts.
  const sparse::CsrMatrix qt = leaky_qt(600, 0.3, 0.299);
  const TransientOperator op(qt);
  const std::vector<double> b(600, 1.0);
  SolverOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 400;

  std::vector<std::uint32_t> grid(600), label(600, 0);
  for (std::size_t i = 0; i < 600; ++i) {
    grid[i] = static_cast<std::uint32_t>(i);
  }
  const auto hierarchy = build_grid_pair_hierarchy(grid, label, 20);
  AggregationPreconditioner::Options popts;
  popts.coarsest_size = 20;
  const AggregationPreconditioner precond(qt, hierarchy, popts);
  const Preconditioner apply = [&precond](std::span<const double> r,
                                          std::span<double> z) {
    precond.apply(r, z);
  };
  const auto with = gmres(op, b, options, 20, apply);
  const auto without = gmres(op, b, options, 20);
  EXPECT_TRUE(with.stats.converged);
  // Preconditioning must cut the matvec count substantially.
  if (without.stats.converged) {
    EXPECT_LT(with.stats.matvec_count * 2, without.stats.matvec_count);
  }
  // And the answer must solve the system.
  std::vector<double> ax(600);
  op.apply(with.solution, ax);
  double rnorm = 0.0;
  for (std::size_t i = 0; i < 600; ++i) rnorm += std::abs(b[i] - ax[i]);
  EXPECT_LT(rnorm / 600.0, 1e-8);
}

TEST(PreconditionerTest, EmptyHierarchyActsAsCoarsestSolve) {
  const sparse::CsrMatrix qt = leaky_qt(30, 0.3, 0.2);
  const AggregationPreconditioner precond(qt, {});
  EXPECT_EQ(precond.num_levels(), 1u);
  // With n <= coarsest_size the "V-cycle" is a direct solve: residual ~ 0.
  const TransientOperator op(qt);
  const std::vector<double> b(30, 1.0);
  std::vector<double> z(30), az(30);
  precond.apply(b, z);
  op.apply(z, az);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(az[i], b[i], 1e-9);
}

TEST(BicgstabTest, SolvesRestrictedSystem) {
  const sparse::CsrMatrix qt = leaky_qt(50, 0.35, 0.25);
  const TransientOperator op(qt);
  const std::vector<double> b(50, 1.0);
  SolverOptions options;
  options.tolerance = 1e-11;
  options.max_iterations = 500;
  const auto result = bicgstab(op, b, options);
  EXPECT_TRUE(result.stats.converged);
  std::vector<double> ax(50);
  op.apply(result.solution, ax);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(BicgstabTest, AgreesWithGmres) {
  const sparse::CsrMatrix qt = leaky_qt(80, 0.3, 0.28);
  const TransientOperator op(qt);
  const std::vector<double> b(80, 1.0);
  SolverOptions options;
  options.tolerance = 1e-11;
  options.max_iterations = 2000;
  const auto bi = bicgstab(op, b, options);
  const auto gm = gmres(op, b, options, 80);
  ASSERT_TRUE(bi.stats.converged);
  ASSERT_TRUE(gm.stats.converged);
  EXPECT_LT(test::l1(bi.solution, gm.solution),
            1e-5 * test::l1(gm.solution, std::vector<double>(80, 0.0)));
}

TEST(BicgstabTest, PreconditionedConvergesFasterOnStiffSystem) {
  const sparse::CsrMatrix qt = leaky_qt(400, 0.3, 0.299);
  const TransientOperator op(qt);
  const std::vector<double> b(400, 1.0);
  SolverOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 5000;

  std::vector<std::uint32_t> grid(400), label(400, 0);
  for (std::size_t i = 0; i < 400; ++i) {
    grid[i] = static_cast<std::uint32_t>(i);
  }
  const auto hierarchy = build_grid_pair_hierarchy(grid, label, 20);
  AggregationPreconditioner::Options popts;
  popts.coarsest_size = 20;
  const AggregationPreconditioner precond(qt, hierarchy, popts);
  const Preconditioner apply = [&precond](std::span<const double> r,
                                          std::span<double> z) {
    precond.apply(r, z);
  };
  const auto with = bicgstab(op, b, options, apply);
  EXPECT_TRUE(with.stats.converged);
  const auto without = bicgstab(op, b, options);
  if (without.stats.converged) {
    EXPECT_LT(with.stats.matvec_count, without.stats.matvec_count);
  }
  std::vector<double> ax(400);
  op.apply(with.solution, ax);
  double rnorm = 0.0;
  for (std::size_t i = 0; i < 400; ++i) rnorm += std::abs(b[i] - ax[i]);
  EXPECT_LT(rnorm / 400.0, 1e-7);
}

TEST(BicgstabTest, ZeroRhs) {
  const sparse::CsrMatrix qt = leaky_qt(10, 0.3, 0.2);
  const TransientOperator op(qt);
  const auto result = bicgstab(op, std::vector<double>(10, 0.0));
  EXPECT_TRUE(result.stats.converged);
  for (const double v : result.solution) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(GmresTest, SizeMismatchRejected) {
  const sparse::CsrMatrix qt = leaky_qt(5, 0.3, 0.2);
  const TransientOperator op(qt);
  const std::vector<double> bad(4, 1.0);
  EXPECT_THROW((void)gmres(op, bad), PreconditionError);
}

/// A = [[0,1],[0,0]]: with b = (0,1) the shadow residual r0 = b is exactly
/// orthogonal to A p on the first step, so BiCGSTAB must break down — and
/// must say so structurally, not stop as a silent non-convergence.
class NilpotentOperator final : public LinearOperator {
 public:
  [[nodiscard]] std::size_t size() const override { return 2; }
  void apply(std::span<const double> x, std::span<double> y) const override {
    y[0] = x[1];
    y[1] = 0.0;
  }
};

TEST(BicgstabTest, BreakdownIsSurfacedStructurally) {
  const NilpotentOperator op;
  const std::vector<double> b = {0.0, 1.0};
  const auto result = bicgstab(op, b);
  EXPECT_FALSE(result.stats.converged);
  ASSERT_FALSE(result.stats.breakdown.empty());
  EXPECT_NE(result.stats.breakdown.find("vanished at iteration 1"),
            std::string::npos)
      << result.stats.breakdown;
}

}  // namespace
}  // namespace stocdr::solvers
