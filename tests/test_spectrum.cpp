#include "analysis/spectrum.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/math.hpp"

namespace stocdr::analysis {
namespace {

TEST(SpectrumTest, WhiteNoiseIsFlat) {
  const std::vector<double> c{1.0, 0.0, 0.0, 0.0};
  const std::vector<double> freqs{0.0, 0.1, 0.25, 0.5};
  const auto psd = power_spectral_density(c, freqs);
  for (const double s : psd) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(SpectrumTest, Ar1LowPassShape) {
  // C(k) = lambda^k gives a Lorentzian-like monotone-decreasing PSD.
  std::vector<double> c(60);
  for (std::size_t k = 0; k < 60; ++k) c[k] = std::pow(0.8, k);
  const auto freqs = linspace(0.0, 0.5, 21);
  const auto psd =
      power_spectral_density(c, freqs, SpectralWindow::kRectangular);
  for (std::size_t i = 1; i < psd.size(); ++i) {
    EXPECT_LT(psd[i], psd[i - 1]) << i;
  }
  // Closed form at f=0 (rectangular, long window):
  // S(0) = 1 + 2 * sum lambda^k ~ (1+l)/(1-l) = 9.
  EXPECT_NEAR(psd.front(), 9.0, 0.01);
}

TEST(SpectrumTest, AlternatingCovarianceIsHighPass) {
  std::vector<double> c(40);
  for (std::size_t k = 0; k < 40; ++k) {
    c[k] = std::pow(-0.7, static_cast<double>(k));
  }
  const std::vector<double> freqs{0.0, 0.5};
  const auto psd = power_spectral_density(c, freqs);
  EXPECT_LT(psd[0], psd[1]);
}

TEST(SpectrumTest, BartlettEstimateNonNegative) {
  // Even with a truncated oscillatory covariance, the Bartlett window
  // guarantees a nonnegative estimate.
  std::vector<double> c(16);
  for (std::size_t k = 0; k < 16; ++k) {
    c[k] = std::cos(0.9 * static_cast<double>(k));
  }
  const auto freqs = linspace(0.0, 0.5, 64);
  const auto psd = power_spectral_density(c, freqs, SpectralWindow::kBartlett);
  for (const double s : psd) EXPECT_GE(s, -1e-12);
}

TEST(SpectrumTest, ValidatesInput) {
  EXPECT_THROW(power_spectral_density({}, std::vector<double>{0.1}),
               PreconditionError);
  const std::vector<double> c{1.0};
  EXPECT_THROW(power_spectral_density(c, std::vector<double>{0.6}),
               PreconditionError);
  EXPECT_THROW(power_spectral_density(c, std::vector<double>{-0.1}),
               PreconditionError);
}

}  // namespace
}  // namespace stocdr::analysis
