// Pool mechanics and kernel-level determinism of the parallel subsystem:
// chunk coverage, exception propagation, cooperative cancellation, static
// partitioning, and parallel-vs-serial equivalence of the CSR matvecs and
// reductions.  Solver-level equivalence lives in test_parallel_solvers.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/pool.hpp"
#include "parallel/reduce.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace stocdr {
namespace {

/// Forces the parallel paths on tiny problems; restores the default on
/// teardown so later tests see production thresholds.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { par::set_min_parallel_work(1); }
  void TearDown() override {
    par::set_min_parallel_work(par::kDefaultMinParallelWork);
  }
};

TEST(ParseThreadsSpec, HandlesAllForms) {
  EXPECT_EQ(par::parse_threads_spec(nullptr), 1u);
  EXPECT_EQ(par::parse_threads_spec(""), 1u);
  EXPECT_EQ(par::parse_threads_spec("not-a-number"), 1u);
  EXPECT_EQ(par::parse_threads_spec("-3"), 1u);
  EXPECT_EQ(par::parse_threads_spec("1"), 1u);
  EXPECT_EQ(par::parse_threads_spec("4"), 4u);
  EXPECT_EQ(par::parse_threads_spec("999999999"), par::kMaxThreads);
  // "0" and "auto" resolve to the hardware concurrency (at least 1).
  EXPECT_GE(par::parse_threads_spec("0"), 1u);
  EXPECT_GE(par::parse_threads_spec("auto"), 1u);
  EXPECT_EQ(par::parse_threads_spec("auto"), par::parse_threads_spec("0"));
}

TEST(EvenRange, PartitionsExactly) {
  for (const std::size_t n : {0u, 1u, 5u, 16u, 17u, 1000u}) {
    for (const std::size_t lanes : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      std::size_t max_size = 0, min_size = n + 1;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const par::Range r = par::even_range(n, lanes, lane);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_LE(r.begin, r.end);
        prev_end = r.end;
        covered += r.end - r.begin;
        max_size = std::max(max_size, r.end - r.begin);
        min_size = std::min(min_size, r.end - r.begin);
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_EQ(covered, n);
      EXPECT_LE(max_size - min_size, 1u);
    }
  }
}

TEST(BalancedBoundaries, BalancesSkewedWeights) {
  // Row i has i nonzeros: the naive even-rows split would give the last
  // lane ~2x the mean weight; the balanced split should stay close to 1.
  const std::size_t rows = 1000;
  std::vector<std::uint32_t> prefix(rows + 1, 0);
  for (std::size_t i = 0; i < rows; ++i) {
    prefix[i + 1] = prefix[i] + static_cast<std::uint32_t>(i);
  }
  const std::size_t lanes = 4;
  const auto bounds = par::balanced_boundaries(prefix, lanes);
  ASSERT_EQ(bounds.size(), lanes + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), rows);
  const double mean =
      static_cast<double>(prefix.back()) / static_cast<double>(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    EXPECT_LE(bounds[lane], bounds[lane + 1]);
    const double weight =
        static_cast<double>(prefix[bounds[lane + 1]] - prefix[bounds[lane]]);
    EXPECT_LT(weight, 1.1 * mean + 1000.0);
  }
  // Deterministic: same inputs, same boundaries.
  EXPECT_EQ(par::balanced_boundaries(prefix, lanes), bounds);
}

TEST_F(ParallelTest, RunLanesExecutesEveryLaneOnce) {
  const par::ThreadScope scope(4);
  const std::size_t lanes = 4;
  std::vector<std::atomic<int>> hits(lanes);
  par::run_lanes(lanes, [&](std::size_t lane) { hits[lane].fetch_add(1); });
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    EXPECT_EQ(hits[lane].load(), 1) << "lane " << lane;
  }
}

TEST_F(ParallelTest, ParallelForCoversEveryIndexOnce) {
  const par::ThreadScope scope(7);
  const std::size_t n = 10001;
  std::vector<std::atomic<int>> hits(n);
  par::parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST_F(ParallelTest, ExceptionPropagatesAndPoolSurvives) {
  const par::ThreadScope scope(4);
  EXPECT_THROW(par::run_lanes(4,
                              [&](std::size_t lane) {
                                if (lane == 2) {
                                  throw std::runtime_error("lane failure");
                                }
                              }),
               std::runtime_error);
  // The pool must remain usable after a job failed.
  std::atomic<int> ran{0};
  par::run_lanes(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST_F(ParallelTest, CancellationAbortsRunLanes) {
  std::atomic<bool> cancel{true};  // pre-set: no lane should start
  const par::ThreadScope scope(4, &cancel);
  std::atomic<int> ran{0};
  EXPECT_THROW(par::run_lanes(4, [&](std::size_t) { ran.fetch_add(1); }),
               par::CancelledError);
  EXPECT_EQ(ran.load(), 0);
}

TEST_F(ParallelTest, CancellationMidParallelForStopsEarly) {
  std::atomic<bool> cancel{false};
  const par::ThreadScope scope(2, &cancel);
  // Many chunks, each one element: the first chunk sets the flag, so the
  // pool must abandon pending chunks and throw.
  std::atomic<int> ran{0};
  EXPECT_THROW(par::run_lanes(64,
                              [&](std::size_t) {
                                cancel.store(true);
                                ran.fetch_add(1);
                              }),
               par::CancelledError);
  EXPECT_LT(ran.load(), 64);
}

TEST_F(ParallelTest, NestedParallelismRunsSerialAndFinishes) {
  const par::ThreadScope scope(4);
  std::vector<std::atomic<int>> hits(100);
  par::run_lanes(4, [&](std::size_t lane) {
    // Inside a pool worker (or the participating caller) the context is
    // forced serial, so this nested call must not re-enter the pool.
    EXPECT_EQ(par::effective_threads(), 1u);
    const par::Range r = par::even_range(hits.size(), 4, lane);
    par::parallel_for(r.end - r.begin,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          hits[r.begin + i].fetch_add(1);
                        }
                      });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, ThreadScopeNestsAndInherits) {
  EXPECT_EQ(par::effective_threads(), par::default_threads());
  {
    const par::ThreadScope outer(5);
    EXPECT_EQ(par::effective_threads(), 5u);
    {
      const par::ThreadScope inherit(0);  // 0 keeps the surrounding value
      EXPECT_EQ(par::effective_threads(), 5u);
      const par::ThreadScope inner(2);
      EXPECT_EQ(par::effective_threads(), 2u);
    }
    EXPECT_EQ(par::effective_threads(), 5u);
  }
  EXPECT_EQ(par::effective_threads(), par::default_threads());
}

TEST_F(ParallelTest, GatherMatvecMatchesSerialBitwise) {
  const auto pt = test::random_sparse_stochastic_pt(500, 6, 42);
  Rng rng(7);
  std::vector<double> x(pt.cols());
  for (double& v : x) v = rng.uniform();

  std::vector<double> serial(pt.rows()), parallel(pt.rows());
  {
    const par::ThreadScope scope(1);
    pt.multiply(x, serial);
  }
  {
    const par::ThreadScope scope(7);
    pt.multiply(x, parallel);
  }
  // Gather keeps the serial per-row accumulation order: exact equality.
  EXPECT_EQ(serial, parallel);
}

TEST_F(ParallelTest, ScatterMatvecMatchesSerialToRounding) {
  const auto pt = test::random_sparse_stochastic_pt(500, 6, 43);
  Rng rng(8);
  std::vector<double> x(pt.rows());
  for (double& v : x) v = rng.uniform();

  std::vector<double> serial(pt.cols()), parallel(pt.cols());
  {
    const par::ThreadScope scope(1);
    pt.multiply_transpose(x, serial);
  }
  {
    const par::ThreadScope scope(5);
    pt.multiply_transpose(x, parallel);
  }
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], parallel[i], 1e-12);
  }
  // Bitwise reproducible at a fixed thread count.
  std::vector<double> again(pt.cols());
  {
    const par::ThreadScope scope(5);
    pt.multiply_transpose(x, again);
  }
  EXPECT_EQ(parallel, again);
}

TEST_F(ParallelTest, ReductionsMatchSerialTwins) {
  Rng rng(11);
  std::vector<double> a(4099), b(4099);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform() - 0.5;
    b[i] = rng.uniform() - 0.5;
  }
  double s_sum, s_l1, s_dist, s_dot, s_l2, s_linf;
  {
    const par::ThreadScope scope(1);
    s_sum = par::sum(a);
    s_l1 = par::l1_norm(a);
    s_dist = par::l1_distance(a, b);
    s_dot = par::dot(a, b);
    s_l2 = par::l2_norm(a);
    s_linf = par::linf_norm(a);
  }
  EXPECT_EQ(s_sum, kahan_sum(a));
  EXPECT_EQ(s_l1, l1_norm(a));
  EXPECT_EQ(s_dist, l1_distance(a, b));
  {
    const par::ThreadScope scope(6);
    EXPECT_NEAR(par::sum(a), s_sum, 1e-12);
    EXPECT_NEAR(par::l1_norm(a), s_l1, 1e-12);
    EXPECT_NEAR(par::l1_distance(a, b), s_dist, 1e-12);
    EXPECT_NEAR(par::dot(a, b), s_dot, 1e-12);
    EXPECT_NEAR(par::l2_norm(a), s_l2, 1e-12);
    EXPECT_EQ(par::linf_norm(a), s_linf);  // max is order-independent
    // Fixed thread count: bitwise reproducible.
    EXPECT_EQ(par::sum(a), par::sum(a));
    EXPECT_EQ(par::dot(a, b), par::dot(a, b));
  }
}

TEST_F(ParallelTest, NormalizeL1MatchesSerialAndThrowsOnZeroMass) {
  Rng rng(12);
  std::vector<double> v(2048);
  for (double& x : v) x = rng.uniform();
  std::vector<double> serial = v, parallel = v;
  {
    const par::ThreadScope scope(1);
    par::normalize_l1(serial);
  }
  {
    const par::ThreadScope scope(4);
    par::normalize_l1(parallel);
  }
  double mass = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(serial[i], parallel[i], 1e-15);
    mass += parallel[i];
  }
  EXPECT_NEAR(mass, 1.0, 1e-12);

  std::vector<double> zeros(100, 0.0);
  const par::ThreadScope scope(4);
  EXPECT_THROW(par::normalize_l1(zeros), NumericalError);
}

TEST(ThreadPoolLifecycle, ShutdownWithIdleWorkersIsClean) {
  // Construction + destruction without ever running a job must not hang.
  par::ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
}

TEST(ThreadPoolLifecycle, ShutdownAfterExceptionIsClean) {
  par::ThreadPool pool(2);
  const auto fail = [](std::size_t chunk) {
    if (chunk == 1) throw std::runtime_error("chunk failure");
  };
  EXPECT_THROW(pool.run(8, fail), std::runtime_error);
  // Reusable after the failure, then destroyed while workers are parked.
  std::atomic<int> ran{0};
  pool.run(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolLifecycle, GrowsOnDemand) {
  par::ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::atomic<int> ran{0};
  pool.run(4, [&](std::size_t) { ran.fetch_add(1); });  // inline on caller
  EXPECT_EQ(ran.load(), 4);
  pool.ensure_workers(2);
  EXPECT_EQ(pool.workers(), 2u);
  ran = 0;
  pool.run(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace stocdr
