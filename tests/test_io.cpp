#include "sparse/io.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "../tests/test_util.hpp"
#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace stocdr::sparse {
namespace {

TEST(MatrixMarketTest, WriteReadRoundTrip) {
  const CsrMatrix original = test::random_sparse_stochastic_pt(23, 3, 9);
  std::stringstream stream;
  write_matrix_market(stream, original, "round trip test");
  const CsrMatrix parsed = read_matrix_market(stream);
  EXPECT_EQ(parsed.rows(), original.rows());
  EXPECT_EQ(parsed.cols(), original.cols());
  ASSERT_EQ(parsed.nnz(), original.nnz());
  original.for_each([&parsed](std::size_t r, std::size_t c, double v) {
    EXPECT_DOUBLE_EQ(parsed.at(r, c), v);
  });
}

TEST(MatrixMarketTest, ValuesSurviveAtFullPrecision) {
  CooBuilder b(1, 2);
  b.add(0, 0, 1.0 / 3.0);
  b.add(0, 1, 1e-300);
  std::stringstream stream;
  write_matrix_market(stream, b.to_csr());
  const CsrMatrix parsed = read_matrix_market(stream);
  EXPECT_DOUBLE_EQ(parsed.at(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(parsed.at(0, 1), 1e-300);
}

TEST(MatrixMarketTest, ParsesCommentsAndBlankLines) {
  std::stringstream stream(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "\n"
      "2 3 2\n"
      "% another comment\n"
      "1 1 0.5\n"
      "2 3 -1.25\n");
  const CsrMatrix m = read_matrix_market(stream);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -1.25);
}

TEST(MatrixMarketTest, SumsDuplicates) {
  std::stringstream stream(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 0.25\n"
      "1 1 0.5\n");
  const CsrMatrix m = read_matrix_market(stream);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.75);
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(MatrixMarketTest, RejectsMalformedInput) {
  {
    std::stringstream s("not a matrix market file\n");
    EXPECT_THROW((void)read_matrix_market(s), PreconditionError);
  }
  {
    std::stringstream s(
        "%%MatrixMarket matrix coordinate complex general\n2 2 0\n");
    EXPECT_THROW((void)read_matrix_market(s), PreconditionError);
  }
  {
    std::stringstream s(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 0.5\n");
    EXPECT_THROW((void)read_matrix_market(s), PreconditionError);
  }
  {
    std::stringstream s(
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 0.5\n");
    EXPECT_THROW((void)read_matrix_market(s), PreconditionError);  // truncated
  }
}

TEST(MatrixMarketTest, FileRoundTrip) {
  const CsrMatrix original = test::birth_death_pt(6, 0.3, 0.2);
  const std::string path = ::testing::TempDir() + "/stocdr_io_test.mtx";
  write_matrix_market_file(path, original, "birth death");
  const CsrMatrix parsed = read_matrix_market_file(path);
  EXPECT_TRUE(parsed.equals(original));
  EXPECT_THROW((void)read_matrix_market_file("/nonexistent/q.mtx"),
               PreconditionError);
}

TEST(VectorMarketTest, RoundTrip) {
  const std::vector<double> v{0.25, -1.0, 3.5e-12, 0.0};
  std::stringstream stream;
  write_vector_market(stream, v, "test vector");
  const auto parsed = read_vector_market(stream);
  ASSERT_EQ(parsed.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i], v[i]);
  }
}

TEST(VectorMarketTest, RejectsMatrixShapedArray) {
  std::stringstream stream(
      "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW((void)read_vector_market(stream), PreconditionError);
}

}  // namespace
}  // namespace stocdr::sparse
